/**
 * @file
 * Regenerates Figure 8 of the paper: per-block last-touch tables
 * (13-bit signatures) versus a single global table (30-bit signatures —
 * the minimum that works at all for the global organization).
 *
 * Paper shapes to expect: the global table loses ~20 points of average
 * accuracy (79% -> 58%) to subtrace aliasing across blocks — tomcatv's
 * outer-column traces are prefixes of its inner-column traces — and its
 * misprediction fraction grows (up to ~30% in the worst application).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace ltp;

static int
run()
{
    bench::printSystemBanner();
    std::printf("\n== Figure 8: per-block (13-bit) vs global (30-bit) "
                "table (%%)==\n");
    std::printf("%-14s %12s %8s | %12s %8s\n", "benchmark",
                "perblk-pred", "mis", "global-pred", "mis");

    double sum_p = 0, sum_g = 0;
    unsigned apps = 0;
    for (const auto &name : allKernelNames()) {
        ExperimentSpec per;
        per.kernel = name;
        per.predictor = PredictorKind::LtpPerBlock;
        per.mode = PredictorMode::Passive;
        per.sigBits = 13;
        RunResult rp = runExperiment(per);

        ExperimentSpec glob = per;
        glob.predictor = PredictorKind::LtpGlobal;
        glob.sigBits = 30;
        RunResult rg = runExperiment(glob);

        std::printf("%-14s %12.1f %8.1f | %12.1f %8.1f\n", name.c_str(),
                    bench::pct(rp.accuracy()),
                    bench::pct(rp.mispredictionRate()),
                    bench::pct(rg.accuracy()),
                    bench::pct(rg.mispredictionRate()));
        sum_p += bench::pct(rp.accuracy());
        sum_g += bench::pct(rg.accuracy());
        ++apps;
    }
    std::printf("%-14s %12.1f %8s | %12.1f\n", "AVERAGE", sum_p / apps,
                "", sum_g / apps);
    std::printf("\n# Paper averages: per-block 79%%, global 58%% (subtrace "
                "aliasing across blocks)\n");
    return 0;
}

int
main()
{
    return ltp::bench::guardedMain("bench_fig8_global", run);
}
