/**
 * @file
 * Google-benchmark microbenchmarks for the hot structures: trace
 * signature updates, predictor touch/learn paths, the event queue, and
 * end-to-end simulated-cycles-per-wall-second for a small system.
 */

#include <benchmark/benchmark.h>

#include "dsm/experiment.hh"
#include "predictor/last_pc.hh"
#include "predictor/ltp_global.hh"
#include "predictor/ltp_per_block.hh"
#include "predictor/signature.hh"
#include "sim/event_queue.hh"

namespace
{

using namespace ltp;

void
BM_SignatureExtend(benchmark::State &state)
{
    Signature sig = Signature::init(0x4000, unsigned(state.range(0)));
    Pc pc = 0x4004;
    for (auto _ : state) {
        sig = sig.extend(pc);
        benchmark::DoNotOptimize(sig);
    }
}
BENCHMARK(BM_SignatureExtend)->Arg(30)->Arg(13)->Arg(6);

template <typename Pred>
void
predictorTouchLoop(benchmark::State &state)
{
    Pred pred;
    std::uint64_t i = 0;
    for (auto _ : state) {
        Addr blk = (i % 1024) * 32;
        bool fill = (i % 8) == 0;
        benchmark::DoNotOptimize(
            pred.onTouch(blk, 0x1000 + (i % 16) * 4, false, fill));
        if (i % 8 == 7)
            pred.onInvalidation(blk);
        ++i;
    }
}

void
BM_LtpPerBlockTouch(benchmark::State &state)
{
    predictorTouchLoop<LtpPerBlock>(state);
}
BENCHMARK(BM_LtpPerBlockTouch);

void
BM_LtpGlobalTouch(benchmark::State &state)
{
    predictorTouchLoop<LtpGlobal>(state);
}
BENCHMARK(BM_LtpGlobalTouch);

void
BM_LastPcTouch(benchmark::State &state)
{
    predictorTouchLoop<LastPcPredictor>(state);
}
BENCHMARK(BM_LastPcTouch);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleAt(Tick(i % 97), [] {});
        eq.run();
        benchmark::DoNotOptimize(eq.eventsExecuted());
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EndToEndEm3d(benchmark::State &state)
{
    for (auto _ : state) {
        ExperimentSpec spec;
        spec.kernel = "em3d";
        spec.predictor = PredictorKind::LtpPerBlock;
        spec.mode = PredictorMode::Passive;
        spec.iterScale = 0.1;
        RunResult r = runExperiment(spec);
        benchmark::DoNotOptimize(r.cycles);
        state.counters["simCycles"] = double(r.cycles);
    }
}
BENCHMARK(BM_EndToEndEm3d)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
