/**
 * @file
 * Regenerates Figure 7 of the paper: per-block LTP prediction accuracy
 * as the truncated-addition signature shrinks from 30 bits ("Base")
 * through 13 and 11 down to 6 bits.
 *
 * Paper shapes to expect: 13 bits match the 30-bit baseline everywhere;
 * 6 bits hurt the applications with large instruction footprints
 * (appbt, dsmc, ocean, unstructured) and the counting-trace
 * applications (moldyn, tomcatv) through subtrace aliasing; em3d,
 * barnes, and raytrace are insensitive (traces simple or short).
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace ltp;

static int
run()
{
    bench::printSystemBanner();
    const std::vector<unsigned> sizes = {30, 13, 11, 6};

    std::printf("\n== Figure 7: LTP accuracy vs signature size (%%) ==\n");
    std::printf("%-14s", "benchmark");
    for (unsigned bits : sizes)
        std::printf("   %4u-bit  (mis)", bits);
    std::printf("\n");

    for (const auto &name : allKernelNames()) {
        std::printf("%-14s", name.c_str());
        for (unsigned bits : sizes) {
            ExperimentSpec spec;
            spec.kernel = name;
            spec.predictor = PredictorKind::LtpPerBlock;
            spec.mode = PredictorMode::Passive;
            spec.sigBits = bits;
            RunResult r = runExperiment(spec);
            std::printf("   %8.1f (%4.1f)", bench::pct(r.accuracy()),
                        bench::pct(r.mispredictionRate()));
        }
        std::printf("\n");
    }
    std::printf("\n# Paper: 13 bits preserve the 30-bit accuracy; ~6 bits "
                "drop accuracy for large-footprint and counting-trace "
                "apps\n");
    return 0;
}

int
main()
{
    return ltp::bench::guardedMain("bench_fig7_signature", run);
}
