/**
 * @file
 * Ablations on the design choices DESIGN.md calls out (beyond the
 * paper's own figures):
 *
 *  1. Confidence filtering: selective self-invalidation (2-bit counters,
 *     predict only when saturated) vs brute-force prediction (predict on
 *     any table hit). Section 4 argues the counters are what keeps
 *     mispredictions from erasing the gains.
 *  2. Directory engine pipelining: the two-stage pipelined protocol
 *     engine vs a simple serial engine, under DSI's bursty flushes
 *     (the paper models the pipelined engine specifically to dampen
 *     synchronization-burst queueing).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace ltp;

namespace
{

RunResult
runWith(const std::string &kernel, PredictorKind kind, PredictorMode mode,
        unsigned conf_threshold, bool pipelined)
{
    SystemParams sp = SystemParams::withPredictor(kind, mode, 30);
    sp.ltp.confThreshold = conf_threshold;
    sp.dir.pipelined = pipelined;
    KernelConfig cfg = defaultConfig(kernel);
    cfg.nodes = sp.numNodes;
    DsmSystem sys(sp);
    auto k = makeKernel(kernel);
    return sys.run(*k, cfg);
}

} // namespace

static int
run()
{
    bench::printSystemBanner();

    std::printf("\n== Ablation 1: confidence filtering (passive LTP) ==\n");
    std::printf("%-14s %16s %16s %16s %16s\n", "benchmark",
                "filtered-pred%", "filtered-mis%", "brute-pred%",
                "brute-mis%");
    const std::vector<std::string> conf_apps = {"moldyn", "tomcatv",
                                                "barnes", "em3d"};
    for (const auto &name : conf_apps) {
        RunResult filt = runWith(name, PredictorKind::LtpPerBlock,
                                 PredictorMode::Passive, 3, true);
        // Threshold 0: any learned signature predicts immediately.
        RunResult brute = runWith(name, PredictorKind::LtpPerBlock,
                                  PredictorMode::Passive, 0, true);
        std::printf("%-14s %16.1f %16.1f %16.1f %16.1f\n", name.c_str(),
                    bench::pct(filt.accuracy()),
                    bench::pct(filt.mispredictionRate()),
                    bench::pct(brute.accuracy()),
                    bench::pct(brute.mispredictionRate()));
    }

    std::printf("\n== Ablation 2: two-stage pipelined directory engine "
                "vs serial (active DSI) ==\n");
    std::printf("%-14s %18s %18s\n", "benchmark", "pipelined-queue",
                "serial-queue");
    const std::vector<std::string> burst_apps = {"em3d", "tomcatv",
                                                 "appbt"};
    for (const auto &name : burst_apps) {
        RunResult pipe = runWith(name, PredictorKind::Dsi,
                                 PredictorMode::Active, 3, true);
        RunResult serial = runWith(name, PredictorKind::Dsi,
                                   PredictorMode::Active, 3, false);
        std::printf("%-14s %18.1f %18.1f\n", name.c_str(),
                    pipe.dirQueueingMean, serial.dirQueueingMean);
    }
    std::printf("\n== Ablation 3: LTP + sharing-prediction forwarding "
                "(the paper's 'in the limit' extension) ==\n");
    std::printf("%-14s %14s %14s %10s\n", "benchmark", "ltp-cycles",
                "+fwd-cycles", "forwards");
    const std::vector<std::string> fwd_apps = {"em3d", "tomcatv",
                                               "ocean"};
    for (const auto &name : fwd_apps) {
        SystemParams sp = SystemParams::withPredictor(
            PredictorKind::LtpPerBlock, PredictorMode::Active, 30);
        KernelConfig cfg = defaultConfig(name);
        cfg.nodes = sp.numNodes;

        DsmSystem plain_sys(sp);
        auto k1 = makeKernel(name);
        RunResult plain = plain_sys.run(*k1, cfg);

        sp.dir.enableForwarding = true;
        DsmSystem fwd_sys(sp);
        auto k2 = makeKernel(name);
        RunResult fwd = fwd_sys.run(*k2, cfg);
        std::uint64_t forwards =
            fwd_sys.stats().counterValue("dir.forwards");

        std::printf("%-14s %14llu %14llu %10llu\n", name.c_str(),
                    (unsigned long long)plain.cycles,
                    (unsigned long long)fwd.cycles,
                    (unsigned long long)forwards);
    }

    std::printf("\n== Ablation 4: trace-encoding function, narrow "
                "signatures (passive per-block LTP) ==\n");
    std::printf("%-14s %18s %18s\n", "benchmark", "trunc-add@6bit",
                "rot-xor@6bit");
    for (const auto &name : {"appbt", "dsmc", "ocean"}) {
        auto run_enc = [&](SigEncoding enc) {
            SystemParams sp = SystemParams::withPredictor(
                PredictorKind::LtpPerBlock, PredictorMode::Passive, 6);
            sp.ltp.encoding = enc;
            KernelConfig cfg = defaultConfig(name);
            cfg.nodes = sp.numNodes;
            DsmSystem sys(sp);
            auto k = makeKernel(name);
            return sys.run(*k, cfg);
        };
        RunResult add = run_enc(SigEncoding::TruncatedAdd);
        RunResult rx = run_enc(SigEncoding::RotateXor);
        std::printf("%-14s %18.1f %18.1f\n", name,
                    bench::pct(add.accuracy()), bench::pct(rx.accuracy()));
    }

    std::printf("\n# Expected: brute-force prediction inflates "
                "mispredictions on variable-trace apps; the serial engine "
                "roughly doubles DSI burst queueing; forwarding converts "
                "consumer misses into local hits on stable "
                "producer-consumer patterns\n");
    return 0;
}

int
main()
{
    return ltp::bench::guardedMain("bench_ablation", run);
}
