/**
 * @file
 * Simulation-core performance benchmark: the tracked perf trajectory.
 *
 * Runs every registered kernel under the two standard configurations —
 * the base system (no predictor) and the Active per-block LTP (the
 * Figure 9 methodology) — and records wall-clock seconds, simulated
 * events per second, and protocol messages per second for each run in a
 * machine-diffable JSON file (`BENCH_core.json` by default).
 *
 * Every perf-affecting PR from this one onward reruns this bench in
 * Release mode and diffs the JSON against the previous trajectory point.
 *
 *   $ ./bench_perf [--out FILE] [--scale S] [--threads LIST]
 *                  [--filter REGEX] [--repeat N] [kernel...]
 *
 * --scale multiplies every kernel's default iteration count (use < 1 for
 * a quick smoke run, > 1 for more stable numbers). Wall-clock timing
 * covers system construction + run (the steady-state schedule/execute
 * loop dominates).
 *
 * --filter runs only the cells whose "kernel/config" id matches the
 * ECMAScript regex (searched, not anchored): `--filter 'moldyn/mesh'`
 * reruns one cell instead of the whole matrix while iterating on an
 * optimization. --repeat N runs every selected cell N times and records
 * the minimum-wall sample — min, not mean, because scheduling noise
 * only ever adds time.
 *
 * The `parallel` section sweeps the node-partitioned engine on a
 * 64-node mesh (base system) at the shard counts given by --threads
 * (default 1,2,4), recorded as configs "mesh64-t<S>". Only the t1 cells
 * are gated by tools/perf_gate.py — S>1 throughput depends on the
 * runner's core count — but they pin the sequential baseline the
 * parallel path must not regress.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"

using namespace ltp;

namespace
{

/** Detected core count; 0 when the runtime cannot tell. */
unsigned
hardwareThreads()
{
    return std::thread::hardware_concurrency();
}

struct Sample
{
    std::string kernel;
    std::string config;
    unsigned threads = 1; //!< simulation shards this cell ran with
    bool completed = false;
    double wallSeconds = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    std::uint64_t msgs = 0;
    /** Engine self-profile (extra JSON keys; ignored by perf_gate). */
    obs::EngineProfile profile;

    double rate(std::uint64_t n) const
    {
        return wallSeconds > 0.0 ? double(n) / wallSeconds : 0.0;
    }

    /**
     * More worker threads than cores: the cell's wall clock measures
     * scheduler thrash, not engine throughput. Stamped into the JSON so
     * numbers recorded on a small box stop reading as regressions.
     */
    bool
    oversubscribed() const
    {
        unsigned hw = hardwareThreads();
        return hw != 0 && threads > hw;
    }
};

Sample
runSpec(ExperimentSpec spec, const std::string &config_name)
{
    auto t0 = std::chrono::steady_clock::now();
    RunResult r = runExperiment(spec);
    auto t1 = std::chrono::steady_clock::now();

    Sample s;
    s.kernel = spec.kernel;
    s.config = config_name;
    s.completed = r.completed;
    s.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    s.cycles = r.cycles;
    s.events = r.eventsExecuted;
    s.msgs = r.netMsgs;
    s.profile = r.engineProfile;
    return s;
}

Sample
runOne(const std::string &kernel, PredictorKind kind, PredictorMode mode,
       const char *config_name, double scale)
{
    ExperimentSpec spec;
    spec.kernel = kernel;
    spec.predictor = kind;
    spec.mode = mode;
    spec.iterScale = scale;
    // Pin the engine: these cells are the perf-gated sequential
    // trajectory and must ignore a stray LTP_SIM_THREADS.
    spec.simThreads = 1;
    return runSpec(std::move(spec), config_name);
}

/** One `parallel` section cell: base system, 64-node mesh, S shards. */
Sample
runParallel(const std::string &kernel, unsigned threads, double scale)
{
    ExperimentSpec spec;
    spec.kernel = kernel;
    spec.predictor = PredictorKind::Base;
    spec.mode = PredictorMode::Off;
    spec.iterScale = scale;
    spec.nodes = 64;
    spec.topology = TopologyKind::Mesh2D;
    spec.simThreads = threads;
    Sample s = runSpec(std::move(spec),
                       "mesh64-t" + std::to_string(threads));
    s.threads = threads;
    return s;
}

void
writeJson(const std::string &path, const std::vector<Sample> &samples,
          double scale)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"bench_core/v1\",\n");
    std::fprintf(f, "  \"build\": \"%s\",\n",
#ifdef NDEBUG
                 "release"
#else
                 "debug"
#endif
    );
    std::fprintf(f, "  \"iterScale\": %g,\n", scale);
    std::fprintf(f, "  \"hardwareConcurrency\": %u,\n", hardwareThreads());
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        std::fprintf(f,
                     "    {\"kernel\": \"%s\", \"config\": \"%s\", "
                     "\"threads\": %u, \"completed\": %s, "
                     "\"wallSeconds\": %.4f, "
                     "\"cycles\": %llu, \"events\": %llu, \"msgs\": %llu, "
                     "\"eventsPerSec\": %.0f, \"msgsPerSec\": %.0f%s, "
                     "\"engineRounds\": %llu, \"windowTicks\": %llu, "
                     "\"barrierParks\": %llu, \"barrierWaitNs\": %llu, "
                     "\"spilledPosts\": %llu, "
                     "\"overflowMigrations\": %llu}%s\n",
                     s.kernel.c_str(), s.config.c_str(), s.threads,
                     s.completed ? "true" : "false", s.wallSeconds,
                     (unsigned long long)s.cycles,
                     (unsigned long long)s.events,
                     (unsigned long long)s.msgs, s.rate(s.events),
                     s.rate(s.msgs),
                     s.oversubscribed() ? ", \"oversubscribed\": true" : "",
                     (unsigned long long)s.profile.rounds,
                     (unsigned long long)s.profile.windowTicks,
                     (unsigned long long)s.profile.barrierParks,
                     (unsigned long long)s.profile.barrierWaitNs,
                     (unsigned long long)s.profile.spilledPosts,
                     (unsigned long long)s.profile.overflowMigrations,
                     i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

/** Selected cells rerun `repeat` times; the min-wall sample survives. */
Sample
bestOf(int repeat, const std::function<Sample()> &run_cell)
{
    Sample best = run_cell();
    for (int i = 1; i < repeat; ++i) {
        Sample s = run_cell();
        if (s.wallSeconds < best.wallSeconds)
            best = std::move(s);
    }
    return best;
}

} // namespace

static int
run(int argc, char **argv)
{
    std::string out = "BENCH_core.json";
    double scale = 1.0;
    int repeat = 1;
    std::string filter;
    std::vector<unsigned> threads = {1, 2, 4};
    std::vector<std::string> kernels;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
            scale = std::atof(argv[++i]);
        } else if (!std::strcmp(argv[i], "--filter") && i + 1 < argc) {
            filter = argv[++i];
        } else if (!std::strcmp(argv[i], "--repeat") && i + 1 < argc) {
            repeat = std::atoi(argv[++i]);
            if (repeat < 1) {
                std::fprintf(stderr, "bad --repeat count '%s'\n", argv[i]);
                return 1;
            }
        } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
            threads.clear();
            for (const char *p = argv[++i]; *p;) {
                char *end = nullptr;
                unsigned long v = std::strtoul(p, &end, 10);
                if (end == p || v == 0) {
                    std::fprintf(stderr, "bad --threads list '%s'\n",
                                 argv[i]);
                    return 1;
                }
                threads.push_back(unsigned(v));
                p = *end == ',' ? end + 1 : end;
            }
        } else {
            kernels.push_back(argv[i]);
        }
    }
    if (kernels.empty())
        kernels = allKernelNames();
    std::regex filterRe;
    if (!filter.empty()) {
        try {
            filterRe = std::regex(filter);
        } catch (const std::regex_error &e) {
            std::fprintf(stderr, "bad --filter regex '%s': %s\n",
                         filter.c_str(), e.what());
            return 1;
        }
    }
    auto selected = [&](const std::string &kernel,
                        const std::string &config) {
        return filter.empty() ||
               std::regex_search(kernel + "/" + config, filterRe);
    };
    for (const auto &kernel : kernels) {
        bool known = false;
        for (const auto &name : allKernelNames())
            known |= name == kernel;
        if (!known) {
            std::fprintf(stderr, "unknown kernel '%s'\n", kernel.c_str());
            return 1;
        }
    }

#ifndef NDEBUG
    std::fprintf(stderr,
                 "warning: bench_perf built without NDEBUG; numbers are "
                 "not comparable to the tracked Release trajectory\n");
#endif

    bench::printSystemBanner();
    std::printf("# core perf trajectory -> %s\n", out.c_str());
    std::printf("%-12s %-10s | %8s %12s %12s | %12s %12s\n", "kernel",
                "config", "wall s", "events", "msgs", "events/s", "msgs/s");

    std::vector<Sample> samples;
    for (const auto &kernel : kernels) {
        for (int cfg = 0; cfg < 2; ++cfg) {
            const char *config = cfg == 0 ? "base" : "ltp-active";
            if (!selected(kernel, config))
                continue;
            Sample s = bestOf(repeat, [&] {
                return cfg == 0
                           ? runOne(kernel, PredictorKind::Base,
                                    PredictorMode::Off, "base", scale)
                           : runOne(kernel, PredictorKind::LtpPerBlock,
                                    PredictorMode::Active, "ltp-active",
                                    scale);
            });
            std::printf("%-12s %-10s | %8.3f %12llu %12llu | %12.0f "
                        "%12.0f%s\n",
                        s.kernel.c_str(), s.config.c_str(), s.wallSeconds,
                        (unsigned long long)s.events,
                        (unsigned long long)s.msgs, s.rate(s.events),
                        s.rate(s.msgs), s.completed ? "" : "  (incomplete)");
            samples.push_back(std::move(s));
        }
    }

    // The parallel section: the node-partitioned engine on a 64-node
    // mesh, one cell per (kernel, shard count).
    for (const auto &kernel : kernels) {
        for (unsigned t : threads) {
            if (!selected(kernel, "mesh64-t" + std::to_string(t)))
                continue;
            Sample s = bestOf(
                repeat, [&] { return runParallel(kernel, t, scale); });
            std::printf("%-12s %-10s | %8.3f %12llu %12llu | %12.0f "
                        "%12.0f%s%s\n",
                        s.kernel.c_str(), s.config.c_str(), s.wallSeconds,
                        (unsigned long long)s.events,
                        (unsigned long long)s.msgs, s.rate(s.events),
                        s.rate(s.msgs), s.completed ? "" : "  (incomplete)",
                        s.oversubscribed() ? "  (oversubscribed)" : "");
            samples.push_back(std::move(s));
        }
    }

    writeJson(out, samples, scale);
    return 0;
}

int
main(int argc, char **argv)
{
    return ltp::bench::guardedMain("bench_perf",
                                   [&] { return run(argc, argv); });
}
