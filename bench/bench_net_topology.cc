/**
 * @file
 * Topology sweep (noxim_explorer-style): run kernels across interconnect
 * topologies and node counts and compare execution time and network
 * behavior. The paper's constant-latency point-to-point model ("p2p") is
 * the baseline; mesh/torus/ring make latency hop-count- and
 * congestion-dependent, which is the knob that stresses self-invalidation
 * timeliness (Table 4) and speedup (Figure 9) under realistic networks.
 *
 *   $ ./bench_net_topology [--routing R] [kernel...]
 *                                          (default: dor, tomcatv em3d)
 *
 * --routing picks the routed topologies' policy (dor | adaptive |
 * oblivious; p2p rows are unaffected); network-only routing studies live
 * in bench_net_synthetic.
 *
 * Two tables per kernel:
 *  - base protocol: total cycles, messages, end-to-end latency
 *    (mean / p50 / p99), mean route length, busiest link utilization;
 *  - Active per-block LTP: speedup over the same-topology base run plus
 *    the Table 4 self-invalidation verdicts (timely / late / premature),
 *    showing how congestion-dependent latency erodes timeliness.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"

using namespace ltp;

namespace
{

RoutingPolicy g_routing = RoutingPolicy::DimensionOrder;

RunResult
runCell(const std::string &kernel, NodeId nodes, TopologyKind topo,
        PredictorKind pred, PredictorMode mode)
{
    ExperimentSpec spec;
    spec.kernel = kernel;
    spec.predictor = pred;
    spec.mode = mode;
    spec.nodes = nodes;
    spec.topology = topo;
    spec.routing = g_routing;
    return runExperiment(spec);
}

void
sweepKernel(const std::string &kernel)
{
    static const NodeId node_counts[] = {16, 32, 64};

    std::printf("\n== %s (base protocol) ==\n", kernel.c_str());
    std::printf("%5s %-6s | %12s %10s | %8s %6s %6s | %6s %8s\n", "nodes",
                "topo", "cycles", "msgs", "latMean", "p50", "p99", "hops",
                "maxLink%");

    // Base cycles per (nodes, topo) — the Active table's speedup divisor.
    std::vector<Tick> baseCycles;

    for (NodeId nodes : node_counts) {
        for (TopologyKind topo : allTopologyKinds()) {
            RunResult r = runCell(kernel, nodes, topo, PredictorKind::Base,
                                  PredictorMode::Off);
            baseCycles.push_back(r.cycles);

            std::printf("%5u %-6s | %12llu %10llu | %8.1f %6.0f %6.0f | "
                        "%6.2f %8.1f\n",
                        unsigned(nodes), topologyKindName(topo),
                        (unsigned long long)r.cycles,
                        (unsigned long long)r.netMsgs, r.netLatencyMean,
                        r.netLatencyP50, r.netLatencyP99, r.netHopMean,
                        bench::pct(r.peakLinkUtilization()));
            if (r.netLatencyOverflow) {
                std::printf("      ^ %llu samples beyond histogram range; "
                            "p50/p99 clamped\n",
                            (unsigned long long)r.netLatencyOverflow);
            }
            if (!r.completed)
                std::printf("      ^ did not complete before maxTicks\n");
        }
    }

    // Self-invalidation timeliness under congestion-dependent latency
    // (ROADMAP / Table 4): the Active per-block LTP on every topology.
    std::printf("\n== %s (ltp active) ==\n", kernel.c_str());
    std::printf("%5s %-6s | %12s %7s | %8s %7s %7s %7s | %8s\n", "nodes",
                "topo", "cycles", "speedup", "selfInvs", "timely%",
                "late%", "premat%", "maxLink%");

    std::size_t cell = 0;
    for (NodeId nodes : node_counts) {
        for (TopologyKind topo : allTopologyKinds()) {
            RunResult r = runCell(kernel, nodes, topo,
                                  PredictorKind::LtpPerBlock,
                                  PredictorMode::Active);
            Tick base = baseCycles[cell++];

            std::uint64_t verdicts = r.selfInvTimelyCorrect +
                                     r.selfInvLateCorrect +
                                     r.selfInvPremature;
            auto frac = [&](std::uint64_t x) {
                return verdicts ? double(x) / double(verdicts) : 0.0;
            };
            std::printf("%5u %-6s | %12llu %7.3f | %8llu %7.1f %7.1f "
                        "%7.1f | %8.1f\n",
                        unsigned(nodes), topologyKindName(topo),
                        (unsigned long long)r.cycles,
                        r.cycles ? double(base) / double(r.cycles) : 0.0,
                        (unsigned long long)r.selfInvsIssued,
                        bench::pct(frac(r.selfInvTimelyCorrect)),
                        bench::pct(frac(r.selfInvLateCorrect)),
                        bench::pct(frac(r.selfInvPremature)),
                        bench::pct(r.peakLinkUtilization()));
            if (!r.completed)
                std::printf("      ^ did not complete before maxTicks\n");
        }
    }
}

} // namespace

static int
run(int argc, char **argv)
{
    std::vector<std::string> kernels;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--routing" && i + 1 < argc) {
            auto parsed = parseRoutingPolicy(argv[++i]);
            if (!parsed) {
                std::fprintf(stderr,
                             "unknown routing policy '%s'; choose one of: "
                             "dor adaptive oblivious\n",
                             argv[i]);
                return 1;
            }
            g_routing = *parsed;
            continue;
        }
        kernels.push_back(argv[i]);
    }
    if (kernels.empty())
        kernels = {"tomcatv", "em3d"};

    // Reject any bad name before the (minutes-long) sweeps start.
    for (const auto &kernel : kernels) {
        bool known = false;
        for (const auto &name : allKernelNames())
            known |= name == kernel;
        if (!known) {
            std::fprintf(stderr, "unknown kernel '%s'\n", kernel.c_str());
            return 1;
        }
    }

    bench::printSystemBanner();
    std::printf("# topology sweep: per-hop latency/serialization and "
                "per-link contention, routing=%s (see src/net/README.md)\n",
                routingPolicyName(g_routing));

    for (const auto &kernel : kernels)
        sweepKernel(kernel);
    return 0;
}

int
main(int argc, char **argv)
{
    return ltp::bench::guardedMain("bench_net_topology",
                                   [&] { return run(argc, argv); });
}
