/**
 * @file
 * Regenerates Figure 9 of the paper: execution-time speedup of
 * speculative self-invalidation (DSI and per-block LTP, both ACTIVE)
 * over the base DSM, per benchmark.
 *
 * Paper shapes to expect: LTP speeds execution up on average ~11% (best
 * ~30%) and slows at most one application by <1%; DSI averages only ~3%
 * and actually slows several applications (bursty, late, and premature
 * self-invalidations); self-invalidation barely matters for dsmc and
 * moldyn, whose computation / wide read sharing hides invalidations.
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hh"

using namespace ltp;

static int
run()
{
    bench::printSystemBanner();
    std::printf("\n== Figure 9: speedup over the base DSM ==\n");
    std::printf("%-14s %10s %10s %14s %14s\n", "benchmark", "DSI",
                "LTP", "baseCycles", "ltpCycles");

    double geo_dsi = 1.0, geo_ltp = 1.0;
    unsigned apps = 0;
    for (const auto &name : allKernelNames()) {
        SpeedupResult dsi = runSpeedup(name, PredictorKind::Dsi);
        SpeedupResult ltp = runSpeedup(name, PredictorKind::LtpPerBlock);
        std::printf("%-14s %10.3f %10.3f %14llu %14llu\n", name.c_str(),
                    dsi.speedup(), ltp.speedup(),
                    (unsigned long long)ltp.base.cycles,
                    (unsigned long long)ltp.pred.cycles);
        geo_dsi *= dsi.speedup();
        geo_ltp *= ltp.speedup();
        ++apps;
    }
    std::printf("%-14s %10.3f %10.3f\n", "GEOMEAN",
                std::pow(geo_dsi, 1.0 / apps),
                std::pow(geo_ltp, 1.0 / apps));
    std::printf("\n# Paper: DSI avg +3%% (slows 4 of 9 apps), "
                "LTP avg +11%% (best +30%%, worst -<1%%)\n");
    return 0;
}

int
main()
{
    return ltp::bench::guardedMain("bench_fig9_speedup", run);
}
