/**
 * @file
 * Regenerates Table 3 of the paper: the average number of last-touch
 * signature entries per actively shared block and the per-block storage
 * overhead in bytes, for the per-block (13-bit) and global (30-bit)
 * organizations.
 *
 * Accounting follows the paper: one current signature per block plus
 * (signature + 2-bit counter) per last-touch entry. Paper shapes:
 * per-block tables hold ~1-8 entries per block (avg 2.8, ~7 B/block);
 * the global table amortizes to <1 entry per block but needs 30-bit
 * signatures, so its byte overhead (~6 B) is only slightly lower.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace ltp;

static int
run()
{
    bench::printSystemBanner();
    std::printf("\n== Table 3: signature entries and overhead per "
                "actively-shared block ==\n");
    std::printf("%-14s | %10s %10s | %10s %10s\n", "", "Per-Block", "",
                "Global", "");
    std::printf("%-14s | %10s %10s | %10s %10s\n", "benchmark", "ent",
                "ovh(B)", "ent", "ovh(B)");

    double se_p = 0, so_p = 0, se_g = 0, so_g = 0;
    unsigned apps = 0;
    for (const auto &name : allKernelNames()) {
        ExperimentSpec per;
        per.kernel = name;
        per.predictor = PredictorKind::LtpPerBlock;
        per.mode = PredictorMode::Passive;
        per.sigBits = 13;
        RunResult rp = runExperiment(per);

        ExperimentSpec glob = per;
        glob.predictor = PredictorKind::LtpGlobal;
        glob.sigBits = 30;
        RunResult rg = runExperiment(glob);

        std::printf("%-14s | %10.1f %10.1f | %10.1f %10.1f\n",
                    name.c_str(), rp.storage.entriesPerBlock(),
                    rp.storage.bytesPerBlock(),
                    rg.storage.entriesPerBlock(),
                    rg.storage.bytesPerBlock());
        se_p += rp.storage.entriesPerBlock();
        so_p += rp.storage.bytesPerBlock();
        se_g += rg.storage.entriesPerBlock();
        so_g += rg.storage.bytesPerBlock();
        ++apps;
    }
    std::printf("%-14s | %10.1f %10.1f | %10.1f %10.1f\n", "AVERAGE",
                se_p / apps, so_p / apps, se_g / apps, so_g / apps);
    std::printf("\n# Paper averages: per-block 2.8 ent / ~7 B; global 0.8 "
                "ent / ~6 B\n");
    return 0;
}

int
main()
{
    return ltp::bench::guardedMain("bench_table3_storage", run);
}
