/**
 * @file
 * Shared formatting helpers for the table/figure-regeneration benches.
 */

#ifndef LTP_BENCH_BENCH_COMMON_HH
#define LTP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "dsm/experiment.hh"

namespace ltp::bench
{

/** Print the Table 1 system configuration banner. */
inline void
printSystemBanner()
{
    SystemParams p;
    std::printf("# System configuration (paper Table 1)\n");
    std::printf("#   nodes=%u  blockSize=%uB  memAccess=%llu cyc  "
                "netLatency=%llu cyc\n",
                unsigned(p.numNodes), p.cache.blockSize,
                (unsigned long long)p.dir.memAccess,
                (unsigned long long)p.net.flightLatency);
    std::printf("#   two-stage pipelined directory engine, NI contention "
                "modeled, unbounded network cache\n");
}

/** Percentage with one decimal. */
inline double
pct(double f)
{
    return 100.0 * f;
}

/**
 * Top-level harness for a bench main: run @p body, and turn any escaping
 * std::exception (a violated LTP_CHECK invariant, a bad LTP_FAULT spec,
 * an unknown kernel) into one structured line on stderr and exit code 1
 * instead of an unhandled-exception abort.
 */
template <typename Fn>
inline int
guardedMain(const char *name, Fn &&body)
{
    try {
        return body();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: fatal: %s\n", name, e.what());
        return 1;
    }
}

} // namespace ltp::bench

#endif // LTP_BENCH_BENCH_COMMON_HH
