/**
 * @file
 * Shared formatting helpers for the table/figure-regeneration benches.
 */

#ifndef LTP_BENCH_BENCH_COMMON_HH
#define LTP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "dsm/experiment.hh"

namespace ltp::bench
{

/** Print the Table 1 system configuration banner. */
inline void
printSystemBanner()
{
    SystemParams p;
    std::printf("# System configuration (paper Table 1)\n");
    std::printf("#   nodes=%u  blockSize=%uB  memAccess=%llu cyc  "
                "netLatency=%llu cyc\n",
                unsigned(p.numNodes), p.cache.blockSize,
                (unsigned long long)p.dir.memAccess,
                (unsigned long long)p.net.flightLatency);
    std::printf("#   two-stage pipelined directory engine, NI contention "
                "modeled, unbounded network cache\n");
}

/** Percentage with one decimal. */
inline double
pct(double f)
{
    return 100.0 * f;
}

} // namespace ltp::bench

#endif // LTP_BENCH_BENCH_COMMON_HH
