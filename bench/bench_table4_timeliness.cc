/**
 * @file
 * Regenerates Table 4 of the paper: average queueing delay and service
 * time per directory message (Base / DSI / LTP, all timing runs), and
 * the fraction of correct self-invalidations that reach the directory
 * before the next request (timeliness).
 *
 * Paper shapes to expect: DSI's synchronization-triggered bursts blow
 * directory queueing up by orders of magnitude, while LTP's queueing
 * stays near the base system's; LTP self-invalidations are >90% timely
 * on average (100% on the regular codes), DSI around 79%; raytrace is
 * the exception where LTP's lock mispredictions make it late.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace ltp;

namespace
{

RunResult
timingRun(const std::string &kernel, PredictorKind kind)
{
    ExperimentSpec spec;
    spec.kernel = kernel;
    spec.predictor = kind;
    spec.mode =
        kind == PredictorKind::Base ? PredictorMode::Off
                                    : PredictorMode::Active;
    return runExperiment(spec);
}

} // namespace

static int
run()
{
    bench::printSystemBanner();
    std::printf("\n== Table 4: directory queueing / service (cycles) and "
                "self-invalidation timeliness ==\n");
    std::printf("%-14s | %9s %9s | %9s %9s %6s | %9s %9s %6s\n",
                "", "base", "", "dsi", "", "", "ltp", "", "");
    std::printf("%-14s | %9s %9s | %9s %9s %6s | %9s %9s %6s\n",
                "benchmark", "queue", "service", "queue", "service",
                "tim%", "queue", "service", "tim%");

    for (const auto &name : allKernelNames()) {
        RunResult base = timingRun(name, PredictorKind::Base);
        RunResult dsi = timingRun(name, PredictorKind::Dsi);
        RunResult ltp = timingRun(name, PredictorKind::LtpPerBlock);
        std::printf(
            "%-14s | %9.1f %9.1f | %9.1f %9.1f %6.1f | %9.1f %9.1f "
            "%6.1f\n",
            name.c_str(), base.dirQueueingMean, base.dirServiceMean,
            dsi.dirQueueingMean, dsi.dirServiceMean,
            bench::pct(dsi.timeliness()), ltp.dirQueueingMean,
            ltp.dirServiceMean, bench::pct(ltp.timeliness()));
    }
    std::printf("\n# Paper: DSI queueing inflated ~3 orders of magnitude "
                "(avg timeliness 79%%); LTP queueing ~= base, timeliness "
                ">90%% (except raytrace)\n");
    return 0;
}

int
main()
{
    return ltp::bench::guardedMain("bench_table4_timeliness", run);
}
