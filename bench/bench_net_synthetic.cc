/**
 * @file
 * Synthetic-traffic driver for network-only studies: exercises the VC
 * router (credits, byte-based serialization, routing policies) without
 * the DSM stack, the way booksim/noxim-style sweeps characterize an
 * interconnect.
 *
 *   $ ./bench_net_synthetic [options]
 *     --nodes N       node count                       (default 64)
 *     --width W       mesh/torus X extent, 0 = square  (default 0)
 *     --depth D       input-buffer slots per (link,VC) (default 8)
 *     --cycles C      injection window in cycles       (default 12000)
 *     --warmup W      cycles excluded from measurement (default 3000)
 *     --topos ...     comma list: mesh,torus,ring      (default all)
 *     --policies ...  comma list: dor,adaptive,oblivious (default all)
 *     --patterns ...  comma list: uniform,hotspot,transpose,bitrev
 *     --rates ...     comma list of injection rates in msgs/node/cycle
 *                     (default 0.005,0.01,0.02,0.04,0.07,0.11)
 *
 * Traffic patterns (n nodes on a w x h layout):
 *  - uniform:   every message picks a destination uniformly at random;
 *  - hotspot:   20% of messages target the center node, rest uniform —
 *               the pattern where adaptive routing's ability to steer
 *               around the congested center shows up in saturation
 *               throughput;
 *  - transpose: (x, y) -> (y, x) on square layouts; on rings and
 *               non-square layouts the antipodal node (src + n/2) — the
 *               classic DOR-adversarial permutations;
 *  - bitrev:    bit-reversed node index (power-of-two n; otherwise the
 *               index mirrored as n-1-src).
 *
 * With the paper-calibrated 80-cycle hop, a link's bandwidth-delay
 * product is ~37 messages, so the default depth of 8 keeps the sweep in
 * the credit-limited regime where backpressure (and the policies'
 * response to it) dominates; raise --depth toward ~40 to study the
 * wire-limited regime instead.
 *
 * Injection is open-loop (unbounded source queues): each node draws
 * geometric inter-arrival gaps at the configured rate, so offered load
 * beyond saturation shows up as delivered throughput flattening and p99
 * latency exploding. Every run reports delivered msgs/node/cycle inside
 * the measurement window plus mean/p50/p99 latency of the delivered
 * messages; the summary table reports each configuration's saturation
 * throughput (the best delivered rate over the sweep).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "net/topo/routed_network.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace ltp;

namespace
{

enum class Pattern
{
    Uniform,
    Hotspot,
    Transpose,
    BitReversal,
};

const char *
patternName(Pattern p)
{
    switch (p) {
      case Pattern::Uniform: return "uniform";
      case Pattern::Hotspot: return "hotspot";
      case Pattern::Transpose: return "transpose";
      case Pattern::BitReversal: return "bitrev";
    }
    return "?";
}

struct Options
{
    NodeId nodes = 64;
    unsigned width = 0;
    unsigned depth = 8;
    Tick cycles = 12000;
    Tick warmup = 3000;
    std::vector<TopologyKind> topos = {TopologyKind::Mesh2D,
                                       TopologyKind::Torus2D,
                                       TopologyKind::Ring};
    std::vector<RoutingPolicy> policies = {RoutingPolicy::DimensionOrder,
                                           RoutingPolicy::MinimalAdaptive,
                                           RoutingPolicy::Oblivious};
    std::vector<Pattern> patterns = {Pattern::Uniform, Pattern::Hotspot,
                                     Pattern::Transpose,
                                     Pattern::BitReversal};
    std::vector<double> rates = {0.005, 0.01, 0.02, 0.04, 0.07, 0.11};
};

struct CellResult
{
    double offered = 0.0;   //!< msgs/node/cycle requested
    double delivered = 0.0; //!< msgs/node/cycle inside the window
    double latMean = 0.0;
    double latP50 = 0.0;
    double latP99 = 0.0;
};

/** Reverse the low @p bits of @p v. */
unsigned
bitReverse(unsigned v, unsigned bits)
{
    unsigned r = 0;
    for (unsigned i = 0; i < bits; ++i)
        r |= ((v >> i) & 1u) << (bits - 1 - i);
    return r;
}

NodeId
pickDestination(Pattern pattern, NodeId src, const TopologyGeometry &geom,
                Rng &rng)
{
    NodeId n = geom.numNodes();
    switch (pattern) {
      case Pattern::Uniform:
        return NodeId(rng.below(n));
      case Pattern::Hotspot: {
        if (rng.below(5) == 0)
            return geom.idOf(
                Coord{geom.width() / 2, geom.height() / 2});
        return NodeId(rng.below(n));
      }
      case Pattern::Transpose: {
        if (geom.width() == geom.height()) {
            Coord c = geom.coordOf(src);
            return geom.idOf(Coord{c.y, c.x});
        }
        return NodeId((src + n / 2) % n);
      }
      case Pattern::BitReversal: {
        unsigned bits = 0;
        while ((1u << bits) < n)
            ++bits;
        if ((1u << bits) == n)
            return NodeId(bitReverse(unsigned(src), bits));
        return NodeId(n - 1 - src);
      }
    }
    return src;
}

/** Geometric inter-arrival gap (>= 1 cycle) for Bernoulli rate @p rate. */
Tick
geometricGap(Rng &rng, double rate)
{
    double u = rng.uniform();
    return Tick(1 + std::floor(std::log1p(-u) / std::log1p(-rate)));
}

CellResult
runCell(const Options &opt, TopologyKind topo, RoutingPolicy policy,
        Pattern pattern, double rate, unsigned cell_seed)
{
    EventQueue eq;
    StatGroup stats;
    NetworkParams params;
    params.topology = topo;
    params.meshWidth = opt.width;
    params.routing = policy;
    params.vcDepth = opt.depth;
    RoutedNetwork net(eq, opt.nodes, params, stats);
    const TopologyGeometry &geom = net.geometry();

    std::uint64_t deliveredInWindow = 0;
    Histogram lat(32.0, 4096);
    Tick windowEnd = opt.cycles;
    for (NodeId nid = 0; nid < opt.nodes; ++nid) {
        net.setSink(nid, [&, nid](const Message &m) {
            if (m.injectedAt >= opt.warmup && eq.now() <= windowEnd) {
                ++deliveredInWindow;
                lat.sample(double(eq.now() - m.injectedAt));
            }
        });
    }

    // Open-loop injectors: one self-rescheduling event chain per node.
    Rng rng(0x5EED0000ull + cell_seed);
    struct Injector
    {
        std::function<void(Tick)> scheduleNext;
    };
    std::vector<Injector> injectors(opt.nodes);
    for (NodeId src = 0; src < opt.nodes; ++src) {
        injectors[src].scheduleNext = [&, src](Tick at) {
            if (at >= opt.cycles)
                return;
            eq.scheduleAt(at, [&, src, at] {
                NodeId dst = pickDestination(pattern, src, geom, rng);
                if (dst != src) {
                    Message m;
                    m.type = MsgType::GetS;
                    m.src = src;
                    m.dst = dst;
                    m.addr = Addr(at);
                    net.send(m);
                }
                injectors[src].scheduleNext(at + geometricGap(rng, rate));
            });
        };
        injectors[src].scheduleNext(geometricGap(rng, rate));
    }

    // Injection stops at opt.cycles; in-flight traffic keeps draining,
    // but nothing past windowEnd is counted (saturated queues would
    // otherwise inflate the delivered rate after injection stops).
    eq.run();

    CellResult r;
    r.offered = rate;
    double windowCycles = double(opt.cycles - opt.warmup);
    r.delivered =
        double(deliveredInWindow) / (double(opt.nodes) * windowCycles);
    r.latMean = lat.mean();
    r.latP50 = lat.percentile(0.5);
    r.latP99 = lat.percentile(0.99);
    return r;
}

bool
splitList(const std::string &arg, std::vector<std::string> &out)
{
    out.clear();
    std::string cur;
    for (char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return !out.empty();
}

int
usage(const char *msg)
{
    std::fprintf(stderr, "%s\n", msg);
    std::fprintf(
        stderr,
        "usage: bench_net_synthetic [--nodes N] [--width W] [--depth D]\n"
        "         [--cycles C] [--warmup W] [--topos mesh,torus,ring]\n"
        "         [--policies dor,adaptive,oblivious]\n"
        "         [--patterns uniform,hotspot,transpose,bitrev]\n"
        "         [--rates r1,r2,...]\n");
    return 1;
}

} // namespace

static int
run(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> items;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v;
        if (a == "--nodes" && (v = next())) {
            opt.nodes = NodeId(std::atoi(v));
        } else if (a == "--width" && (v = next())) {
            opt.width = unsigned(std::atoi(v));
        } else if (a == "--depth" && (v = next())) {
            opt.depth = unsigned(std::atoi(v));
        } else if (a == "--cycles" && (v = next())) {
            opt.cycles = Tick(std::atoll(v));
        } else if (a == "--warmup" && (v = next())) {
            opt.warmup = Tick(std::atoll(v));
        } else if (a == "--topos" && (v = next()) && splitList(v, items)) {
            opt.topos.clear();
            for (const auto &s : items) {
                auto k = parseTopologyKind(s);
                if (!k || *k == TopologyKind::PointToPoint)
                    return usage("topos must be routed kinds");
                opt.topos.push_back(*k);
            }
        } else if (a == "--policies" && (v = next()) &&
                   splitList(v, items)) {
            opt.policies.clear();
            for (const auto &s : items) {
                auto p = parseRoutingPolicy(s);
                if (!p)
                    return usage("unknown routing policy");
                opt.policies.push_back(*p);
            }
        } else if (a == "--patterns" && (v = next()) &&
                   splitList(v, items)) {
            opt.patterns.clear();
            for (const auto &s : items) {
                if (s == "uniform")
                    opt.patterns.push_back(Pattern::Uniform);
                else if (s == "hotspot")
                    opt.patterns.push_back(Pattern::Hotspot);
                else if (s == "transpose")
                    opt.patterns.push_back(Pattern::Transpose);
                else if (s == "bitrev")
                    opt.patterns.push_back(Pattern::BitReversal);
                else
                    return usage("unknown traffic pattern");
            }
        } else if (a == "--rates" && (v = next()) && splitList(v, items)) {
            opt.rates.clear();
            for (const auto &s : items) {
                double r = std::atof(s.c_str());
                // geometricGap() needs a Bernoulli probability strictly
                // inside (0, 1).
                if (!(r > 0.0 && r < 1.0))
                    return usage("rates must be in (0, 1) msgs/node/cycle");
                opt.rates.push_back(r);
            }
        } else {
            return usage(("unknown argument '" + a + "'").c_str());
        }
    }
    if (opt.nodes < 2 || opt.warmup >= opt.cycles)
        return usage("need >= 2 nodes and warmup < cycles");

    {
        TopologyGeometry g(opt.topos.front(), opt.nodes, opt.width);
        std::printf("# synthetic traffic: %u nodes (%u x %u), vcDepth=%u, "
                    "%llu cycles (%llu warmup), open-loop injection\n",
                    unsigned(opt.nodes), g.width(), g.height(), opt.depth,
                    (unsigned long long)opt.cycles,
                    (unsigned long long)opt.warmup);
    }

    struct SummaryRow
    {
        TopologyKind topo;
        RoutingPolicy policy;
        Pattern pattern;
        double saturation = 0.0;
        double lowLoadP50 = 0.0;
        double lowLoadP99 = 0.0;
    };
    std::vector<SummaryRow> summary;

    unsigned cell_seed = 0;
    for (TopologyKind topo : opt.topos) {
        for (RoutingPolicy policy : opt.policies) {
            for (Pattern pattern : opt.patterns) {
                std::printf("\n== %s / %s / %s ==\n",
                            topologyKindName(topo),
                            routingPolicyName(policy),
                            patternName(pattern));
                std::printf("%9s %11s | %9s %7s %7s\n", "offered",
                            "delivered", "latMean", "p50", "p99");
                SummaryRow row{topo, policy, pattern, 0.0, 0.0, 0.0};
                for (std::size_t ri = 0; ri < opt.rates.size(); ++ri) {
                    CellResult r = runCell(opt, topo, policy, pattern,
                                           opt.rates[ri], cell_seed++);
                    std::printf("%9.3f %11.4f | %9.1f %7.0f %7.0f\n",
                                r.offered, r.delivered, r.latMean,
                                r.latP50, r.latP99);
                    row.saturation = std::max(row.saturation, r.delivered);
                    if (ri == 0) {
                        row.lowLoadP50 = r.latP50;
                        row.lowLoadP99 = r.latP99;
                    }
                }
                summary.push_back(row);
            }
        }
    }

    std::printf("\n== saturation throughput (delivered msgs/node/cycle, "
                "best over the rate sweep) ==\n");
    std::printf("%-6s %-9s %-9s | %10s | %7s %7s\n", "topo", "routing",
                "pattern", "saturation", "p50@low", "p99@low");
    for (const SummaryRow &row : summary) {
        std::printf("%-6s %-9s %-9s | %10.4f | %7.0f %7.0f\n",
                    topologyKindName(row.topo),
                    routingPolicyName(row.policy),
                    patternName(row.pattern), row.saturation,
                    row.lowLoadP50, row.lowLoadP99);
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return ltp::bench::guardedMain("bench_net_synthetic",
                                   [&] { return run(argc, argv); });
}
