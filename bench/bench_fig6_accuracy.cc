/**
 * @file
 * Regenerates Figure 6 of the paper: the fraction of invalidations that
 * each scheme (DSI, Last-PC, per-block LTP) predicts correctly, fails
 * to predict, and predicts prematurely, for all nine benchmarks.
 *
 * Methodology (Section 5.1): passive predictor monitoring on the base
 * system — predictions are scored against what actually happens next.
 * Stacked bars can exceed 100% because premature predictions add events
 * on top of the real invalidations.
 *
 * Paper shapes to expect: LTP averages ~79% (best ~98%), Last-PC ~41%,
 * DSI ~47% with ~14% premature; Last-PC collapses on moldyn / tomcatv /
 * unstructured / dsmc; everyone is >95% on em3d; barnes defeats the
 * trace predictors.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

using namespace ltp;

static int
run()
{
    bench::printSystemBanner();
    std::printf("# Benchmarks and scaled inputs (paper Table 2)\n");
    for (const auto &name : allKernelNames())
        std::printf("#   %s\n",
                    describeConfig(name, defaultConfig(name)).c_str());

    std::printf("\n== Figure 6: invalidation prediction breakdown (%%) ==\n");
    std::printf("%-14s %-9s %10s %10s %10s %12s\n", "benchmark",
                "scheme", "predicted", "notPred", "mispred", "#invals");

    struct Scheme
    {
        const char *label;
        PredictorKind kind;
    };
    const std::vector<Scheme> schemes = {
        {"dsi", PredictorKind::Dsi},
        {"last-pc", PredictorKind::LastPc},
        {"ltp", PredictorKind::LtpPerBlock},
    };

    double sum[3][3] = {};
    unsigned apps = 0;
    for (const auto &name : allKernelNames()) {
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            ExperimentSpec spec;
            spec.kernel = name;
            spec.predictor = schemes[s].kind;
            spec.mode = PredictorMode::Passive;
            RunResult r = runExperiment(spec);
            std::printf("%-14s %-9s %10.1f %10.1f %10.1f %12llu\n",
                        name.c_str(), schemes[s].label,
                        bench::pct(r.accuracy()),
                        bench::pct(r.fraction(r.notPredicted)),
                        bench::pct(r.mispredictionRate()),
                        (unsigned long long)r.invalidations);
            sum[s][0] += bench::pct(r.accuracy());
            sum[s][1] += bench::pct(r.fraction(r.notPredicted));
            sum[s][2] += bench::pct(r.mispredictionRate());
        }
        ++apps;
    }
    std::printf("\n%-14s %-9s %10s %10s %10s\n", "", "", "predicted",
                "notPred", "mispred");
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        std::printf("%-14s %-9s %10.1f %10.1f %10.1f\n", "AVERAGE",
                    schemes[s].label, sum[s][0] / apps, sum[s][1] / apps,
                    sum[s][2] / apps);
    }
    std::printf("\n# Paper averages: DSI 47%% (14%% mispred), "
                "Last-PC 41%% (2%%), LTP 79%% (3%%)\n");
    return 0;
}

int
main()
{
    return ltp::bench::guardedMain("bench_fig6_accuracy", run);
}
