/**
 * @file
 * Credit-based backpressure properties of the VC router:
 *
 *  - conservation: per-(link, VC) credits never exceed the configured
 *    buffer depth while traffic is in flight, and return exactly to the
 *    depth once the network drains (no credit is ever lost or minted);
 *  - no message is lost or duplicated under finite buffers, for every
 *    routing policy (the escape path re-routes but never drops);
 *  - backpressure stalls senders: a bounded run of the same traffic can
 *    only be slower than the unbounded run, never faster.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "net/topo/routed_network.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace ltp
{
namespace
{

constexpr NodeId kNodes = 16;
constexpr int kMessages = 600;

NetworkParams
boundedParams(RoutingPolicy routing, unsigned depth)
{
    NetworkParams p;
    p.topology = TopologyKind::Mesh2D;
    p.routing = routing;
    p.vcDepth = depth;
    return p;
}

/** Assert every (link, VC) credit count is within [0, depth]. */
void
checkCreditBounds(const RoutedNetwork &net, unsigned depth)
{
    for (std::size_t l = 0; l < net.numLinks(); ++l)
        for (unsigned vc = 0; vc < net.numVcs(); ++vc)
            ASSERT_LE(net.creditsAvailable(l, vc), depth)
                << "link " << l << " vc " << vc;
}

class VcCreditTest : public ::testing::TestWithParam<RoutingPolicy>
{
};

TEST_P(VcCreditTest, CreditsConserveAndNoMessageIsLostOrDuplicated)
{
    constexpr unsigned kDepth = 2;
    EventQueue eq;
    StatGroup stats;
    RoutedNetwork net(eq, kNodes, boundedParams(GetParam(), kDepth),
                      stats);
    ASSERT_TRUE(net.bounded());
    ASSERT_GE(net.numVcs(), net.numEscapeVcs());

    std::map<Addr, int> deliveredBy;
    for (NodeId n = 0; n < kNodes; ++n)
        net.setSink(n, [&deliveredBy](const Message &m) {
            ++deliveredBy[m.addr];
        });

    // Hotspot-skewed random burst, same shape as the FIFO property test.
    Rng rng(0xC4ED17 + std::uint64_t(GetParam()));
    for (int i = 0; i < kMessages; ++i) {
        Message m;
        m.type = rng.below(2) ? MsgType::GetS : MsgType::DataS;
        m.src = NodeId(rng.below(kNodes));
        m.dst = rng.below(3) == 0 ? NodeId(5) : NodeId(rng.below(kNodes));
        m.addr = Addr(i);
        eq.scheduleAt(rng.below(300), [&net, m] { net.send(m); });
    }
    // Periodic probes: conservation must hold mid-flight, not just at
    // the end.
    for (Tick t = 100; t < 4000; t += 100)
        eq.scheduleAt(t, [&net] { checkCreditBounds(net, kDepth); });
    eq.run();

    ASSERT_EQ(deliveredBy.size(), std::size_t(kMessages))
        << "some message was lost";
    for (const auto &[addr, count] : deliveredBy)
        EXPECT_EQ(count, 1) << "message " << addr
                            << " delivered more than once";

    // Once drained, every input buffer is empty again: credits must sit
    // exactly at the configured depth.
    for (std::size_t l = 0; l < net.numLinks(); ++l)
        for (unsigned vc = 0; vc < net.numVcs(); ++vc)
            EXPECT_EQ(net.creditsAvailable(l, vc), kDepth)
                << "link " << l << " vc " << vc;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, VcCreditTest,
    ::testing::Values(RoutingPolicy::DimensionOrder,
                      RoutingPolicy::MinimalAdaptive,
                      RoutingPolicy::Oblivious),
    [](const ::testing::TestParamInfo<RoutingPolicy> &info) {
        return std::string(routingPolicyName(info.param));
    });

TEST(VcBackpressure, BoundedBuffersOnlySlowTrafficDown)
{
    // One congested column on a 4x4 mesh: eight senders burst at node 5.
    auto runWith = [](unsigned depth) {
        EventQueue eq;
        StatGroup stats;
        NetworkParams p;
        p.topology = TopologyKind::Mesh2D;
        p.vcDepth = depth;
        RoutedNetwork net(eq, kNodes, p, stats);
        Tick last = 0;
        for (NodeId n = 0; n < kNodes; ++n)
            net.setSink(n, [&last, &eq](const Message &) {
                last = eq.now();
            });
        for (int burst = 0; burst < 8; ++burst) {
            Message m;
            m.type = MsgType::DataS;
            m.src = NodeId(burst % 4);
            m.dst = 5;
            m.addr = Addr(burst);
            net.send(m);
        }
        eq.run();
        return last;
    };

    Tick unbounded = runWith(0);
    Tick bounded = runWith(1);
    EXPECT_GE(bounded, unbounded);
}

TEST(VcLayout, AutoVcCountMatchesTopologyAndRouting)
{
    EventQueue eq;
    StatGroup stats;

    NetworkParams mesh_dor;
    mesh_dor.topology = TopologyKind::Mesh2D;
    EXPECT_EQ(RoutedNetwork(eq, 16, mesh_dor, stats).numVcs(), 1u);

    NetworkParams mesh_ad = mesh_dor;
    mesh_ad.routing = RoutingPolicy::MinimalAdaptive;
    RoutedNetwork mesh_net(eq, 16, mesh_ad, stats);
    EXPECT_EQ(mesh_net.numVcs(), 2u);
    EXPECT_EQ(mesh_net.numEscapeVcs(), 1u);

    NetworkParams torus_ad;
    torus_ad.topology = TopologyKind::Torus2D;
    torus_ad.routing = RoutingPolicy::MinimalAdaptive;
    RoutedNetwork torus_net(eq, 16, torus_ad, stats);
    EXPECT_EQ(torus_net.numVcs(), 3u);
    EXPECT_EQ(torus_net.numEscapeVcs(), 2u);
}

} // namespace
} // namespace ltp
