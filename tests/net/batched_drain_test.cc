/**
 * @file
 * Regression tests for the batched link drain: a congested link's drain
 * event retires its whole same-tick eligible queue in one callback
 * (net/topo/routed_network.cc, drainLink), which must be invisible —
 * grant outcomes, ticks and VC choices identical to granting one
 * message per event.
 *
 * Pinned here:
 *  - pairwise FIFO and exactly-once delivery on a deliberately
 *    congested bounded-VC mesh (depth 1: every grant is credit-gated,
 *    so batches hit the credit-exhausted and virtual-time stop rules);
 *  - credit conservation after the drain;
 *  - byte-identical stats dumps at shards {1, 2, 4} for a full DSM run
 *    over the same bounded-VC mesh — the strongest available oracle,
 *    since every delivery tick feeds the protocol's timing.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dsm/system.hh"
#include "kernel/kernels.hh"
#include "net/topo/routed_network.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace ltp
{
namespace
{

TEST(BatchedDrain, CongestedBoundedMeshKeepsPairwiseFifo)
{
    // 16-node mesh, depth-1 VCs, every sender bursting at one hotspot:
    // links toward node 5 queue tens of messages deep, so each drain
    // event sees a long eligible run and must stop exactly where the
    // unbatched engine would have re-arbitrated.
    constexpr NodeId kNodes = 16;
    constexpr int kMessages = 500;
    EventQueue eq;
    StatGroup stats;
    NetworkParams params;
    params.topology = TopologyKind::Mesh2D;
    params.routing = RoutingPolicy::DimensionOrder;
    params.vcDepth = 1;
    RoutedNetwork net(eq, kNodes, params, stats);
    ASSERT_TRUE(net.bounded());

    using Pair = std::pair<NodeId, NodeId>;
    std::map<Pair, std::vector<Addr>> sent, received;
    for (NodeId n = 0; n < kNodes; ++n)
        net.setSink(n, [&received, n](const Message &m) {
            ASSERT_EQ(m.dst, n);
            received[{m.src, m.dst}].push_back(m.addr);
        });

    Rng rng(0xBA7C4);
    for (int i = 0; i < kMessages; ++i) {
        Message m;
        m.type = rng.below(2) ? MsgType::DataX : MsgType::GetS;
        m.src = NodeId(rng.below(kNodes));
        m.dst = rng.below(2) ? NodeId(5) : NodeId(rng.below(kNodes));
        m.addr = Addr(i);
        eq.scheduleAt(rng.below(200), [&sent, &net, m] {
            sent[{m.src, m.dst}].push_back(m.addr);
            net.send(m);
        });
    }
    eq.run();

    std::size_t delivered = 0;
    for (const auto &[pair, tags] : sent) {
        auto it = received.find(pair);
        ASSERT_NE(it, received.end()) << pair.first << "->" << pair.second;
        EXPECT_EQ(it->second, tags) << pair.first << "->" << pair.second
                                    << " reordered under congestion";
        delivered += it->second.size();
    }
    EXPECT_EQ(delivered, std::size_t(kMessages));

    // The batch's virtual-time credit view is a lower bound, never a
    // leak: once drained, every credit is back at the configured depth.
    for (std::size_t l = 0; l < net.numLinks(); ++l)
        for (unsigned vc = 0; vc < net.numVcs(); ++vc)
            EXPECT_EQ(net.creditsAvailable(l, vc), 1u)
                << "link " << l << " vc " << vc;
}

std::string
dumpOf(const std::string &kernel_name, unsigned threads, unsigned depth)
{
    SystemParams sp;
    sp.numNodes = 16;
    sp.net.topology = TopologyKind::Mesh2D;
    sp.net.routing = RoutingPolicy::DimensionOrder;
    sp.net.vcDepth = depth;
    sp.simThreads = threads;

    DsmSystem sys(sp);
    auto kernel = makeKernel(kernel_name);
    KernelConfig cfg = defaultConfig(kernel_name);
    cfg.nodes = 16;
    RunResult r = sys.run(*kernel, cfg);
    EXPECT_TRUE(r.completed) << kernel_name << " t" << threads;

    std::ostringstream oss;
    sys.stats().dump(oss);
    return oss.str();
}

TEST(BatchedDrain, BoundedVcRunIsByteIdenticalAcrossShardCounts)
{
    // Depth-2 VCs keep the mesh credit-limited for the whole run; any
    // batched grant that differs from the unbatched engine's choice
    // shifts delivery ticks and shows up as a diverging stats dump.
    std::string s1 = dumpOf("ocean", 1, 2);
    std::string s2 = dumpOf("ocean", 2, 2);
    std::string s4 = dumpOf("ocean", 4, 2);
    EXPECT_EQ(s1, s2) << "shard count changed a bounded-VC run";
    EXPECT_EQ(s1, s4) << "shard count changed a bounded-VC run";
}

} // namespace
} // namespace ltp
