/** @file Unit tests for messages and the point-to-point network. */

#include <gtest/gtest.h>

#include <vector>

#include "net/network.hh"
#include "sim/event_queue.hh"

namespace ltp
{
namespace
{

TEST(Message, DataCarriers)
{
    EXPECT_TRUE(carriesData(MsgType::DataS));
    EXPECT_TRUE(carriesData(MsgType::DataX));
    EXPECT_TRUE(carriesData(MsgType::WbData));
    EXPECT_TRUE(carriesData(MsgType::SelfInvX));
    EXPECT_FALSE(carriesData(MsgType::GetS));
    EXPECT_FALSE(carriesData(MsgType::Inv));
    EXPECT_FALSE(carriesData(MsgType::InvAck));
    EXPECT_FALSE(carriesData(MsgType::SelfInvS));
}

TEST(Message, DescribeIsReadable)
{
    Message m;
    m.type = MsgType::GetX;
    m.src = 1;
    m.dst = 2;
    m.addr = 0x40;
    EXPECT_NE(m.describe().find("GetX"), std::string::npos);
    EXPECT_NE(m.describe().find("1->2"), std::string::npos);
}

class NetworkTest : public ::testing::Test
{
  protected:
    NetworkTest() : net_(eq_, 4, NetworkParams{}, stats_)
    {
        for (NodeId n = 0; n < 4; ++n) {
            net_.setSink(n, [this, n](const Message &m) {
                arrivals_.push_back({n, m, eq_.now()});
            });
        }
    }

    Message
    msg(MsgType t, NodeId src, NodeId dst, Addr a = 0x100)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.dst = dst;
        m.addr = a;
        return m;
    }

    struct Arrival
    {
        NodeId node;
        Message msg;
        Tick when;
    };

    EventQueue eq_;
    StatGroup stats_;
    Network net_;
    std::vector<Arrival> arrivals_;
};

TEST_F(NetworkTest, DeliversToCorrectSink)
{
    net_.send(msg(MsgType::GetS, 0, 2));
    eq_.run();
    ASSERT_EQ(arrivals_.size(), 1u);
    EXPECT_EQ(arrivals_[0].node, 2u);
    EXPECT_EQ(arrivals_[0].msg.type, MsgType::GetS);
}

TEST_F(NetworkTest, RemoteLatencyIsFlightPlusNiOccupancies)
{
    net_.send(msg(MsgType::GetS, 0, 1));
    eq_.run();
    // control: egress 4 + flight 80 + ingress 4
    EXPECT_EQ(arrivals_[0].when, 88u);
}

TEST_F(NetworkTest, DataMessagesSerializeLonger)
{
    net_.send(msg(MsgType::DataS, 0, 1));
    eq_.run();
    // data: egress 12 + flight 80 + ingress 12
    EXPECT_EQ(arrivals_[0].when, 104u);
}

TEST_F(NetworkTest, LocalDeliveryBypassesNetwork)
{
    net_.send(msg(MsgType::GetS, 3, 3));
    eq_.run();
    EXPECT_EQ(arrivals_[0].when, 1u);
}

TEST_F(NetworkTest, PairwiseFifoPreserved)
{
    // A data message (slow to serialize) followed by a control message
    // must still arrive in order on the same (src, dst) pair.
    net_.send(msg(MsgType::DataS, 0, 1, 0x100));
    net_.send(msg(MsgType::GetS, 0, 1, 0x200));
    eq_.run();
    ASSERT_EQ(arrivals_.size(), 2u);
    EXPECT_EQ(arrivals_[0].msg.addr, 0x100u);
    EXPECT_EQ(arrivals_[1].msg.addr, 0x200u);
    EXPECT_LT(arrivals_[0].when, arrivals_[1].when);
}

TEST_F(NetworkTest, EgressContentionQueues)
{
    // Two control messages from the same source: the second waits for
    // the first's egress occupancy.
    net_.send(msg(MsgType::GetS, 0, 1));
    net_.send(msg(MsgType::GetS, 0, 2));
    eq_.run();
    ASSERT_EQ(arrivals_.size(), 2u);
    EXPECT_EQ(arrivals_[0].when, 88u);
    EXPECT_EQ(arrivals_[1].when, 92u); // +4 egress occupancy
}

TEST_F(NetworkTest, IngressContentionQueues)
{
    // Messages from different sources converging on one node serialize
    // at its ingress NI.
    net_.send(msg(MsgType::GetS, 0, 3));
    net_.send(msg(MsgType::GetS, 1, 3));
    net_.send(msg(MsgType::GetS, 2, 3));
    eq_.run();
    ASSERT_EQ(arrivals_.size(), 3u);
    EXPECT_EQ(arrivals_[0].when, 88u);
    EXPECT_EQ(arrivals_[1].when, 92u);
    EXPECT_EQ(arrivals_[2].when, 96u);
}

TEST_F(NetworkTest, CountsMessages)
{
    net_.send(msg(MsgType::GetS, 0, 1));
    net_.send(msg(MsgType::DataS, 1, 0));
    eq_.run();
    EXPECT_EQ(stats_.counterValue("net.msgs"), 2u);
    EXPECT_EQ(stats_.counterValue("net.dataMsgs"), 1u);
}

TEST_F(NetworkTest, ManyMessagesAllDelivered)
{
    for (int i = 0; i < 100; ++i)
        net_.send(msg(MsgType::GetS, NodeId(i % 4), NodeId((i + 1) % 4)));
    eq_.run();
    EXPECT_EQ(arrivals_.size(), 100u);
}

} // namespace
} // namespace ltp
