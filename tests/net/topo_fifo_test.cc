/**
 * @file
 * Randomized property test: every Interconnect implementation must
 * deliver the messages of one (src, dst) pair in send order — the
 * invariant the coherence protocol's correctness rests on — and must
 * deliver every injected message exactly once.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/topo/interconnect.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace ltp
{
namespace
{

constexpr NodeId kNodes = 16;
constexpr int kMessages = 800;

class TopoFifoTest : public ::testing::TestWithParam<TopologyKind>
{
};

/** Random message type spanning both size classes. */
MsgType
randomType(Rng &rng)
{
    static const MsgType types[] = {MsgType::GetS, MsgType::GetX,
                                    MsgType::Inv,  MsgType::InvAck,
                                    MsgType::DataS, MsgType::DataX,
                                    MsgType::WbData};
    return types[rng.below(std::size(types))];
}

TEST_P(TopoFifoTest, PairwiseFifoUnderRandomContention)
{
    EventQueue eq;
    StatGroup stats;
    NetworkParams params;
    params.topology = GetParam();
    auto net = makeInterconnect(eq, kNodes, params, stats);
    ASSERT_EQ(net->topology(), GetParam());

    using Pair = std::pair<NodeId, NodeId>;
    std::map<Pair, std::vector<Addr>> sent, received;

    for (NodeId n = 0; n < kNodes; ++n) {
        net->setSink(n, [&received, n](const Message &m) {
            ASSERT_EQ(m.dst, n);
            received[{m.src, m.dst}].push_back(m.addr);
        });
    }

    // Burst injections at random times from random sources — enough
    // concentrated traffic to congest NIs and (for routed topologies)
    // shared links. Each message carries a unique tag in `addr`; the
    // send order per pair is recorded when the send actually executes.
    Rng rng(0xF1F0 + std::uint64_t(GetParam()));
    for (int i = 0; i < kMessages; ++i) {
        Message m;
        m.type = randomType(rng);
        m.src = NodeId(rng.below(kNodes));
        // Skew destinations toward a hotspot to force queueing.
        m.dst = rng.below(3) == 0 ? NodeId(5) : NodeId(rng.below(kNodes));
        m.addr = Addr(i);
        Tick when = rng.below(400);
        eq.scheduleAt(when, [&sent, &net, m] {
            sent[{m.src, m.dst}].push_back(m.addr);
            net->send(m);
        });
    }
    eq.run();

    std::size_t delivered = 0;
    for (const auto &[pair, tags] : sent) {
        auto it = received.find(pair);
        ASSERT_NE(it, received.end())
            << "pair " << pair.first << "->" << pair.second
            << " lost all its messages";
        EXPECT_EQ(it->second, tags)
            << "pair " << pair.first << "->" << pair.second
            << " delivered out of order";
        delivered += it->second.size();
    }
    EXPECT_EQ(delivered, std::size_t(kMessages));
    EXPECT_EQ(stats.counterValue("net.msgs"), std::uint64_t(kMessages));
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, TopoFifoTest,
    ::testing::Values(TopologyKind::PointToPoint, TopologyKind::Mesh2D,
                      TopologyKind::Torus2D, TopologyKind::Ring),
    [](const ::testing::TestParamInfo<TopologyKind> &info) {
        return std::string(topologyKindName(info.param)) == "p2p"
                   ? "PointToPoint"
                   : topologyKindName(info.param);
    });

} // namespace
} // namespace ltp
