/**
 * @file
 * Randomized property test: every Interconnect implementation must
 * deliver the messages of one (src, dst) pair in send order — the
 * invariant the coherence protocol's correctness rests on — and must
 * deliver every injected message exactly once.
 *
 * Parameterized over topology x routing policy x buffer depth: the
 * dimension-order cases preserve order by construction (deterministic
 * single path of FIFO links), while the adaptive/oblivious cases rely on
 * the ingress reorder buffer; finite depths additionally exercise
 * credit-based backpressure and the escape-path fallback under the same
 * invariant.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "net/topo/interconnect.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace ltp
{
namespace
{

constexpr NodeId kNodes = 16;
constexpr int kMessages = 800;

struct FifoCase
{
    TopologyKind topo;
    RoutingPolicy routing;
    unsigned vcDepth; //!< 0 = unbounded buffers (no backpressure)
};

class TopoFifoTest : public ::testing::TestWithParam<FifoCase>
{
};

/** Random message type spanning both size classes. */
MsgType
randomType(Rng &rng)
{
    static const MsgType types[] = {MsgType::GetS, MsgType::GetX,
                                    MsgType::Inv,  MsgType::InvAck,
                                    MsgType::DataS, MsgType::DataX,
                                    MsgType::WbData};
    return types[rng.below(std::size(types))];
}

TEST_P(TopoFifoTest, PairwiseFifoUnderRandomContention)
{
    EventQueue eq;
    StatGroup stats;
    NetworkParams params;
    params.topology = GetParam().topo;
    params.routing = GetParam().routing;
    params.vcDepth = GetParam().vcDepth;
    auto net = makeInterconnect(eq, kNodes, params, stats);
    ASSERT_EQ(net->topology(), GetParam().topo);

    using Pair = std::pair<NodeId, NodeId>;
    std::map<Pair, std::vector<Addr>> sent, received;

    for (NodeId n = 0; n < kNodes; ++n) {
        net->setSink(n, [&received, n](const Message &m) {
            ASSERT_EQ(m.dst, n);
            received[{m.src, m.dst}].push_back(m.addr);
        });
    }

    // Burst injections at random times from random sources — enough
    // concentrated traffic to congest NIs and (for routed topologies)
    // shared links. Each message carries a unique tag in `addr`; the
    // send order per pair is recorded when the send actually executes.
    Rng rng(0xF1F0 + std::uint64_t(GetParam().topo));
    for (int i = 0; i < kMessages; ++i) {
        Message m;
        m.type = randomType(rng);
        m.src = NodeId(rng.below(kNodes));
        // Skew destinations toward a hotspot to force queueing.
        m.dst = rng.below(3) == 0 ? NodeId(5) : NodeId(rng.below(kNodes));
        m.addr = Addr(i);
        Tick when = rng.below(400);
        eq.scheduleAt(when, [&sent, &net, m] {
            sent[{m.src, m.dst}].push_back(m.addr);
            net->send(m);
        });
    }
    eq.run();

    std::size_t delivered = 0;
    for (const auto &[pair, tags] : sent) {
        auto it = received.find(pair);
        ASSERT_NE(it, received.end())
            << "pair " << pair.first << "->" << pair.second
            << " lost all its messages";
        EXPECT_EQ(it->second, tags)
            << "pair " << pair.first << "->" << pair.second
            << " delivered out of order";
        delivered += it->second.size();
    }
    EXPECT_EQ(delivered, std::size_t(kMessages));
    EXPECT_EQ(stats.counterValue("net.msgs"), std::uint64_t(kMessages));
}

std::string
caseName(const ::testing::TestParamInfo<FifoCase> &info)
{
    const FifoCase &c = info.param;
    std::string topo = c.topo == TopologyKind::PointToPoint
                           ? "PointToPoint"
                           : topologyKindName(c.topo);
    return topo + "_" + routingPolicyName(c.routing) +
           (c.vcDepth ? "_depth" + std::to_string(c.vcDepth) : "_inf");
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologiesAndPolicies, TopoFifoTest,
    ::testing::Values(
        FifoCase{TopologyKind::PointToPoint, RoutingPolicy::DimensionOrder,
                 0},
        FifoCase{TopologyKind::Mesh2D, RoutingPolicy::DimensionOrder, 0},
        FifoCase{TopologyKind::Mesh2D, RoutingPolicy::DimensionOrder, 3},
        FifoCase{TopologyKind::Mesh2D, RoutingPolicy::MinimalAdaptive, 0},
        FifoCase{TopologyKind::Mesh2D, RoutingPolicy::MinimalAdaptive, 3},
        FifoCase{TopologyKind::Mesh2D, RoutingPolicy::Oblivious, 0},
        FifoCase{TopologyKind::Mesh2D, RoutingPolicy::Oblivious, 2},
        FifoCase{TopologyKind::Torus2D, RoutingPolicy::DimensionOrder, 0},
        FifoCase{TopologyKind::Torus2D, RoutingPolicy::DimensionOrder, 3},
        FifoCase{TopologyKind::Torus2D, RoutingPolicy::MinimalAdaptive, 3},
        FifoCase{TopologyKind::Torus2D, RoutingPolicy::Oblivious, 3},
        FifoCase{TopologyKind::Ring, RoutingPolicy::DimensionOrder, 0},
        FifoCase{TopologyKind::Ring, RoutingPolicy::DimensionOrder, 2},
        FifoCase{TopologyKind::Ring, RoutingPolicy::MinimalAdaptive, 2}),
    caseName);

} // namespace
} // namespace ltp
