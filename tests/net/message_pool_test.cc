/**
 * @file
 * MessagePool unit tests: slot recycling, cross-shard free handoff,
 * slab growth under burst, and the Debug-build generation-tag defense
 * against stale handles (use-after-free / double-free).
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/message_pool.hh"

namespace ltp
{
namespace
{

Message
tagged(std::uint64_t tag)
{
    Message m;
    m.type = MsgType::GetS;
    m.src = 1;
    m.dst = 2;
    m.addr = Addr(tag);
    return m;
}

TEST(MessagePool, DefaultHandleIsInvalid)
{
    MsgHandle h;
    EXPECT_FALSE(h.valid());
}

TEST(MessagePool, AllocReadsBackAndFreeRetires)
{
    MessagePool pool(1);
    MsgHandle h = pool.alloc(0, tagged(42));
    ASSERT_TRUE(h.valid());
    EXPECT_EQ(pool.at(h).addr, Addr(42));
    EXPECT_EQ(pool.liveMessages(), 1u);
    pool.free(h, 0);
    EXPECT_EQ(pool.liveMessages(), 0u);
}

TEST(MessagePool, FreedSlotIsRecycledUnderANewGeneration)
{
    MessagePool pool(1);
    MsgHandle a = pool.alloc(0, tagged(1));
    std::uint32_t slot = a.slot();
    pool.free(a, 0);

    // LIFO recycling: the next alloc reuses the slot just freed, but
    // under a bumped generation so the two handles never alias.
    MsgHandle b = pool.alloc(0, tagged(2));
    EXPECT_EQ(b.slot(), slot);
    EXPECT_NE(a.bits, b.bits);
    EXPECT_EQ(pool.at(b).addr, Addr(2));
    EXPECT_EQ(pool.highWater(0), 1u) << "recycle must not grow the arena";
    pool.free(b, 0);
}

TEST(MessagePool, CrossShardFreeReturnsSlotToOwner)
{
    MessagePool pool(2);
    MsgHandle h = pool.alloc(0, tagged(7));
    EXPECT_EQ(h.shard(), 0u);
    // Delivery on shard 1 frees shard 0's slot via the remote stack.
    pool.free(h, 1);
    EXPECT_EQ(pool.liveMessages(), 0u);

    // The owner's next alloc drains the remote stack instead of
    // growing: same slot, new generation.
    MsgHandle again = pool.alloc(0, tagged(8));
    EXPECT_EQ(again.slot(), h.slot());
    EXPECT_NE(again.bits, h.bits);
    EXPECT_EQ(pool.highWater(0), 1u);
    pool.free(again, 0);
}

TEST(MessagePool, BurstGrowsSlabsWithoutMovingLiveMessages)
{
    constexpr int kBurst = 3000; // > 2 slabs of 1024
    MessagePool pool(1);
    std::vector<MsgHandle> live;
    live.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i)
        live.push_back(pool.alloc(0, tagged(std::uint64_t(i))));

    EXPECT_EQ(pool.highWater(0), unsigned(kBurst));
    EXPECT_GE(pool.numSlabs(0), 3u);
    EXPECT_EQ(pool.liveMessages(), std::uint64_t(kBurst));

    // Slab growth never relocates: every earlier message still reads
    // back its own tag through its original handle.
    for (int i = 0; i < kBurst; ++i)
        ASSERT_EQ(pool.at(live[i]).addr, Addr(std::uint64_t(i))) << i;

    for (MsgHandle h : live)
        pool.free(h, 0);
    EXPECT_EQ(pool.liveMessages(), 0u);

    // The drained arena satisfies the same burst again from recycled
    // slots — the footprint is the peak population, not the total
    // traffic.
    for (int i = 0; i < kBurst; ++i)
        pool.alloc(0, tagged(std::uint64_t(i)));
    EXPECT_EQ(pool.highWater(0), unsigned(kBurst));
}

#ifndef NDEBUG
using MessagePoolDeathTest = ::testing::Test;

TEST(MessagePoolDeathTest, StaleHandleDereferenceTripsGenerationCheck)
{
    MessagePool pool(1);
    MsgHandle h = pool.alloc(0, tagged(3));
    pool.free(h, 0);
    pool.alloc(0, tagged(4)); // recycles the slot under a new generation
    EXPECT_DEATH((void)pool.at(h), "stale message handle");
}

TEST(MessagePoolDeathTest, DoubleFreeTripsGenerationCheck)
{
    MessagePool pool(1);
    MsgHandle h = pool.alloc(0, tagged(5));
    pool.free(h, 0);
    EXPECT_DEATH(pool.free(h, 0), "double free");
}
#endif

} // namespace
} // namespace ltp
