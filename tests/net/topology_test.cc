/** @file Unit tests for topology geometry, routing, and the routed
 *  interconnect's hop/contention-dependent latency. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/network.hh"
#include "net/topo/routed_network.hh"
#include "net/topo/topology.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace ltp
{
namespace
{

TEST(TopologyKindNames, RoundTrip)
{
    for (TopologyKind k : allTopologyKinds()) {
        auto parsed = parseTopologyKind(topologyKindName(k));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, k);
    }
    EXPECT_EQ(parseTopologyKind("MESH2D"), TopologyKind::Mesh2D);
    EXPECT_EQ(parseTopologyKind("point-to-point"),
              TopologyKind::PointToPoint);
    EXPECT_FALSE(parseTopologyKind("hypercube").has_value());
}

TEST(TopologyGeometry, MostSquareFactorization)
{
    TopologyGeometry g16(TopologyKind::Mesh2D, 16);
    EXPECT_EQ(g16.width(), 4u);
    EXPECT_EQ(g16.height(), 4u);

    TopologyGeometry g32(TopologyKind::Mesh2D, 32);
    EXPECT_EQ(g32.width(), 4u);
    EXPECT_EQ(g32.height(), 8u);

    // An explicit, dividing width wins over the auto choice.
    TopologyGeometry g32w8(TopologyKind::Mesh2D, 32, 8);
    EXPECT_EQ(g32w8.width(), 8u);
    EXPECT_EQ(g32w8.height(), 4u);
}

TEST(TopologyGeometry, NonDividingWidthIsAHardError)
{
    // A silently re-factorized layout would skew every hop-count result,
    // so a width that does not divide the node count must throw.
    EXPECT_THROW(TopologyGeometry(TopologyKind::Mesh2D, 32, 5),
                 std::invalid_argument);
    EXPECT_THROW(TopologyGeometry(TopologyKind::Torus2D, 16, 3),
                 std::invalid_argument);
    EXPECT_THROW(TopologyGeometry(TopologyKind::Mesh2D, 32, 33),
                 std::invalid_argument);
}

TEST(NetworkParamsValidation, RejectsBadCombinations)
{
    EventQueue eq;
    StatGroup stats;

    NetworkParams bad_width;
    bad_width.topology = TopologyKind::Mesh2D;
    bad_width.meshWidth = 5;
    EXPECT_THROW(makeInterconnect(eq, 32, bad_width, stats),
                 std::invalid_argument);

    NetworkParams no_bw;
    no_bw.linkBandwidth = 0;
    EXPECT_THROW(makeInterconnect(eq, 32, no_bw, stats),
                 std::invalid_argument);

    // A wrap topology needs two escape VCs; adaptive routing one more.
    NetworkParams few_vcs;
    few_vcs.topology = TopologyKind::Torus2D;
    few_vcs.vcCount = 1;
    EXPECT_THROW(makeInterconnect(eq, 16, few_vcs, stats),
                 std::invalid_argument);
    few_vcs.vcCount = 2;
    EXPECT_NO_THROW(makeInterconnect(eq, 16, few_vcs, stats));
    few_vcs.routing = RoutingPolicy::MinimalAdaptive;
    EXPECT_THROW(makeInterconnect(eq, 16, few_vcs, stats),
                 std::invalid_argument);

    // Dividing widths and the auto layout stay valid.
    NetworkParams good;
    good.topology = TopologyKind::Mesh2D;
    good.meshWidth = 8;
    EXPECT_NO_THROW(makeInterconnect(eq, 32, good, stats));
    good.meshWidth = 0;
    EXPECT_NO_THROW(makeInterconnect(eq, 32, good, stats));
}

TEST(TopologyGeometry, CoordRoundTrip)
{
    TopologyGeometry g(TopologyKind::Mesh2D, 12, 4); // 4 x 3
    for (NodeId n = 0; n < 12; ++n)
        EXPECT_EQ(g.idOf(g.coordOf(n)), n);
    EXPECT_EQ(g.coordOf(5).x, 1u);
    EXPECT_EQ(g.coordOf(5).y, 1u);
}

TEST(TopologyGeometry, MeshHopCountIsManhattanDistance)
{
    TopologyGeometry g(TopologyKind::Mesh2D, 16); // 4 x 4
    for (NodeId s = 0; s < 16; ++s) {
        for (NodeId d = 0; d < 16; ++d) {
            Coord cs = g.coordOf(s), cd = g.coordOf(d);
            unsigned manhattan =
                (cs.x > cd.x ? cs.x - cd.x : cd.x - cs.x) +
                (cs.y > cd.y ? cs.y - cd.y : cd.y - cs.y);
            EXPECT_EQ(g.hopCount(s, d), manhattan);
        }
    }
}

TEST(TopologyGeometry, TorusWrapShortensDistance)
{
    TopologyGeometry g(TopologyKind::Torus2D, 16); // 4 x 4
    // Corner to corner: one wrap hop per dimension.
    EXPECT_EQ(g.hopCount(0, 3), 1u);   // (0,0) -> (3,0)
    EXPECT_EQ(g.hopCount(0, 15), 2u);  // (0,0) -> (3,3)
    EXPECT_EQ(g.hopCount(0, 10), 4u);  // (0,0) -> (2,2): 2 + 2
}

TEST(TopologyGeometry, RingTakesShorterDirection)
{
    TopologyGeometry g(TopologyKind::Ring, 8);
    EXPECT_EQ(g.hopCount(0, 7), 1u);
    EXPECT_EQ(g.hopCount(0, 4), 4u);
    EXPECT_EQ(g.hopCount(0, 5), 3u);
    EXPECT_EQ(g.nextHop(0, 5), 7u); // backward around the ring
    EXPECT_EQ(g.nextHop(0, 2), 1u); // forward
}

TEST(TopologyGeometry, ProductiveHopsMatchDimensionCandidates)
{
    TopologyGeometry g(TopologyKind::Mesh2D, 16); // 4 x 4
    // (0,0) -> (2,2): X and Y both unresolved; X candidate first, so
    // element 0 is always the dimension-order next hop.
    EXPECT_EQ(g.productiveHops(0, 10), (std::vector<NodeId>{1, 4}));
    EXPECT_EQ(g.productiveHops(0, 10)[0], g.nextHop(0, 10));
    // Same row: only the X candidate remains.
    EXPECT_EQ(g.productiveHops(0, 3), (std::vector<NodeId>{1}));
    // Same column: only the Y candidate.
    EXPECT_EQ(g.productiveHops(0, 12), (std::vector<NodeId>{4}));
}

TEST(TopologyGeometry, WrapLinkAndDimQueries)
{
    TopologyGeometry g(TopologyKind::Torus2D, 16); // 4 x 4
    EXPECT_EQ(g.linkDim(0, 1), 0u);
    EXPECT_EQ(g.linkDim(0, 4), 1u);
    EXPECT_FALSE(g.isWrapLink(0, 1));
    EXPECT_TRUE(g.isWrapLink(0, 3));  // x: 0 -> 3 crosses the seam
    EXPECT_TRUE(g.isWrapLink(0, 12)); // y: 0 -> 12 crosses the seam
    TopologyGeometry m(TopologyKind::Mesh2D, 16);
    EXPECT_FALSE(m.isWrapLink(0, 1));
}

TEST(TopologyGeometry, PointToPointIsSingleHop)
{
    TopologyGeometry g(TopologyKind::PointToPoint, 8);
    EXPECT_EQ(g.hopCount(0, 7), 1u);
    EXPECT_EQ(g.nextHop(0, 7), 7u);
    EXPECT_EQ(g.neighbors(0).size(), 7u);
}

/** Walk nextHop() until dst; returns the visited node sequence. */
std::vector<NodeId>
route(const TopologyGeometry &g, NodeId src, NodeId dst)
{
    std::vector<NodeId> path{src};
    NodeId cur = src;
    while (cur != dst) {
        cur = g.nextHop(cur, dst);
        path.push_back(cur);
        EXPECT_LT(path.size(), std::size_t(g.numNodes()) + 1)
            << "routing loop";
        if (path.size() > g.numNodes())
            break;
    }
    return path;
}

TEST(TopologyGeometry, MeshRoutesDimensionOrder)
{
    TopologyGeometry g(TopologyKind::Mesh2D, 16); // 4 x 4
    // (0,0) -> (2,2): X first through (1,0), (2,0), then Y.
    std::vector<NodeId> expect = {0, 1, 2, 6, 10};
    EXPECT_EQ(route(g, 0, 10), expect);
}

TEST(TopologyGeometry, RouteLengthMatchesHopCountEverywhere)
{
    for (TopologyKind k :
         {TopologyKind::Mesh2D, TopologyKind::Torus2D, TopologyKind::Ring}) {
        TopologyGeometry g(k, 12);
        for (NodeId s = 0; s < 12; ++s)
            for (NodeId d = 0; d < 12; ++d)
                if (s != d)
                    EXPECT_EQ(route(g, s, d).size(), g.hopCount(s, d) + 1)
                        << topologyKindName(k) << " " << s << "->" << d;
    }
}

TEST(TopologyGeometry, NeighborsAreMutual)
{
    for (TopologyKind k :
         {TopologyKind::Mesh2D, TopologyKind::Torus2D, TopologyKind::Ring}) {
        TopologyGeometry g(k, 12);
        for (NodeId n = 0; n < 12; ++n) {
            for (NodeId m : g.neighbors(n)) {
                auto back = g.neighbors(m);
                EXPECT_NE(std::find(back.begin(), back.end(), n),
                          back.end());
            }
        }
    }
}

// ---- RoutedNetwork timing ------------------------------------------------

class RoutedNetworkTest : public ::testing::Test
{
  protected:
    static NetworkParams
    meshParams()
    {
        NetworkParams p;
        p.topology = TopologyKind::Mesh2D;
        return p;
    }

    /** Link serialization in cycles: ceil(message bytes / bandwidth). */
    static Tick
    serTicks(const NetworkParams &p, bool data)
    {
        unsigned bytes = p.headerBytes + (data ? p.blockBytes : 0);
        return (bytes + p.linkBandwidth - 1) / p.linkBandwidth;
    }

    /** Per-hop cost with default knobs (no contention). */
    static Tick
    hopCost(const NetworkParams &p, bool data)
    {
        return serTicks(p, data) + p.hopLatency + p.routerLatency;
    }

    Message
    msg(MsgType t, NodeId src, NodeId dst, Addr a = 0x100)
    {
        Message m;
        m.type = t;
        m.src = src;
        m.dst = dst;
        m.addr = a;
        return m;
    }

    /** Deliver one message on a fresh 4x4 mesh; returns its latency. */
    Tick
    oneMessageLatency(NodeId src, NodeId dst)
    {
        EventQueue eq;
        StatGroup stats;
        RoutedNetwork net(eq, 16, meshParams(), stats);
        Tick arrived = 0;
        for (NodeId n = 0; n < 16; ++n)
            net.setSink(n, [&, n](const Message &) { arrived = eq.now(); });
        net.send(msg(MsgType::GetS, src, dst));
        eq.run();
        return arrived;
    }
};

TEST_F(RoutedNetworkTest, LatencyIsNiPlusPerHopCosts)
{
    NetworkParams p = meshParams();
    // 0 -> 1 on a 4x4 mesh: one hop.
    EXPECT_EQ(oneMessageLatency(0, 1),
              p.controlOccupancy + 1 * hopCost(p, false) +
                  p.controlOccupancy);
    // 0 -> 10 ((0,0) -> (2,2)): four hops.
    EXPECT_EQ(oneMessageLatency(0, 10),
              p.controlOccupancy + 4 * hopCost(p, false) +
                  p.controlOccupancy);
}

/**
 * Calibration pin (ROADMAP): the default byte-bandwidth knobs are chosen
 * so one unloaded routed hop costs a control message exactly the paper's
 * 80-cycle point-to-point flight (16 B header / 4 B-per-cycle link = 4
 * cycles of serialization, plus wire and router). Adjacent-node latency
 * must therefore be identical under the p2p model and every routed
 * topology.
 */
TEST_F(RoutedNetworkTest, DefaultKnobsMatchPaperFlightLatencyAtOneHop)
{
    NetworkParams p = meshParams();
    EXPECT_EQ(serTicks(p, false), 4u);
    EXPECT_EQ(serTicks(p, true), 12u);
    EXPECT_EQ(serTicks(p, false) + p.hopLatency + p.routerLatency,
              p.flightLatency);
    EXPECT_EQ(hopCost(p, false), 80u);

    // p2p end-to-end for a control message: egress NI + flight + ingress.
    Tick p2p;
    {
        EventQueue eq;
        StatGroup stats;
        Network net(eq, 16, NetworkParams{}, stats);
        Tick arrived = 0;
        for (NodeId n = 0; n < 16; ++n)
            net.setSink(n, [&](const Message &) { arrived = eq.now(); });
        net.send(msg(MsgType::GetS, 0, 1));
        eq.run();
        p2p = arrived;
    }
    EXPECT_EQ(p2p, p.controlOccupancy + p.flightLatency +
                       p.controlOccupancy);
    // One routed hop on the mesh times identically.
    EXPECT_EQ(oneMessageLatency(0, 1), p2p);
}

TEST_F(RoutedNetworkTest, MeshLatencyGrowsWithManhattanDistance)
{
    TopologyGeometry g(TopologyKind::Mesh2D, 16);
    // 0 -> 1, 2, 3, 7, 11, 15: distances 1, 2, 3, 4, 5, 6.
    Tick prev = 0;
    for (NodeId dst : {1, 2, 3, 7, 11, 15}) {
        Tick lat = oneMessageLatency(0, dst);
        EXPECT_GT(lat, prev) << "dst " << dst << " (distance "
                             << g.hopCount(0, dst) << ")";
        prev = lat;
    }
}

TEST_F(RoutedNetworkTest, SharedLinkContentionSerializes)
{
    EventQueue eq;
    StatGroup stats;
    RoutedNetwork net(eq, 16, meshParams(), stats);
    std::vector<std::pair<Addr, Tick>> arrivals;
    for (NodeId n = 0; n < 16; ++n)
        net.setSink(n, [&](const Message &m) {
            arrivals.push_back({m.addr, eq.now()});
        });

    // A slow data message followed by a control message on the same
    // route (0 -> 1 -> 2). The control message catches up and queues
    // behind the data message at every link and at the ingress NI.
    net.send(msg(MsgType::DataS, 0, 2, 0xA));
    net.send(msg(MsgType::GetS, 0, 2, 0xB));
    eq.run();
    ASSERT_EQ(arrivals.size(), 2u);
    NetworkParams p = meshParams();

    // Data message sails through unloaded.
    EXPECT_EQ(arrivals[0].first, 0xAu);
    EXPECT_EQ(arrivals[0].second, p.dataOccupancy + 2 * hopCost(p, true) +
                                      p.dataOccupancy);

    // The control message arrives later (pairwise FIFO preserved) and
    // later than NI serialization alone explains: it also queued on the
    // links behind the data message.
    EXPECT_EQ(arrivals[1].first, 0xBu);
    EXPECT_GT(arrivals[1].second, arrivals[0].second);
    Tick egress_wait = p.dataOccupancy;
    Tick unloaded_ctrl = p.controlOccupancy + 2 * hopCost(p, false) +
                         p.controlOccupancy;
    EXPECT_GT(arrivals[1].second, egress_wait + unloaded_ctrl);
}

TEST_F(RoutedNetworkTest, LinkAndHopStatsPopulated)
{
    EventQueue eq;
    StatGroup stats;
    RoutedNetwork net(eq, 16, meshParams(), stats);
    for (NodeId n = 0; n < 16; ++n)
        net.setSink(n, [](const Message &) {});

    net.send(msg(MsgType::GetS, 0, 2)); // route 0 -> 1 -> 2
    eq.run();

    EXPECT_EQ(stats.counterValue("net.hops"), 2u);
    NetworkParams p = meshParams();
    EXPECT_EQ(stats.counterValue("net.linkBusy.0-1"), serTicks(p, false));
    EXPECT_EQ(stats.counterValue("net.linkMsgs.0-1"), 1u);
    EXPECT_EQ(stats.counterValue("net.linkBusy.1-2"), serTicks(p, false));
    EXPECT_EQ(stats.counterValue("net.linkMsgs.2-3"), 0u);

    ASSERT_TRUE(stats.hasHistogram("net.endToEndLatency"));
    EXPECT_EQ(stats.findHistogram("net.endToEndLatency")->totalSamples(),
              1u);
    EXPECT_DOUBLE_EQ(stats.averageMean("net.hopsPerMsg"), 2.0);
}

TEST_F(RoutedNetworkTest, LinkCountsMatchTopology)
{
    EventQueue eq;
    StatGroup stats;

    NetworkParams mesh = meshParams();
    EXPECT_EQ(RoutedNetwork(eq, 16, mesh, stats).numLinks(), 48u);

    NetworkParams torus;
    torus.topology = TopologyKind::Torus2D;
    EXPECT_EQ(RoutedNetwork(eq, 16, torus, stats).numLinks(), 64u);

    NetworkParams ring;
    ring.topology = TopologyKind::Ring;
    EXPECT_EQ(RoutedNetwork(eq, 8, ring, stats).numLinks(), 16u);
}

/**
 * On an even-extent torus the two wrap directions tie; the tie-break is
 * pinned toward the increasing coordinate for every routing policy, so
 * even-extent torus routes stay deterministic per (src, dst).
 */
TEST_F(RoutedNetworkTest, TorusEvenExtentTieBreakPinnedForAllPolicies)
{
    TopologyGeometry g(TopologyKind::Torus2D, 16); // 4 x 4: extent 4
    // 0 -> 2 in X: forward and backward are both 2 hops.
    EXPECT_EQ(g.hopCount(0, 2), 2u);
    EXPECT_EQ(g.nextHop(0, 2), 1u);
    EXPECT_EQ(g.productiveHops(0, 2), (std::vector<NodeId>{1}));
    // 0 -> 8 in Y: same tie, pinned to +Y.
    EXPECT_EQ(g.nextHop(0, 8), 4u);
    // Both dimensions tied: still one pinned candidate per dimension.
    EXPECT_EQ(g.productiveHops(0, 10), (std::vector<NodeId>{1, 4}));

    for (RoutingPolicy routing : allRoutingPolicies()) {
        EventQueue eq;
        StatGroup stats;
        NetworkParams p;
        p.topology = TopologyKind::Torus2D;
        p.routing = routing;
        RoutedNetwork net(eq, 16, p, stats);
        unsigned arrived = 0;
        for (NodeId n = 0; n < 16; ++n)
            net.setSink(n, [&](const Message &) { ++arrived; });
        net.send(msg(MsgType::GetS, 0, 2));
        eq.run();
        EXPECT_EQ(arrived, 1u) << routingPolicyName(routing);
        // The pinned route is 0 -> 1 -> 2; the backward wrap must stay
        // untouched under every policy.
        EXPECT_EQ(stats.counterValue("net.linkMsgs.0-1"), 1u)
            << routingPolicyName(routing);
        EXPECT_EQ(stats.counterValue("net.linkMsgs.1-2"), 1u)
            << routingPolicyName(routing);
        EXPECT_EQ(stats.counterValue("net.linkMsgs.0-3"), 0u)
            << routingPolicyName(routing);
        EXPECT_EQ(stats.counterValue("net.linkMsgs.3-2"), 0u)
            << routingPolicyName(routing);
    }
}

TEST_F(RoutedNetworkTest, LocalDeliveryBypassesNetwork)
{
    EventQueue eq;
    StatGroup stats;
    RoutedNetwork net(eq, 16, meshParams(), stats);
    Tick arrived = 0;
    for (NodeId n = 0; n < 16; ++n)
        net.setSink(n, [&](const Message &) { arrived = eq.now(); });
    net.send(msg(MsgType::GetS, 5, 5));
    eq.run();
    EXPECT_EQ(arrived, 1u);
}

} // namespace
} // namespace ltp
