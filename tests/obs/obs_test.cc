/**
 * @file
 * Observability (src/obs/): the observer-only contract.
 *
 * Tracing and metrics sampling must never perturb the simulation —
 * stats dumps are byte-identical with them on or off — while the trace
 * file must actually contain all five category groups and the metrics
 * stream must follow its JSONL schema. Plus unit coverage for the
 * category taxonomy parser and the EventQueue tick watcher the
 * sequential sampler rides on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dsm/system.hh"
#include "kernel/kernels.hh"
#include "obs/categories.hh"
#include "obs/obs_params.hh"
#include "sim/event_queue.hh"

namespace ltp
{
namespace
{

// ---- category taxonomy -------------------------------------------------

TEST(ObsCategories, NamesRoundTrip)
{
    for (unsigned i = 0; i < obs::numCats; ++i) {
        auto cat = obs::Cat(i);
        EXPECT_EQ(obs::parseCat(obs::catName(cat)), cat);
    }
}

TEST(ObsCategories, ParseMaskAllAndLists)
{
    EXPECT_EQ(obs::parseCategoryMask("all"), obs::allCatsMask);
    // Empty list = no categories (an empty LTP_TRACE_CATS silences the
    // tracer; leaving the variable unset keeps the all-categories
    // default).
    EXPECT_EQ(obs::parseCategoryMask(""), 0u);
    EXPECT_EQ(obs::parseCategoryMask("link"),
              obs::catBit(obs::Cat::Link));
    EXPECT_EQ(obs::parseCategoryMask("link,engine"),
              obs::catBit(obs::Cat::Link) |
                  obs::catBit(obs::Cat::Engine));
}

TEST(ObsCategories, ParseMaskRejectsUnknownTokensLoudly)
{
    try {
        obs::parseCategoryMask("link,bogus");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        // The message must name the offending token and the valid ones.
        EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("link"), std::string::npos);
    }
}

TEST(ObsParams, DefaultIsEverythingOff)
{
    obs::ObsParams p;
    EXPECT_FALSE(p.traceEnabled());
    EXPECT_FALSE(p.metricsEnabled());
    EXPECT_FALSE(p.anyEnabled());
}

// ---- EventQueue tick watcher (the sequential sampler's hook) -----------

TEST(EventQueueTickWatcher, FiresOnGridAndRearms)
{
    EventQueue eq;
    std::vector<Tick> fired;
    eq.armTickWatcher(10, [&](Tick now) {
        fired.push_back(now);
        return ((now / 10) + 1) * 10; // next multiple of 10 after now
    });
    for (Tick t : {3, 12, 14, 27, 50})
        eq.scheduleAt(t, [] {});
    eq.run();
    // The watcher observes the first event at-or-after each due tick:
    // due 10 -> event at 12; due 20 -> 27; due 30 (realigned) -> 50.
    EXPECT_EQ(fired, (std::vector<Tick>{12, 27, 50}));
}

TEST(EventQueueTickWatcher, DisarmStopsFiring)
{
    EventQueue eq;
    int fires = 0;
    eq.armTickWatcher(5, [&](Tick now) {
        ++fires;
        return now + 5;
    });
    eq.scheduleAt(6, [] {});
    eq.run();
    EXPECT_EQ(fires, 1);
    eq.disarmTickWatcher();
    eq.scheduleAt(20, [] {});
    eq.run();
    EXPECT_EQ(fires, 1);
}

// ---- end-to-end: observer-only tracing + metrics -----------------------

struct ObsRun
{
    std::string dump;
    bool completed = false;
};

/** One em3d run, Passive LTP on a 16-node mesh so every category has
 *  traffic and the engine shards for real. */
ObsRun
runEm3d(unsigned threads, const obs::ObsParams &obs_params)
{
    SystemParams sp = SystemParams::withPredictor(
        PredictorKind::LtpPerBlock, PredictorMode::Passive);
    sp.numNodes = 16;
    sp.net.topology = TopologyKind::Mesh2D;
    sp.simThreads = threads;
    sp.obs = obs_params;

    DsmSystem sys(sp);
    auto kernel = makeKernel("em3d");
    KernelConfig cfg = defaultConfig("em3d");
    cfg.nodes = sp.numNodes;
    RunResult r = sys.run(*kernel, cfg);

    ObsRun out;
    out.completed = r.completed;
    std::ostringstream oss;
    sys.stats().dump(oss);
    out.dump = oss.str();
    return out;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

TEST(ObsEndToEnd, ObserverOnlyAndTraceHasAllCategories)
{
    std::string dir = ::testing::TempDir();
    obs::ObsParams on;
    on.traceFile = dir + "/obs_test_trace.json";
    on.metricsFile = dir + "/obs_test_metrics.jsonl";
    on.metricsIntervalTicks = 5000;

    ObsRun plain = runEm3d(2, obs::ObsParams{});
    ObsRun traced = runEm3d(2, on);
    ASSERT_TRUE(plain.completed);
    ASSERT_TRUE(traced.completed);

    // The whole point: tracing + metrics change NOTHING observable.
    EXPECT_EQ(plain.dump, traced.dump);

    // All five category groups made it into the trace file.
    std::string trace = slurp(on.traceFile);
    ASSERT_FALSE(trace.empty());
    for (const char *cat :
         {"message", "link", "directory", "predictor", "engine"}) {
        EXPECT_NE(trace.find("\"cat\":\"" + std::string(cat) + "\""),
                  std::string::npos)
            << "category missing from trace: " << cat;
    }
    EXPECT_NE(trace.find("\"dropped\":"), std::string::npos);
    EXPECT_NE(trace.find("\"traceEvents\":"), std::string::npos);

    // Metrics: one JSON object per line, tick strictly increasing.
    std::ifstream metrics(on.metricsFile);
    ASSERT_TRUE(metrics.good());
    std::string line;
    unsigned lines = 0;
    long long prev_tick = -1;
    while (std::getline(metrics, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"tick\":"), std::string::npos);
        EXPECT_NE(line.find("\"counters\":"), std::string::npos);
        long long tick = std::atoll(line.c_str() + line.find(':') + 1);
        EXPECT_GT(tick, prev_tick);
        prev_tick = tick;
        ++lines;
    }
    // em3d at 16 nodes runs >> one interval; expect several samples.
    EXPECT_GE(lines, 2u);

    std::remove(on.traceFile.c_str());
    std::remove(on.metricsFile.c_str());
}

TEST(ObsEndToEnd, CategoryMaskRestrictsTraceOutput)
{
    std::string dir = ::testing::TempDir();
    obs::ObsParams on;
    on.traceFile = dir + "/obs_test_linkonly.json";
    on.tracerCategories = obs::catBit(obs::Cat::Link);

    ObsRun traced = runEm3d(1, on);
    ASSERT_TRUE(traced.completed);
    std::string trace = slurp(on.traceFile);
    EXPECT_NE(trace.find("\"cat\":\"link\""), std::string::npos);
    for (const char *cat : {"message", "directory", "predictor", "engine"})
        EXPECT_EQ(trace.find("\"cat\":\"" + std::string(cat) + "\""),
                  std::string::npos)
            << "masked category leaked into trace: " << cat;
    std::remove(on.traceFile.c_str());
}

} // namespace
} // namespace ltp
