/**
 * @file
 * End-to-end guard-subsystem behavior on the real machine: the wedge
 * regression (a fault-injected barrier wedge must be caught by the
 * watchdog within its budget, with a flight record left behind), the
 * observer-only contract of the invariant checkers, the shard-count
 * invariance of deterministic fault injection, and the structured
 * abort outcomes for budget violations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "dsm/system.hh"
#include "kernel/kernels.hh"
#include "obs/categories.hh"

namespace ltp
{
namespace
{

struct RunOutput
{
    std::string dump; //!< full canonical stats dump
    Tick cycles = 0;
    std::uint64_t events = 0;
    bool completed = false;
    RunOutcome outcome = RunOutcome::Completed;
    std::string abortReason;
    unsigned shards = 0;
};

RunOutput
runGuarded(const guard::GuardParams &guard_params, unsigned threads,
           TopologyKind topo = TopologyKind::Mesh2D,
           RoutingPolicy routing = RoutingPolicy::DimensionOrder,
           NodeId nodes = 8, double iter_scale = 1.0,
           Tick max_ticks = 0)
{
    SystemParams sp;
    sp.numNodes = nodes;
    sp.net.topology = topo;
    sp.net.routing = routing;
    sp.simThreads = threads;
    sp.guard = guard_params;
    if (max_ticks)
        sp.maxTicks = max_ticks;

    DsmSystem sys(sp);
    auto kernel = makeKernel("em3d");
    KernelConfig cfg = defaultConfig("em3d");
    cfg.nodes = nodes;
    if (iter_scale != 1.0)
        cfg.iters = std::max(1u, unsigned(cfg.iters * iter_scale));
    RunResult r = sys.run(*kernel, cfg);

    RunOutput out;
    std::ostringstream oss;
    sys.stats().dump(oss);
    out.dump = oss.str();
    out.cycles = r.cycles;
    out.events = r.eventsExecuted;
    out.completed = r.completed;
    out.outcome = r.outcome;
    out.abortReason = r.abortReason;
    out.shards = sys.shardPlan().shards;
    return out;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

/**
 * The acceptance regression: a 2-shard run whose shard 1 stops arriving
 * at the window barrier must be detected by the barrier-stall detector
 * within its budget, abort with a structured reason, and leave a flight
 * record — instead of hanging the harness forever.
 */
TEST(GuardIntegration, WatchdogCatchesAFaultInjectedBarrierWedge)
{
    const char *tmpdir = std::getenv("TMPDIR");
    std::string flight = std::string(tmpdir ? tmpdir : "/tmp") +
                         "/ltp_guard_integration_wedge.json";
    std::remove(flight.c_str());

    guard::GuardParams gp;
    gp.faultSpec = "barrier-wedge:round=5,shard=1";
    gp.barrierStallMs = 150;
    gp.noProgressMs = 2000; // backstop; the stall detector must win
    gp.flightRecorderFile = flight;

    auto t0 = std::chrono::steady_clock::now();
    RunOutput r = runGuarded(gp, 2, TopologyKind::PointToPoint,
                             RoutingPolicy::DimensionOrder, 8, 0.05);
    auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);

    ASSERT_EQ(r.shards, 2u) << "wedge needs the staged parallel engine";
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.outcome, RunOutcome::Aborted);
    EXPECT_NE(r.abortReason.find("barrier stall"), std::string::npos)
        << r.abortReason;
    // Detection budget is 150 ms; everything else (model build, the 5
    // healthy rounds, teardown) fits in the slack many times over.
    EXPECT_LT(wall.count(), 10000) << "watchdog missed its budget";

    std::string dump = slurp(flight);
    EXPECT_NE(dump.find("barrier stall"), std::string::npos)
        << "flight record must carry the abort reason: " << dump;
    EXPECT_NE(dump.find("\"barrier\": {"), std::string::npos) << dump;
    std::remove(flight.c_str());
}

/**
 * Observer-only contract: arming every invariant checker must complete
 * the run (no false positives at quiesce) and keep the stats dump
 * byte-identical to the unguarded run.
 */
TEST(GuardIntegration, ArmedCheckersAreObserverOnly)
{
    RunOutput plain = runGuarded(guard::GuardParams{}, 2,
                                 TopologyKind::Mesh2D,
                                 RoutingPolicy::MinimalAdaptive);

    guard::GuardParams gp;
    gp.checkMask = obs::allCatsMask;
    RunOutput checked = runGuarded(gp, 2, TopologyKind::Mesh2D,
                                   RoutingPolicy::MinimalAdaptive);

    EXPECT_TRUE(plain.completed);
    EXPECT_TRUE(checked.completed) << checked.abortReason;
    EXPECT_EQ(checked.outcome, RunOutcome::Completed);
    EXPECT_EQ(plain.cycles, checked.cycles);
    EXPECT_EQ(plain.events, checked.events);
    EXPECT_EQ(plain.dump, checked.dump)
        << "LTP_CHECK must not perturb results";
}

/**
 * Fault determinism: link-stall decisions are per-site counter-based,
 * so a fault-injected run is byte-identical across shard counts (while
 * genuinely differing from the fault-free run).
 */
TEST(GuardIntegration, LinkStallFaultIsShardCountInvariant)
{
    guard::GuardParams gp;
    gp.faultSpec = "link-stall:p=0.2,extra=16,seed=7";

    RunOutput s1 = runGuarded(gp, 1);
    RunOutput s2 = runGuarded(gp, 2);
    ASSERT_EQ(s2.shards, 2u);
    EXPECT_TRUE(s1.completed);
    EXPECT_TRUE(s2.completed);
    EXPECT_EQ(s1.cycles, s2.cycles);
    EXPECT_EQ(s1.events, s2.events);
    EXPECT_EQ(s1.dump, s2.dump)
        << "fault-injected runs must stay shard-count invariant";

    RunOutput clean = runGuarded(guard::GuardParams{}, 1);
    EXPECT_NE(clean.cycles, s1.cycles)
        << "link-stall must actually perturb virtual time";
}

/** Host-side stress faults must not change results at all. */
TEST(GuardIntegration, HostSideFaultsAreByteIdentical)
{
    RunOutput clean = runGuarded(guard::GuardParams{}, 2);

    guard::GuardParams storm;
    storm.faultSpec = "spill-storm;cal-overflow:period=2";
    RunOutput stressed = runGuarded(storm, 2);

    EXPECT_TRUE(stressed.completed) << stressed.abortReason;
    EXPECT_EQ(clean.cycles, stressed.cycles);
    EXPECT_EQ(clean.dump, stressed.dump)
        << "spill-storm/cal-overflow are host-side only";
}

/** A retired-event budget aborts with a structured reason. */
TEST(GuardIntegration, EventBudgetAbortsWithStructuredReason)
{
    guard::GuardParams gp;
    gp.maxEvents = 500;

    RunOutput r = runGuarded(gp, 1);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.outcome, RunOutcome::Aborted);
    EXPECT_NE(r.abortReason.find("event budget"), std::string::npos)
        << r.abortReason;
}

/** The legacy maxTicks safety net now reports a structured outcome. */
TEST(GuardIntegration, MaxTicksReportsAbortedOutcome)
{
    RunOutput r = runGuarded(guard::GuardParams{}, 1,
                             TopologyKind::Mesh2D,
                             RoutingPolicy::DimensionOrder, 8, 1.0,
                             /*max_ticks=*/5000);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.outcome, RunOutcome::Aborted);
    EXPECT_NE(r.abortReason.find("maxTicks exceeded"), std::string::npos)
        << r.abortReason;
}

} // namespace
} // namespace ltp
