/**
 * @file
 * Property-style sweeps over (kernel x predictor): accounting
 * invariants that must hold for every combination, and the headline
 * paper shapes as regression guards.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "dsm/experiment.hh"

namespace ltp
{
namespace
{

RunResult
passiveRun(const std::string &kernel, PredictorKind kind,
           double iter_scale = 0.5)
{
    ExperimentSpec spec;
    spec.kernel = kernel;
    spec.predictor = kind;
    spec.mode = PredictorMode::Passive;
    spec.iterScale = iter_scale;
    return runExperiment(spec);
}

using Combo = std::tuple<std::string, PredictorKind>;

class AccuracyInvariants
    : public ::testing::TestWithParam<Combo>
{
};

TEST_P(AccuracyInvariants, ClassificationAddsUp)
{
    auto [kernel, kind] = GetParam();
    RunResult r = passiveRun(kernel, kind);
    ASSERT_TRUE(r.completed);
    ASSERT_GT(r.invalidations, 0u);
    // Every real invalidation is classified exactly once; premature
    // predictions stack on top (Figure 6's >100% bars).
    EXPECT_EQ(r.predicted + r.notPredicted, r.invalidations);
    EXPECT_LE(r.accuracy(), 1.0);
    // Passive monitoring must not issue real self-invalidations.
    EXPECT_EQ(r.selfInvsIssued, 0u);
    EXPECT_EQ(r.selfInvPremature, 0u);
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> v;
    for (const auto &k : allKernelNames()) {
        v.emplace_back(k, PredictorKind::Dsi);
        v.emplace_back(k, PredictorKind::LastPc);
        v.emplace_back(k, PredictorKind::LtpPerBlock);
        v.emplace_back(k, PredictorKind::LtpGlobal);
    }
    return v;
}

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    std::string name = std::get<0>(info.param);
    name += "_";
    name += predictorKindName(std::get<1>(info.param));
    for (auto &c : name)
        if (c == '-')
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllKernelsAllPredictors, AccuracyInvariants,
                         ::testing::ValuesIn(allCombos()), comboName);

class ActiveInvariants : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ActiveInvariants, VerificationAccountingConsistent)
{
    ExperimentSpec spec;
    spec.kernel = GetParam();
    spec.predictor = PredictorKind::LtpPerBlock;
    spec.mode = PredictorMode::Active;
    spec.iterScale = 0.5;
    RunResult r = runExperiment(spec);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.predicted + r.notPredicted, r.invalidations);
    // Every issued self-invalidation is eventually correct, premature,
    // or still unresolved at the end of the run — never more verdicts
    // than issues.
    std::uint64_t verdicts = r.selfInvTimelyCorrect +
                             r.selfInvLateCorrect + r.selfInvPremature;
    EXPECT_LE(verdicts, r.selfInvsIssued);
    // Correct verdicts are what the controller scored as predicted.
    EXPECT_EQ(r.predicted,
              r.selfInvTimelyCorrect + r.selfInvLateCorrect);
    EXPECT_EQ(r.mispredicted, r.selfInvPremature);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, ActiveInvariants,
                         ::testing::ValuesIn(allKernelNames()),
                         [](const auto &info) { return info.param; });

// ---------------------------------------------------------------------
// Headline paper shapes, as regression guards (full-length runs).
// ---------------------------------------------------------------------

TEST(PaperShapes, LtpBeatsDsiAndLastPcOnAverage)
{
    double ltp = 0, dsi = 0, lpc = 0;
    for (const auto &k : allKernelNames()) {
        ltp += passiveRun(k, PredictorKind::LtpPerBlock, 1.0).accuracy();
        dsi += passiveRun(k, PredictorKind::Dsi, 1.0).accuracy();
        lpc += passiveRun(k, PredictorKind::LastPc, 1.0).accuracy();
    }
    ltp /= 9;
    dsi /= 9;
    lpc /= 9;
    // Paper: LTP 79%, DSI 47%, Last-PC 41%.
    EXPECT_GT(ltp, 0.70);
    EXPECT_GT(ltp, dsi + 0.20);
    EXPECT_GT(ltp, lpc + 0.20);
    EXPECT_NEAR(dsi, 0.47, 0.12);
    EXPECT_NEAR(lpc, 0.41, 0.12);
}

TEST(PaperShapes, Em3dPredictableByEveryone)
{
    for (PredictorKind kind : {PredictorKind::Dsi, PredictorKind::LastPc,
                               PredictorKind::LtpPerBlock}) {
        EXPECT_GT(passiveRun("em3d", kind, 1.0).accuracy(), 0.90)
            << predictorKindName(kind);
    }
}

TEST(PaperShapes, LastPcCollapsesOnLoopReuseApps)
{
    // moldyn: "less than 3%" in the paper.
    EXPECT_LT(passiveRun("moldyn", PredictorKind::LastPc, 1.0).accuracy(),
              0.10);
    EXPECT_LT(passiveRun("tomcatv", PredictorKind::LastPc, 1.0).accuracy(),
              0.45);
    // But LTP handles the exact same reference streams.
    EXPECT_GT(passiveRun("moldyn", PredictorKind::LtpPerBlock, 1.0)
                  .accuracy(),
              0.80);
    EXPECT_GT(passiveRun("tomcatv", PredictorKind::LtpPerBlock, 1.0)
                  .accuracy(),
              0.85);
}

TEST(PaperShapes, BarnesDefeatsTracePredictors)
{
    EXPECT_LT(passiveRun("barnes", PredictorKind::LtpPerBlock, 1.0)
                  .accuracy(),
              0.35);
}

TEST(PaperShapes, DsiSkipsMigratorySharing)
{
    EXPECT_LT(passiveRun("unstructured", PredictorKind::Dsi, 1.0)
                  .accuracy(),
              0.50);
    EXPECT_LT(passiveRun("raytrace", PredictorKind::Dsi, 1.0).accuracy(),
              0.10);
}

TEST(PaperShapes, GlobalTableAliasesOnTomcatv)
{
    double per = passiveRun("tomcatv", PredictorKind::LtpPerBlock, 1.0)
                     .accuracy();
    ExperimentSpec spec;
    spec.kernel = "tomcatv";
    spec.predictor = PredictorKind::LtpGlobal;
    spec.mode = PredictorMode::Passive;
    spec.sigBits = 30;
    RunResult g = runExperiment(spec);
    EXPECT_LT(g.accuracy(), per - 0.10);
    EXPECT_GT(g.mispredictionRate(), 0.02);
}

TEST(PaperShapes, ThirteenBitSignaturesSuffice)
{
    for (const auto &k : {"moldyn", "tomcatv", "appbt"}) {
        ExperimentSpec spec;
        spec.kernel = k;
        spec.predictor = PredictorKind::LtpPerBlock;
        spec.mode = PredictorMode::Passive;
        spec.sigBits = 30;
        double base = runExperiment(spec).accuracy();
        spec.sigBits = 13;
        double small = runExperiment(spec).accuracy();
        EXPECT_NEAR(small, base, 0.03) << k;
    }
}

TEST(PaperShapes, LtpSpeedsUpRegularApps)
{
    for (const auto &k : {"em3d", "tomcatv", "ocean"}) {
        SpeedupResult s = runSpeedup(k, PredictorKind::LtpPerBlock);
        EXPECT_GT(s.speedup(), 1.10) << k;
    }
}

TEST(PaperShapes, LtpNeverSlowsMuch)
{
    for (const auto &k : allKernelNames()) {
        SpeedupResult s = runSpeedup(k, PredictorKind::LtpPerBlock);
        EXPECT_GT(s.speedup(), 0.98) << k;
    }
}

TEST(PaperShapes, LtpTimelinessHighExceptRaytrace)
{
    ExperimentSpec spec;
    spec.kernel = "em3d";
    spec.predictor = PredictorKind::LtpPerBlock;
    spec.mode = PredictorMode::Active;
    EXPECT_GT(runExperiment(spec).timeliness(), 0.95);
    spec.kernel = "raytrace";
    EXPECT_LT(runExperiment(spec).timeliness(), 0.50);
}

} // namespace
} // namespace ltp
