/**
 * @file
 * Bit-determinism of the node-partitioned parallel engine.
 *
 * The engine's contract: a run's FULL observable output — every
 * statistic, cycle count and memory operation — is identical for every
 * simThreads value, including 1. These tests run a matrix of kernels x
 * topologies at shards {1, 2, 4} and compare byte-for-byte stats dumps,
 * plus the Figure 6 (Passive predictor) and Table 4 (Active predictor,
 * serial-fallback) methodologies the paper's results hang on.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "dsm/system.hh"
#include "kernel/kernels.hh"

namespace ltp
{
namespace
{

struct RunOutput
{
    std::string dump; //!< full canonical stats dump
    Tick cycles = 0;
    std::uint64_t memOps = 0;
    std::uint64_t events = 0;
    bool completed = false;
    unsigned shards = 0;
    std::string serialReason;
};

RunOutput
runCell(const std::string &kernel_name, TopologyKind topo,
        RoutingPolicy routing, unsigned threads,
        PredictorKind pred = PredictorKind::Base,
        PredictorMode mode = PredictorMode::Off, NodeId nodes = 16)
{
    SystemParams sp = SystemParams::withPredictor(pred, mode);
    sp.numNodes = nodes;
    sp.net.topology = topo;
    sp.net.routing = routing;
    sp.simThreads = threads;

    DsmSystem sys(sp);
    auto kernel = makeKernel(kernel_name);
    KernelConfig cfg = defaultConfig(kernel_name);
    cfg.nodes = nodes;
    RunResult r = sys.run(*kernel, cfg);

    RunOutput out;
    std::ostringstream oss;
    sys.stats().dump(oss);
    out.dump = oss.str();
    out.cycles = r.cycles;
    out.memOps = r.memOps;
    out.events = r.eventsExecuted;
    out.completed = r.completed;
    out.shards = sys.shardPlan().shards;
    out.serialReason = sys.shardPlan().serialReason;
    return out;
}

void
expectIdentical(const RunOutput &a, const RunOutput &b,
                const std::string &what)
{
    EXPECT_TRUE(a.completed) << what;
    EXPECT_TRUE(b.completed) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.memOps, b.memOps) << what;
    EXPECT_EQ(a.events, b.events) << what;
    EXPECT_EQ(a.dump, b.dump) << what;
}

class ParallelDeterminism
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{
};

TEST_P(ParallelDeterminism, StatsDumpsAreByteIdenticalAcrossShardCounts)
{
    const char *kernel = std::get<0>(GetParam());
    int topo_case = std::get<1>(GetParam());
    TopologyKind topo = topo_case == 0   ? TopologyKind::PointToPoint
                        : topo_case == 1 ? TopologyKind::Mesh2D
                        : topo_case == 2 ? TopologyKind::Torus2D
                                         : TopologyKind::Mesh2D;
    RoutingPolicy routing = topo_case == 2 ? RoutingPolicy::MinimalAdaptive
                            : topo_case == 3
                                ? RoutingPolicy::Oblivious
                                : RoutingPolicy::DimensionOrder;

    RunOutput s1 = runCell(kernel, topo, routing, 1);
    RunOutput s2 = runCell(kernel, topo, routing, 2);
    RunOutput s4 = runCell(kernel, topo, routing, 4);

    std::string what = std::string(kernel) + "/" +
                       topologyKindName(topo) + "/" +
                       routingPolicyName(routing);
    EXPECT_EQ(s2.shards, 2u) << what;
    EXPECT_EQ(s4.shards, 4u) << what;
    expectIdentical(s1, s2, what + " s1 vs s2");
    expectIdentical(s1, s4, what + " s1 vs s4");
}

INSTANTIATE_TEST_SUITE_P(
    KernelTopologyMatrix, ParallelDeterminism,
    ::testing::Combine(::testing::Values("ocean", "em3d", "moldyn"),
                       ::testing::Values(0, 1, 2, 3)));

TEST(ParallelDeterminismModes, PassivePredictorShardsAndStaysIdentical)
{
    // Figure 6 methodology: Passive LTP never self-invalidates, so the
    // directory-feedback wire stays cold and the run shards for real.
    RunOutput s1 = runCell("em3d", TopologyKind::Mesh2D,
                           RoutingPolicy::DimensionOrder, 1,
                           PredictorKind::LtpPerBlock,
                           PredictorMode::Passive);
    RunOutput s4 = runCell("em3d", TopologyKind::Mesh2D,
                           RoutingPolicy::DimensionOrder, 4,
                           PredictorKind::LtpPerBlock,
                           PredictorMode::Passive);
    EXPECT_EQ(s4.shards, 4u);
    EXPECT_TRUE(s4.serialReason.empty()) << s4.serialReason;
    expectIdentical(s1, s4, "ltp-passive mesh");
}

TEST(ParallelDeterminismModes, ActivePredictorFallsBackToSerial)
{
    // Table 4 methodology: Active predictors are trained through the
    // directory's zero-lookahead verification wire, so the planner must
    // refuse to shard — and the output must still be simThreads-
    // invariant because both runs use the same (sequential) engine.
    RunOutput s1 = runCell("em3d", TopologyKind::Torus2D,
                           RoutingPolicy::DimensionOrder, 1,
                           PredictorKind::LtpPerBlock,
                           PredictorMode::Active);
    RunOutput s4 = runCell("em3d", TopologyKind::Torus2D,
                           RoutingPolicy::DimensionOrder, 4,
                           PredictorKind::LtpPerBlock,
                           PredictorMode::Active);
    EXPECT_EQ(s4.shards, 1u);
    EXPECT_FALSE(s4.serialReason.empty());
    expectIdentical(s1, s4, "ltp-active torus");
}

TEST(ParallelDeterminismModes, ObliviousRoutingShardsAndStaysIdentical)
{
    // The lint's marquee true positive, fixed: oblivious coin flips are
    // counter-based per-(src, dst) streams (pure hash of seed, src,
    // dst, netSeq, hop), so the policy no longer forces the serial
    // fallback and stays byte-identical across shard counts — here on
    // the wrap topology whose dateline escape VCs stress it hardest.
    RunOutput s1 = runCell("ocean", TopologyKind::Torus2D,
                           RoutingPolicy::Oblivious, 1);
    RunOutput s2 = runCell("ocean", TopologyKind::Torus2D,
                           RoutingPolicy::Oblivious, 2);
    RunOutput s4 = runCell("ocean", TopologyKind::Torus2D,
                           RoutingPolicy::Oblivious, 4);
    EXPECT_EQ(s2.shards, 2u);
    EXPECT_EQ(s4.shards, 4u);
    EXPECT_TRUE(s4.serialReason.empty()) << s4.serialReason;
    expectIdentical(s1, s2, "oblivious torus s1 vs s2");
    expectIdentical(s1, s4, "oblivious torus s1 vs s4");
}

} // namespace
} // namespace ltp
