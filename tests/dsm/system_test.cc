/**
 * @file
 * Whole-system integration tests: construction, run-once semantics,
 * deterministic replay, and the Table 1 latency calibration measured
 * end to end.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "dsm/experiment.hh"

namespace ltp
{
namespace
{

TEST(SystemParams, PredictorFactoryNames)
{
    EXPECT_STREQ(predictorKindName(PredictorKind::Base), "base");
    EXPECT_STREQ(predictorKindName(PredictorKind::Dsi), "dsi");
    EXPECT_STREQ(predictorKindName(PredictorKind::LastPc), "last-pc");
    EXPECT_STREQ(predictorKindName(PredictorKind::LtpPerBlock), "ltp");
    EXPECT_STREQ(predictorKindName(PredictorKind::LtpGlobal),
                 "ltp-global");
}

TEST(SystemParams, BaseForcesModeOff)
{
    auto p = SystemParams::withPredictor(PredictorKind::Base,
                                         PredictorMode::Active);
    EXPECT_EQ(p.mode, PredictorMode::Off);
}

TEST(SystemParams, Table1Defaults)
{
    SystemParams p;
    EXPECT_EQ(p.numNodes, 32u);
    EXPECT_EQ(p.cache.blockSize, 32u);
    EXPECT_EQ(p.dir.memAccess, 104u);
    EXPECT_EQ(p.net.flightLatency, 80u);
    EXPECT_TRUE(p.dir.pipelined);
}

TEST(SimThreads, ParseAcceptsExactDecimalInRange)
{
    EXPECT_EQ(parseSimThreads("1"), 1u);
    EXPECT_EQ(parseSimThreads("2"), 2u);
    EXPECT_EQ(parseSimThreads("64"), 64u);
    EXPECT_EQ(parseSimThreads("256"), 256u); // maxSimThreads, inclusive
}

TEST(SimThreads, ParseRejectsGarbageLoudly)
{
    // A typo'd LTP_SIM_THREADS must fail the run, never silently fall
    // back to one thread.
    for (const char *bad : {"", "0", "257", "2000000", "-1", "two",
                            "2x", " 2", "2 ", "0x4", "+4", "4.0"}) {
        EXPECT_THROW(parseSimThreads(bad), std::invalid_argument)
            << "accepted \"" << bad << '"';
    }
}

TEST(SimThreads, SystemRejectsOutOfRangeThreadCounts)
{
    SystemParams zero;
    zero.simThreads = 0;
    EXPECT_THROW(DsmSystem{zero}, std::invalid_argument);

    SystemParams absurd;
    absurd.simThreads = maxSimThreads + 1;
    EXPECT_THROW(DsmSystem{absurd}, std::invalid_argument);

    SystemParams max_ok;
    max_ok.simThreads = maxSimThreads; // clamped to numNodes by the plan
    EXPECT_NO_THROW(DsmSystem{max_ok});
}

TEST(DsmSystem, RunTwiceThrows)
{
    DsmSystem sys(SystemParams::base());
    auto k = makeKernel("em3d");
    KernelConfig cfg = defaultConfig("em3d");
    cfg.iters = 1;
    sys.run(*k, cfg);
    auto k2 = makeKernel("em3d");
    EXPECT_THROW(sys.run(*k2, cfg), std::logic_error);
}

TEST(DsmSystem, DeterministicReplay)
{
    auto run_once = [] {
        ExperimentSpec spec;
        spec.kernel = "tomcatv";
        spec.predictor = PredictorKind::LtpPerBlock;
        spec.mode = PredictorMode::Passive;
        spec.iterScale = 0.25;
        return runExperiment(spec);
    };
    RunResult a = run_once();
    RunResult b = run_once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.invalidations, b.invalidations);
    EXPECT_EQ(a.predicted, b.predicted);
    EXPECT_EQ(a.mispredicted, b.mispredicted);
    EXPECT_EQ(a.memOps, b.memOps);
}

TEST(DsmSystem, DifferentSeedsDifferentTraffic)
{
    auto run_seed = [](std::uint64_t seed) {
        SystemParams sp;
        KernelConfig cfg = defaultConfig("barnes");
        cfg.iters = 3;
        cfg.seed = seed;
        cfg.nodes = sp.numNodes;
        DsmSystem sys(sp);
        auto k = makeKernel("barnes");
        return sys.run(*k, cfg);
    };
    RunResult a = run_seed(1);
    RunResult b = run_seed(2);
    EXPECT_NE(a.invalidations, b.invalidations);
}

TEST(DsmSystem, UnknownKernelThrows)
{
    EXPECT_THROW(makeKernel("does-not-exist"), std::invalid_argument);
    EXPECT_THROW(defaultConfig("does-not-exist"), std::invalid_argument);
}

TEST(DsmSystem, AllKernelNamesInstantiable)
{
    for (const auto &name : allKernelNames()) {
        auto k = makeKernel(name);
        EXPECT_EQ(k->name(), name);
        EXPECT_FALSE(describeConfig(name, defaultConfig(name)).empty());
    }
}

TEST(Experiment, IterScaleShortensRun)
{
    ExperimentSpec full;
    full.kernel = "em3d";
    full.iterScale = 0.25;
    RunResult quarter = runExperiment(full);
    full.iterScale = 0.5;
    RunResult half = runExperiment(full);
    EXPECT_LT(quarter.cycles, half.cycles);
}

TEST(Experiment, NodeOverrideWorks)
{
    ExperimentSpec spec;
    spec.kernel = "em3d";
    spec.iterScale = 0.25;
    spec.nodes = 8;
    RunResult r = runExperiment(spec);
    EXPECT_TRUE(r.completed);
}

TEST(Experiment, FullStackRunsOnBoundedAdaptiveNetwork)
{
    // End-to-end protocol correctness over the hardest network
    // configuration: adaptive routing (in-flight reordering, restored by
    // the ingress reorder buffer) plus finite buffers (credit
    // backpressure and escape re-routing). The run must complete, and
    // identical specs must replay identically.
    auto run_once = [] {
        ExperimentSpec spec;
        spec.kernel = "unstructured";
        spec.predictor = PredictorKind::LtpPerBlock;
        spec.mode = PredictorMode::Active;
        spec.nodes = 16;
        NetworkParams net;
        net.topology = TopologyKind::Mesh2D;
        net.routing = RoutingPolicy::MinimalAdaptive;
        net.vcDepth = 2;
        spec.net = net;
        return runExperiment(spec);
    };
    RunResult a = run_once();
    EXPECT_TRUE(a.completed);
    EXPECT_GT(a.netMsgs, 0u);
    RunResult b = run_once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.netMsgs, b.netMsgs);
    EXPECT_EQ(a.selfInvsIssued, b.selfInvsIssued);
}

TEST(Experiment, SpeedupResultRatio)
{
    SpeedupResult s;
    s.base.cycles = 1100;
    s.pred.cycles = 1000;
    EXPECT_NEAR(s.speedup(), 1.1, 1e-9);
}

TEST(RunResult, FractionsAndTimeliness)
{
    RunResult r;
    r.invalidations = 200;
    r.predicted = 150;
    r.notPredicted = 50;
    r.mispredicted = 10;
    EXPECT_DOUBLE_EQ(r.accuracy(), 0.75);
    EXPECT_DOUBLE_EQ(r.mispredictionRate(), 0.05);
    r.selfInvTimelyCorrect = 90;
    r.selfInvLateCorrect = 10;
    EXPECT_DOUBLE_EQ(r.timeliness(), 0.9);
}

} // namespace
} // namespace ltp
