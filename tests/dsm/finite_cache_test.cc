/**
 * @file
 * Integration tests with FINITE caches: evictions generate writebacks
 * that ride the same directory paths as self-invalidations (without
 * entering the verification mask), and the system stays coherent.
 */

#include <gtest/gtest.h>

#include "dsm/system.hh"

namespace ltp
{
namespace
{

RunResult
runFinite(const std::string &kernel, unsigned sets, unsigned ways,
          PredictorKind kind = PredictorKind::Base)
{
    SystemParams sp = SystemParams::withPredictor(
        kind,
        kind == PredictorKind::Base ? PredictorMode::Off
                                    : PredictorMode::Active,
        30);
    sp.cache.numSets = sets;
    sp.cache.ways = ways;
    KernelConfig cfg = defaultConfig(kernel);
    cfg.nodes = sp.numNodes;
    cfg.iters = std::max(1u, cfg.iters / 4);
    DsmSystem sys(sp);
    auto k = makeKernel(kernel);
    return sys.run(*k, cfg);
}

TEST(FiniteCache, Em3dCompletesWithTinyCache)
{
    RunResult r = runFinite("em3d", 8, 2);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.invalidations, 0u);
}

TEST(FiniteCache, TomcatvCompletesWithTinyCache)
{
    RunResult r = runFinite("tomcatv", 8, 2);
    EXPECT_TRUE(r.completed);
}

TEST(FiniteCache, LockKernelSurvivesEvictions)
{
    // raytrace's lock-heavy path with a 4-block cache: evicting lock
    // words mid-spin must not break mutual exclusion or deadlock.
    RunResult r = runFinite("raytrace", 2, 2);
    EXPECT_TRUE(r.completed);
}

TEST(FiniteCache, EvictionsDoNotScoreAsPredictions)
{
    RunResult r = runFinite("em3d", 8, 2);
    // Base run with evictions: no self-invalidation bookkeeping at all.
    EXPECT_EQ(r.selfInvsIssued, 0u);
    EXPECT_EQ(r.selfInvTimelyCorrect + r.selfInvLateCorrect +
                  r.selfInvPremature,
              0u);
}

TEST(FiniteCache, ActiveLtpCoexistsWithEvictions)
{
    RunResult r = runFinite("em3d", 16, 2, PredictorKind::LtpPerBlock);
    EXPECT_TRUE(r.completed);
    // Accounting invariant still holds.
    EXPECT_EQ(r.predicted + r.notPredicted, r.invalidations);
}

TEST(FiniteCache, SmallerCacheMoreMisses)
{
    RunResult small = runFinite("em3d", 8, 1);
    RunResult big = runFinite("em3d", 256, 4);
    EXPECT_GT(small.cycles, big.cycles);
}

} // namespace
} // namespace ltp
