/** @file Behavioural tests for the DSI comparison scheme. */

#include <gtest/gtest.h>

#include <vector>

#include "predictor/dsi.hh"

namespace ltp
{
namespace
{

/** Captures the self-invalidation requests DSI issues at boundaries. */
class RecordingPort : public SelfInvalidationPort
{
  public:
    void requestSelfInvalidate(Addr blk) override { flushed.push_back(blk); }

    std::vector<Addr> flushed;
};

class DsiTest : public ::testing::Test
{
  protected:
    DsiTest() { dsi_.setPort(&port_); }

    DsiPredictor dsi_;
    RecordingPort port_;
};

TEST_F(DsiTest, NeverPredictsAtATouch)
{
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(dsi_.onTouch(0x100, 0x1000 + i * 4, i % 2, i == 0));
}

TEST_F(DsiTest, CandidateMarkedByFillInfo)
{
    dsi_.onFillInfo(0x100, FillInfo{true});
    EXPECT_TRUE(dsi_.isCandidate(0x100));
    EXPECT_EQ(dsi_.numCandidates(), 1u);
}

TEST_F(DsiTest, NonCandidateFillClears)
{
    dsi_.onFillInfo(0x100, FillInfo{true});
    dsi_.onFillInfo(0x100, FillInfo{false}); // e.g., migratory upgrade
    EXPECT_FALSE(dsi_.isCandidate(0x100));
}

TEST_F(DsiTest, SyncBoundaryFlushesAllCandidates)
{
    dsi_.onFillInfo(0x100, FillInfo{true});
    dsi_.onFillInfo(0x200, FillInfo{true});
    dsi_.onFillInfo(0x300, FillInfo{false});
    dsi_.onSyncBoundary();
    EXPECT_EQ(port_.flushed, (std::vector<Addr>{0x100, 0x200}));
}

TEST_F(DsiTest, FlushIsRepeatedEveryBoundary)
{
    // Candidacy survives the flush (the block will be re-fetched and
    // re-versioned); every boundary flushes the whole list — the
    // burstiness the paper measures.
    dsi_.onFillInfo(0x100, FillInfo{true});
    dsi_.onSyncBoundary();
    dsi_.onSyncBoundary();
    EXPECT_EQ(port_.flushed.size(), 2u);
}

TEST_F(DsiTest, InvalidationDropsCandidate)
{
    dsi_.onFillInfo(0x100, FillInfo{true});
    dsi_.onInvalidation(0x100);
    dsi_.onSyncBoundary();
    EXPECT_TRUE(port_.flushed.empty());
}

TEST_F(DsiTest, PrematureVerificationDropsCandidate)
{
    // After a premature flush the re-fetched copy's version matches the
    // directory again, so the block stops being a candidate.
    dsi_.onFillInfo(0x100, FillInfo{true});
    dsi_.onVerification(0x100, /*premature=*/true);
    dsi_.onSyncBoundary();
    EXPECT_TRUE(port_.flushed.empty());
}

TEST_F(DsiTest, CorrectVerificationKeepsCandidate)
{
    dsi_.onFillInfo(0x100, FillInfo{true});
    dsi_.onVerification(0x100, /*premature=*/false);
    dsi_.onSyncBoundary();
    EXPECT_EQ(port_.flushed.size(), 1u);
}

TEST_F(DsiTest, FlushOrderIsDeterministic)
{
    dsi_.onFillInfo(0x300, FillInfo{true});
    dsi_.onFillInfo(0x100, FillInfo{true});
    dsi_.onFillInfo(0x200, FillInfo{true});
    dsi_.onSyncBoundary();
    EXPECT_EQ(port_.flushed, (std::vector<Addr>{0x100, 0x200, 0x300}));
}

TEST_F(DsiTest, NoPortNoCrash)
{
    DsiPredictor lone;
    lone.onFillInfo(0x100, FillInfo{true});
    lone.onSyncBoundary(); // must not dereference a null port
}

} // namespace
} // namespace ltp
