/**
 * @file
 * Behavioural tests for the Last-Touch Predictors, including the four
 * Figure 3 scenarios from the paper (simple trace, procedure reuse,
 * loop reuse, conditional) and the subtrace-aliasing cases.
 */

#include <gtest/gtest.h>

#include <vector>

#include "predictor/last_pc.hh"
#include "predictor/ltp_global.hh"
#include "predictor/ltp_per_block.hh"

namespace ltp
{
namespace
{

constexpr Addr blkX = 0x100;
constexpr Addr blkY = 0x200;
constexpr Pc pcI = 0x1000, pcJ = 0x1004, pcK = 0x1008;

/** Feed one complete trace (fill + touches) and end it. Returns the
 *  index of the first touch predicted as a last touch (or -1). */
template <typename Pred>
int
runTrace(Pred &p, Addr blk, const std::vector<Pc> &pcs)
{
    int predicted_at = -1;
    for (std::size_t i = 0; i < pcs.size(); ++i) {
        bool last = p.onTouch(blk, pcs[i], false, i == 0);
        if (last && predicted_at < 0)
            predicted_at = int(i);
    }
    p.onInvalidation(blk);
    return predicted_at;
}

TEST(LtpPerBlock, NoPredictionWhileTraining)
{
    LtpPerBlock p;
    // First two occurrences only train (counter not yet saturated).
    EXPECT_EQ(runTrace(p, blkX, {pcI, pcJ, pcK}), -1);
    EXPECT_EQ(runTrace(p, blkX, {pcI, pcJ, pcK}), -1);
}

TEST(LtpPerBlock, PredictsRepeatedTraceAtLastTouch)
{
    LtpPerBlock p;
    runTrace(p, blkX, {pcI, pcJ, pcK});
    runTrace(p, blkX, {pcI, pcJ, pcK});
    // Third time: counter saturated; the prediction must fire exactly
    // at the last touch (Figure 3a).
    EXPECT_EQ(runTrace(p, blkX, {pcI, pcJ, pcK}), 2);
}

TEST(LtpPerBlock, ProcedureReuseDistinguished)
{
    // Figure 3(b): foo() called twice; the last touch is pcJ's second
    // execution. The trace {pcI, pcJ, pcJ} identifies it.
    LtpPerBlock p;
    for (int i = 0; i < 2; ++i)
        runTrace(p, blkX, {pcI, pcJ, pcJ});
    EXPECT_EQ(runTrace(p, blkX, {pcI, pcJ, pcJ}), 2);
}

TEST(LtpPerBlock, LoopReuseDistinguished)
{
    // Figure 3(c): the loop instruction pcJ touches the block twice.
    LtpPerBlock p;
    for (int i = 0; i < 2; ++i)
        runTrace(p, blkX, {pcI, pcJ, pcJ, pcJ});
    int at = runTrace(p, blkX, {pcI, pcJ, pcJ, pcJ});
    EXPECT_EQ(at, 3);
}

TEST(LtpPerBlock, ConditionalAlternationAliases)
{
    // Figure 3(d) + Section 3.1's red/black SOR remark: when the taken
    // path's trace {pcI, pcJ} alternates with the not-taken path's
    // {pcI, pcJ, pcK}, the short trace is a complete subtrace of the
    // long one starting at the same PC — "trace-based correlation will
    // result in a last-touch misprediction in every invocation of such
    // code". The long trace must fire prematurely at pcJ once the short
    // signature saturates.
    LtpPerBlock p;
    for (int i = 0; i < 3; ++i) {
        runTrace(p, blkX, {pcI, pcJ});
        runTrace(p, blkX, {pcI, pcJ, pcK});
    }
    EXPECT_EQ(runTrace(p, blkX, {pcI, pcJ, pcK}), 1);
}

TEST(LtpPerBlock, SubtraceAliasingMispredicts)
{
    // The red/black SOR case from Section 3.1: {pcI,pcJ} is a complete
    // subtrace of {pcI,pcJ,pcK} starting at the same PC.
    LtpPerBlock p;
    runTrace(p, blkX, {pcI, pcJ});
    runTrace(p, blkX, {pcI, pcJ});
    runTrace(p, blkX, {pcI, pcJ});
    // Now the long trace passes through the saturated short signature:
    int at = runTrace(p, blkX, {pcI, pcJ, pcK});
    EXPECT_EQ(at, 1); // premature prediction at pcJ
}

TEST(LtpPerBlock, PrematureVerificationClearsConfidence)
{
    LtpPerBlock p;
    runTrace(p, blkX, {pcI, pcJ});
    runTrace(p, blkX, {pcI, pcJ});
    runTrace(p, blkX, {pcI, pcJ});
    // Trigger the premature prediction and report it.
    EXPECT_FALSE(p.onTouch(blkX, pcI, false, true));
    EXPECT_TRUE(p.onTouch(blkX, pcJ, false, false));
    p.onVerification(blkX, /*premature=*/true);
    // The {pcI,pcJ} signature must now be silenced.
    EXPECT_FALSE(p.onTouch(blkX, pcI, false, true));
    EXPECT_FALSE(p.onTouch(blkX, pcJ, false, false));
}

TEST(LtpPerBlock, CorrectVerificationKeepsPredicting)
{
    LtpPerBlock p;
    runTrace(p, blkX, {pcI, pcJ});
    runTrace(p, blkX, {pcI, pcJ});
    for (int i = 0; i < 5; ++i) {
        EXPECT_FALSE(p.onTouch(blkX, pcI, false, true));
        EXPECT_TRUE(p.onTouch(blkX, pcJ, false, false)) << i;
        p.onVerification(blkX, /*premature=*/false);
    }
}

TEST(LtpPerBlock, BlocksAreIndependent)
{
    LtpPerBlock p;
    for (int i = 0; i < 3; ++i)
        runTrace(p, blkX, {pcI, pcJ});
    // blkY never saw any trace: no prediction even on the same PCs.
    EXPECT_FALSE(p.onTouch(blkY, pcI, false, true));
    EXPECT_FALSE(p.onTouch(blkY, pcJ, false, false));
}

TEST(LtpPerBlock, TableGrowsOnePerDistinctSignature)
{
    LtpPerBlock p;
    runTrace(p, blkX, {pcI});
    runTrace(p, blkX, {pcI, pcJ});
    runTrace(p, blkX, {pcI, pcJ, pcK});
    runTrace(p, blkX, {pcI}); // repeat: no new entry
    EXPECT_EQ(p.tableSize(blkX), 3u);
}

TEST(LtpPerBlock, StorageCountsActiveBlocksOnly)
{
    LtpPerBlock p;
    runTrace(p, blkX, {pcI});
    p.onTouch(blkY, pcI, false, true); // trace never completes
    auto s = p.storage();
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->activeBlocks, 1u);
    EXPECT_EQ(s->totalEntries, 1u);
    EXPECT_EQ(s->sigBits, 30u);
}

TEST(LtpPerBlock, StorageBytesFormula)
{
    StorageStats s;
    s.sigBits = 13;
    s.activeBlocks = 10;
    s.totalEntries = 28; // 2.8 entries per block
    // 13 + 2.8 * (13 + 2) = 55 bits = 6.875 bytes (the paper's ~7 B).
    EXPECT_NEAR(s.bytesPerBlock(), 6.875, 1e-9);
}

TEST(LtpGlobal, SharesSignaturesAcrossBlocks)
{
    // The PAg upside: block Y benefits from block X's training.
    LtpGlobal p;
    runTrace(p, blkX, {pcI, pcJ});
    runTrace(p, blkX, {pcI, pcJ});
    runTrace(p, blkX, {pcI, pcJ});
    EXPECT_FALSE(p.onTouch(blkY, pcI, false, true));
    EXPECT_TRUE(p.onTouch(blkY, pcJ, false, false));
}

TEST(LtpGlobal, CrossBlockSubtraceAliasing)
{
    // Section 5.3: block X's complete trace {pcI} is a prefix of block
    // Y's trace {pcI, pcJ} — the global table mispredicts on Y.
    LtpGlobal p;
    runTrace(p, blkX, {pcI});
    runTrace(p, blkX, {pcI});
    runTrace(p, blkX, {pcI});
    EXPECT_TRUE(p.onTouch(blkY, pcI, false, true)) // premature on Y
        << "global table should alias X's trace onto Y";
}

TEST(LtpGlobal, PerBlockDoesNotAliasSameCase)
{
    LtpPerBlock p;
    runTrace(p, blkX, {pcI});
    runTrace(p, blkX, {pcI});
    runTrace(p, blkX, {pcI});
    EXPECT_FALSE(p.onTouch(blkY, pcI, false, true));
}

TEST(LtpGlobal, SingleTableEntryForCommonPattern)
{
    LtpGlobal p;
    for (Addr blk = 0; blk < 32 * 20; blk += 32) {
        p.onTouch(blk, pcI, false, true);
        p.onInvalidation(blk);
    }
    EXPECT_EQ(p.globalTableSize(), 1u);
    auto s = p.storage();
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->activeBlocks, 20u);
    EXPECT_LT(s->entriesPerBlock(), 1.0);
}

TEST(LastPc, PredictsUniqueLastPc)
{
    LastPcPredictor p;
    runTrace(p, blkX, {pcI, pcJ, pcK});
    runTrace(p, blkX, {pcI, pcJ, pcK});
    EXPECT_EQ(runTrace(p, blkX, {pcI, pcJ, pcK}), 2);
}

TEST(LastPc, LoopReuseDefeatsIt)
{
    // Section 3.1: when the last-touch PC also appears mid-trace, the
    // single-PC predictor fires prematurely...
    LastPcPredictor p;
    runTrace(p, blkX, {pcI, pcJ, pcJ});
    runTrace(p, blkX, {pcI, pcJ, pcJ});
    int at = runTrace(p, blkX, {pcI, pcJ, pcJ});
    EXPECT_EQ(at, 1);
}

TEST(LastPc, TrainingAndPenaltyOscillation)
{
    // ...and the counter clear then silences it until retrained —
    // the mechanism that keeps Last-PC's misprediction rate low while
    // its coverage collapses (moldyn in the paper).
    LastPcPredictor p;
    runTrace(p, blkX, {pcI, pcJ, pcJ});
    runTrace(p, blkX, {pcI, pcJ, pcJ});
    EXPECT_FALSE(p.onTouch(blkX, pcI, false, true));
    EXPECT_TRUE(p.onTouch(blkX, pcJ, false, false)); // premature
    p.onVerification(blkX, true);
    EXPECT_FALSE(p.onTouch(blkX, pcJ, false, false)); // silenced
    p.onInvalidation(blkX);
}

TEST(LastPc, TraceBasedBeatsItOnLoop)
{
    // The paper's core claim, in miniature: same reference stream, LTP
    // predicts the true last touch, Last-PC cannot.
    LtpPerBlock ltp;
    LastPcPredictor lpc;
    const std::vector<Pc> trace = {pcI, pcJ, pcJ, pcJ};
    for (int i = 0; i < 3; ++i) {
        runTrace(ltp, blkX, trace);
        runTrace(lpc, blkX, trace);
    }
    EXPECT_EQ(runTrace(ltp, blkX, trace), 3);
    EXPECT_NE(runTrace(lpc, blkX, trace), 3);
}

} // namespace
} // namespace ltp
