/** @file Unit and property tests for trace signatures and counters. */

#include <gtest/gtest.h>

#include "predictor/signature.hh"
#include "sim/rng.hh"

namespace ltp
{
namespace
{

TEST(Signature, InitDependsOnPc)
{
    auto a = Signature::init(0x1000, 30);
    auto b = Signature::init(0x1004, 30);
    EXPECT_NE(a, b);
}

TEST(Signature, ExtendChangesValue)
{
    auto a = Signature::init(0x1000, 30);
    auto b = a.extend(0x1004);
    EXPECT_NE(a, b);
}

TEST(Signature, TruncatedToRequestedBits)
{
    for (unsigned bits : {6u, 11u, 13u, 30u}) {
        auto s = Signature::init(0xdeadbeef, bits);
        EXPECT_LT(s.value(), std::uint64_t(1) << bits) << bits;
        EXPECT_EQ(s.bits(), bits);
    }
}

TEST(Signature, AdditionIsCommutative)
{
    // Truncated addition is order-insensitive — an inherent (documented)
    // property of the paper's encoding.
    auto a = Signature::init(0x10, 13).extend(0x20).extend(0x30);
    auto b = Signature::init(0x10, 13).extend(0x30).extend(0x20);
    EXPECT_EQ(a, b);
}

TEST(Signature, SameTraceSameSignatureProperty)
{
    Rng rng(17);
    for (int t = 0; t < 100; ++t) {
        Pc start = rng.next();
        auto a = Signature::init(start, 13);
        auto b = Signature::init(start, 13);
        for (int i = 0; i < 8; ++i) {
            Pc pc = rng.next();
            a = a.extend(pc);
            b = b.extend(pc);
        }
        EXPECT_EQ(a, b);
    }
}

TEST(Signature, PrefixDiffersFromFullTrace)
{
    // {PC} must differ from {PC, PC} (the tomcatv outer/inner case) at
    // reasonable widths.
    auto outer = Signature::init(0x2000, 13);
    auto inner = Signature::init(0x2000, 13).extend(0x2000);
    EXPECT_NE(outer, inner);
}

TEST(Signature, DifferentWidthsNeverEqual)
{
    auto a = Signature::init(0x10, 13);
    auto b = Signature::init(0x10, 30);
    EXPECT_NE(a, b);
}

TEST(Signature, MixSpreadsAlignedPcs)
{
    // Word-aligned synthetic PCs must still produce well-spread low
    // bits (the reason mix() exists).
    auto a = Signature::init(0x4000, 13);
    auto b = a.extend(0x4000);
    auto c = b.extend(0x4000);
    EXPECT_NE(a.value(), b.value());
    EXPECT_NE(b.value(), c.value());
    EXPECT_NE(a.value(), c.value());
}

TEST(Signature, RotateXorIsOrderSensitive)
{
    // The alternative encoding distinguishes permuted traces that
    // truncated addition cannot.
    auto ab = Signature::init(0x10, 13, SigEncoding::RotateXor)
                  .extend(0x20)
                  .extend(0x30);
    auto ba = Signature::init(0x10, 13, SigEncoding::RotateXor)
                  .extend(0x30)
                  .extend(0x20);
    EXPECT_NE(ab, ba);
}

TEST(Signature, RotateXorDeterministic)
{
    auto a = Signature::init(0x10, 13, SigEncoding::RotateXor)
                 .extend(0x20);
    auto b = Signature::init(0x10, 13, SigEncoding::RotateXor)
                 .extend(0x20);
    EXPECT_EQ(a, b);
}

TEST(Signature, RotateXorStaysTruncated)
{
    auto s = Signature::init(~0ull, 6, SigEncoding::RotateXor)
                 .extend(0x123456789)
                 .extend(0x42);
    EXPECT_LT(s.value(), 64u);
}

TEST(ConfidenceCounter, DefaultNotSaturated)
{
    ConfidenceCounter c; // initial 2, max 3
    EXPECT_FALSE(c.saturated());
    EXPECT_TRUE(c.atLeast(2));
}

TEST(ConfidenceCounter, StrengthenSaturates)
{
    ConfidenceCounter c(0, 3);
    for (int i = 0; i < 10; ++i)
        c.strengthen();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(ConfidenceCounter, WeakenClears)
{
    ConfidenceCounter c(3, 3);
    c.weaken();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_FALSE(c.atLeast(1));
}

TEST(ConfidenceCounter, RecoveryTakesMaxSteps)
{
    ConfidenceCounter c(3, 3);
    c.weaken();
    c.strengthen();
    c.strengthen();
    EXPECT_FALSE(c.saturated());
    c.strengthen();
    EXPECT_TRUE(c.saturated());
}

} // namespace
} // namespace ltp
