/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace ltp
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool differed = false;
    for (int i = 0; i < 16; ++i)
        differed |= a.next() != b.next();
    EXPECT_TRUE(differed);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        hit_lo |= v == 3;
        hit_hi |= v == 5;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Law of large numbers: mean should be near 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, SplitMix64KnownValue)
{
    // SplitMix64 reference: seed 0 -> first output.
    Rng r(0);
    EXPECT_EQ(r.next(), 0xe220a8397b1dcdafull);
}

} // namespace
} // namespace ltp
