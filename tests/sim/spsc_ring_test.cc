/** @file Unit tests for the lock-free SPSC mailbox ring. */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/par/spsc_ring.hh"

namespace ltp
{
namespace
{

TEST(SpscRing, StartsEmptyAndPopFails)
{
    SpscRing<int, 8> ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.size(), 0u);
    int out = -1;
    EXPECT_FALSE(ring.tryPop(out));
    EXPECT_EQ(out, -1);
}

TEST(SpscRing, FifoOrderAndFullBoundary)
{
    SpscRing<int, 4> ring;
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(int(i)));
    // Exactly Capacity items fit; the next push must fail, not clobber.
    EXPECT_FALSE(ring.tryPush(99));
    EXPECT_EQ(ring.size(), 4u);

    int out = -1;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(ring.tryPop(out));
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PushAfterDrainReusesSlots)
{
    SpscRing<int, 4> ring;
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(int(i)));
    int out;
    ASSERT_TRUE(ring.tryPop(out));
    // One slot freed: exactly one more push fits (full-boundary math
    // with wrapped indices, not masked positions).
    EXPECT_TRUE(ring.tryPush(4));
    EXPECT_FALSE(ring.tryPush(5));
}

TEST(SpscRing, WraparoundManyTimesKeepsFifo)
{
    // Push/pop far beyond the capacity so head/tail wrap the index
    // space of the (power-of-two) ring repeatedly.
    SpscRing<std::uint32_t, 8> ring;
    std::uint32_t next_push = 0, next_pop = 0;
    for (int cycle = 0; cycle < 1000; ++cycle) {
        unsigned burst = 1 + (cycle % 7);
        for (unsigned i = 0; i < burst; ++i) {
            if (!ring.tryPush(std::uint32_t(next_push)))
                break;
            ++next_push;
        }
        std::uint32_t out;
        unsigned drain = 1 + ((cycle * 3) % 7);
        for (unsigned i = 0; i < drain; ++i) {
            if (!ring.tryPop(out))
                break;
            ASSERT_EQ(out, next_pop);
            ++next_pop;
        }
    }
    std::uint32_t out;
    while (ring.tryPop(out)) {
        ASSERT_EQ(out, next_pop);
        ++next_pop;
    }
    EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, MoveOnlyPayloads)
{
    SpscRing<std::unique_ptr<int>, 4> ring;
    EXPECT_TRUE(ring.tryPush(std::make_unique<int>(7)));
    std::unique_ptr<int> out;
    ASSERT_TRUE(ring.tryPop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 7);
}

TEST(SpscRingStress, SingleProducerSingleConsumerSeesEveryItemInOrder)
{
    // One producer thread races one consumer over a small ring so the
    // full and empty boundaries are hit constantly. The consumer must
    // observe exactly 0..N-1 in order — any lost wakeup, torn slot, or
    // off-by-one in the index math breaks the sequence.
    constexpr std::uint32_t kItems = 200'000;
    SpscRing<std::uint32_t, 64> ring;

    std::thread producer([&] {
        std::uint32_t next = 0;
        while (next < kItems) {
            if (ring.tryPush(std::uint32_t(next)))
                ++next;
        }
    });

    std::uint32_t expect = 0;
    std::uint32_t out;
    while (expect < kItems) {
        if (ring.tryPop(out)) {
            ASSERT_EQ(out, expect);
            ++expect;
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

} // namespace
} // namespace ltp
