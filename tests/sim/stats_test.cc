/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace ltp
{
namespace
{

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, EmptyIsZero)
{
    Average a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(10);
    a.sample(20);
    a.sample(0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 20.0);
}

TEST(Average, ResetClears)
{
    Average a;
    a.sample(5);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Average, NegativeSamples)
{
    Average a;
    a.sample(-4);
    a.sample(4);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), -4.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 4); // [0,40) in 4 buckets
    h.sample(0);
    h.sample(9.9);
    h.sample(10);
    h.sample(39.9);
    h.sample(40);
    h.sample(1000);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.totalSamples(), 6u);
}

TEST(Histogram, MeanOverAllSamples)
{
    Histogram h(1.0, 2);
    h.sample(1);
    h.sample(3);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(StatGroup, CounterIsPersistentByName)
{
    StatGroup g;
    g.counter("a.b").inc(3);
    g.counter("a.b").inc(4);
    EXPECT_EQ(g.counterValue("a.b"), 7u);
}

TEST(StatGroup, MissingCounterReadsZero)
{
    StatGroup g;
    EXPECT_EQ(g.counterValue("missing"), 0u);
    EXPECT_FALSE(g.hasCounter("missing"));
}

TEST(StatGroup, AverageByName)
{
    StatGroup g;
    g.average("lat").sample(100);
    g.average("lat").sample(200);
    EXPECT_DOUBLE_EQ(g.averageMean("lat"), 150.0);
    EXPECT_TRUE(g.hasAverage("lat"));
}

TEST(StatGroup, DumpContainsAllStats)
{
    StatGroup g;
    g.counter("x").inc(5);
    g.average("y").sample(1.5);
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("x 5"), std::string::npos);
    EXPECT_NE(oss.str().find("y mean=1.50"), std::string::npos);
}

TEST(StatGroup, ResetAllZeroesEverything)
{
    StatGroup g;
    g.counter("x").inc(5);
    g.average("y").sample(2);
    g.resetAll();
    EXPECT_EQ(g.counterValue("x"), 0u);
    EXPECT_EQ(g.average("y").count(), 0u);
}

} // namespace
} // namespace ltp
