/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace ltp
{
namespace
{

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, EmptyIsZero)
{
    Average a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(10);
    a.sample(20);
    a.sample(0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 10.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 20.0);
}

TEST(Average, ResetClears)
{
    Average a;
    a.sample(5);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Average, NegativeSamples)
{
    Average a;
    a.sample(-4);
    a.sample(4);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), -4.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 4); // [0,40) in 4 buckets
    h.sample(0);
    h.sample(9.9);
    h.sample(10);
    h.sample(39.9);
    h.sample(40);
    h.sample(1000);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.totalSamples(), 6u);
}

TEST(Histogram, NegativeSamplesClampIntoBucketZero)
{
    // Regression: a negative sample used to be cast to size_t (undefined
    // behavior) and only landed in overflow by luck.
    Histogram h(10.0, 4);
    h.sample(-5.0);
    h.sample(-0.1);
    h.sample(-1e300);
    EXPECT_EQ(h.bucket(0), 3u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.totalSamples(), 3u);
    // Values beyond any size_t still land in overflow, not in UB.
    h.sample(1e300);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.totalSamples(), 4u);
}

TEST(Histogram, MeanOverAllSamples)
{
    Histogram h(1.0, 2);
    h.sample(1);
    h.sample(3);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, PercentileWalksBuckets)
{
    Histogram h(10.0, 10); // [0,100)
    for (int i = 0; i < 50; ++i)
        h.sample(5); // bucket 0
    for (int i = 0; i < 49; ++i)
        h.sample(55); // bucket 5
    h.sample(95); // bucket 9
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 60.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(Histogram, PercentileUsesCeilAtRankBoundaries)
{
    // 98 samples in bucket 0, 2 in bucket 9: the 99th sample (nearest
    // rank for p99) lives in bucket 9, not bucket 0.
    Histogram h(10.0, 10);
    for (int i = 0; i < 98; ++i)
        h.sample(5);
    h.sample(95);
    h.sample(95);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.98), 10.0);
}

TEST(Histogram, PercentileOfEmptyIsZero)
{
    Histogram h(1.0, 4);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, PercentileOverflowReportsRange)
{
    Histogram h(10.0, 4); // [0,40)
    h.sample(1000);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 40.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(10.0, 4);
    h.sample(5);
    h.sample(500);
    h.reset();
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_EQ(h.bucket(0), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StatGroup, CounterIsPersistentByName)
{
    StatGroup g;
    g.counter("a.b").inc(3);
    g.counter("a.b").inc(4);
    EXPECT_EQ(g.counterValue("a.b"), 7u);
}

TEST(StatGroup, MissingCounterReadsZero)
{
    StatGroup g;
    EXPECT_EQ(g.counterValue("missing"), 0u);
    EXPECT_FALSE(g.hasCounter("missing"));
}

TEST(StatGroup, AverageByName)
{
    StatGroup g;
    g.average("lat").sample(100);
    g.average("lat").sample(200);
    EXPECT_DOUBLE_EQ(g.averageMean("lat"), 150.0);
    EXPECT_TRUE(g.hasAverage("lat"));
}

TEST(StatGroup, DumpContainsAllStats)
{
    StatGroup g;
    g.counter("x").inc(5);
    g.average("y").sample(1.5);
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("x 5"), std::string::npos);
    EXPECT_NE(oss.str().find("y mean=1.50"), std::string::npos);
}

TEST(StatGroup, ResetAllZeroesEverything)
{
    StatGroup g;
    g.counter("x").inc(5);
    g.average("y").sample(2);
    g.histogram("z", 1.0, 4).sample(2);
    g.resetAll();
    EXPECT_EQ(g.counterValue("x"), 0u);
    EXPECT_EQ(g.average("y").count(), 0u);
    EXPECT_EQ(g.histogram("z").totalSamples(), 0u);
}

TEST(StatGroup, HistogramIsPersistentByName)
{
    StatGroup g;
    g.histogram("net.lat", 10.0, 8).sample(15);
    // Shape arguments on later lookups are ignored.
    Histogram &h = g.histogram("net.lat", 999.0, 1);
    EXPECT_EQ(h.numBuckets(), 8u);
    EXPECT_DOUBLE_EQ(h.bucketWidth(), 10.0);
    EXPECT_EQ(h.totalSamples(), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
}

TEST(StatGroup, FindHistogram)
{
    StatGroup g;
    EXPECT_EQ(g.findHistogram("missing"), nullptr);
    EXPECT_FALSE(g.hasHistogram("missing"));
    g.histogram("h", 1.0, 2).sample(0.5);
    ASSERT_NE(g.findHistogram("h"), nullptr);
    EXPECT_TRUE(g.hasHistogram("h"));
    EXPECT_EQ(g.findHistogram("h")->totalSamples(), 1u);
}

TEST(StatGroup, DumpContainsHistograms)
{
    StatGroup g;
    g.histogram("lat", 10.0, 4).sample(5);
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("lat hist"), std::string::npos);
    EXPECT_NE(oss.str().find("count=1"), std::string::npos);
}

TEST(StatGroup, CounterPrefixQueries)
{
    StatGroup g;
    g.counter("net.linkBusy.0-1").inc(10);
    g.counter("net.linkBusy.1-2").inc(25);
    g.counter("net.linkMsgs.1-2").inc(1000);
    EXPECT_EQ(g.maxCounterValueWithPrefix("net.linkBusy."), 25u);
    EXPECT_EQ(g.sumCountersWithPrefix("net.linkBusy."), 35u);
    EXPECT_EQ(g.maxCounterValueWithPrefix("nope."), 0u);
}

TEST(StatGroup, DumpOrderIsCanonicalNotInsertionOrder)
{
    // The parallel engine constructs shards (and therefore registers
    // stats) in an order that depends on the shard count; the dump must
    // not care. Register the same stats in two different orders and
    // demand byte-identical output.
    StatGroup forward;
    forward.counter("a.first").inc(1);
    forward.counter("z.last").inc(2);
    forward.average("m.mid").sample(3.0);
    forward.average("b.early").sample(4.0);
    forward.histogram("h.one", 2.0, 4).sample(1.0);
    forward.histogram("c.two", 2.0, 4).sample(3.0);

    StatGroup reversed;
    reversed.histogram("c.two", 2.0, 4).sample(3.0);
    reversed.histogram("h.one", 2.0, 4).sample(1.0);
    reversed.average("b.early").sample(4.0);
    reversed.average("m.mid").sample(3.0);
    reversed.counter("z.last").inc(2);
    reversed.counter("a.first").inc(1);

    std::ostringstream fwd, rev;
    forward.dump(fwd);
    reversed.dump(rev);
    EXPECT_EQ(fwd.str(), rev.str());

    // And the order really is sorted by name within each section.
    std::string s = fwd.str();
    EXPECT_LT(s.find("a.first"), s.find("z.last"));
    EXPECT_LT(s.find("b.early"), s.find("m.mid"));
    EXPECT_LT(s.find("c.two"), s.find("h.one"));
}

TEST(StatGroup, MergeFromMatchesSingleGroupAccumulation)
{
    // Spreading samples over two groups and merging must dump the same
    // bytes as accumulating into one group — the property that makes
    // per-shard statistics invisible in the output.
    StatGroup whole;
    StatGroup part_a, part_b;

    whole.counter("c").inc(7);
    part_a.counter("c").inc(3);
    part_b.counter("c").inc(4);

    for (int v : {10, 400, 30}) {
        whole.average("avg").sample(v);
        whole.histogram("hist", 16.0, 8).sample(v);
    }
    part_a.average("avg").sample(10);
    part_a.histogram("hist", 16.0, 8).sample(10);
    for (int v : {400, 30}) {
        part_b.average("avg").sample(v);
        part_b.histogram("hist", 16.0, 8).sample(v);
    }
    // A name only one shard ever touched.
    part_b.counter("only.b").inc(9);
    whole.counter("only.b").inc(9);

    StatGroup merged;
    merged.mergeFrom(part_a);
    merged.mergeFrom(part_b);

    std::ostringstream want, got;
    whole.dump(want);
    merged.dump(got);
    EXPECT_EQ(want.str(), got.str());
    EXPECT_EQ(merged.counterValue("c"), 7u);
    EXPECT_DOUBLE_EQ(merged.averageMean("avg"),
                     whole.averageMean("avg"));
    ASSERT_NE(merged.findHistogram("hist"), nullptr);
    EXPECT_EQ(merged.findHistogram("hist")->totalSamples(), 3u);
}

TEST(Histogram, MergeFromEmptySourceIsIdentity)
{
    Histogram h(10.0, 4);
    h.sample(5);
    h.sample(1000);
    Histogram empty(10.0, 4);
    h.merge(empty);
    EXPECT_EQ(h.totalSamples(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.overflow(), 1u);

    // And merging into an empty histogram copies the source.
    Histogram dst(10.0, 4);
    dst.merge(h);
    EXPECT_EQ(dst.totalSamples(), 2u);
    EXPECT_EQ(dst.bucket(0), 1u);
    EXPECT_EQ(dst.overflow(), 1u);
    EXPECT_DOUBLE_EQ(dst.mean(), h.mean());
}

TEST(Histogram, SingleSamplePercentile)
{
    // With one sample every percentile is that sample's bucket; the
    // nearest-rank ceil must not index below the first occupied bucket.
    Histogram h(10.0, 10);
    h.sample(25); // bucket 2 -> upper edge 30
    EXPECT_DOUBLE_EQ(h.percentile(0.01), 30.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 30.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 30.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 30.0);
}

TEST(StatSnapshot, DeltaRoundTrip)
{
    StatGroup g;
    g.counter("c").inc(10);
    g.average("a").sample(4.0);
    StatSnapshot before = g.snapshot();

    g.counter("c").inc(7);
    g.counter("fresh").inc(3); // registered mid-interval
    g.average("a").sample(6.0);
    StatSnapshot after = g.snapshot();

    StatSnapshot d = after.delta(before);
    EXPECT_EQ(d.counters.at("c"), 7u);
    EXPECT_EQ(d.counters.at("fresh"), 3u); // absent-in-older = full value
    EXPECT_DOUBLE_EQ(d.averages.at("a").sum, 6.0);
    EXPECT_EQ(d.averages.at("a").count, 1u);

    // A quiet interval deltas to all zeroes, not to missing names.
    StatSnapshot quiet = g.snapshot().delta(after);
    EXPECT_EQ(quiet.counters.at("c"), 0u);
    EXPECT_EQ(quiet.averages.at("a").count, 0u);
}

TEST(StatInterning, IdsAreStableAndNameLookupIsInternOnce)
{
    StatGroup g;
    StatId a = g.counterId("net.msgs");
    StatId b = g.counterId("net.hops");
    EXPECT_NE(a, b);
    // Re-interning an existing name returns the same dense id, no
    // matter how many registrations happen in between.
    g.counter("mem.reads").inc();
    EXPECT_EQ(g.counterId("net.msgs"), a);
    EXPECT_EQ(g.counterId("net.hops"), b);
    EXPECT_EQ(g.numCounters(), 3u);
}

TEST(StatInterning, CounterAtAliasesTheNamedCounter)
{
    StatGroup g;
    StatId id = g.counterId("proto.getS");
    Counter &by_name = g.counter("proto.getS");
    EXPECT_EQ(&g.counterAt(id), &by_name);
    g.counterAt(id).inc(5);
    EXPECT_EQ(g.counterValue("proto.getS"), 5u);

    StatId aid = g.averageId("net.lat");
    EXPECT_EQ(&g.averageAt(aid), &g.average("net.lat"));
    g.averageAt(aid).sample(8.0);
    EXPECT_DOUBLE_EQ(g.averageMean("net.lat"), 8.0);
}

TEST(StatInterning, ReferencesSurviveSlabGrowth)
{
    // The structure-of-arrays registry grows by whole slabs behind
    // stable pointers: a Counter& cached at registration time (the
    // hot-path pattern every controller uses) must stay valid across
    // any number of later registrations.
    StatGroup g;
    Counter &early = g.counter("early");
    for (int i = 0; i < 1000; ++i)
        g.counter("filler." + std::to_string(i)).inc();
    early.inc(3);
    EXPECT_EQ(g.counterValue("early"), 3u);
    EXPECT_EQ(g.numCounters(), 1001u);
}

} // namespace
} // namespace ltp
