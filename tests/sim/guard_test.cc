/**
 * @file
 * Unit tests for the guard subsystem (src/sim/guard/): spec/env
 * parsing, the counter-based fault RNG, the invariant-checker
 * switchboard, the progress watchdog's detectors, WindowBarrier
 * teardown, SPSC-ring destruction with unconsumed entries, and the
 * crash flight recorder (clean and signal paths).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

#include "obs/categories.hh"
#include "sim/guard/checkers.hh"
#include "sim/guard/fault.hh"
#include "sim/guard/flight_recorder.hh"
#include "sim/guard/guard_params.hh"
#include "sim/guard/watchdog.hh"
#include "sim/par/spsc_ring.hh"
#include "sim/par/window_barrier.hh"

namespace ltp
{
namespace
{

// ---- GuardParams / environment ---------------------------------------

/** Scoped environment override (unset on destruction). */
struct ScopedEnv
{
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        ::setenv(name, value, 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char *name_;
};

TEST(GuardParams, DefaultsAreAllOff)
{
    guard::GuardParams p;
    EXPECT_FALSE(p.anyEnabled());
    EXPECT_FALSE(p.watchdogEnabled());
    EXPECT_FALSE(p.checksEnabled());
    EXPECT_FALSE(p.faultsEnabled());
    EXPECT_FALSE(p.recorderEnabled());
}

TEST(GuardParams, FromEnvParsesEveryKnob)
{
    ScopedEnv check("LTP_CHECK", "message,link");
    ScopedEnv fault("LTP_FAULT", "cal-overflow:period=3");
    ScopedEnv wd("LTP_WATCHDOG_MS", "2000");
    ScopedEnv wall("LTP_MAX_WALL_MS", "60000");
    ScopedEnv events("LTP_MAX_EVENTS", "123456");
    ScopedEnv rss("LTP_MAX_RSS_MB", "4096");
    ScopedEnv fr("LTP_FLIGHT_RECORDER", "fr.json");

    guard::GuardParams p = guard::guardParamsFromEnv();
    EXPECT_EQ(p.checkMask, obs::catBit(obs::Cat::Message) |
                               obs::catBit(obs::Cat::Link));
    EXPECT_EQ(p.faultSpec, "cal-overflow:period=3");
    EXPECT_EQ(p.noProgressMs, 2000u);
    // Defaults to LTP_WATCHDOG_MS when unset.
    EXPECT_EQ(p.barrierStallMs, 2000u);
    EXPECT_EQ(p.maxWallMs, 60000u);
    EXPECT_EQ(p.maxEvents, 123456u);
    EXPECT_EQ(p.maxRssMb, 4096u);
    EXPECT_EQ(p.flightRecorderFile, "fr.json");
    EXPECT_TRUE(p.anyEnabled());
}

TEST(GuardParams, FromEnvRejectsBadValues)
{
    {
        ScopedEnv bad("LTP_CHECK", "message,typo");
        EXPECT_THROW(guard::guardParamsFromEnv(), std::invalid_argument);
    }
    {
        ScopedEnv bad("LTP_WATCHDOG_MS", "soon");
        EXPECT_THROW(guard::guardParamsFromEnv(), std::invalid_argument);
    }
    {
        ScopedEnv bad("LTP_FAULT", "meteor-strike");
        EXPECT_THROW(guard::guardParamsFromEnv(), std::invalid_argument);
    }
}

// ---- fault-spec parsing and the counter-based RNG --------------------

TEST(FaultSpec, ParsesKindsAndKeys)
{
    guard::FaultPlan p = guard::parseFaultSpec(
        "link-stall:p=0.5,extra=8,seed=7;barrier-wedge:round=3,shard=2");
    EXPECT_TRUE(p.on(guard::FaultKind::LinkStall));
    EXPECT_TRUE(p.on(guard::FaultKind::BarrierWedge));
    EXPECT_FALSE(p.on(guard::FaultKind::SpillStorm));
    EXPECT_DOUBLE_EQ(p.linkStallP, 0.5);
    EXPECT_EQ(p.linkStallExtra, 8u);
    EXPECT_EQ(p.linkStallSeed, 7u);
    EXPECT_EQ(p.wedgeRound, 3u);
    EXPECT_EQ(p.wedgeShard, 2u);

    guard::FaultPlan q = guard::parseFaultSpec("spill-storm");
    EXPECT_TRUE(q.on(guard::FaultKind::SpillStorm));
}

TEST(FaultSpec, RejectsUnknownTokens)
{
    EXPECT_THROW(guard::parseFaultSpec("nope"), std::invalid_argument);
    EXPECT_THROW(guard::parseFaultSpec("link-stall:zap=1"),
                 std::invalid_argument);
    EXPECT_THROW(guard::parseFaultSpec("link-stall:p=monkeys"),
                 std::invalid_argument);
    EXPECT_THROW(guard::parseFaultSpec("link-stall:p=1.5"),
                 std::invalid_argument);
}

TEST(FaultRng, LinkStallIsDeterministicPerSiteAndCounter)
{
    guard::Faults &f = guard::Faults::instance();
    f.arm(guard::parseFaultSpec("link-stall:p=0.5,extra=16,seed=42"));

    unsigned stalls = 0;
    for (std::uint64_t c = 0; c < 1000; ++c) {
        Tick t1 = f.linkStallTicks(3, c);
        Tick t2 = f.linkStallTicks(3, c);
        EXPECT_EQ(t1, t2) << "pure function of (seed, site, counter)";
        if (t1) {
            ++stalls;
            EXPECT_GE(t1, 1u);
            EXPECT_LE(t1, 16u);
        }
    }
    // p=0.5 over 1000 draws: a wildly loose band that still proves the
    // hash is neither constant-0 nor constant-1.
    EXPECT_GT(stalls, 300u);
    EXPECT_LT(stalls, 700u);

    // Different sites see different decision streams.
    unsigned differing = 0;
    for (std::uint64_t c = 0; c < 100; ++c)
        differing += f.linkStallTicks(3, c) != f.linkStallTicks(4, c);
    EXPECT_GT(differing, 0u);

    f.disarm();
    EXPECT_FALSE(guard::Faults::on(guard::FaultKind::LinkStall));
}

TEST(FaultRng, CalendarOverflowPeriod)
{
    guard::Faults &f = guard::Faults::instance();
    f.arm(guard::parseFaultSpec("cal-overflow:period=3"));
    EXPECT_TRUE(f.calendarOverflowHit(0));
    EXPECT_FALSE(f.calendarOverflowHit(1));
    EXPECT_FALSE(f.calendarOverflowHit(2));
    EXPECT_TRUE(f.calendarOverflowHit(3));
    f.disarm();
}

// ---- invariant checkers ----------------------------------------------

TEST(Checks, MessageConservationCatchesLoss)
{
    guard::Checks &c = guard::Checks::instance();
    c.arm(obs::catBit(obs::Cat::Message), 4, /*pair_fifo=*/false);
    EXPECT_TRUE(guard::Checks::on(obs::Cat::Message));

    c.countInject();
    c.countInject();
    c.countDeliver(0, 1, 0, 100);
    EXPECT_THROW(c.checkMessageConservation(), guard::CheckFailure);

    c.countDeliver(0, 2, 0, 200);
    EXPECT_NO_THROW(c.checkMessageConservation());
    c.disarm();
    EXPECT_FALSE(guard::Checks::on(obs::Cat::Message));
}

TEST(Checks, PairwiseFifoCatchesOvertaking)
{
    guard::Checks &c = guard::Checks::instance();
    c.arm(obs::catBit(obs::Cat::Message), 4, /*pair_fifo=*/true);

    c.countDeliver(0, 1, 0, 10);
    c.countDeliver(0, 1, 1, 20);
    c.countDeliver(2, 1, 0, 20); // independent pair: own sequence
    // seq 3 overtook seq 2 on pair (0, 1).
    try {
        c.countDeliver(0, 1, 3, 30);
        FAIL() << "expected CheckFailure";
    } catch (const guard::CheckFailure &e) {
        EXPECT_NE(std::string(e.what()).find("LTP_CHECK"),
                  std::string::npos);
    }
    c.disarm();
}

TEST(Checks, LocalBypassSkipsFifoCheck)
{
    guard::Checks &c = guard::Checks::instance();
    c.arm(obs::catBit(obs::Cat::Message), 4, /*pair_fifo=*/true);
    // src == dst never routes, so netSeq stays 0 on every message.
    EXPECT_NO_THROW(c.countDeliver(2, 2, 0, 10));
    EXPECT_NO_THROW(c.countDeliver(2, 2, 0, 20));
    c.disarm();
}

// ---- watchdog --------------------------------------------------------

struct WatchdogProbe
{
    std::atomic<Tick> tick{0};
    std::atomic<std::uint64_t> events{0};
    std::atomic<int> aborts{0};
    std::string reason;
    std::mutex mu;

    guard::WatchdogHooks
    hooks()
    {
        guard::WatchdogHooks h;
        h.tick = [this] { return tick.load(); };
        h.events = [this] { return events.load(); };
        h.abort = [this](const std::string &r) {
            std::lock_guard<std::mutex> g(mu);
            aborts.fetch_add(1);
            reason = r;
        };
        return h;
    }
};

TEST(Watchdog, FiresOnNoProgressWithinBudget)
{
    WatchdogProbe probe;
    guard::GuardParams p;
    p.noProgressMs = 50;

    auto t0 = std::chrono::steady_clock::now();
    guard::Watchdog dog(p, probe.hooks());
    while (!dog.fired() &&
           std::chrono::steady_clock::now() - t0 < std::chrono::seconds(5))
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

    EXPECT_TRUE(dog.fired());
    EXPECT_EQ(probe.aborts.load(), 1) << "abort hook fires exactly once";
    EXPECT_NE(dog.reason().find("no-progress"), std::string::npos)
        << dog.reason();
}

TEST(Watchdog, ProgressSuppressesTheDetector)
{
    WatchdogProbe probe;
    guard::GuardParams p;
    p.noProgressMs = 120;

    guard::Watchdog dog(p, probe.hooks());
    // Keep the tick moving for ~3 budgets: the detector must stay quiet.
    for (int i = 0; i < 36; ++i) {
        probe.tick.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_FALSE(dog.fired()) << dog.reason();
}

TEST(Watchdog, FiresOnEventBudget)
{
    WatchdogProbe probe;
    probe.events = 1'000'000;
    probe.tick = 1; // moving tick: only the budget can fire
    guard::GuardParams p;
    p.maxEvents = 500'000;

    auto t0 = std::chrono::steady_clock::now();
    guard::Watchdog dog(p, probe.hooks());
    while (!dog.fired() &&
           std::chrono::steady_clock::now() - t0 < std::chrono::seconds(5))
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(dog.fired());
    EXPECT_NE(dog.reason().find("event budget"), std::string::npos)
        << dog.reason();
}

TEST(Watchdog, DisabledParamsStartNoThread)
{
    WatchdogProbe probe;
    guard::GuardParams p; // all budgets 0
    guard::Watchdog dog(p, probe.hooks());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(dog.fired());
    EXPECT_EQ(probe.aborts.load(), 0);
}

// ---- WindowBarrier teardown ------------------------------------------

TEST(WindowBarrierAbort, ReleasesAParkedWaiter)
{
    WindowBarrier barrier(2);
    std::atomic<bool> returned{false};

    // With only one arrival the waiter spins, then futex-parks: the
    // exact wedge signature the watchdog detects.
    std::thread waiter([&] {
        barrier.arriveAndWait();
        returned.store(true);
    });

    // Give it time to reach the parked state.
    while (barrier.arrivedCount() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(returned.load());

    barrier.abort();
    waiter.join();
    EXPECT_TRUE(returned.load());
    EXPECT_TRUE(barrier.aborted());

    // Post-abort arrivals fall straight through, forever.
    bool completion_ran = false;
    barrier.arriveAndWait([&] { completion_ran = true; });
    EXPECT_FALSE(completion_ran);
}

// ---- SpscRing teardown and raw inspection ----------------------------

TEST(SpscRingGuard, DestructionReleasesUnconsumedEntries)
{
    auto payload = std::make_shared<int>(7);
    {
        SpscRing<std::shared_ptr<int>, 8> ring;
        for (int i = 0; i < 5; ++i)
            EXPECT_TRUE(ring.tryPush(std::shared_ptr<int>(payload)));
        std::shared_ptr<int> out;
        EXPECT_TRUE(ring.tryPop(out));
        EXPECT_EQ(*out, 7);
        // 4 entries (plus `out`) still alive when the ring dies.
        EXPECT_EQ(payload.use_count(), 1 + 4 + 1);
    }
    EXPECT_EQ(payload.use_count(), 1)
        << "ring destruction must release unconsumed entries";
}

TEST(SpscRingGuard, RawSlotsExposeUnconsumedRecords)
{
    SpscRing<int, 8> ring;
    EXPECT_EQ(ring.rawTail(), 0u);
    EXPECT_EQ(ring.rawSlot(0), nullptr) << "no storage before first push";
    for (int i = 0; i < 6; ++i)
        EXPECT_TRUE(ring.tryPush(int(i)));
    ASSERT_EQ(ring.rawTail(), 6u);
    for (std::size_t seq = 0; seq < 6; ++seq) {
        const int *slot = ring.rawSlot(seq);
        ASSERT_NE(slot, nullptr);
        EXPECT_EQ(*slot, int(seq));
    }
}

// ---- flight recorder -------------------------------------------------

std::string
tempPath(const char *name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir ? dir : "/tmp") + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

TEST(FlightRecorder, CleanPathDumpCarriesContext)
{
    std::string path = tempPath("ltp_guard_test_fr_clean.json");
    std::remove(path.c_str());

    guard::RecorderContext ctx;
    ctx.tick = [] { return Tick(1234); };
    ctx.events = [] { return std::uint64_t(5678); };
    ctx.shards = 3;
    guard::FlightRecorder &fr = guard::FlightRecorder::instance();
    fr.arm(path, std::move(ctx));
    EXPECT_TRUE(fr.armed());
    EXPECT_TRUE(fr.dumpNow("test reason with \"quotes\""));
    fr.disarm();
    EXPECT_FALSE(fr.armed());

    std::string dump = slurp(path);
    EXPECT_NE(dump.find("\"reason\": \"test reason with \\\"quotes\\\"\""),
              std::string::npos)
        << dump;
    EXPECT_NE(dump.find("\"tick\": 1234"), std::string::npos);
    EXPECT_NE(dump.find("\"events\": 5678"), std::string::npos);
    EXPECT_NE(dump.find("\"shards\": 3"), std::string::npos);
    EXPECT_NE(dump.find("\"signal\": null"), std::string::npos);
    std::remove(path.c_str());
}

TEST(FlightRecorder, DisarmedDumpIsRefused)
{
    guard::FlightRecorder &fr = guard::FlightRecorder::instance();
    ASSERT_FALSE(fr.armed());
    EXPECT_FALSE(fr.dumpNow("nobody listening"));
}

using FlightRecorderDeathTest = ::testing::Test;

TEST(FlightRecorderDeathTest, CrashPathWritesADumpOnAbort)
{
    std::string path = tempPath("ltp_guard_test_fr_crash.json");
    std::remove(path.c_str());

    // The death-test child arms the recorder and dies on SIGABRT; its
    // crash handler must leave the dump behind before re-raising.
    EXPECT_DEATH(
        {
            guard::RecorderContext ctx;
            ctx.tick = [] { return Tick(99); };
            ctx.events = [] { return std::uint64_t(42); };
            guard::FlightRecorder::instance().arm(path, std::move(ctx));
            std::abort();
        },
        "");

    std::string dump = slurp(path);
    EXPECT_NE(dump.find("\"name\": \"SIGABRT\""), std::string::npos)
        << dump;
    EXPECT_NE(dump.find("\"tick\": 99"), std::string::npos) << dump;
    std::remove(path.c_str());
}

} // namespace
} // namespace ltp
