/** @file Unit tests for the open-addressing FlatMap / FlatSet. */

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/flat_map.hh"

namespace ltp
{
namespace
{

TEST(FlatMap, StartsEmpty)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(42), nullptr);
    EXPECT_FALSE(m.contains(42));
    EXPECT_FALSE(m.erase(42));
    EXPECT_EQ(m.begin(), m.end());
}

TEST(FlatMap, SubscriptInsertsAndFinds)
{
    FlatMap<std::uint64_t, int> m;
    m[7] = 70;
    m[9] = 90;
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70);
    EXPECT_EQ(*m.find(9), 90);
    m[7] = 71; // overwrite through subscript
    EXPECT_EQ(*m.find(7), 71);
    EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, SubscriptDefaultConstructs)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    EXPECT_EQ(m[5], 0u);
    m[5] |= 8;
    EXPECT_EQ(m[5], 8u);
}

TEST(FlatMap, InsertOverwrites)
{
    FlatMap<std::uint64_t, std::string> m;
    m.insert(1, "one");
    m.insert(1, "uno");
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(*m.find(1), "uno");
}

TEST(FlatMap, EraseRemovesAndReports)
{
    FlatMap<std::uint64_t, int> m;
    m[1] = 10;
    m[2] = 20;
    EXPECT_TRUE(m.erase(1));
    EXPECT_FALSE(m.erase(1));
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.find(1), nullptr);
    EXPECT_EQ(*m.find(2), 20);
}

TEST(FlatMap, GrowthPreservesAllEntries)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    constexpr std::uint64_t n = 10000;
    for (std::uint64_t i = 0; i < n; ++i)
        m[i * 32] = i; // block-aligned-style keys stress the hash mix
    EXPECT_EQ(m.size(), n);
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_NE(m.find(i * 32), nullptr) << i;
        EXPECT_EQ(*m.find(i * 32), i);
    }
    EXPECT_EQ(m.find(13), nullptr);
}

/**
 * Backward-shift deletion: erasing from the middle of a collision run
 * must keep every remaining key reachable (no tombstone holes breaking
 * linear probes).
 */
TEST(FlatMap, BackshiftKeepsCollisionRunsReachable)
{
    std::mt19937_64 rng(99);
    FlatMap<std::uint64_t, std::uint64_t> m;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    for (int round = 0; round < 30000; ++round) {
        std::uint64_t key = (rng() % 512) * 32; // dense key space: collisions
        if (rng() % 3 == 0) {
            EXPECT_EQ(m.erase(key), ref.erase(key) > 0) << key;
        } else {
            std::uint64_t v = rng();
            m.insert(key, v);
            ref[key] = v;
        }
        ASSERT_EQ(m.size(), ref.size());
    }
    for (const auto &[k, v] : ref) {
        ASSERT_NE(m.find(k), nullptr) << k;
        EXPECT_EQ(*m.find(k), v);
    }
    for (std::uint64_t key = 0; key < 512 * 32; key += 32) {
        if (!ref.count(key))
            EXPECT_EQ(m.find(key), nullptr) << key;
    }
}

TEST(FlatMap, IterationVisitsEveryEntryExactlyOnce)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t i = 0; i < 1000; ++i)
        m[i * 7] = i;
    m.erase(7 * 3);
    m.erase(7 * 999);

    std::set<std::uint64_t> seen;
    for (const auto &[k, v] : m) {
        EXPECT_EQ(v, k / 7);
        EXPECT_TRUE(seen.insert(k).second) << "duplicate " << k;
    }
    EXPECT_EQ(seen.size(), m.size());
    EXPECT_EQ(seen.size(), 998u);
}

TEST(FlatMap, IterationCanMutateValues)
{
    FlatMap<std::uint64_t, int> m;
    m[1] = 1;
    m[2] = 2;
    for (auto [k, v] : m)
        v *= 10; // v is a reference
    EXPECT_EQ(*m.find(1), 10);
    EXPECT_EQ(*m.find(2), 20);
}

TEST(FlatMap, ClearKeepsCapacityDropsEntries)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t i = 0; i < 100; ++i)
        m[i] = int(i);
    std::size_t cap = m.capacity();
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(50), nullptr);
    m[3] = 33;
    EXPECT_EQ(*m.find(3), 33);
}

TEST(FlatMap, ReserveAvoidsIntermediateRehash)
{
    FlatMap<std::uint64_t, int> m;
    m.reserve(1000);
    std::size_t cap = m.capacity();
    for (std::uint64_t i = 0; i < 1000; ++i)
        m[i] = int(i);
    EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMap, NonTrivialValuesSurviveRehashAndErase)
{
    FlatMap<std::uint64_t, std::vector<std::string>> m;
    for (std::uint64_t i = 0; i < 500; ++i)
        m[i] = {std::to_string(i), "x", std::to_string(i * 2)};
    for (std::uint64_t i = 0; i < 500; i += 2)
        EXPECT_TRUE(m.erase(i));
    for (std::uint64_t i = 1; i < 500; i += 2) {
        ASSERT_NE(m.find(i), nullptr);
        EXPECT_EQ((*m.find(i))[0], std::to_string(i));
        EXPECT_EQ((*m.find(i))[2], std::to_string(i * 2));
    }
}

TEST(FlatMap, MoveOnlyValues)
{
    FlatMap<std::uint64_t, std::unique_ptr<int>> m;
    m.insert(1, std::make_unique<int>(11));
    m[2] = std::make_unique<int>(22);
    EXPECT_EQ(**m.find(1), 11);
    EXPECT_EQ(**m.find(2), 22);
    for (std::uint64_t i = 10; i < 200; ++i) // force rehashes
        m[i] = std::make_unique<int>(int(i));
    EXPECT_EQ(**m.find(1), 11);
    EXPECT_TRUE(m.erase(1));
    EXPECT_EQ(m.find(1), nullptr);
}

TEST(FlatMap, CopyAndMoveSemantics)
{
    FlatMap<std::uint64_t, int> a;
    a[1] = 10;
    a[2] = 20;

    FlatMap<std::uint64_t, int> copy(a);
    copy[3] = 30;
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(copy.size(), 3u);
    EXPECT_EQ(*copy.find(1), 10);

    FlatMap<std::uint64_t, int> moved(std::move(copy));
    EXPECT_EQ(moved.size(), 3u);
    EXPECT_EQ(*moved.find(3), 30);

    a = moved;            // copy-assign
    EXPECT_EQ(a.size(), 3u);
    FlatMap<std::uint64_t, int> b;
    b = std::move(moved); // move-assign
    EXPECT_EQ(b.size(), 3u);
    EXPECT_EQ(*b.find(2), 20);
}

TEST(FlatMap, NestedMapsRelocateSafely)
{
    // BlockState-style usage: a FlatMap value containing another FlatMap
    // must survive the outer map's rehashes and backshifts.
    FlatMap<std::uint64_t, FlatMap<std::uint32_t, int>> outer;
    for (std::uint64_t i = 0; i < 200; ++i)
        for (std::uint32_t j = 0; j < 4; ++j)
            outer[i][j] = int(i * 10 + j);
    for (std::uint64_t i = 0; i < 200; i += 3)
        outer.erase(i);
    for (std::uint64_t i = 0; i < 200; ++i) {
        if (i % 3 == 0) {
            EXPECT_EQ(outer.find(i), nullptr);
        } else {
            ASSERT_NE(outer.find(i), nullptr);
            EXPECT_EQ(*outer.find(i)->find(2), int(i * 10 + 2));
        }
    }
}

TEST(FlatSet, InsertEraseContains)
{
    FlatSet<std::uint64_t> s;
    EXPECT_TRUE(s.insert(5));
    EXPECT_FALSE(s.insert(5)); // already present
    EXPECT_TRUE(s.insert(6));
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.contains(5));
    EXPECT_EQ(s.count(6), 1u);
    EXPECT_EQ(s.count(7), 0u);
    EXPECT_TRUE(s.erase(5));
    EXPECT_FALSE(s.erase(5));
    EXPECT_FALSE(s.contains(5));
    s.clear();
    EXPECT_TRUE(s.empty());
}

} // namespace
} // namespace ltp
