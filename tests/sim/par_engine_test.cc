/** @file Unit tests for the parallel-engine building blocks. */

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "net/topo/interconnect.hh"
#include "sim/event_queue.hh"
#include "sim/par/lookahead.hh"
#include "sim/par/parallel_scheduler.hh"
#include "sim/par/sim_context.hh"
#include "sim/par/window_barrier.hh"

namespace ltp
{
namespace
{

TEST(EventQueuePeek, NextEventTickSeesEarliestLiveEvent)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTick(), tickNever);

    eq.scheduleAt(30, [] {});
    auto cancelled = eq.scheduleAt(10, [] {});
    eq.scheduleAt(20, [] {});
    EXPECT_EQ(eq.nextEventTick(), 10u);

    eq.cancel(cancelled);
    EXPECT_EQ(eq.nextEventTick(), 20u);

    // Peeking never executes or drops anything.
    EXPECT_EQ(eq.size(), 2u);
    eq.run();
    EXPECT_EQ(eq.nextEventTick(), tickNever);

    // Far-future events (overflow heap, beyond the calendar window) are
    // visible too.
    eq.scheduleAt(eq.now() + 1'000'000, [] {});
    EXPECT_EQ(eq.nextEventTick(), eq.now() + 1'000'000);
}

TEST(EventQueueWindows, WindowBarrierDrainKeepsFifoWithinTick)
{
    // Drive the queue the way the parallel engine does — runUntil() a
    // window end, apply a sorted batch of cross-shard arrivals, run the
    // next window — and check that events of one tick still execute in
    // insertion order (FIFO within tick), with batch arrivals appended
    // in their canonical order.
    EventQueue eq;
    std::vector<int> order;

    // Window 1 local events, two of them on the same tick.
    eq.scheduleAt(5, [&] { order.push_back(1); });
    eq.scheduleAt(5, [&] { order.push_back(2); });
    // A local event already sitting at the collision tick 100.
    eq.scheduleAt(100, [&] { order.push_back(3); });
    eq.runUntil(80); // window [0, 80]

    // Barrier: apply the inbox for tick 100 in canonical channel order.
    eq.scheduleAt(100, [&] { order.push_back(4); });
    eq.scheduleAt(100, [&] { order.push_back(5); });
    eq.runUntil(180); // window [81, 180]

    // A later round posts to the same tick region first-in-first-out.
    eq.scheduleAt(200, [&] { order.push_back(6); });
    eq.scheduleAt(200, [&] { order.push_back(7); });
    eq.run();

    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
    EXPECT_EQ(eq.now(), 200u);
}

TEST(WindowBarrierTest, CompletionRunsOnceAndReleasesAll)
{
    constexpr unsigned kThreads = 4;
    constexpr int kRounds = 200;
    WindowBarrier barrier(kThreads);
    std::atomic<int> completions{0};
    std::atomic<int> inWindow{0};
    std::atomic<bool> overlap{false};

    auto worker = [&] {
        for (int r = 0; r < kRounds; ++r) {
            inWindow.fetch_add(1);
            barrier.arriveAndWait([&] {
                // The completer runs alone with everyone parked.
                if (inWindow.load() != kThreads)
                    overlap.store(true);
                inWindow.store(0);
                completions.fetch_add(1);
            });
        }
    };
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < kThreads; ++i)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(completions.load(), kRounds);
    EXPECT_FALSE(overlap.load());
}

TEST(Lookahead, PointToPointWindowIsFlightPlusOccupancy)
{
    NetworkParams net; // defaults: flight 80, control 4, data 12
    NetLookahead la = networkLookahead(net);
    EXPECT_EQ(la.ticks, 84u);
    EXPECT_EQ(la.serialReason, nullptr);
}

TEST(Lookahead, RoutedWindowIsSerializationPlusHopPlusRouter)
{
    NetworkParams net;
    net.topology = TopologyKind::Mesh2D;
    // ceil(16 / 4) + 68 + 8 = 80 — exactly the paper's one-hop latency.
    EXPECT_EQ(networkLookahead(net).ticks, 80u);

    // Finite input buffers add the wire-delayed credit return path.
    net.vcDepth = 4;
    EXPECT_EQ(networkLookahead(net).ticks, 68u);
}

TEST(Lookahead, ObliviousRoutingShardsLikeAnyRoutedPolicy)
{
    // Oblivious coin flips are pure counter-based hashes (no shared
    // RNG), so the policy exports the ordinary routed lookahead.
    NetworkParams net;
    net.topology = TopologyKind::Torus2D;
    net.routing = RoutingPolicy::Oblivious;
    NetLookahead la = networkLookahead(net);
    EXPECT_EQ(la.ticks, 80u);
    EXPECT_EQ(la.serialReason, nullptr);
}

TEST(Lookahead, ShardPlanClampsAndFallsBack)
{
    LookaheadInputs in;
    in.requestedThreads = 8;
    in.numNodes = 4;
    in.netLookahead = 84;
    in.barrierLatency = 200;

    ShardPlan plan = resolveShardPlan(in);
    EXPECT_TRUE(plan.canonical());
    EXPECT_EQ(plan.shards, 4u); // clamped to the node count
    EXPECT_EQ(plan.window, 84u);

    // One requested thread still yields the canonical engine (that is
    // the S = 1 anchor of the bit-identity guarantee).
    in.requestedThreads = 1;
    plan = resolveShardPlan(in);
    EXPECT_TRUE(plan.canonical());
    EXPECT_EQ(plan.shards, 1u);

    // The barrier release path bounds the window.
    in.requestedThreads = 4;
    in.barrierLatency = 50;
    plan = resolveShardPlan(in);
    EXPECT_EQ(plan.window, 50u);

    // A zero-lookahead coupling forces the plain sequential engine.
    in.zeroLookaheadCoupling = "verification feedback";
    plan = resolveShardPlan(in);
    EXPECT_FALSE(plan.canonical());
    EXPECT_EQ(plan.shards, 1u);
    EXPECT_EQ(plan.serialReason, "verification feedback");
}

TEST(ParallelSchedulerTest, OneShardUsesDirectDispatch)
{
    ParallelScheduler one(1, 4, /*window=*/10);
    EXPECT_TRUE(one.directDispatch());
    ParallelScheduler two(2, 4, /*window=*/10);
    EXPECT_FALSE(two.directDispatch());
}

TEST(ParallelSchedulerTest, MailboxSpillKeepsCanonicalOrder)
{
    // Blast one round with far more posts than a lane's ring capacity
    // (256): the overflow spills to the lane's vector and the barrier
    // merge must still apply everything, in (tick, channel) order, with
    // nothing lost. Run the same storm at 1 and 2 shards and compare.
    auto run = [](unsigned shards) {
        constexpr int kPosts = 700;
        ParallelScheduler sched(shards, 2, /*window=*/10);
        std::vector<int> log; // only ever touched on node 1's shard
        sched.queueFor(0).scheduleAt(0, [&] {
            // Descending channel ids: canonical order must ascend.
            for (int i = kPosts - 1; i >= 0; --i) {
                sched.post(1, 10, std::uint64_t(i),
                           [&log, i] { log.push_back(i); });
            }
        });
        sched.runUntil(1000);
        return log;
    };

    auto one = run(1);
    auto two = run(2);
    ASSERT_EQ(one.size(), 700u);
    for (int i = 0; i < 700; ++i)
        EXPECT_EQ(one[i], i);
    EXPECT_EQ(one, two);
}

TEST(ParallelSchedulerTest, CanonicalMergeOrderIsShardCountInvariant)
{
    // Two "nodes" post to each other every window; the observed
    // per-node receive sequence must not depend on the shard count.
    auto run = [](unsigned shards) {
        ParallelScheduler sched(shards, 2, /*window=*/10);
        std::vector<int> log; // only ever touched on node 1's shard
        // Cross-posts with exactly the window's lookahead; channels
        // picked so the canonical same-tick order (chan 1 before 2)
        // differs from the creation order.
        std::function<void(int, Tick)> ping = [&](int depth, Tick now) {
            if (depth >= 3)
                return;
            sched.post(1, now + 10, /*chan=*/2, [&, depth, now] {
                log.push_back(100 + depth);
                ping(depth + 1, now + 10);
            });
            sched.post(1, now + 10, /*chan=*/1,
                       [&, depth] { log.push_back(200 + depth); });
        };
        sched.queueFor(0).scheduleAt(0, [&] { ping(0, 0); });
        sched.runUntil(1000);
        return log;
    };

    auto one = run(1);
    auto two = run(2);
    EXPECT_EQ(one, two);
    ASSERT_GE(one.size(), 2u);
    // Canonical order: channel 1 before channel 2 at the same tick.
    EXPECT_EQ(one[0], 200);
    EXPECT_EQ(one[1], 100);
}

} // namespace
} // namespace ltp
