/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "sim/event_queue.hh"

namespace ltp
{
namespace
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, FifoWithinSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleIn(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.scheduleAt(10, [&] { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue eq;
    auto id = eq.scheduleAt(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelAfterExecutionFails)
{
    EventQueue eq;
    auto id = eq.scheduleAt(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.scheduleAt(1, [&] { ++count; });
    eq.scheduleAt(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    for (Tick t = 10; t <= 100; t += 10)
        eq.scheduleAt(t, [&, t] { ticks.push_back(t); });
    eq.runUntil(50);
    EXPECT_EQ(ticks.size(), 5u);
    EXPECT_EQ(eq.size(), 5u);
    // The remaining events still run afterwards.
    eq.run();
    EXPECT_EQ(ticks.size(), 10u);
}

TEST(EventQueue, RunUntilExecutesEventAtLimit)
{
    EventQueue eq;
    bool ran = false;
    eq.scheduleAt(50, [&] { ran = true; });
    eq.runUntil(50);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, EventsScheduledDuringRunExecute)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleIn(1, recurse);
    };
    eq.scheduleAt(0, recurse);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 4u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.scheduleAt(i, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 7u);
}

TEST(EventQueue, CancelledEventNotCounted)
{
    EventQueue eq;
    auto id = eq.scheduleAt(1, [] {});
    eq.scheduleAt(2, [] {});
    eq.cancel(id);
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 1u);
}

// ---- pooling / generation-tag safety ---------------------------------------

TEST(EventQueue, NullAndGarbageIdsCannotCancel)
{
    EventQueue eq;
    bool ran = false;
    eq.scheduleAt(10, [&] { ran = true; });
    // Id 0 is the natural "not scheduled" sentinel; it must never match
    // a free slot (which also carries tag 0).
    EXPECT_FALSE(eq.cancel(0));
    EXPECT_FALSE(eq.cancel(~EventQueue::EventId(0)));
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot)
{
    EventQueue eq;
    bool first = false, second = false;
    auto id1 = eq.scheduleAt(10, [&] { first = true; });
    eq.run(); // id1's slot is recycled
    auto id2 = eq.scheduleAt(20, [&] { second = true; });
    // The recycled slot now belongs to id2; the stale id must not touch it.
    EXPECT_FALSE(eq.cancel(id1));
    eq.run();
    EXPECT_TRUE(first);
    EXPECT_TRUE(second);
    EXPECT_TRUE(eq.cancel(id2) == false); // already ran
}

TEST(EventQueue, StaleIdAfterCancelCannotCancelReuse)
{
    EventQueue eq;
    bool ran = false;
    auto id1 = eq.scheduleAt(10, [] {});
    EXPECT_TRUE(eq.cancel(id1));
    auto id2 = eq.scheduleAt(10, [&] { ran = true; }); // reuses the slot
    EXPECT_FALSE(eq.cancel(id1));
    eq.run();
    EXPECT_TRUE(ran);
    (void)id2;
}

TEST(EventQueue, SlotPoolStopsGrowingInSteadyState)
{
    EventQueue eq;
    // A self-rescheduling chain keeps at most 2 events pending; the
    // arena must reach its high-water mark and then stay flat.
    int remaining = 10000;
    std::function<void()> chain = [&] {
        if (--remaining > 0) {
            eq.scheduleIn(1, chain);
            eq.scheduleIn(2, [] {});
        }
    };
    eq.scheduleAt(0, chain);
    for (int i = 0; i < 100; ++i)
        eq.step();
    std::size_t plateau = eq.poolSlots();
    eq.run();
    EXPECT_EQ(eq.poolSlots(), plateau);
    EXPECT_EQ(remaining, 0);
}

TEST(EventQueue, FarFutureEventsInterleaveWithNearOnes)
{
    // Exercises the overflow area: delays far beyond the calendar window
    // must still execute in global time order, FIFO within a tick.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(1000000, [&] { order.push_back(3); });
    eq.scheduleAt(1000000, [&] { order.push_back(4); });
    eq.scheduleAt(5, [&] {
        order.push_back(1);
        eq.scheduleAt(999999, [&] { order.push_back(2); });
        eq.scheduleAt(1000001, [&] { order.push_back(5); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_EQ(eq.now(), 1000001u);
}

TEST(EventQueue, RunUntilBoundaryWithFarFutureEvents)
{
    EventQueue eq;
    int ran = 0;
    eq.scheduleAt(10, [&] { ++ran; });
    eq.scheduleAt(100000, [&] { ++ran; });
    EXPECT_EQ(eq.runUntil(50000), 10u); // now() stays at the last event
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.now(), 100000u);
}

/**
 * Randomized stress: interleaved schedule / cancel / reschedule checked
 * against a reference model (an ordered multimap keyed by (tick, seq)).
 * Execution order must match the model exactly — absolute-tick order,
 * FIFO within a tick, cancelled events skipped — and event ids must stay
 * single-use under heavy slot reuse.
 */
TEST(EventQueue, RandomizedStressMatchesReferenceModel)
{
    std::mt19937_64 rng(12345);
    EventQueue eq;

    struct Pending
    {
        EventQueue::EventId id;
        std::uint64_t token;
    };
    std::vector<Pending> pending;               // cancellation candidates
    std::map<std::pair<Tick, std::uint64_t>, std::uint64_t> model;
    std::vector<std::uint64_t> executed;        // tokens, in executed order
    std::uint64_t nextToken = 0, seq = 0;

    auto scheduleOne = [&](Tick when) {
        std::uint64_t token = nextToken++;
        std::uint64_t s = seq++;
        auto id = eq.scheduleAt(when, [&executed, token] {
            executed.push_back(token);
        });
        model.emplace(std::make_pair(when, s), token);
        pending.push_back({id, token});
    };

    for (int round = 0; round < 2000; ++round) {
        unsigned action = rng() % 10;
        if (action < 6) {
            // Mix near, same-tick, and far-future (overflow) delays.
            Tick delay = (rng() % 100 == 0) ? 5000 + rng() % 5000
                                            : rng() % 300;
            scheduleOne(eq.now() + delay);
        } else if (action < 8 && !pending.empty()) {
            std::size_t pick = rng() % pending.size();
            Pending p = pending[pick];
            pending.erase(pending.begin() + pick);
            bool cancelled = eq.cancel(p.id);
            if (cancelled) {
                // Remove the single model entry carrying this token.
                for (auto it = model.begin(); it != model.end(); ++it) {
                    if (it->second == p.token) {
                        model.erase(it);
                        break;
                    }
                }
                // Cancel must be single-shot even after slot reuse.
                scheduleOne(eq.now() + rng() % 50); // likely reuses slot
                EXPECT_FALSE(eq.cancel(p.id));
            }
        } else {
            // Execute a few steps; each must match the model's front.
            for (int k = 0; k < 3 && !model.empty(); ++k) {
                std::size_t before = executed.size();
                ASSERT_TRUE(eq.step());
                ASSERT_EQ(executed.size(), before + 1);
                EXPECT_EQ(executed.back(), model.begin()->second);
                model.erase(model.begin());
            }
        }
        ASSERT_EQ(eq.size(), model.size());
    }

    while (!model.empty()) {
        ASSERT_TRUE(eq.step());
        EXPECT_EQ(executed.back(), model.begin()->second);
        model.erase(model.begin());
    }
    EXPECT_FALSE(eq.step());
    EXPECT_TRUE(eq.empty());
}

// ---- channel-keyed same-tick tie-break (the direct-dispatch order) ----

TEST(EventQueueChannel, SameTickOrdersByChannelIdNotScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    // Scheduled high channel first: execution must sort by channel id.
    eq.scheduleAtChannel(10, 9, [&] { order.push_back(9); });
    eq.scheduleAtChannel(10, 3, [&] { order.push_back(3); });
    eq.scheduleAtChannel(10, 7, [&] { order.push_back(7); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{3, 7, 9}));
}

TEST(EventQueueChannel, FifoWithinOneChannel)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.scheduleAtChannel(10, 42, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueChannel, LocalsRunBeforeSameRoundChannelPosts)
{
    // A round's scheduleAt() events precede its channel posts at the
    // same tick even when the posts were scheduled first — this is the
    // staged engine's barrier boundary: posts of round r are merged
    // after round r has fully executed.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAtChannel(10, 1, [&] { order.push_back(100); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAtChannel(10, 2, [&] { order.push_back(200); });
    eq.scheduleAt(10, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 100, 200}));
}

TEST(EventQueueChannel, BeginRoundSeparatesPostBatches)
{
    // Round r's posts execute before round r+1's locals AND before
    // round r+1's posts at the same tick, whatever the channel ids —
    // the round boundary dominates the channel tie-break, exactly like
    // successive barrier merges in the staged engine.
    EventQueue eq;
    std::vector<int> order;
    eq.beginRound(); // round 1
    eq.scheduleAtChannel(50, 9, [&] { order.push_back(19); });
    eq.beginRound(); // round 2
    eq.scheduleAt(50, [&] { order.push_back(2); });
    eq.scheduleAtChannel(50, 1, [&] { order.push_back(21); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{19, 2, 21}));
}

TEST(EventQueueChannel, CancelSkipsChannelEventAndKeepsOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAtChannel(10, 5, [&] { order.push_back(5); });
    auto doomed = eq.scheduleAtChannel(10, 6, [&] { order.push_back(6); });
    eq.scheduleAtChannel(10, 7, [&] { order.push_back(7); });
    EXPECT_TRUE(eq.cancel(doomed));
    EXPECT_FALSE(eq.cancel(doomed)); // ids are single-use

    // The recycled slot's next occupant keeps ITS OWN key (generation
    // tags make the old bucket entry a tombstone, not a dangling ref).
    eq.scheduleAtChannel(10, 4, [&] { order.push_back(4); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{4, 5, 7}));
}

TEST(EventQueueChannel, OverflowMigrationKeepsChannelOrder)
{
    // Channel events beyond the calendar window park in the overflow
    // heap; once migrated they must still interleave by key with ring
    // entries scheduled later for the same tick.
    EventQueue eq;
    std::vector<int> order;
    Tick far = 5000; // beyond the 2048-tick bucket ring
    eq.scheduleAtChannel(far, 8, [&] { order.push_back(8); });
    eq.scheduleAtChannel(far, 2, [&] { order.push_back(2); });
    // Bring `far` into the window, then add a same-tick competitor.
    eq.scheduleAt(4000, [&] {
        eq.scheduleAtChannel(far, 5, [&] { order.push_back(5); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 5, 8}));
    EXPECT_EQ(eq.now(), far);
}

TEST(EventQueueChannel, RunWindowedDrivesRoundsLikeTheStagedEngine)
{
    // runWindowed(limit, L) must (a) open a round per conservative
    // window [W, W + L), (b) execute posts of round r after round r's
    // locals and before round r+1's locals, and (c) reach the same
    // final tick as a plain run.
    EventQueue eq;
    std::vector<int> order;
    // Two windows of width 10: events at 0..9 are round 1, 15.. round 2.
    eq.scheduleAt(0, [&] {
        order.push_back(1);
        // Post landing in the next window, channel 3.
        eq.scheduleAtChannel(15, 3, [&] { order.push_back(23); });
    });
    eq.scheduleAt(5, [&] {
        order.push_back(2);
        // Same tick 15, smaller channel, posted later: channel order.
        eq.scheduleAtChannel(15, 1, [&] { order.push_back(21); });
    });
    // A round-2 local at tick 15 — scheduled during round 2, so it runs
    // BEFORE round 1's posts? No: it is scheduled by a round-2 event
    // only if one exists earlier in round 2. Here it is scheduled up
    // front (round 0 of the setup phase), so it precedes the posts.
    eq.scheduleAt(15, [&] { order.push_back(3); });
    eq.runWindowed(tickNever, 10);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 21, 23}));
    EXPECT_EQ(eq.now(), 15u);
    EXPECT_GE(eq.windowEnd(), 15u);
}

} // namespace
} // namespace ltp
