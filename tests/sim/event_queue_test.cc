/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "sim/event_queue.hh"

namespace ltp
{
namespace
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, FifoWithinSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleIn(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.scheduleAt(10, [&] { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue eq;
    auto id = eq.scheduleAt(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelAfterExecutionFails)
{
    EventQueue eq;
    auto id = eq.scheduleAt(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.scheduleAt(1, [&] { ++count; });
    eq.scheduleAt(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    for (Tick t = 10; t <= 100; t += 10)
        eq.scheduleAt(t, [&, t] { ticks.push_back(t); });
    eq.runUntil(50);
    EXPECT_EQ(ticks.size(), 5u);
    EXPECT_EQ(eq.size(), 5u);
    // The remaining events still run afterwards.
    eq.run();
    EXPECT_EQ(ticks.size(), 10u);
}

TEST(EventQueue, RunUntilExecutesEventAtLimit)
{
    EventQueue eq;
    bool ran = false;
    eq.scheduleAt(50, [&] { ran = true; });
    eq.runUntil(50);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, EventsScheduledDuringRunExecute)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleIn(1, recurse);
    };
    eq.scheduleAt(0, recurse);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 4u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.scheduleAt(i, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 7u);
}

TEST(EventQueue, CancelledEventNotCounted)
{
    EventQueue eq;
    auto id = eq.scheduleAt(1, [] {});
    eq.scheduleAt(2, [] {});
    eq.cancel(id);
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 1u);
}

// ---- pooling / generation-tag safety ---------------------------------------

TEST(EventQueue, NullAndGarbageIdsCannotCancel)
{
    EventQueue eq;
    bool ran = false;
    eq.scheduleAt(10, [&] { ran = true; });
    // Id 0 is the natural "not scheduled" sentinel; it must never match
    // a free slot (which also carries tag 0).
    EXPECT_FALSE(eq.cancel(0));
    EXPECT_FALSE(eq.cancel(~EventQueue::EventId(0)));
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot)
{
    EventQueue eq;
    bool first = false, second = false;
    auto id1 = eq.scheduleAt(10, [&] { first = true; });
    eq.run(); // id1's slot is recycled
    auto id2 = eq.scheduleAt(20, [&] { second = true; });
    // The recycled slot now belongs to id2; the stale id must not touch it.
    EXPECT_FALSE(eq.cancel(id1));
    eq.run();
    EXPECT_TRUE(first);
    EXPECT_TRUE(second);
    EXPECT_TRUE(eq.cancel(id2) == false); // already ran
}

TEST(EventQueue, StaleIdAfterCancelCannotCancelReuse)
{
    EventQueue eq;
    bool ran = false;
    auto id1 = eq.scheduleAt(10, [] {});
    EXPECT_TRUE(eq.cancel(id1));
    auto id2 = eq.scheduleAt(10, [&] { ran = true; }); // reuses the slot
    EXPECT_FALSE(eq.cancel(id1));
    eq.run();
    EXPECT_TRUE(ran);
    (void)id2;
}

TEST(EventQueue, SlotPoolStopsGrowingInSteadyState)
{
    EventQueue eq;
    // A self-rescheduling chain keeps at most 2 events pending; the
    // arena must reach its high-water mark and then stay flat.
    int remaining = 10000;
    std::function<void()> chain = [&] {
        if (--remaining > 0) {
            eq.scheduleIn(1, chain);
            eq.scheduleIn(2, [] {});
        }
    };
    eq.scheduleAt(0, chain);
    for (int i = 0; i < 100; ++i)
        eq.step();
    std::size_t plateau = eq.poolSlots();
    eq.run();
    EXPECT_EQ(eq.poolSlots(), plateau);
    EXPECT_EQ(remaining, 0);
}

TEST(EventQueue, FarFutureEventsInterleaveWithNearOnes)
{
    // Exercises the overflow area: delays far beyond the calendar window
    // must still execute in global time order, FIFO within a tick.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(1000000, [&] { order.push_back(3); });
    eq.scheduleAt(1000000, [&] { order.push_back(4); });
    eq.scheduleAt(5, [&] {
        order.push_back(1);
        eq.scheduleAt(999999, [&] { order.push_back(2); });
        eq.scheduleAt(1000001, [&] { order.push_back(5); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_EQ(eq.now(), 1000001u);
}

TEST(EventQueue, RunUntilBoundaryWithFarFutureEvents)
{
    EventQueue eq;
    int ran = 0;
    eq.scheduleAt(10, [&] { ++ran; });
    eq.scheduleAt(100000, [&] { ++ran; });
    EXPECT_EQ(eq.runUntil(50000), 10u); // now() stays at the last event
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.now(), 100000u);
}

/**
 * Randomized stress: interleaved schedule / cancel / reschedule checked
 * against a reference model (an ordered multimap keyed by (tick, seq)).
 * Execution order must match the model exactly — absolute-tick order,
 * FIFO within a tick, cancelled events skipped — and event ids must stay
 * single-use under heavy slot reuse.
 */
TEST(EventQueue, RandomizedStressMatchesReferenceModel)
{
    std::mt19937_64 rng(12345);
    EventQueue eq;

    struct Pending
    {
        EventQueue::EventId id;
        std::uint64_t token;
    };
    std::vector<Pending> pending;               // cancellation candidates
    std::map<std::pair<Tick, std::uint64_t>, std::uint64_t> model;
    std::vector<std::uint64_t> executed;        // tokens, in executed order
    std::uint64_t nextToken = 0, seq = 0;

    auto scheduleOne = [&](Tick when) {
        std::uint64_t token = nextToken++;
        std::uint64_t s = seq++;
        auto id = eq.scheduleAt(when, [&executed, token] {
            executed.push_back(token);
        });
        model.emplace(std::make_pair(when, s), token);
        pending.push_back({id, token});
    };

    for (int round = 0; round < 2000; ++round) {
        unsigned action = rng() % 10;
        if (action < 6) {
            // Mix near, same-tick, and far-future (overflow) delays.
            Tick delay = (rng() % 100 == 0) ? 5000 + rng() % 5000
                                            : rng() % 300;
            scheduleOne(eq.now() + delay);
        } else if (action < 8 && !pending.empty()) {
            std::size_t pick = rng() % pending.size();
            Pending p = pending[pick];
            pending.erase(pending.begin() + pick);
            bool cancelled = eq.cancel(p.id);
            if (cancelled) {
                // Remove the single model entry carrying this token.
                for (auto it = model.begin(); it != model.end(); ++it) {
                    if (it->second == p.token) {
                        model.erase(it);
                        break;
                    }
                }
                // Cancel must be single-shot even after slot reuse.
                scheduleOne(eq.now() + rng() % 50); // likely reuses slot
                EXPECT_FALSE(eq.cancel(p.id));
            }
        } else {
            // Execute a few steps; each must match the model's front.
            for (int k = 0; k < 3 && !model.empty(); ++k) {
                std::size_t before = executed.size();
                ASSERT_TRUE(eq.step());
                ASSERT_EQ(executed.size(), before + 1);
                EXPECT_EQ(executed.back(), model.begin()->second);
                model.erase(model.begin());
            }
        }
        ASSERT_EQ(eq.size(), model.size());
    }

    while (!model.empty()) {
        ASSERT_TRUE(eq.step());
        EXPECT_EQ(executed.back(), model.begin()->second);
        model.erase(model.begin());
    }
    EXPECT_FALSE(eq.step());
    EXPECT_TRUE(eq.empty());
}

} // namespace
} // namespace ltp
