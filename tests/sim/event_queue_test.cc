/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace ltp
{
namespace
{

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, FifoWithinSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleIn(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool ran = false;
    auto id = eq.scheduleAt(10, [&] { ran = true; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue eq;
    auto id = eq.scheduleAt(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, CancelAfterExecutionFails)
{
    EventQueue eq;
    auto id = eq.scheduleAt(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.scheduleAt(1, [&] { ++count; });
    eq.scheduleAt(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    for (Tick t = 10; t <= 100; t += 10)
        eq.scheduleAt(t, [&, t] { ticks.push_back(t); });
    eq.runUntil(50);
    EXPECT_EQ(ticks.size(), 5u);
    EXPECT_EQ(eq.size(), 5u);
    // The remaining events still run afterwards.
    eq.run();
    EXPECT_EQ(ticks.size(), 10u);
}

TEST(EventQueue, RunUntilExecutesEventAtLimit)
{
    EventQueue eq;
    bool ran = false;
    eq.scheduleAt(50, [&] { ran = true; });
    eq.runUntil(50);
    EXPECT_TRUE(ran);
}

TEST(EventQueue, EventsScheduledDuringRunExecute)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            eq.scheduleIn(1, recurse);
    };
    eq.scheduleAt(0, recurse);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 4u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.scheduleAt(i, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 7u);
}

TEST(EventQueue, CancelledEventNotCounted)
{
    EventQueue eq;
    auto id = eq.scheduleAt(1, [] {});
    eq.scheduleAt(2, [] {});
    eq.cancel(id);
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 1u);
}

} // namespace
} // namespace ltp
