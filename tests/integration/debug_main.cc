// Ad-hoc diagnostic driver (not a test): runs one kernel and dumps stats.
//
//   ltp_debug [kernel] [iterScale] [nodes] [pred] [mode] [topo] [routing]
//             [threads]
//
// `threads` (or LTP_SIM_THREADS) selects the parallel engine's shard
// count; the dump is bit-identical for every value.
//
// Observability (all observer-only — the dump does not change):
//   LTP_TRACE=t.json            capture a Chrome/Perfetto trace
//   LTP_TRACE_CATS=link,engine  restrict traced categories
//   LTP_METRICS=m.jsonl         stream periodic StatGroup deltas
//   LTP_METRICS_INTERVAL=5000   sampling period in ticks
//   LTP_ENGINE_PROFILE=1        print the engine self-profile to stderr
//
// Harness guards (src/sim/guard/; watchdog/checkers/recorder are
// observer-only too):
//   LTP_CHECK=all               arm protocol invariant checkers
//   LTP_FAULT=<spec>            deterministic fault injection
//   LTP_WATCHDOG_MS / LTP_BARRIER_STALL_MS / LTP_MAX_WALL_MS /
//   LTP_MAX_EVENTS / LTP_MAX_RSS_MB   progress/resource budgets
//   LTP_FLIGHT_RECORDER=f.json  crash/abort flight-record dump
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

#include "dsm/experiment.hh"

namespace
{

int
runDebug(int argc, char **argv)
{
    ltp::ExperimentSpec spec;
    spec.kernel = argc > 1 ? argv[1] : "tomcatv";
    spec.predictor = ltp::PredictorKind::Base;
    spec.mode = ltp::PredictorMode::Off;
    if (argc > 2)
        spec.iterScale = std::atof(argv[2]);

    ltp::SystemParams sp;
    sp.numNodes = argc > 3 ? std::atoi(argv[3]) : 32;
    if (argc > 4) {
        std::string pred = argv[4];
        if (pred == "ltp")
            sp.predictor = ltp::PredictorKind::LtpPerBlock;
        else if (pred == "dsi")
            sp.predictor = ltp::PredictorKind::Dsi;
        else if (pred == "last-pc")
            sp.predictor = ltp::PredictorKind::LastPc;
        else if (pred == "ltp-global")
            sp.predictor = ltp::PredictorKind::LtpGlobal;
        sp.mode = argc > 5 && std::string(argv[5]) == "passive"
                      ? ltp::PredictorMode::Passive
                      : ltp::PredictorMode::Active;
    }
    if (argc > 6) {
        auto topo = ltp::parseTopologyKind(argv[6]);
        if (!topo) {
            std::cerr << "unknown topology '" << argv[6] << "'\n";
            return 2;
        }
        sp.net.topology = *topo;
    }
    if (argc > 7) {
        auto routing = ltp::parseRoutingPolicy(argv[7]);
        if (!routing) {
            std::cerr << "unknown routing '" << argv[7] << "'\n";
            return 2;
        }
        sp.net.routing = *routing;
    }
    try {
        if (argc > 8)
            sp.simThreads = ltp::parseSimThreads(argv[8]);
        else if (const char *env = std::getenv("LTP_SIM_THREADS"))
            sp.simThreads = ltp::parseSimThreads(env);
        sp.obs = ltp::obs::obsParamsFromEnv();
        sp.guard = ltp::guard::guardParamsFromEnv();
    } catch (const std::invalid_argument &e) {
        std::cerr << e.what() << "\n";
        return 2;
    }

    ltp::KernelConfig cfg = ltp::defaultConfig(spec.kernel);
    cfg.nodes = sp.numNodes;
    if (spec.iterScale != 1.0) {
        cfg.iters = std::max(
            1u, unsigned(std::llround(cfg.iters * spec.iterScale)));
    }

    ltp::DsmSystem sys(sp);
    if (!sys.shardPlan().canonical() && sp.simThreads > 1) {
        std::cout << "# serial fallback: " << sys.shardPlan().serialReason
                  << "\n";
    }
    auto kernel = ltp::makeKernel(spec.kernel);
    ltp::RunResult r = sys.run(*kernel, cfg);

    std::cout << "completed=" << r.completed << " cycles=" << r.cycles
              << " memOps=" << r.memOps
              << " invalidations=" << r.invalidations << "\n";
    if (r.outcome == ltp::RunOutcome::Aborted)
        std::cout << "aborted=\"" << r.abortReason << "\"\n";
    if (!r.completed) {
        for (ltp::NodeId n = 0; n < sp.numNodes; ++n) {
            auto &node = sys.node(n);
            std::cout << "node " << n << ": done=" << node.task.done()
                      << " outstanding=" << node.cacheCtrl->hasOutstanding();
            if (node.cacheCtrl->hasOutstanding())
                std::cout << " blk=0x" << std::hex
                          << node.cacheCtrl->outstandingBlock() << std::dec;
            std::cout << "\n";
        }
    }
    sys.stats().dump(std::cout);
    if (const char *prof = std::getenv("LTP_ENGINE_PROFILE");
        prof && std::string(prof) == "1") {
        // Host-side numbers — stderr, so stdout stays byte-comparable
        // across shard counts.
        const auto &ep = r.engineProfile;
        std::cerr << "engineProfile: rounds=" << ep.rounds
                  << " windowTicks=" << ep.windowTicks
                  << " barrierParks=" << ep.barrierParks
                  << " barrierWaitNs=" << ep.barrierWaitNs
                  << " spilledPosts=" << ep.spilledPosts
                  << " overflowMigrations=" << ep.overflowMigrations
                  << "\n";
    }
    return r.completed ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    // Fail loudly but structured: a throwing run (a violated LTP_CHECK
    // invariant, a bad spec, a harness bug) prints one parseable line
    // and exits 1 instead of aborting with an unhandled exception.
    try {
        return runDebug(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "ltp_debug: fatal: " << e.what() << "\n";
        return 1;
    }
}
