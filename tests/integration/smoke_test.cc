/**
 * @file
 * End-to-end smoke tests: every kernel runs to completion on the base
 * system and produces coherence activity.
 */

#include <gtest/gtest.h>

#include "dsm/experiment.hh"

namespace ltp
{
namespace
{

class KernelSmoke : public ::testing::TestWithParam<std::string>
{
};

TEST_P(KernelSmoke, RunsToCompletionOnBaseSystem)
{
    ExperimentSpec spec;
    spec.kernel = GetParam();
    spec.predictor = PredictorKind::Base;
    spec.mode = PredictorMode::Off;
    spec.iterScale = 0.5;

    RunResult r = runExperiment(spec);
    EXPECT_TRUE(r.completed) << spec.kernel << " deadlocked or timed out";
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.memOps, 0u);
    EXPECT_GT(r.invalidations, 0u)
        << spec.kernel << " produced no coherence invalidations";
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSmoke,
                         ::testing::ValuesIn(allKernelNames()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace ltp
