/**
 * @file
 * Self-invalidation scenario tests: SelfInvS / SelfInvX handling at the
 * directory, the Section 4 verification mask (correct vs premature),
 * timeliness classification, and the races with in-flight requests.
 *
 * Uses an "always predict last touch on demand" scripted predictor so
 * the tests control exactly when self-invalidations fire.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/addr.hh"
#include "net/network.hh"
#include "predictor/invalidation_predictor.hh"
#include "proto/cache_controller.hh"
#include "proto/dir_controller.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace ltp
{
namespace
{

constexpr NodeId kNodes = 4;
constexpr Addr blkB = 0x1000; // homed at node 1

/** Predictor scripted by the test: predicts when armed. */
class ScriptedPredictor : public InvalidationPredictor
{
  public:
    bool
    onTouch(Addr, Pc, bool, bool) override
    {
        bool fire = armed;
        armed = false;
        return fire;
    }

    void onInvalidation(Addr) override { ++invalidations; }

    void
    onVerification(Addr, bool premature) override
    {
        if (premature)
            ++prematures;
        else
            ++corrects;
    }

    std::string name() const override { return "scripted"; }

    bool armed = false;
    int invalidations = 0;
    int prematures = 0;
    int corrects = 0;
};

class SelfInvTest : public ::testing::Test
{
  protected:
    SelfInvTest() : homes_(4096, kNodes)
    {
        net_ = std::make_unique<Network>(eq_, kNodes, NetworkParams{},
                                         stats_);
        for (NodeId n = 0; n < kNodes; ++n) {
            preds_.push_back(std::make_unique<ScriptedPredictor>());
            caches_.push_back(std::make_unique<CacheController>(
                n, eq_, *net_, homes_, CacheParams{}, stats_));
            caches_[n]->setPredictor(preds_[n].get(),
                                     PredictorMode::Active);
            dirs_.push_back(std::make_unique<DirController>(
                n, eq_, *net_, DirParams{}, stats_));
        }
        for (NodeId n = 0; n < kNodes; ++n) {
            net_->setSink(n, [this, n](const Message &m) {
                switch (m.type) {
                  case MsgType::GetS:
                  case MsgType::GetX:
                  case MsgType::InvAck:
                  case MsgType::WbData:
                  case MsgType::SelfInvS:
                  case MsgType::SelfInvX:
                  case MsgType::EvictS:
                  case MsgType::EvictX:
                    dirs_[n]->receive(m);
                    break;
                  default:
                    caches_[n]->receive(m);
                }
            });
            dirs_[n]->setVerifyHook([this](NodeId who, Addr blk,
                                           bool premature, bool timely) {
                // onDirVerify forwards to the predictor, exactly as the
                // assembled system wires it.
                caches_[who]->onDirVerify(blk, premature, timely);
            });
        }
    }

    Tick
    access(NodeId n, Addr addr, bool write, bool predict_last = false)
    {
        preds_[n]->armed = predict_last;
        Tick latency = 0;
        bool done = false;
        caches_[n]->access(addr, 0x1000, write, [&](Tick lat, bool) {
            latency = lat;
            done = true;
        });
        eq_.run();
        EXPECT_TRUE(done);
        return latency;
    }

    DirEntry &
    dirEntry(Addr blk)
    {
        return dirs_[homes_.home(blk)]->directory().entry(blk);
    }

    EventQueue eq_;
    StatGroup stats_;
    HomeMap homes_;
    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<ScriptedPredictor>> preds_;
    std::vector<std::unique_ptr<CacheController>> caches_;
    std::vector<std::unique_ptr<DirController>> dirs_;
};

TEST_F(SelfInvTest, SelfInvXReturnsBlockToIdle)
{
    access(0, blkB, true, /*predict_last=*/true);
    DirEntry &e = dirEntry(blkB);
    EXPECT_EQ(e.state, DirState::Idle);
    EXPECT_EQ(caches_[0]->cache().state(blkB), CacheState::Invalid);
    EXPECT_TRUE(e.inVerifMask(0));
}

TEST_F(SelfInvTest, SelfInvSRemovesSharer)
{
    access(0, blkB, false);
    access(2, blkB, false, /*predict_last=*/true);
    DirEntry &e = dirEntry(blkB);
    EXPECT_FALSE(e.isSharer(2));
    EXPECT_TRUE(e.isSharer(0));
    EXPECT_EQ(e.state, DirState::Shared);
    EXPECT_TRUE(e.inVerifMask(2));
}

TEST_F(SelfInvTest, LastSharerSelfInvGoesIdle)
{
    access(0, blkB, false, /*predict_last=*/true);
    EXPECT_EQ(dirEntry(blkB).state, DirState::Idle);
}

TEST_F(SelfInvTest, SelfInvalidatedWriteAvoidsThreeHop)
{
    // Without self-invalidation the read is a 3-hop transaction; after
    // a (timely) self-invalidation it is a plain 2-hop miss.
    access(0, blkB, true);
    Tick three_hop = access(2, blkB, false);

    access(3, blkB, true, /*predict_last=*/true);
    Tick two_hop = access(2, blkB, false);
    EXPECT_LT(two_hop + 100, three_hop);
}

TEST_F(SelfInvTest, CorrectWriterSelfInvVerifiedOnNextRead)
{
    access(0, blkB, true, /*predict_last=*/true);
    EXPECT_EQ(preds_[0]->corrects, 0);
    access(2, blkB, false); // another node reads: phase change
    EXPECT_EQ(preds_[0]->corrects, 1);
    EXPECT_EQ(preds_[0]->prematures, 0);
    EXPECT_FALSE(dirEntry(blkB).inVerifMask(0));
    EXPECT_EQ(stats_.counterValue("dir.selfInvTimelyCorrect"), 1u);
}

TEST_F(SelfInvTest, PrematureWhenSameNodeReturns)
{
    access(0, blkB, true, /*predict_last=*/true);
    access(0, blkB, false); // we come back ourselves: premature
    EXPECT_EQ(preds_[0]->prematures, 1);
    EXPECT_EQ(preds_[0]->corrects, 0);
    EXPECT_EQ(stats_.counterValue("dir.selfInvPremature"), 1u);
    EXPECT_EQ(stats_.counterValue("pred.mispredicted"), 1u);
}

TEST_F(SelfInvTest, ReadCopySelfInvConfirmedOnlyByWrite)
{
    access(0, blkB, false);
    access(2, blkB, false, /*predict_last=*/true);
    // Another READ does not prove the read-copy flush correct...
    access(3, blkB, false);
    EXPECT_EQ(preds_[2]->corrects, 0);
    EXPECT_TRUE(dirEntry(blkB).inVerifMask(2));
    // ...but a write (read -> write phase change) does.
    access(0, blkB, true);
    EXPECT_EQ(preds_[2]->corrects, 1);
    EXPECT_FALSE(dirEntry(blkB).inVerifMask(2));
}

TEST_F(SelfInvTest, CorrectSelfInvCountsAsPredictedInvalidation)
{
    access(0, blkB, true, /*predict_last=*/true);
    access(2, blkB, false);
    EXPECT_EQ(stats_.counterValue("pred.predicted"), 1u);
    EXPECT_GE(stats_.counterValue("pred.invalidations"), 1u);
}

TEST_F(SelfInvTest, UnpredictedInvalidationCountsNotPredicted)
{
    access(0, blkB, true);
    access(2, blkB, false); // pulls and invalidates node 0's copy
    EXPECT_EQ(stats_.counterValue("pred.notPredicted"), 1u);
    EXPECT_EQ(preds_[0]->invalidations, 1);
}

TEST_F(SelfInvTest, SelfInvIssuedCounterTracks)
{
    access(0, blkB, true, /*predict_last=*/true);
    EXPECT_EQ(stats_.counterValue("pred.selfInvsIssued"), 1u);
}

TEST_F(SelfInvTest, WriterVerifMaskSurvivesUntilPhaseChange)
{
    access(0, blkB, true, /*predict_last=*/true);
    // Directly re-write by another node: mask confirmed by GetX too.
    access(2, blkB, true);
    EXPECT_EQ(preds_[0]->corrects, 1);
}

TEST_F(SelfInvTest, StaleDropsStayZeroInCleanRuns)
{
    access(0, blkB, true, true);
    access(2, blkB, false, true);
    access(3, blkB, true, true);
    EXPECT_EQ(stats_.counterValue("dir.staleDrops"), 0u);
}

TEST_F(SelfInvTest, DsiCandidateBitSetForActivelySharedBlock)
{
    // Writer self-invalidates; re-fetch by the writer compares its
    // stale fetched-version against the bumped directory version.
    access(0, blkB, true);
    access(2, blkB, true);
    // Node 0 re-reads: its version is stale -> candidate bit.
    // (We can only observe the effect through the predictor interface
    // in integration tests; here check the version difference directly.)
    CacheLine *line = caches_[0]->cache().findAny(blkB);
    ASSERT_NE(line, nullptr);
    EXPECT_NE(line->version, dirEntry(blkB).version);
}

} // namespace
} // namespace ltp
