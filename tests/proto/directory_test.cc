/** @file Unit tests for raw directory state (DirEntry bit bookkeeping). */

#include <gtest/gtest.h>

#include "proto/directory.hh"

namespace ltp
{
namespace
{

TEST(DirEntry, StartsIdleAndEmpty)
{
    DirEntry e;
    EXPECT_EQ(e.state, DirState::Idle);
    EXPECT_EQ(e.numSharers(), 0u);
    EXPECT_EQ(e.owner, invalidNode);
    EXPECT_FALSE(e.busy);
}

TEST(DirEntry, SharerBitOps)
{
    DirEntry e;
    e.addSharer(3);
    e.addSharer(31);
    e.addSharer(63);
    EXPECT_TRUE(e.isSharer(3));
    EXPECT_TRUE(e.isSharer(31));
    EXPECT_TRUE(e.isSharer(63));
    EXPECT_FALSE(e.isSharer(4));
    EXPECT_EQ(e.numSharers(), 3u);
    e.removeSharer(31);
    EXPECT_FALSE(e.isSharer(31));
    EXPECT_EQ(e.numSharers(), 2u);
}

TEST(DirEntry, AddSharerIdempotent)
{
    DirEntry e;
    e.addSharer(5);
    e.addSharer(5);
    EXPECT_EQ(e.numSharers(), 1u);
}

TEST(DirEntry, VerifMaskTracksTimeliness)
{
    DirEntry e;
    e.setVerif(2, /*timely=*/true);
    e.setVerif(7, /*timely=*/false);
    EXPECT_TRUE(e.inVerifMask(2));
    EXPECT_TRUE(e.inVerifMask(7));
    EXPECT_TRUE(e.clearVerif(2));
    EXPECT_FALSE(e.clearVerif(7));
    EXPECT_FALSE(e.inVerifMask(2));
    EXPECT_FALSE(e.inVerifMask(7));
}

TEST(DirEntry, SetVerifOverwritesTimeliness)
{
    DirEntry e;
    e.setVerif(1, true);
    e.setVerif(1, false);
    EXPECT_FALSE(e.clearVerif(1));
}

TEST(Directory, EntryCreatedOnDemand)
{
    Directory d;
    EXPECT_EQ(d.find(0x100), nullptr);
    d.entry(0x100).addSharer(1);
    ASSERT_NE(d.find(0x100), nullptr);
    EXPECT_TRUE(d.find(0x100)->isSharer(1));
    EXPECT_EQ(d.numEntries(), 1u);
}

TEST(Directory, ForEachVisitsAll)
{
    Directory d;
    d.entry(0x100);
    d.entry(0x200);
    unsigned count = 0;
    d.forEach([&](Addr, const DirEntry &) { ++count; });
    EXPECT_EQ(count, 2u);
}

TEST(DirStateName, AllNamed)
{
    EXPECT_STREQ(dirStateName(DirState::Idle), "Idle");
    EXPECT_STREQ(dirStateName(DirState::Shared), "Shared");
    EXPECT_STREQ(dirStateName(DirState::Exclusive), "Exclusive");
}

} // namespace
} // namespace ltp
