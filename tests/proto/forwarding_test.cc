/**
 * @file
 * Tests for the sharing-prediction + forwarding extension: the
 * directory learns requester succession and hands self-invalidated
 * blocks straight to the predicted next consumer (the "in the limit"
 * remark in Section 2 of the paper).
 */

#include <gtest/gtest.h>

#include "dsm/system.hh"
#include "proto/sharing_predictor.hh"

namespace ltp
{
namespace
{

TEST(SharingPredictor, UnknownBlockNoPrediction)
{
    SharingPredictor p;
    EXPECT_FALSE(p.predictNext(0x100, 0).has_value());
}

TEST(SharingPredictor, LearnsStableSuccession)
{
    SharingPredictor p;
    // Pattern: 1 then 2, repeatedly.
    for (int i = 0; i < 3; ++i) {
        p.observeRequest(0x100, 1);
        p.observeRequest(0x100, 2);
    }
    auto next = p.predictNext(0x100, 1);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, 2u);
}

TEST(SharingPredictor, RequiresConfidence)
{
    SharingPredictor p;
    p.observeRequest(0x100, 1);
    p.observeRequest(0x100, 2);
    // Seen once: counter below threshold.
    EXPECT_FALSE(p.predictNext(0x100, 1).has_value());
}

TEST(SharingPredictor, UnstablePatternSuppressed)
{
    SharingPredictor p;
    p.observeRequest(0x100, 1);
    p.observeRequest(0x100, 2);
    p.observeRequest(0x100, 1);
    p.observeRequest(0x100, 3);
    p.observeRequest(0x100, 1);
    p.observeRequest(0x100, 2);
    // 1 -> {2,3,2}: the counter kept getting knocked down.
    EXPECT_FALSE(p.predictNext(0x100, 1).has_value());
}

TEST(SharingPredictor, BlocksIndependent)
{
    SharingPredictor p;
    for (int i = 0; i < 3; ++i) {
        p.observeRequest(0x100, 1);
        p.observeRequest(0x100, 2);
    }
    EXPECT_FALSE(p.predictNext(0x200, 1).has_value());
}

TEST(SharingPredictor, SelfSuccessionNotLearned)
{
    SharingPredictor p;
    for (int i = 0; i < 5; ++i)
        p.observeRequest(0x100, 1);
    EXPECT_FALSE(p.predictNext(0x100, 1).has_value());
}

/** Producer/consumer kernel for end-to-end forwarding checks. */
class PingPong : public KernelBase
{
  public:
    std::string name() const override { return "pingpong"; }

    void
    setup(AddressSpace &as, MemoryValues &mem,
          const KernelConfig &cfg) override
    {
        cfg_ = cfg;
        base_ = as.alloc("pp.buf", std::uint64_t(cfg.size) * 32, 0);
        for (unsigned b = 0; b < cfg.size; ++b)
            mem.store(base_ + Addr(b) * 32, 0);
    }

    Task<void>
    run(ThreadCtx &ctx) override
    {
        for (unsigned it = 0; it < cfg_.iters; ++it) {
            if (ctx.id() == 0) {
                for (unsigned b = 0; b < cfg_.size; ++b)
                    co_await ctx.store(0x10, base_ + Addr(b) * 32, it);
            }
            co_await barrier(ctx);
            if (ctx.id() == 1) {
                for (unsigned b = 0; b < cfg_.size; ++b)
                    co_await ctx.load(0x14, base_ + Addr(b) * 32);
            }
            co_await barrier(ctx);
        }
    }

  private:
    Addr base_ = 0;
};

RunResult
runPingPong(bool forwarding)
{
    SystemParams sp = SystemParams::withPredictor(
        PredictorKind::LtpPerBlock, PredictorMode::Active, 30);
    sp.numNodes = 4;
    sp.dir.enableForwarding = forwarding;
    KernelConfig cfg;
    cfg.iters = 30;
    cfg.size = 8;
    PingPong kernel;
    DsmSystem sys(sp);
    RunResult r = sys.run(kernel, cfg);
    r.memOps = sys.stats().counterValue("cache.forwardFills");
    return r; // memOps repurposed: forward fills
}

TEST(Forwarding, ForwardFillsHappen)
{
    RunResult with = runPingPong(true);
    EXPECT_TRUE(with.completed);
    EXPECT_GT(with.memOps, 20u) << "no forwards delivered";
}

TEST(Forwarding, NoForwardsWhenDisabled)
{
    RunResult without = runPingPong(false);
    EXPECT_EQ(without.memOps, 0u);
}

TEST(Forwarding, ReducesExecutionTime)
{
    RunResult with = runPingPong(true);
    RunResult without = runPingPong(false);
    EXPECT_LT(with.cycles, without.cycles)
        << "forwarding should cut the consumer's remote misses";
}

TEST(Forwarding, ProtocolStaysCoherent)
{
    // The forwarded copies must be tracked: writes still invalidate
    // them and the run completes without stale drops exploding.
    SystemParams sp = SystemParams::withPredictor(
        PredictorKind::LtpPerBlock, PredictorMode::Active, 30);
    sp.dir.enableForwarding = true;
    KernelConfig cfg = defaultConfig("em3d");
    cfg.nodes = sp.numNodes;
    DsmSystem sys(sp);
    auto k = makeKernel("em3d");
    RunResult r = sys.run(*k, cfg);
    EXPECT_TRUE(r.completed);
}

} // namespace
} // namespace ltp
