/**
 * @file
 * Coherence-protocol scenario tests: a hand-wired mini-DSM (4 nodes)
 * driven by explicit accesses, checking directory state transitions,
 * message flows, latencies, self-invalidation handling, and the
 * Section 4 verification mask.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/addr.hh"
#include "net/network.hh"
#include "proto/cache_controller.hh"
#include "proto/dir_controller.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace ltp
{
namespace
{

constexpr NodeId kNodes = 4;

class ProtocolTest : public ::testing::Test
{
  protected:
    ProtocolTest() : homes_(4096, kNodes)
    {
        net_ = std::make_unique<Network>(eq_, kNodes, NetworkParams{},
                                         stats_);
        for (NodeId n = 0; n < kNodes; ++n) {
            caches_.push_back(std::make_unique<CacheController>(
                n, eq_, *net_, homes_, CacheParams{}, stats_));
            dirs_.push_back(std::make_unique<DirController>(
                n, eq_, *net_, DirParams{}, stats_));
        }
        for (NodeId n = 0; n < kNodes; ++n) {
            net_->setSink(n, [this, n](const Message &m) {
                switch (m.type) {
                  case MsgType::GetS:
                  case MsgType::GetX:
                  case MsgType::InvAck:
                  case MsgType::WbData:
                  case MsgType::SelfInvS:
                  case MsgType::SelfInvX:
                  case MsgType::EvictS:
                  case MsgType::EvictX:
                    dirs_[n]->receive(m);
                    break;
                  default:
                    caches_[n]->receive(m);
                }
            });
            dirs_[n]->setVerifyHook([this](NodeId who, Addr blk,
                                           bool premature, bool timely) {
                verifications_.push_back({who, blk, premature, timely});
            });
        }
    }

    /** Issue an access from node @p n and run to completion. */
    Tick
    access(NodeId n, Addr addr, bool write, Pc pc = 0x1000)
    {
        Tick latency = 0;
        bool done = false;
        caches_[n]->access(addr, pc, write, [&](Tick lat, bool) {
            latency = lat;
            done = true;
        });
        eq_.run();
        EXPECT_TRUE(done);
        return latency;
    }

    DirEntry &
    dirEntry(Addr blk)
    {
        return dirs_[homes_.home(blk)]->directory().entry(blk);
    }

    struct Verification
    {
        NodeId who;
        Addr blk;
        bool premature;
        bool timely;
    };

    EventQueue eq_;
    StatGroup stats_;
    HomeMap homes_;
    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<CacheController>> caches_;
    std::vector<std::unique_ptr<DirController>> dirs_;
    std::vector<Verification> verifications_;
};

// Block homed at node 1 (page 1 under interleave).
constexpr Addr blkB = 0x1000;
// Block homed at node 0.
constexpr Addr blkA = 0x0100;

TEST_F(ProtocolTest, ColdReadGoesSharedAtDirectory)
{
    access(0, blkB, false);
    DirEntry &e = dirEntry(blkB);
    EXPECT_EQ(e.state, DirState::Shared);
    EXPECT_TRUE(e.isSharer(0));
    EXPECT_EQ(caches_[0]->cache().state(blkB), CacheState::Shared);
}

TEST_F(ProtocolTest, ColdWriteGoesExclusive)
{
    access(0, blkB, true);
    DirEntry &e = dirEntry(blkB);
    EXPECT_EQ(e.state, DirState::Exclusive);
    EXPECT_EQ(e.owner, 0u);
    EXPECT_EQ(caches_[0]->cache().state(blkB), CacheState::Exclusive);
}

TEST_F(ProtocolTest, RemoteReadRoundTripNear416)
{
    // Table 1: round-trip remote miss latency of 416 cycles with a
    // remote-to-local ratio of ~4.
    Tick remote = access(0, blkB, false);
    EXPECT_NEAR(double(remote), 416.0, 30.0);
}

TEST_F(ProtocolTest, LocalMissNear104)
{
    Tick local = access(0, blkA, false);
    EXPECT_NEAR(double(local), 104.0, 25.0);
}

TEST_F(ProtocolTest, RemoteToLocalRatioNearFour)
{
    Tick local = access(0, blkA, false);
    Tick remote = access(0, blkB, false);
    EXPECT_NEAR(double(remote) / double(local), 4.0, 0.8);
}

TEST_F(ProtocolTest, HitIsOneCycle)
{
    access(0, blkB, false);
    EXPECT_EQ(access(0, blkB, false), 1u);
}

TEST_F(ProtocolTest, MultipleReadersShareBlock)
{
    access(0, blkB, false);
    access(2, blkB, false);
    access(3, blkB, false);
    DirEntry &e = dirEntry(blkB);
    EXPECT_EQ(e.state, DirState::Shared);
    EXPECT_EQ(e.numSharers(), 3u);
}

TEST_F(ProtocolTest, WriteInvalidatesAllSharers)
{
    access(0, blkB, false);
    access(2, blkB, false);
    access(3, blkB, true);
    DirEntry &e = dirEntry(blkB);
    EXPECT_EQ(e.state, DirState::Exclusive);
    EXPECT_EQ(e.owner, 3u);
    EXPECT_EQ(e.numSharers(), 0u);
    EXPECT_EQ(caches_[0]->cache().state(blkB), CacheState::Invalid);
    EXPECT_EQ(caches_[2]->cache().state(blkB), CacheState::Invalid);
}

TEST_F(ProtocolTest, ReadInvalidatesWriterMigratoryProtocol)
{
    // The paper focuses on protocols that invalidate the writer's copy
    // on a read.
    access(0, blkB, true);
    access(2, blkB, false);
    DirEntry &e = dirEntry(blkB);
    EXPECT_EQ(e.state, DirState::Shared);
    EXPECT_TRUE(e.isSharer(2));
    EXPECT_EQ(caches_[0]->cache().state(blkB), CacheState::Invalid);
}

TEST_F(ProtocolTest, ThreeHopReadCostsMoreThanTwoHop)
{
    Tick two_hop = access(0, blkB, false);
    access(2, blkB, true); // now exclusive at node 2
    Tick three_hop = access(3, blkB, false);
    EXPECT_GT(three_hop, two_hop + 100);
}

TEST_F(ProtocolTest, UpgradeFromSoleSharerIsCheap)
{
    access(0, blkB, false);
    Tick upgrade = access(0, blkB, true);
    // No memory access, no writeback: control round trip only.
    EXPECT_LT(upgrade, 350u);
    EXPECT_EQ(dirEntry(blkB).state, DirState::Exclusive);
    EXPECT_EQ(dirEntry(blkB).owner, 0u);
}

TEST_F(ProtocolTest, WriteAfterWriteMigrates)
{
    access(0, blkB, true);
    access(2, blkB, true);
    DirEntry &e = dirEntry(blkB);
    EXPECT_EQ(e.owner, 2u);
    EXPECT_EQ(caches_[0]->cache().state(blkB), CacheState::Invalid);
}

TEST_F(ProtocolTest, VersionIncrementsPerExclusiveGrant)
{
    access(0, blkB, true);
    access(2, blkB, true);
    access(3, blkB, true);
    EXPECT_EQ(dirEntry(blkB).version, 3u);
}

TEST_F(ProtocolTest, InvalidationsCountedAtCaches)
{
    access(0, blkB, false);
    access(2, blkB, false);
    access(3, blkB, true);
    EXPECT_EQ(stats_.counterValue("pred.invalidations"), 2u);
}

TEST_F(ProtocolTest, DirectoryStatsSampled)
{
    access(0, blkB, false);
    EXPECT_GT(stats_.average("dir.queueing").count(), 0u);
    EXPECT_GT(stats_.averageMean("dir.service"), 0.0);
}

} // namespace
} // namespace ltp
