/** @file Unit tests for the shared-address-space layout allocator. */

#include <gtest/gtest.h>

#include "kernel/layout.hh"

namespace ltp
{
namespace
{

class LayoutTest : public ::testing::Test
{
  protected:
    LayoutTest() : homes_(4096, 8), as_(homes_, 32) {}

    HomeMap homes_;
    AddressSpace as_;
};

TEST_F(LayoutTest, AllocPinsToRequestedHome)
{
    Addr a = as_.alloc("x", 100, 5);
    EXPECT_EQ(homes_.home(a), 5u);
    EXPECT_EQ(homes_.home(a + 99), 5u);
}

TEST_F(LayoutTest, AllocationsAreDisjointPages)
{
    Addr a = as_.alloc("a", 10, 0);
    Addr b = as_.alloc("b", 10, 1);
    EXPECT_GE(b - a, 4096u);
    EXPECT_EQ(homes_.home(a), 0u);
    EXPECT_EQ(homes_.home(b), 1u);
}

TEST_F(LayoutTest, MultiPageAllocationFullyPinned)
{
    Addr a = as_.alloc("big", 3 * 4096 + 1, 2);
    for (Addr off = 0; off <= 3 * 4096; off += 4096)
        EXPECT_EQ(homes_.home(a + off), 2u);
}

TEST_F(LayoutTest, PerNodeChunksHomedAtTheirNode)
{
    as_.allocPerNode("v", 64, 8);
    for (NodeId n = 0; n < 8; ++n) {
        Addr c = as_.chunkBase("v", n);
        EXPECT_EQ(homes_.home(c), n);
    }
}

TEST_F(LayoutTest, ChunkBasesEquallySpaced)
{
    as_.allocPerNode("v", 64, 8);
    Addr d = as_.chunkBase("v", 1) - as_.chunkBase("v", 0);
    for (NodeId n = 1; n + 1 < 8; ++n) {
        EXPECT_EQ(as_.chunkBase("v", n + 1) - as_.chunkBase("v", n), d);
    }
}

TEST_F(LayoutTest, StripedBlocksRoundRobinHomes)
{
    Addr base = as_.allocStriped("s", 16);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(homes_.home(as_.stripedBlock(base, i)), NodeId(i % 8));
}

TEST_F(LayoutTest, RegionBaseLookup)
{
    Addr a = as_.alloc("named", 10, 0);
    EXPECT_EQ(as_.regionBase("named"), a);
    EXPECT_EQ(as_.regionBase("missing"), 0u);
}

TEST_F(LayoutTest, PageZeroUnused)
{
    Addr a = as_.alloc("first", 10, 0);
    EXPECT_GE(a, 4096u);
}

} // namespace
} // namespace ltp
