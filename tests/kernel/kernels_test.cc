/**
 * @file
 * Structural tests for the benchmark kernels: each must reproduce the
 * sharing-pattern fingerprints the paper attributes to it (checked via
 * coarse run statistics rather than exact traces).
 */

#include <gtest/gtest.h>

#include "dsm/experiment.hh"

namespace ltp
{
namespace
{

RunResult
baseRun(const std::string &kernel, double scale = 0.5)
{
    ExperimentSpec spec;
    spec.kernel = kernel;
    spec.predictor = PredictorKind::Base;
    spec.mode = PredictorMode::Off;
    spec.iterScale = scale;
    return runExperiment(spec);
}

TEST(Kernels, AllProduceCoherenceTraffic)
{
    for (const auto &name : allKernelNames()) {
        RunResult r = baseRun(name);
        EXPECT_TRUE(r.completed) << name;
        EXPECT_GT(r.invalidations, 100u) << name;
        EXPECT_GT(r.memOps, 1000u) << name;
    }
}

TEST(Kernels, WorkScalesWithIterations)
{
    RunResult half = baseRun("em3d", 0.5);
    RunResult full = baseRun("em3d", 1.0);
    EXPECT_GT(full.memOps, half.memOps + half.memOps / 2);
    EXPECT_GT(full.invalidations, half.invalidations);
}

TEST(Kernels, DsmcIsComputeBound)
{
    // The paper: dsmc's computation overlaps/hides invalidations; the
    // cycles-per-memop ratio must be much higher than em3d's.
    RunResult dsmc = baseRun("dsmc");
    RunResult em3d = baseRun("em3d");
    double dsmc_cpm = double(dsmc.cycles) * 32 / double(dsmc.memOps);
    double em3d_cpm = double(em3d.cycles) * 32 / double(em3d.memOps);
    EXPECT_GT(dsmc_cpm, em3d_cpm);
}

TEST(Kernels, RaytraceIsLockSerialized)
{
    // The work pool lock is the critical path: the directory of its
    // home node sees large queueing even without self-invalidation.
    RunResult r = baseRun("raytrace", 1.0);
    EXPECT_GT(r.dirQueueingMean, 100.0);
}

TEST(Kernels, BarnesChurnsMoreSignaturesThanEm3d)
{
    // The rebuilt octree keeps minting new traces: barnes accumulates
    // far more last-touch signatures per active block than em3d.
    ExperimentSpec spec;
    spec.kernel = "barnes";
    spec.predictor = PredictorKind::LtpPerBlock;
    spec.mode = PredictorMode::Passive;
    RunResult barnes = runExperiment(spec);
    spec.kernel = "em3d";
    RunResult em3d = runExperiment(spec);
    EXPECT_GT(barnes.storage.entriesPerBlock(),
              em3d.storage.entriesPerBlock() * 2);
}

TEST(Kernels, TomcatvOwnerWritesDominateTraffic)
{
    // 4 stores per owned block vs 3 boundary reads: writes (upgrades +
    // exclusive grants) must be visible in the message mix.
    RunResult r = baseRun("tomcatv");
    EXPECT_GT(r.invalidations, 0u);
}

TEST(Kernels, ConfigDescriptionsMentionDimensions)
{
    for (const auto &name : allKernelNames()) {
        auto cfg = defaultConfig(name);
        auto desc = describeConfig(name, cfg);
        EXPECT_NE(desc.find(name), std::string::npos);
        EXPECT_NE(desc.find("iters"), std::string::npos);
    }
}

} // namespace
} // namespace ltp
