/** @file Unit tests for the coroutine task machinery. */

#include <gtest/gtest.h>

#include "kernel/task.hh"
#include "sim/event_queue.hh"

namespace ltp
{
namespace
{

/** Awaitable that suspends until an event fires. */
struct DelayAwaiter
{
    EventQueue *eq;
    Tick delay;

    bool await_ready() const { return false; }
    void
    await_suspend(std::coroutine_handle<> h)
    {
        eq->scheduleIn(delay, [h] { h.resume(); });
    }
    void await_resume() const {}
};

Task<void>
simpleTask(int &counter)
{
    ++counter;
    co_return;
}

Task<int>
valueTask()
{
    co_return 42;
}

Task<int>
nestedTask()
{
    int v = co_await valueTask();
    co_return v + 1;
}

Task<void>
timedTask(EventQueue &eq, std::vector<Tick> &ticks)
{
    ticks.push_back(eq.now());
    co_await DelayAwaiter{&eq, 10};
    ticks.push_back(eq.now());
    co_await DelayAwaiter{&eq, 5};
    ticks.push_back(eq.now());
}

TEST(Task, LazyUntilStarted)
{
    int counter = 0;
    std::function<void()> on_done = [] {};
    Task<void> t = simpleTask(counter);
    EXPECT_EQ(counter, 0);
    t.start(&on_done);
    EXPECT_EQ(counter, 1);
    EXPECT_TRUE(t.done());
}

TEST(Task, CompletionCallbackFires)
{
    int counter = 0;
    bool completed = false;
    std::function<void()> on_done = [&] { completed = true; };
    Task<void> t = simpleTask(counter);
    t.start(&on_done);
    EXPECT_TRUE(completed);
}

TEST(Task, NestedTaskReturnsValue)
{
    bool done = false;
    std::function<void()> on_done = [&] { done = true; };
    int result = 0;
    auto outer = [&]() -> Task<void> {
        result = co_await nestedTask();
    }();
    outer.start(&on_done);
    EXPECT_TRUE(done);
    EXPECT_EQ(result, 43);
}

TEST(Task, SuspendsAcrossEvents)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    std::function<void()> on_done = [] {};
    Task<void> t = timedTask(eq, ticks);
    t.start(&on_done);
    EXPECT_EQ(ticks.size(), 1u);
    eq.run();
    ASSERT_EQ(ticks.size(), 3u);
    EXPECT_EQ(ticks[0], 0u);
    EXPECT_EQ(ticks[1], 10u);
    EXPECT_EQ(ticks[2], 15u);
    EXPECT_TRUE(t.done());
}

TEST(Task, NestedSuspensionResumesParent)
{
    EventQueue eq;
    std::vector<int> order;
    std::function<void()> on_done = [] {};
    auto child = [&]() -> Task<void> {
        order.push_back(1);
        co_await DelayAwaiter{&eq, 5};
        order.push_back(2);
    };
    auto parent = [&]() -> Task<void> {
        order.push_back(0);
        co_await child();
        order.push_back(3);
    }();
    parent.start(&on_done);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_TRUE(parent.done());
}

TEST(Task, MoveTransfersOwnership)
{
    int counter = 0;
    Task<void> a = simpleTask(counter);
    Task<void> b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    std::function<void()> on_done = [] {};
    b.start(&on_done);
    EXPECT_EQ(counter, 1);
}

TEST(Task, DestroyUnstartedTaskIsSafe)
{
    int counter = 0;
    {
        Task<void> t = simpleTask(counter);
    }
    EXPECT_EQ(counter, 0);
}

TEST(Task, ManySequentialChildren)
{
    EventQueue eq;
    int total = 0;
    std::function<void()> on_done = [] {};
    auto child = [&](int i) -> Task<int> {
        co_await DelayAwaiter{&eq, 1};
        co_return i;
    };
    auto parent = [&]() -> Task<void> {
        for (int i = 0; i < 50; ++i)
            total += co_await child(i);
    }();
    parent.start(&on_done);
    eq.run();
    EXPECT_EQ(total, 49 * 50 / 2);
}

} // namespace
} // namespace ltp
