/**
 * @file
 * Tests for simulated-thread synchronization: the magic barrier and the
 * coherent-memory spin locks (including mutual exclusion as a property
 * under contention).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernel/sync.hh"
#include "kernel/thread_ctx.hh"
#include "net/network.hh"
#include "proto/cache_controller.hh"
#include "proto/dir_controller.hh"

namespace ltp
{
namespace
{

constexpr Addr lockAddrC = 0x1000;
constexpr Addr counterAddrC = 0x2000;
constexpr LockPcs lockPcsC{0x10, 0x14, 0x18};
constexpr int lockItersC = 6;
constexpr Addr flagC = 0x3000;
constexpr Addr fetchCtrC = 0x4000;

/** Mini-DSM harness running real coroutine threads. */
class SyncTest : public ::testing::Test
{
  protected:
    static constexpr NodeId kNodes = 8;

    SyncTest() : homes_(4096, kNodes)
    {
        net_ = std::make_unique<Network>(eq_, kNodes, NetworkParams{},
                                         stats_);
        sync_ = std::make_unique<SyncDomain>(eq_, kNodes, 200);
        for (NodeId n = 0; n < kNodes; ++n) {
            caches_.push_back(std::make_unique<CacheController>(
                n, eq_, *net_, homes_, CacheParams{}, stats_));
            dirs_.push_back(std::make_unique<DirController>(
                n, eq_, *net_, DirParams{}, stats_));
            threads_.push_back(std::make_unique<ThreadCtx>(
                n, eq_, *caches_[n], mem_, *sync_, 1));
        }
        for (NodeId n = 0; n < kNodes; ++n) {
            net_->setSink(n, [this, n](const Message &m) {
                switch (m.type) {
                  case MsgType::GetS:
                  case MsgType::GetX:
                  case MsgType::InvAck:
                  case MsgType::WbData:
                  case MsgType::SelfInvS:
                  case MsgType::SelfInvX:
                  case MsgType::EvictS:
                  case MsgType::EvictX:
                    dirs_[n]->receive(m);
                    break;
                  default:
                    caches_[n]->receive(m);
                }
            });
        }
    }

    /** Start one root task per node and run to completion. */
    void
    runAll(std::vector<Task<void>> tasks)
    {
        done_.assign(tasks.size(), [] {});
        tasks_ = std::move(tasks);
        for (std::size_t i = 0; i < tasks_.size(); ++i)
            tasks_[i].start(&done_[i]);
        eq_.runUntil(100'000'000);
        for (auto &t : tasks_)
            ASSERT_TRUE(t.done()) << "thread deadlocked";
    }

    EventQueue eq_;
    StatGroup stats_;
    HomeMap homes_;
    MemoryValues mem_;
    std::unique_ptr<Network> net_;
    std::unique_ptr<SyncDomain> sync_;
    std::vector<std::unique_ptr<CacheController>> caches_;
    std::vector<std::unique_ptr<DirController>> dirs_;
    std::vector<std::unique_ptr<ThreadCtx>> threads_;
    std::vector<Task<void>> tasks_;
    std::vector<std::function<void()>> done_;
};

TEST_F(SyncTest, BarrierBlocksUntilAllArrive)
{
    std::vector<Tick> release_times(kNodes);
    std::vector<Task<void>> tasks;
    for (NodeId n = 0; n < kNodes; ++n) {
        tasks.push_back([](ThreadCtx &ctx, NodeId id,
                           std::vector<Tick> &out) -> Task<void> {
            co_await ctx.compute(100 * (id + 1)); // staggered arrivals
            co_await barrier(ctx);
            out[id] = ctx.now();
        }(*threads_[n], n, release_times));
    }
    runAll(std::move(tasks));
    // Everyone released at the same tick, after the last arrival.
    for (NodeId n = 0; n < kNodes; ++n)
        EXPECT_EQ(release_times[n], release_times[0]);
    EXPECT_GE(release_times[0], 100u * kNodes);
    EXPECT_EQ(sync_->barriersCompleted(), 1u);
}

TEST_F(SyncTest, BarrierReusableAcrossGenerations)
{
    std::vector<Task<void>> tasks;
    for (NodeId n = 0; n < kNodes; ++n) {
        tasks.push_back([](ThreadCtx &ctx) -> Task<void> {
            for (int i = 0; i < 5; ++i) {
                co_await ctx.compute(10 + ctx.id());
                co_await barrier(ctx);
            }
        }(*threads_[n]));
    }
    runAll(std::move(tasks));
    EXPECT_EQ(sync_->barriersCompleted(), 5u);
}

TEST_F(SyncTest, LockProvidesMutualExclusionProperty)
{
    // Classic critical-section interleaving check: counter incremented
    // non-atomically (separate load and store with compute between)
    // under the lock must still end exact.
    std::vector<Task<void>> tasks;
    for (NodeId n = 0; n < kNodes; ++n) {
        tasks.push_back([](ThreadCtx &ctx) -> Task<void> {
            for (int i = 0; i < lockItersC; ++i) {
                co_await acquireLock(ctx, lockAddrC, lockPcsC);
                std::uint64_t v = co_await ctx.load(0x20, counterAddrC);
                co_await ctx.compute(50 + ctx.rng().below(100));
                co_await ctx.store(0x24, counterAddrC, v + 1);
                co_await releaseLock(ctx, lockAddrC, lockPcsC);
                co_await ctx.compute(30);
            }
        }(*threads_[n]));
    }
    runAll(std::move(tasks));
    EXPECT_EQ(mem_.load(counterAddrC),
              std::uint64_t(kNodes) * lockItersC);
    EXPECT_EQ(mem_.load(lockAddrC), 0u) << "lock left held";
}

TEST_F(SyncTest, TestAndSetIsAtomicUnderContention)
{
    // All nodes race one TAS; exactly one must win each round.
    std::vector<int> wins(kNodes, 0);
    std::vector<Task<void>> tasks;
    for (NodeId n = 0; n < kNodes; ++n) {
        tasks.push_back([](ThreadCtx &ctx,
                           std::vector<int> &w) -> Task<void> {
            std::uint64_t old =
                co_await ctx.testAndSet(0x30, flagC, ctx.id() + 1);
            if (old == 0)
                w[ctx.id()] = 1;
        }(*threads_[n], wins));
    }
    runAll(std::move(tasks));
    int total = 0;
    for (int w : wins)
        total += w;
    EXPECT_EQ(total, 1);
}

TEST_F(SyncTest, FetchAddSerializesCorrectly)
{
    std::vector<Task<void>> tasks;
    for (NodeId n = 0; n < kNodes; ++n) {
        tasks.push_back([](ThreadCtx &ctx) -> Task<void> {
            for (int i = 0; i < 10; ++i)
                co_await ctx.fetchAdd(0x40, fetchCtrC, 1);
        }(*threads_[n]));
    }
    runAll(std::move(tasks));
    EXPECT_EQ(mem_.load(fetchCtrC), std::uint64_t(kNodes) * 10);
}

TEST_F(SyncTest, MemOpsCounted)
{
    std::vector<Task<void>> tasks;
    for (NodeId n = 0; n < kNodes; ++n) {
        tasks.push_back([](ThreadCtx &ctx) -> Task<void> {
            co_await ctx.store(0x50, 0x5000 + ctx.id() * 64, 1);
            co_await ctx.load(0x54, 0x5000 + ctx.id() * 64);
        }(*threads_[n]));
    }
    runAll(std::move(tasks));
    for (NodeId n = 0; n < kNodes; ++n)
        EXPECT_EQ(threads_[n]->memOps(), 2u);
}

} // namespace
} // namespace ltp
