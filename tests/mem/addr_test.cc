/** @file Unit and property tests for address math and home mapping. */

#include <gtest/gtest.h>

#include "mem/addr.hh"
#include "sim/rng.hh"

namespace ltp
{
namespace
{

TEST(BlockMath, AlignAndOffset)
{
    BlockMath m(32);
    EXPECT_EQ(m.align(0), 0u);
    EXPECT_EQ(m.align(31), 0u);
    EXPECT_EQ(m.align(32), 32u);
    EXPECT_EQ(m.offset(33), 1u);
    EXPECT_EQ(m.blockNum(64), 2u);
}

TEST(BlockMath, SameBlock)
{
    BlockMath m(32);
    EXPECT_TRUE(m.sameBlock(0, 31));
    EXPECT_FALSE(m.sameBlock(31, 32));
}

TEST(BlockMath, AlignIsIdempotentProperty)
{
    BlockMath m(64);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        Addr a = rng.next() & 0xffffffffff;
        Addr al = m.align(a);
        EXPECT_EQ(m.align(al), al);
        EXPECT_LE(al, a);
        EXPECT_LT(a - al, 64u);
        EXPECT_EQ(al + m.offset(a), a);
    }
}

TEST(IsPowerOf2, Basics)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
}

TEST(HomeMap, DefaultInterleavesByPage)
{
    HomeMap h(4096, 4);
    EXPECT_EQ(h.home(0), 0u);
    EXPECT_EQ(h.home(4096), 1u);
    EXPECT_EQ(h.home(4 * 4096), 0u);
    // Same page, same home.
    EXPECT_EQ(h.home(4096 + 17), 1u);
}

TEST(HomeMap, PinOverridesInterleave)
{
    HomeMap h(4096, 4);
    h.pinPageOf(4096, 3);
    EXPECT_EQ(h.home(4096), 3u);
    EXPECT_EQ(h.home(8191), 3u);
    EXPECT_EQ(h.home(8192), 2u); // next page untouched
}

TEST(HomeMap, PinRangeCoversAllPages)
{
    HomeMap h(4096, 8);
    h.pinRange(4096, 3 * 4096, 5);
    EXPECT_EQ(h.home(4096), 5u);
    EXPECT_EQ(h.home(2 * 4096), 5u);
    EXPECT_EQ(h.home(4 * 4096 - 1), 5u);
    EXPECT_NE(h.home(4 * 4096), 5u);
}

TEST(HomeMap, HomeAlwaysValidProperty)
{
    HomeMap h(4096, 32);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(h.home(rng.next() & 0xffffffff), 32u);
}

} // namespace
} // namespace ltp
