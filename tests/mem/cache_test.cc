/** @file Unit tests for the cache tag store. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace ltp
{
namespace
{

TEST(CacheUnbounded, MissOnEmpty)
{
    Cache c(32);
    EXPECT_EQ(c.find(0x100), nullptr);
    EXPECT_EQ(c.state(0x100), CacheState::Invalid);
}

TEST(CacheUnbounded, InsertAndFind)
{
    Cache c(32);
    EXPECT_FALSE(c.insert(0x100, CacheState::Shared).has_value());
    CacheLine *l = c.find(0x110); // same block
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->state, CacheState::Shared);
    EXPECT_EQ(c.residentBlocks(), 1u);
}

TEST(CacheUnbounded, UpgradeInPlace)
{
    Cache c(32);
    c.insert(0x100, CacheState::Shared);
    c.insert(0x100, CacheState::Exclusive);
    EXPECT_EQ(c.state(0x100), CacheState::Exclusive);
    EXPECT_EQ(c.residentBlocks(), 1u);
}

TEST(CacheUnbounded, InvalidateRemovesButKeepsMetadata)
{
    Cache c(32);
    c.insert(0x100, CacheState::Exclusive);
    c.find(0x100)->version = 7;
    c.find(0x100)->activelyShared = true;
    c.invalidate(0x100);
    EXPECT_EQ(c.find(0x100), nullptr);
    // Sticky metadata survives for DSI versioning.
    CacheLine *any = c.findAny(0x100);
    ASSERT_NE(any, nullptr);
    EXPECT_EQ(any->version, 7u);
    EXPECT_TRUE(any->activelyShared);
}

TEST(CacheUnbounded, ReinsertPreservesStickyFlags)
{
    Cache c(32);
    c.insert(0x100, CacheState::Shared);
    c.find(0x100)->activelyShared = true;
    c.invalidate(0x100);
    c.insert(0x100, CacheState::Shared);
    EXPECT_TRUE(c.find(0x100)->activelyShared);
}

TEST(CacheUnbounded, Downgrade)
{
    Cache c(32);
    c.insert(0x100, CacheState::Exclusive);
    c.downgrade(0x100);
    EXPECT_EQ(c.state(0x100), CacheState::Shared);
    // Downgrading a Shared line is a no-op.
    c.downgrade(0x100);
    EXPECT_EQ(c.state(0x100), CacheState::Shared);
}

TEST(CacheUnbounded, NeverEvicts)
{
    Cache c(32);
    for (Addr a = 0; a < 10000 * 32; a += 32)
        EXPECT_FALSE(c.insert(a, CacheState::Shared).has_value());
    EXPECT_EQ(c.residentBlocks(), 10000u);
}

TEST(CacheUnbounded, ForEachResidentSkipsInvalid)
{
    Cache c(32);
    c.insert(0x100, CacheState::Shared);
    c.insert(0x200, CacheState::Exclusive);
    c.invalidate(0x100);
    unsigned count = 0;
    c.forEachResident([&](Addr blk, const CacheLine &l) {
        EXPECT_EQ(blk, 0x200u);
        EXPECT_EQ(l.state, CacheState::Exclusive);
        ++count;
    });
    EXPECT_EQ(count, 1u);
}

TEST(CacheFinite, EvictsLruWhenSetFull)
{
    Cache c(32, /*num_sets=*/1, /*ways=*/2);
    c.insert(0x000, CacheState::Shared);
    c.insert(0x020, CacheState::Exclusive);
    // Touch 0x000 so 0x020 becomes LRU.
    EXPECT_NE(c.find(0x000), nullptr);
    c.insert(0x040, CacheState::Shared); // must evict
    auto victim = c.insert(0x060, CacheState::Shared);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(c.residentBlocks(), 2u);
}

TEST(CacheFinite, VictimCarriesState)
{
    Cache c(32, 1, 1);
    c.insert(0x000, CacheState::Exclusive);
    auto victim = c.insert(0x020, CacheState::Shared);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x000u);
    EXPECT_EQ(victim->state, CacheState::Exclusive);
}

TEST(CacheFinite, DifferentSetsDoNotConflict)
{
    Cache c(32, 2, 1);
    // Block 0 -> set 0, block 1 -> set 1.
    EXPECT_FALSE(c.insert(0x000, CacheState::Shared).has_value());
    EXPECT_FALSE(c.insert(0x020, CacheState::Shared).has_value());
    EXPECT_EQ(c.residentBlocks(), 2u);
}

TEST(CacheFinite, LruOrderRespectsTouches)
{
    Cache c(32, 1, 2);
    c.insert(0x000, CacheState::Shared);
    c.insert(0x020, CacheState::Shared);
    EXPECT_NE(c.find(0x000), nullptr); // 0x020 now LRU
    auto victim = c.insert(0x040, CacheState::Shared);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->addr, 0x020u);
    EXPECT_NE(c.find(0x000), nullptr);
    EXPECT_EQ(c.find(0x020), nullptr);
}

} // namespace
} // namespace ltp
