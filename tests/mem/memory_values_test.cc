/** @file Unit tests for simulated memory values. */

#include <gtest/gtest.h>

#include "mem/memory_values.hh"

namespace ltp
{
namespace
{

TEST(MemoryValues, AbsentWordsReadZero)
{
    MemoryValues m;
    EXPECT_EQ(m.load(0x1000), 0u);
}

TEST(MemoryValues, StoreLoadRoundTrip)
{
    MemoryValues m;
    m.store(0x1000, 42);
    EXPECT_EQ(m.load(0x1000), 42u);
}

TEST(MemoryValues, WordAligned)
{
    MemoryValues m;
    m.store(0x1000, 7);
    // Any byte address within the word maps to the same storage.
    EXPECT_EQ(m.load(0x1007), 7u);
    m.store(0x1004, 9);
    EXPECT_EQ(m.load(0x1000), 9u);
}

TEST(MemoryValues, DistinctWordsIndependent)
{
    MemoryValues m;
    m.store(0x1000, 1);
    m.store(0x1008, 2);
    EXPECT_EQ(m.load(0x1000), 1u);
    EXPECT_EQ(m.load(0x1008), 2u);
}

TEST(MemoryValues, TestAndSetReturnsOld)
{
    MemoryValues m;
    EXPECT_EQ(m.testAndSet(0x2000, 1), 0u);
    EXPECT_EQ(m.testAndSet(0x2000, 1), 1u);
    EXPECT_EQ(m.load(0x2000), 1u);
    m.store(0x2000, 0);
    EXPECT_EQ(m.testAndSet(0x2000, 1), 0u);
}

TEST(MemoryValues, FetchAddAccumulates)
{
    MemoryValues m;
    EXPECT_EQ(m.fetchAdd(0x3000, 5), 0u);
    EXPECT_EQ(m.fetchAdd(0x3000, 5), 5u);
    EXPECT_EQ(m.load(0x3000), 10u);
}

TEST(MemoryValues, WordCountTracksDistinctWords)
{
    MemoryValues m;
    m.store(0x1000, 1);
    m.store(0x1004, 2); // same word
    m.store(0x1008, 3);
    EXPECT_EQ(m.wordCount(), 2u);
}

} // namespace
} // namespace ltp
