// ltp-tidy fixture: ltp-no-wallclock MUST fire on every read below.
// ltp-tidy-scope: model
//
// Model code deciding anything off the host clock breaks the
// byte-identical-dump contract: the result would depend on machine
// speed and scheduling, not on (params, seed).

#include <chrono>
#include <ctime>

namespace fixture
{

unsigned long
backoffTicks()
{
    // Host steady clock in a model-side decision.
    auto deadline = std::chrono::steady_clock::now();
    return static_cast<unsigned long>(
        deadline.time_since_epoch().count());
}

unsigned long
seedFromHost()
{
    // Seeding from wall-clock time makes every run unique.
    return static_cast<unsigned long>(time(nullptr));
}

long
cpuBudget()
{
    // CPU-time read; same problem.
    return static_cast<long>(clock());
}

} // namespace fixture
