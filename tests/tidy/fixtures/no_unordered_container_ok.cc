// ltp-tidy fixture: ltp-no-unordered-container must stay SILENT here.
// ltp-tidy-scope: model
//
// The sanctioned idiom: ltp::FlatMap/FlatSet (sorted vectors, see
// src/sim/flat_map.hh) or std::map/set — all iterate in key order,
// which is a pure function of the keys.

#include <map>
#include <utility>
#include <vector>

namespace ltp
{

// Mock of the project's sorted-vector map (src/sim/flat_map.hh).
template <typename K, typename V>
class FlatMap
{
  public:
    V &operator[](const K &k)
    {
        data_.emplace_back(k, V{});
        return data_.back().second;
    }

  private:
    std::vector<std::pair<K, V>> data_;
};

} // namespace ltp

namespace fixture
{

class Directory
{
  public:
    void track(unsigned long addr, unsigned node)
    {
        order_[addr] = node;
        flat_[addr] = node;
    }

  private:
    std::map<unsigned long, unsigned> order_;
    ltp::FlatMap<unsigned long, unsigned> flat_;
};

} // namespace fixture
