// ltp-tidy fixture: ltp-no-unordered-container MUST fire on each
// declaration below.
// ltp-tidy-scope: model
//
// Hash-table iteration order depends on the hasher, the load factor,
// and (for pointer keys) the address space — anything that walks one
// and emits or accumulates in that order produces run-dependent
// results.

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture
{

using Sharers = std::unordered_set<unsigned>;

class Directory
{
  public:
    void track(unsigned long addr, unsigned node)
    {
        sharers_[addr].insert(node);
    }

  private:
    std::unordered_map<unsigned long, Sharers> sharers_;
};

} // namespace fixture
