// ltp-tidy fixture: ltp-no-pointer-order must stay SILENT here.
// ltp-tidy-scope: model
//
// The sanctioned idiom: key and compare on stable model ids (NodeId,
// VC index, address) that are pure functions of the configuration.
// Pointer *equality* is fine — only ordering/hashing is banned.

#include <map>

namespace fixture
{

using NodeId = unsigned;

struct Node
{
    NodeId id;
};

bool
arbitrate(const Node *a, const Node *b)
{
    // Tie-break on the stable model id, not the address. Pointer
    // equality (same object?) is deterministic and stays legal.
    if (a == b)
        return false;
    return a->id < b->id;
}

class Arbiter
{
  private:
    // Keyed on the model id: iteration order is configuration-derived.
    std::map<NodeId, unsigned> credits_;
};

} // namespace fixture
