// ltp-tidy fixture: ltp-no-pointer-order MUST fire on each pattern
// below.
// ltp-tidy-scope: model
//
// Pointer values are a property of the allocator and the address
// space, not of the model. Ordering, hashing, or integer-casting them
// lets malloc layout decide tie-breaks — byte-identical dumps survive
// only until the next allocator change.

#include <cstdint>
#include <map>
#include <set>

namespace fixture
{

struct Node
{
    unsigned id;
};

bool
arbitrate(const Node *a, const Node *b)
{
    // Raw pointer ordering comparison decides a model tie-break.
    return a < b;
}

unsigned long
hashSlot(const Node *n)
{
    // Pointer-to-integer cast: the address leaks into the result.
    return static_cast<unsigned long>(
        reinterpret_cast<std::uintptr_t>(n) >> 4);
}

class Arbiter
{
  private:
    // Containers keyed on raw pointers iterate in address order.
    std::map<Node *, unsigned> credits_;
    std::set<const Node *, std::less<const Node *>> waiters_;
};

} // namespace fixture
