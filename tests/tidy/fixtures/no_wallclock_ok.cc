// ltp-tidy fixture: ltp-no-wallclock must stay SILENT here.
// ltp-tidy-scope: model
//
// The sanctioned idiom: model code reads virtual time from its event
// queue. Ticks advance only when events execute, so the value is a
// pure function of (params, seed) and identical at every simThreads.

namespace fixture
{

using Tick = unsigned long long;

class EventQueue
{
  public:
    Tick now() const { return now_; }
    void advanceTo(Tick t) { now_ = t; }

  private:
    Tick now_ = 0;
};

Tick
backoffDeadline(const EventQueue &q, Tick penalty)
{
    // Virtual "now" plus a model-derived penalty: deterministic.
    return q.now() + penalty;
}

} // namespace fixture
