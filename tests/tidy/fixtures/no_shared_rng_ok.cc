// ltp-tidy fixture: ltp-no-shared-rng must stay SILENT here.
// ltp-tidy-scope: model
//
// The sanctioned idiom: counter-based draws. Each random value is a
// pure hash of the seed and the coordinates that name the draw (here
// (src, dst, seq, hop) — cf. RoutedNetwork::obliviousPick and the
// guard fault injector's per-site streams). No mutable stream exists,
// so consumption order cannot leak into results.

namespace fixture
{

using u64 = unsigned long long;

// SplitMix64 output mix as a pure function (src/sim/rng.hh idiom).
constexpr u64
splitMix64(u64 z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

constexpr u64
counterHash(u64 seed, u64 src, u64 dst, u64 seq, u64 hop)
{
    return splitMix64(seed ^ splitMix64(src ^ splitMix64(
        dst ^ splitMix64(seq ^ splitMix64(hop)))));
}

unsigned
obliviousPick(u64 src, u64 dst, u64 seq, u64 hop, unsigned n)
{
    constexpr u64 seed = 0x0B11'0B11'0B11'0B11ull;
    return unsigned(counterHash(seed, src, dst, seq, hop) % n);
}

} // namespace fixture
