// ltp-tidy fixture: ltp-no-shared-rng MUST fire on every use below.
// ltp-tidy-scope: model
//
// A shared mutable stream makes the draw sequence part of the result:
// any reordering of consumers (e.g. a different shard schedule)
// changes every subsequent value. Same for the C library's hidden
// global state.

#include <cstdlib>
#include <random>

namespace ltp
{

// Mock of the project's stateful generator (src/sim/rng.hh).
class Rng
{
  public:
    explicit Rng(unsigned long long seed) : state_(seed) {}
    unsigned long long next() { return ++state_; }

  private:
    unsigned long long state_;
};

} // namespace ltp

namespace fixture
{

class Router
{
  public:
    // Member std engine: a shared stream consumed in arrival order.
    unsigned pickStd(unsigned n) { return unsigned(gen_()) % n; }

    // Member ltp::Rng: same consumption-order hazard.
    unsigned pickLtp(unsigned n) { return unsigned(rng_.next() % n); }

    // C library RNG: hidden global state.
    unsigned pickLibc(unsigned n) { return unsigned(rand()) % n; }

  private:
    std::mt19937 gen_;
    ltp::Rng rng_{42};
};

} // namespace fixture
