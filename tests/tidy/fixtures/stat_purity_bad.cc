// ltp-tidy fixture: ltp-stat-purity MUST fire on the observer code
// below.
// ltp-tidy-scope: observer
//
// guard/ and obs/ exist to watch the simulation, never to perturb it:
// arming a watchdog or a tracer must leave every stats dump
// byte-identical. Acquiring a StatGroup handle through the creating
// lookups, or mutating a stat object, breaks that guarantee.

namespace ltp
{

// Mock of src/sim/stats.hh.
class Counter
{
  public:
    void inc(unsigned long d = 1) { v_ += d; }
    unsigned long value() const { return v_; }

  private:
    unsigned long v_ = 0;
};

class StatGroup
{
  public:
    Counter &counter(const char *) { return c_; }
    void mergeFrom(const StatGroup &) {}
    void resetAll() {}

  private:
    Counter c_;
};

} // namespace ltp

namespace fixture
{

void
armWatchdog(ltp::StatGroup &stats)
{
    // Creating lookup + mutation from observer code.
    stats.counter("guard.fired").inc();

    // Bulk mutator: wipes model-owned results.
    stats.resetAll();
}

} // namespace fixture
