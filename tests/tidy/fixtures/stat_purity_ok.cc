// ltp-tidy fixture: ltp-stat-purity must stay SILENT here.
// ltp-tidy-scope: observer
//
// The sanctioned idioms: read model stats through the const accessors
// only, and keep observer-owned tallies in the observer's own structs
// (src/obs/engine_profile.hh idiom) — never inside StatGroup.

namespace ltp
{

// Mock of src/sim/stats.hh — only the const surface.
class Counter
{
  public:
    unsigned long value() const { return v_; }

  private:
    unsigned long v_ = 0;
};

class StatGroup
{
  public:
    const Counter *find(const char *) const { return &c_; }
    unsigned long counterValue(const char *) const { return c_.value(); }

  private:
    Counter c_;
};

} // namespace ltp

namespace fixture
{

// Observer-owned tally, outside StatGroup: mutating it cannot touch a
// stats dump.
struct ProfileTally
{
    unsigned long wakeups = 0;
};

unsigned long
snapshotFaults(const ltp::StatGroup &stats, ProfileTally &tally)
{
    ++tally.wakeups;
    return stats.counterValue("dsm.invalidations");
}

} // namespace fixture
