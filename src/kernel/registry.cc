#include "kernel/kernels.hh"

#include <sstream>
#include <stdexcept>

#include "kernel/kernel_impls.hh"

namespace ltp
{

const std::vector<std::string> &
allKernelNames()
{
    static const std::vector<std::string> names = {
        "appbt",    "barnes",  "dsmc",    "em3d",        "moldyn",
        "ocean",    "raytrace", "tomcatv", "unstructured",
    };
    return names;
}

std::unique_ptr<KernelBase>
makeKernel(const std::string &name)
{
    if (name == "appbt")
        return std::make_unique<AppbtKernel>();
    if (name == "barnes")
        return std::make_unique<BarnesKernel>();
    if (name == "dsmc")
        return std::make_unique<DsmcKernel>();
    if (name == "em3d")
        return std::make_unique<Em3dKernel>();
    if (name == "moldyn")
        return std::make_unique<MoldynKernel>();
    if (name == "ocean")
        return std::make_unique<OceanKernel>();
    if (name == "raytrace")
        return std::make_unique<RaytraceKernel>();
    if (name == "tomcatv")
        return std::make_unique<TomcatvKernel>();
    if (name == "unstructured")
        return std::make_unique<UnstructuredKernel>();
    throw std::invalid_argument("unknown kernel: " + name);
}

KernelConfig
defaultConfig(const std::string &name)
{
    // Our analogue of Table 2: inputs scaled so each simulation finishes
    // in seconds while preserving enough sharing phases for predictors
    // to train and be measured.
    KernelConfig cfg;
    cfg.nodes = 32;
    if (name == "appbt") {
        cfg.iters = 28;
        cfg.size = 24; // face blocks per node
        cfg.size2 = 6; // gaussian row locks
    } else if (name == "barnes") {
        cfg.iters = 20;
        cfg.size = 96; // tree blocks
        cfg.size2 = 6; // bodies per node
    } else if (name == "dsmc") {
        cfg.iters = 48;
        cfg.size = 8;   // message words per neighbor
        cfg.size2 = 12; // cell blocks per node
    } else if (name == "em3d") {
        cfg.iters = 40;
        cfg.size = 48; // graph values per node per field
    } else if (name == "moldyn") {
        cfg.iters = 24;
        cfg.size = 32;  // force blocks (global)
        cfg.size2 = 32; // position blocks (global)
    } else if (name == "ocean") {
        cfg.iters = 32;
        cfg.size = 8; // boundary blocks per node
    } else if (name == "raytrace") {
        cfg.iters = 1;
        cfg.size = 320; // jobs in the global pool
    } else if (name == "tomcatv") {
        cfg.iters = 28;
        cfg.size = 32; // rows (8 blocks per column)
        cfg.size2 = 3; // columns per node
    } else if (name == "unstructured") {
        cfg.iters = 32;
        cfg.size = 16; // vertices per node (4 blocks)
        cfg.size2 = 3; // edges per boundary block
    } else {
        throw std::invalid_argument("unknown kernel: " + name);
    }
    return cfg;
}

std::string
describeConfig(const std::string &name, const KernelConfig &cfg)
{
    std::ostringstream oss;
    oss << name << " nodes=" << cfg.nodes << " iters=" << cfg.iters
        << " size=" << cfg.size;
    if (cfg.size2)
        oss << " size2=" << cfg.size2;
    return oss.str();
}

} // namespace ltp
