/**
 * @file
 * dsmc: discrete-simulation Monte Carlo of particle movement in a 3D
 * box (Moon & Saltz).
 *
 * Paper's characterization: "In dsmc communication occurs through
 * message buffers implemented through a library. Multiple calls to the
 * messaging code in the same computation phase result in multiple
 * accesses to a block by the same instruction, preventing Last-PC from
 * accurately predicting invalidations. Subsequent accesses to the main
 * data structure beyond the synchronization in the message buffers
 * significantly reduce DSI's ability to predict and result in a large
 * number of mispredictions." For Figure 9: computation overlaps most
 * invalidations, so self-invalidation has little performance impact.
 *
 * Structure here: sendMsg()/recvMsg() are real library procedures whose
 * single load/store instructions walk whole buffers. Cell blocks are
 * deposited into by a neighbor (so they are versioned as actively
 * shared) and — crucially — touched by their owner again AFTER the
 * barrier, which makes DSI's barrier flush premature. Heavy collision
 * compute keeps misses off the critical path.
 */

#include "kernel/kernel_impls.hh"

namespace ltp
{

namespace
{
constexpr Pc pcSend = 0x7000;   //!< sendMsg: the one store instruction
constexpr Pc pcRecv = 0x7004;   //!< recvMsg: the one load instruction
constexpr Pc pcCellRd = 0x7008; //!< collision: load own cell
constexpr Pc pcPostRd = 0x7010; //!< post-barrier cell touch-up (load)
constexpr Pc pcPostWr = 0x7014; //!< post-barrier cell touch-up (store)
constexpr Pc pcDepWr = 0x701c;  //!< neighbor deposit: store cell
} // namespace

void
DsmcKernel::setup(AddressSpace &as, MemoryValues &mem,
                  const KernelConfig &cfg)
{
    cfg_ = cfg;
    msgWords_ = cfg.size;
    cellBlocks_ = cfg.size2 ? cfg.size2 : 8;
    unsigned bs = as.blockSize();

    // One inbound buffer per (receiver, direction), homed at the
    // receiver — the library's mailbox layout.
    std::uint64_t buf_bytes = std::uint64_t(msgWords_) * 8 * 2;
    as.allocPerNode("dsmc.buf", buf_bytes, cfg.nodes);
    as.allocPerNode("dsmc.cells", std::uint64_t(cellBlocks_) * bs,
                    cfg.nodes);
    buf_.clear();
    cells_.clear();
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        buf_.push_back(as.chunkBase("dsmc.buf", n));
        cells_.push_back(as.chunkBase("dsmc.cells", n));
        for (unsigned b = 0; b < cellBlocks_; ++b)
            mem.store(cells_[n] + Addr(b) * bs, 1);
    }
}

Task<void>
DsmcKernel::sendMsg(ThreadCtx &ctx, Addr buf, unsigned words)
{
    // The library's packing loop: one store instruction walks the
    // buffer, touching each block four times.
    for (unsigned w = 0; w < words; ++w)
        co_await ctx.store(pcSend, buf + Addr(w) * 8, w + 1);
    // The library's delivery handshake is a synchronization the DSM
    // hardware sees (annotated flag write). DSI flushes its candidate
    // list here — including cell blocks the node is still working on,
    // which is the paper's "accesses beyond the synchronization in the
    // message buffers" misprediction source.
    ctx.syncBoundary();
}

Task<void>
DsmcKernel::recvMsg(ThreadCtx &ctx, Addr buf, unsigned words)
{
    for (unsigned w = 0; w < words; ++w)
        co_await ctx.load(pcRecv, buf + Addr(w) * 8);
}

Task<void>
DsmcKernel::run(ThreadCtx &ctx)
{
    NodeId n = ctx.id();
    NodeId right = (n + 1) % cfg_.nodes;
    NodeId left = (n + cfg_.nodes - 1) % cfg_.nodes;
    unsigned bs = 32;
    std::uint64_t msg_bytes = std::uint64_t(msgWords_) * 8;
    // Message sizes differ per destination (particle flux is uneven),
    // so partial buffer blocks produce traces that are prefixes of full
    // blocks' traces — per-block tables keep them apart, a global table
    // aliases them.
    unsigned words_right = 5 + (n % (msgWords_ - 4));
    unsigned words_left = 5 + ((n + 3) % (msgWords_ - 4));

    for (unsigned it = 0; it < cfg_.iters; ++it) {
        // Move phase: ship outgoing particles to both neighbors through
        // the library (two calls, same instructions, different blocks).
        co_await sendMsg(ctx, buf_[right] + 0 * msg_bytes, words_right);
        co_await sendMsg(ctx, buf_[left] + 1 * msg_bytes, words_left);

        // Deposit particles directly into the right neighbor's cells
        // (blind stores: keeps cell blocks actively shared / versioned).
        for (unsigned d = 0; d < cellBlocks_ / 2; ++d) {
            Addr cell = cells_[right] + Addr((it + d) % cellBlocks_) * bs;
            co_await ctx.store(pcDepWr, cell, it + d);
        }
        co_await barrier(ctx);

        // Unpack both inbound buffers (library calls again).
        unsigned in_left = 5 + (left % (msgWords_ - 4));
        unsigned in_right = 5 + ((right + 3) % (msgWords_ - 4));
        co_await recvMsg(ctx, buf_[n] + 0 * msg_bytes, in_left);
        co_await recvMsg(ctx, buf_[n] + 1 * msg_bytes, in_right);

        // Collision phase: heavy compute over own cells (reads only;
        // results accumulate in private scratch).
        for (unsigned b = 0; b < cellBlocks_; ++b) {
            Addr cell = cells_[n] + Addr(b) * bs;
            co_await ctx.load(pcCellRd, cell);
            co_await ctx.compute(2600);
        }
        co_await barrier(ctx);

        // The accesses "beyond the synchronization": the owner touches
        // its cells again right after the barrier — DSI just flushed
        // them.
        for (unsigned b = 0; b < cellBlocks_; ++b) {
            Addr cell = cells_[n] + Addr(b) * bs;
            std::uint64_t v = co_await ctx.load(pcPostRd, cell);
            co_await ctx.store(pcPostWr, cell, v + 1);
        }
        co_await barrier(ctx);
    }
}

} // namespace ltp
