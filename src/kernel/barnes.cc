/**
 * @file
 * barnes (SPLASH-2): Barnes-Hut N-body simulation.
 *
 * Paper's characterization: "the application's main data structure (an
 * octree) changes dynamically and frequently. Due to frequent
 * allocation/deallocation of dynamic memory, the last-touch signatures
 * associated with blocks become obsolete... the resulting change in the
 * data structure also changes the traces leading to a last-touch,
 * continuously producing new last-touch signatures. LTP and Last-PC
 * achieve accuracies of 22% and 20%. Because barnes is lock-intensive,
 * DSI manages to predict invalidations after a critical section (42%)."
 *
 * Structure here: the tree is rebuilt every iteration with a different
 * (seeded-random) mapping of logical tree cells to memory blocks —
 * emulating the allocator churn — and both the insert walks and the
 * force walks visit data-dependent, varying-depth paths, so traces for
 * a given block keep changing. Tree updates happen under an ANNOTATED
 * global lock, giving DSI its critical-section trigger.
 */

#include "kernel/kernel_impls.hh"

namespace ltp
{

namespace
{
constexpr LockPcs treeLock = {0x8000, 0x8004, 0x8008};
constexpr Pc pcWalk = 0x800c;   //!< insert walk: load tree cell
constexpr Pc pcInsert = 0x8010; //!< insert: store tree cell
constexpr Pc pcForce = 0x8014;  //!< force walk: load tree cell
constexpr unsigned numLocks = 16;
} // namespace

void
BarnesKernel::setup(AddressSpace &as, MemoryValues &mem,
                    const KernelConfig &cfg)
{
    cfg_ = cfg;
    treeBlocks_ = cfg.size;
    bodiesPerNode_ = cfg.size2 ? cfg.size2 : 6;

    Addr tb = as.allocStriped("barnes.tree", treeBlocks_);
    tree_.clear();
    for (unsigned t = 0; t < treeBlocks_; ++t) {
        tree_.push_back(as.stripedBlock(tb, t));
        mem.store(tree_[t], 1);
    }
    // Fine-grained cell locks, hashed by the leaf being inserted under.
    Addr lk = as.allocStriped("barnes.locks", numLocks);
    lockAddr_.clear();
    for (unsigned l = 0; l < numLocks; ++l)
        lockAddr_.push_back(as.stripedBlock(lk, l));
}

Task<void>
BarnesKernel::run(ThreadCtx &ctx)
{
    NodeId n = ctx.id();

    for (unsigned it = 0; it < cfg_.iters; ++it) {
        // The allocator churn: this iteration's tree occupies a freshly
        // permuted mapping of logical cells to memory blocks. (All
        // nodes derive the same mapping from the iteration number.)
        auto cell = [&](unsigned level, std::uint64_t id) {
            Rng h(cfg_.seed + it * 1315423911ull + level * 2654435761ull +
                  id);
            return tree_[h.below(treeBlocks_)];
        };

        // Build phase: insert bodies under per-cell locks. Every walk
        // passes through the upper levels, and how many times a cell
        // block is touched between two of its invalidations depends on
        // the (changing) tree shape — the per-life trace keeps shifting.
        for (unsigned b = 0; b < bodiesPerNode_; ++b) {
            unsigned depth = 2 + unsigned(ctx.rng().below(4));
            std::uint64_t body = n * 131 + b;
            Addr lock = lockAddr_[(body + it) % numLocks];
            co_await acquireLock(ctx, lock, treeLock, /*annotated=*/true);
            for (unsigned d = 0; d < depth; ++d) {
                // Path prefix: level d has 2^d logical cells, so the
                // root and its children are revisited by every walk.
                std::uint64_t id = body & ((1ull << d) - 1);
                Addr c = cell(d, id);
                // Subdivision checks re-read a cell a data-dependent
                // number of times before descending.
                unsigned reads = 1 + unsigned(ctx.rng().below(2));
                for (unsigned k = 0; k < reads; ++k)
                    co_await ctx.load(pcWalk, c);
            }
            co_await ctx.store(pcInsert, cell(depth, body), n + 1);
            co_await releaseLock(ctx, lock, treeLock, /*annotated=*/true);
            co_await ctx.compute(60);
        }
        co_await barrier(ctx);

        // Force phase: every node reads data-dependent, variable-depth
        // paths through the (freshly rebuilt) tree, with data-dependent
        // revisit counts per cell.
        for (unsigned b = 0; b < bodiesPerNode_; ++b) {
            unsigned depth = 2 + unsigned(ctx.rng().below(4));
            std::uint64_t body = n * 977 + b * 7;
            for (unsigned d = 0; d < depth; ++d) {
                std::uint64_t id = body & ((1ull << d) - 1);
                Addr c = cell(d, id);
                unsigned reads = 1 + unsigned(ctx.rng().below(2));
                for (unsigned k = 0; k < reads; ++k)
                    co_await ctx.load(pcForce, c);
            }
            co_await ctx.compute(120);
        }
        co_await barrier(ctx);
    }
}

} // namespace ltp
