/**
 * @file
 * The execution environment of one simulated application thread.
 *
 * Kernels co_await ThreadCtx operations. Every memory operation carries
 * an explicit PC: kernels assign one small-integer PC constant per static
 * load/store site, so loops and repeated procedure calls reuse PCs the
 * way compiled code reuses instruction addresses — which is precisely
 * the structure last-touch traces are made of.
 *
 * The processor model is paper-era simple: single-issue, blocking (one
 * outstanding memory operation), with compute modeled as cycle delays.
 */

#ifndef LTP_KERNEL_THREAD_CTX_HH
#define LTP_KERNEL_THREAD_CTX_HH

#include <coroutine>
#include <cstdint>

#include "mem/memory_values.hh"
#include "proto/cache_controller.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace ltp
{

class SyncDomain;

/** Per-thread simulated execution context. */
class ThreadCtx
{
  public:
    ThreadCtx(NodeId id, EventQueue &eq, CacheController &cc,
              MemoryValues &mem, SyncDomain &sync, std::uint64_t seed)
        : id_(id), eq_(eq), cc_(cc), mem_(mem), sync_(sync),
          rng_(seed + 0x1000 * (id + 1))
    {
    }

    NodeId id() const { return id_; }
    Rng &rng() { return rng_; }
    EventQueue &eventQueue() { return eq_; }
    CacheController &controller() { return cc_; }
    MemoryValues &memory() { return mem_; }
    SyncDomain &sync() { return sync_; }
    Tick now() const { return eq_.now(); }

    /** Memory-operation kinds a kernel can issue. */
    enum class Op : std::uint8_t
    {
        Load,
        Store,
        TestAndSet,
        FetchAdd,
    };

    /** Awaitable memory operation; yields the loaded / previous value. */
    struct [[nodiscard]] MemAwaiter
    {
        ThreadCtx *ctx;
        Pc pc;
        Addr addr;
        Op op;
        std::uint64_t operand;
        std::uint64_t result = 0;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            bool is_write = op != Op::Load;
            ctx->cc_.access(addr, pc, is_write,
                            [this, h](Tick, bool) {
                                complete();
                                h.resume();
                            });
        }

        std::uint64_t await_resume() const { return result; }

      private:
        void
        complete()
        {
            MemoryValues &mem = ctx->mem_;
            switch (op) {
              case Op::Load:
                result = mem.load(addr);
                break;
              case Op::Store:
                mem.store(addr, operand);
                break;
              case Op::TestAndSet:
                result = mem.testAndSet(addr, operand);
                break;
              case Op::FetchAdd:
                result = mem.fetchAdd(addr, operand);
                break;
            }
            ++ctx->memOps_;
        }
    };

    /** Load the word at @p a (instruction at @p pc). */
    MemAwaiter
    load(Pc pc, Addr a)
    {
        return MemAwaiter{this, pc, a, Op::Load, 0};
    }

    /** Store @p v to the word at @p a. */
    MemAwaiter
    store(Pc pc, Addr a, std::uint64_t v)
    {
        return MemAwaiter{this, pc, a, Op::Store, v};
    }

    /** Atomic test-and-set; yields the previous value. */
    MemAwaiter
    testAndSet(Pc pc, Addr a, std::uint64_t v = 1)
    {
        return MemAwaiter{this, pc, a, Op::TestAndSet, v};
    }

    /** Atomic fetch-and-add; yields the previous value. */
    MemAwaiter
    fetchAdd(Pc pc, Addr a, std::uint64_t d = 1)
    {
        return MemAwaiter{this, pc, a, Op::FetchAdd, d};
    }

    /** Awaitable compute delay. */
    struct [[nodiscard]] ComputeAwaiter
    {
        ThreadCtx *ctx;
        Tick cycles;

        bool await_ready() const { return cycles == 0; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            ctx->eq_.scheduleIn(cycles, [h] { h.resume(); });
        }

        void await_resume() const {}
    };

    /** Spend @p cycles of pure computation. */
    ComputeAwaiter
    compute(Tick cycles)
    {
        return ComputeAwaiter{this, cycles};
    }

    /**
     * Report a synchronization boundary to the node's predictor (DSI
     * self-invalidates its candidate list here; LTP ignores it).
     */
    void syncBoundary() { cc_.syncBoundary(); }

    /** Total memory operations retired by this thread. */
    std::uint64_t memOps() const { return memOps_; }

  private:
    NodeId id_;
    EventQueue &eq_;
    CacheController &cc_;
    MemoryValues &mem_;
    SyncDomain &sync_;
    Rng rng_;
    std::uint64_t memOps_ = 0;
};

} // namespace ltp

#endif // LTP_KERNEL_THREAD_CTX_HH
