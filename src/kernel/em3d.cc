/**
 * @file
 * em3d (Split-C): electromagnetic wave propagation on a static bipartite
 * graph of E and H field values.
 *
 * Paper's characterization (Section 5.1): "computation proceeds in a
 * loop and the majority of the blocks are only touched once prior to
 * invalidation. Moreover, the sharing patterns are static and
 * repetitive, resulting in a high (>95%) prediction accuracy in all the
 * predictors."
 *
 * Structure here: each node owns a chunk of E and H values, one value
 * per cache block. Updating a value reads its two dependencies (15%
 * remote, like the paper's input) and writes the value. A remote
 * dependency is read exactly once per phase and invalidated when its
 * owner rewrites it next phase: single-touch traces for everyone.
 */

#include "kernel/kernel_impls.hh"

#include <set>

namespace ltp
{

namespace
{
constexpr Pc pcERd0 = 0x1000;
constexpr Pc pcERd1 = 0x1004;
constexpr Pc pcEWr = 0x1008;
constexpr Pc pcHRd0 = 0x100c;
constexpr Pc pcHRd1 = 0x1010;
constexpr Pc pcHWr = 0x1014;
constexpr double remoteFraction = 0.15;
} // namespace

void
Em3dKernel::setup(AddressSpace &as, MemoryValues &mem,
                  const KernelConfig &cfg)
{
    cfg_ = cfg;
    perNode_ = cfg.size;
    unsigned bs = as.blockSize();

    as.allocPerNode("em3d.e", std::uint64_t(perNode_) * bs, cfg.nodes);
    as.allocPerNode("em3d.h", std::uint64_t(perNode_) * bs, cfg.nodes);

    eAddr_.assign(cfg.nodes, {});
    hAddr_.assign(cfg.nodes, {});
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        Addr ec = as.chunkBase("em3d.e", n);
        Addr hc = as.chunkBase("em3d.h", n);
        for (unsigned i = 0; i < perNode_; ++i) {
            eAddr_[n].push_back(ec + Addr(i) * bs);
            hAddr_[n].push_back(hc + Addr(i) * bs);
            mem.store(eAddr_[n][i], 1);
            mem.store(hAddr_[n][i], 1);
        }
    }

    // Build the static dependency lists: phase 0 updates E from H,
    // phase 1 updates H from E. Each reader reads any given remote
    // value at most once per phase (the graph has simple edges), which
    // is what makes em3d's remote blocks single-touch.
    Rng rng(cfg.seed);
    deps_.assign(2, {});
    for (unsigned phase = 0; phase < 2; ++phase) {
        auto &src = phase == 0 ? hAddr_ : eAddr_;
        deps_[phase].assign(cfg.nodes, {});
        for (NodeId n = 0; n < cfg.nodes; ++n) {
            std::set<Addr> used_remote;
            for (unsigned i = 0; i < perNode_; ++i) {
                // Local dependencies live in the owner's registers /
                // private cache and cost only compute; a remote
                // dependency (15%, "distance 2" neighbors) is a real
                // coherent load. 0 marks "no remote dependency".
                auto pick = [&]() -> Addr {
                    if (!rng.chance(remoteFraction) || cfg.nodes < 2)
                        return 0;
                    for (int attempt = 0; attempt < 8; ++attempt) {
                        NodeId owner =
                            (n + 1 + NodeId(rng.below(2))) % cfg.nodes;
                        Addr a = src[owner][rng.below(perNode_)];
                        if (used_remote.insert(a).second)
                            return a;
                    }
                    return 0;
                };
                deps_[phase][n].emplace_back(pick(), pick());
            }
        }
    }
}

Task<void>
Em3dKernel::run(ThreadCtx &ctx)
{
    NodeId n = ctx.id();
    for (unsigned it = 0; it < cfg_.iters; ++it) {
        // E phase: e[i] = f(h deps)
        for (unsigned i = 0; i < perNode_; ++i) {
            auto [d0, d1] = deps_[0][n][i];
            std::uint64_t v0 =
                d0 ? co_await ctx.load(pcERd0, d0) : 1;
            std::uint64_t v1 =
                d1 ? co_await ctx.load(pcERd1, d1) : 1;
            co_await ctx.store(pcEWr, eAddr_[n][i], v0 + v1);
            co_await ctx.compute(12);
        }
        co_await barrier(ctx);

        // H phase: h[i] = f(e deps)
        for (unsigned i = 0; i < perNode_; ++i) {
            auto [d0, d1] = deps_[1][n][i];
            std::uint64_t v0 =
                d0 ? co_await ctx.load(pcHRd0, d0) : 1;
            std::uint64_t v1 =
                d1 ? co_await ctx.load(pcHRd1, d1) : 1;
            co_await ctx.store(pcHWr, hAddr_[n][i], v0 + v1);
            co_await ctx.compute(12);
        }
        co_await barrier(ctx);
    }
}

} // namespace ltp
