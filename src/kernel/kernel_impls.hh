/**
 * @file
 * Declarations of the nine benchmark kernels (one definition file each).
 *
 * Every kernel reproduces the sharing structure the paper attributes to
 * the corresponding application in Section 5.1; the per-kernel comments
 * in the .cc files spell out the mapping. PC constants are per-static-
 * site, exactly like instruction addresses in compiled code.
 */

#ifndef LTP_KERNEL_KERNEL_IMPLS_HH
#define LTP_KERNEL_KERNEL_IMPLS_HH

#include <utility>
#include <vector>

#include "kernel/kernels.hh"
#include "kernel/sync.hh"

namespace ltp
{

/** NAS appbt: multi-PC sweep phases + unannotated spin locks. */
class AppbtKernel : public KernelBase
{
  public:
    std::string name() const override { return "appbt"; }
    void setup(AddressSpace &as, MemoryValues &mem,
               const KernelConfig &cfg) override;
    Task<void> run(ThreadCtx &ctx) override;

  private:
    Task<void> sweep(ThreadCtx &ctx, unsigned phase);
    Task<void> gaussian(ThreadCtx &ctx);

    std::vector<Addr> face_;     //!< per-node face chunk bases
    std::vector<Addr> lockAddr_; //!< gaussian row locks
    std::vector<Addr> rowAddr_;  //!< gaussian shared rows
    unsigned faceBlocks_ = 0;
    unsigned locks_ = 0;
};

/** SPLASH-2 barnes: dynamically rebuilt octree, lock-intensive. */
class BarnesKernel : public KernelBase
{
  public:
    std::string name() const override { return "barnes"; }
    void setup(AddressSpace &as, MemoryValues &mem,
               const KernelConfig &cfg) override;
    Task<void> run(ThreadCtx &ctx) override;

  private:
    std::vector<Addr> tree_;     //!< tree cell blocks
    std::vector<Addr> lockAddr_; //!< fine-grained cell locks
    unsigned treeBlocks_ = 0;
    unsigned bodiesPerNode_ = 0;
};

/** dsmc: library message buffers + cells touched across barriers. */
class DsmcKernel : public KernelBase
{
  public:
    std::string name() const override { return "dsmc"; }
    void setup(AddressSpace &as, MemoryValues &mem,
               const KernelConfig &cfg) override;
    Task<void> run(ThreadCtx &ctx) override;

  private:
    Task<void> sendMsg(ThreadCtx &ctx, Addr buf, unsigned words);
    Task<void> recvMsg(ThreadCtx &ctx, Addr buf, unsigned words);

    std::vector<Addr> buf_;   //!< per-receiver mailbox bases
    std::vector<Addr> cells_; //!< per-node cell chunk bases
    unsigned msgWords_ = 0;
    unsigned cellBlocks_ = 0;
};

/** Split-C em3d: static bipartite graph, single-touch blocks. */
class Em3dKernel : public KernelBase
{
  public:
    std::string name() const override { return "em3d"; }
    void setup(AddressSpace &as, MemoryValues &mem,
               const KernelConfig &cfg) override;
    Task<void> run(ThreadCtx &ctx) override;

  private:
    unsigned perNode_ = 0;
    std::vector<std::vector<Addr>> eAddr_;
    std::vector<std::vector<Addr>> hAddr_;
    /** deps_[phase][node][i] = the two dependency addresses. */
    std::vector<std::vector<std::vector<std::pair<Addr, Addr>>>> deps_;
};

/** moldyn: read-shared positions + migratory force reduction. */
class MoldynKernel : public KernelBase
{
  public:
    std::string name() const override { return "moldyn"; }
    void setup(AddressSpace &as, MemoryValues &mem,
               const KernelConfig &cfg) override;
    Task<void> run(ThreadCtx &ctx) override;

  private:
    std::vector<Addr> forceAddr_;
    std::vector<Addr> posAddr_;
    std::vector<std::vector<unsigned>> posSample_;
    unsigned forceBlocks_ = 0;
    unsigned posBlocks_ = 0;
};

/** SPLASH-2 ocean: red/black SOR via a twice-invoked procedure. */
class OceanKernel : public KernelBase
{
  public:
    std::string name() const override { return "ocean"; }
    void setup(AddressSpace &as, MemoryValues &mem,
               const KernelConfig &cfg) override;
    Task<void> run(ThreadCtx &ctx) override;

  private:
    Task<void> sorPass(ThreadCtx &ctx, unsigned color);

    std::vector<Addr> boundary_; //!< per-node boundary chunk bases
    std::vector<Addr> fluxAddr_; //!< per-adjacent-pair flux blocks
    std::vector<Addr> diag_;     //!< per-node diagonal-term chunk bases
    unsigned blocksPerNode_ = 0;
};

/** SPLASH-2 raytrace: lock-protected global work pool. */
class RaytraceKernel : public KernelBase
{
  public:
    std::string name() const override { return "raytrace"; }
    void setup(AddressSpace &as, MemoryValues &mem,
               const KernelConfig &cfg) override;
    Task<void> run(ThreadCtx &ctx) override;

  private:
    Addr lockAddr_ = 0;
    Addr counterAddr_ = 0;
    Addr headerAddr_ = 0;
    std::vector<Addr> jobAddr_;
    unsigned jobs_ = 0;
};

/** SPEC tomcatv: column-packed stencil with inner/outer boundary reads. */
class TomcatvKernel : public KernelBase
{
  public:
    std::string name() const override { return "tomcatv"; }
    void setup(AddressSpace &as, MemoryValues &mem,
               const KernelConfig &cfg) override;
    Task<void> run(ThreadCtx &ctx) override;

    /** Column-major element address (tests use this too). */
    Addr elemAddr(unsigned col, unsigned row) const;

  private:
    std::vector<Addr> chunk_; //!< per-node column-band bases
    unsigned rows_ = 0;
    unsigned colsPerNode_ = 0;
};

/** unstructured: edge-based mesh sweep, migratory read-modify-writes. */
class UnstructuredKernel : public KernelBase
{
  public:
    std::string name() const override { return "unstructured"; }
    void setup(AddressSpace &as, MemoryValues &mem,
               const KernelConfig &cfg) override;
    Task<void> run(ThreadCtx &ctx) override;

  private:
    std::vector<Addr> vertChunk_;
    std::vector<Addr> coefAddr_;
    unsigned vertsPerNode_ = 0;
    /** edges_[node] = remote vertex addresses swept each iteration. */
    std::vector<std::vector<Addr>> edges_;
};

} // namespace ltp

#endif // LTP_KERNEL_KERNEL_IMPLS_HH
