/**
 * @file
 * tomcatv (SPEC): a vectorized mesh-generation stencil.
 *
 * Paper's characterization: "Tomcatv is a stencil computation in which
 * multiple array elements are stored in the same memory block resulting
 * in multiple references by the same instruction to the block" — which
 * defeats Last-PC — and (Section 5.3) "each neighbor reads two of each
 * of the left and right neighbors' bordering columns. The computation
 * requires reading the outer column only once and the inner column
 * twice, resulting in traces for the outer column blocks becoming
 * subtraces for the inner column blocks" — the global-table aliasing
 * scenario.
 *
 * Structure here: the grid is stored column-major, so a 32-byte block
 * packs 4 consecutive rows of one column. Each node owns a band of
 * columns. Per sweep, a node reads its neighbors' two bordering columns
 * with ONE stencil load instruction — inner column blocks twice, outer
 * column blocks once — then rewrites its own columns with one store
 * instruction (4 stores per block).
 */

#include "kernel/kernel_impls.hh"

namespace ltp
{

namespace
{
constexpr Pc pcStencilRd = 0x2000; //!< the single neighbor-column load
constexpr Pc pcOwnWr = 0x2004;     //!< the single own-column store
constexpr Pc pcReuseRd = 0x2008;   //!< post-barrier reuse of the stencil
constexpr unsigned rowsPerBlock = 4;
} // namespace

Addr
TomcatvKernel::elemAddr(unsigned col, unsigned row) const
{
    NodeId owner = NodeId(col / colsPerNode_);
    unsigned off = (col % colsPerNode_) * rows_ + row;
    return chunk_[owner] + Addr(off) * 8;
}

void
TomcatvKernel::setup(AddressSpace &as, MemoryValues &mem,
                     const KernelConfig &cfg)
{
    cfg_ = cfg;
    rows_ = cfg.size;
    colsPerNode_ = cfg.size2 ? cfg.size2 : 3;

    std::uint64_t bytes_per_node =
        std::uint64_t(colsPerNode_) * rows_ * 8;
    as.allocPerNode("tomcatv.grid", bytes_per_node, cfg.nodes);
    chunk_.clear();
    for (NodeId n = 0; n < cfg.nodes; ++n)
        chunk_.push_back(as.chunkBase("tomcatv.grid", n));

    for (unsigned c = 0; c < cfg.nodes * colsPerNode_; ++c)
        for (unsigned r = 0; r < rows_; ++r)
            mem.store(elemAddr(c, r), 1);
}

Task<void>
TomcatvKernel::run(ThreadCtx &ctx)
{
    NodeId n = ctx.id();
    unsigned c0 = n * colsPerNode_;
    unsigned c1 = c0 + colsPerNode_ - 1;
    unsigned total_cols = cfg_.nodes * colsPerNode_;

    std::uint64_t acc = 0;
    for (unsigned it = 0; it < cfg_.iters; ++it) {
        // Update phase: rewrite every owned column in place — 4 stores
        // per block, all from the same store instruction.
        for (unsigned c = c0; c <= c1; ++c) {
            for (unsigned r = 0; r < rows_; ++r) {
                co_await ctx.store(pcOwnWr, elemAddr(c, r), acc + r);
                if (r % rowsPerBlock == rowsPerBlock - 1)
                    co_await ctx.compute(8);
            }
        }
        co_await barrier(ctx);

        // Stencil sweep: read the two bordering columns of each
        // neighbor. The inner column is referenced twice per block, the
        // outer once — all by the same load instruction.
        struct Border
        {
            unsigned inner;
            unsigned outer;
            bool valid;
        };
        Border borders[2] = {
            {c0 - 1, c0 - 2, c0 >= 2},
            {c1 + 1, c1 + 2, c1 + 2 < total_cols},
        };
        for (const Border &b : borders) {
            if (!b.valid)
                continue;
            for (unsigned r = 0; r < rows_; r += rowsPerBlock) {
                acc += co_await ctx.load(pcStencilRd,
                                         elemAddr(b.inner, r));
                acc += co_await ctx.load(pcStencilRd,
                                         elemAddr(b.inner, r + 1));
                acc += co_await ctx.load(pcStencilRd,
                                         elemAddr(b.outer, r));
                co_await ctx.compute(16);
            }
        }
        co_await barrier(ctx);

        // Residual check: re-read a couple of the inner boundary blocks
        // right after the barrier — sharing that spans the
        // synchronization, so a barrier-triggered flush of these copies
        // is premature.
        for (const Border &b : borders) {
            if (!b.valid)
                continue;
            for (unsigned r = 0; r < 2 * rowsPerBlock; r += rowsPerBlock)
                acc += co_await ctx.load(pcReuseRd, elemAddr(b.inner, r));
        }
    }
}

} // namespace ltp
