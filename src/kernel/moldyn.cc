/**
 * @file
 * moldyn: CHARMM-like molecular dynamics.
 *
 * Paper's characterization: "Moldyn includes a reduction phase in which
 * the same data are read and modified multiple times in a small loop.
 * Multiple references by the same PC reduce Last-PC's accuracy to less
 * than 3%. Because the reduction results in migratory sharing, DSI only
 * predicts 40% of the invalidations correctly." And for Figure 9:
 * "high read sharing degree in moldyn overlaps most of the
 * invalidations, diminishing the effect of self-invalidation."
 *
 * Structure here: a read-shared position array (each node reads a
 * sample of all position blocks; owners rewrite them each time step —
 * the non-migratory fraction DSI does catch), and a global force array
 * that every node sweeps with a tiny load/add/store loop — the same two
 * PCs touch each block eight times while the blocks migrate from node
 * to node.
 */

#include "kernel/kernel_impls.hh"

#include <algorithm>

namespace ltp
{

namespace
{
constexpr Pc pcPosRd = 0x4000;
constexpr Pc pcForceRd = 0x4004;
constexpr Pc pcForceWr = 0x4008;
constexpr Pc pcPosWr = 0x400c;
constexpr unsigned wordsPerBlock = 4;
constexpr unsigned sampleSize = 16; //!< position blocks read per node
} // namespace

void
MoldynKernel::setup(AddressSpace &as, MemoryValues &mem,
                    const KernelConfig &cfg)
{
    cfg_ = cfg;
    forceBlocks_ = cfg.size;
    posBlocks_ = cfg.size2 ? cfg.size2 : 12;

    Addr fb = as.allocStriped("moldyn.force", forceBlocks_);
    Addr pb = as.allocStriped("moldyn.pos", posBlocks_);
    forceAddr_.clear();
    posAddr_.clear();
    for (unsigned b = 0; b < forceBlocks_; ++b) {
        forceAddr_.push_back(as.stripedBlock(fb, b));
        mem.store(forceAddr_[b], 1);
    }
    for (unsigned b = 0; b < posBlocks_; ++b) {
        posAddr_.push_back(as.stripedBlock(pb, b));
        mem.store(posAddr_[b], 1);
    }

    // Deterministic per-node position samples: high read-sharing degree.
    Rng rng(cfg.seed * 13 + 5);
    posSample_.assign(cfg.nodes, {});
    for (NodeId n = 0; n < cfg.nodes; ++n)
        for (unsigned s = 0; s < sampleSize; ++s)
            posSample_[n].push_back(unsigned(rng.below(posBlocks_)));
}

Task<void>
MoldynKernel::run(ThreadCtx &ctx)
{
    NodeId n = ctx.id();

    for (unsigned it = 0; it < cfg_.iters; ++it) {
        // Pairwise-interaction phase: read the shared positions. Four
        // molecules pack into a block; an interacting pair needs two of
        // them — the same load instruction touches the block twice.
        for (unsigned b : posSample_[n]) {
            co_await ctx.load(pcPosRd, posAddr_[b]);
            co_await ctx.load(pcPosRd, posAddr_[b] + 8);
            co_await ctx.compute(300);
        }
        co_await barrier(ctx);

        // Reduction phase: accumulate this node's partial forces into
        // the global force array — the small read-modify-write loop the
        // paper calls out. Nodes start at staggered offsets so blocks
        // migrate around the machine.
        unsigned stride = std::max(1u, forceBlocks_ / cfg_.nodes);
        for (unsigned k = 0; k < forceBlocks_; ++k) {
            unsigned b = (k + n * stride) % forceBlocks_;
            // Blocks hold 2-4 molecules each (static layout): the
            // read-modify-write loop length differs per block.
            unsigned words = 2 + b % (wordsPerBlock - 1);
            for (unsigned w = 0; w < words; ++w) {
                Addr a = forceAddr_[b] + Addr(w) * 8;
                std::uint64_t v = co_await ctx.load(pcForceRd, a);
                co_await ctx.store(pcForceWr, a, v + 1);
            }
            co_await ctx.compute(150);
        }
        co_await barrier(ctx);

        // Position update: each block's owner rewrites it, invalidating
        // all the readers of phase 1.
        for (unsigned b = 0; b < posBlocks_; ++b) {
            if (b % cfg_.nodes == n)
                co_await ctx.store(pcPosWr, posAddr_[b], it + 1);
        }
        co_await barrier(ctx);
    }
}

} // namespace ltp
