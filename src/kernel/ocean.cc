/**
 * @file
 * ocean (SPLASH-2): red/black successive over-relaxation.
 *
 * Paper's characterization: "Ocean implements a red/black SOR algorithm
 * in a computation phase encapsulated in a function invoked twice every
 * iteration. The resulting multiple touches by the function's PCs
 * reduce prediction accuracy in Last-PC to 40%. Sharing blocks in ocean
 * often span beyond critical sections; a block's producer in a critical
 * section reads the block in the subsequent phase. As a result, DSI
 * predicts only 38% of the invalidations accurately and generates 20%
 * mispredicted invalidations."
 *
 * Structure here: sorPass() is a real procedure invoked twice per
 * iteration (red then black), so its load/store PCs appear twice in
 * every inter-invalidation trace. A per-adjacent-pair "flux" block is
 * written by the two nodes alternately and read by its producer in the
 * following pass — exactly the pattern that makes DSI's barrier-
 * triggered self-invalidation premature.
 */

#include "kernel/kernel_impls.hh"

namespace ltp
{

namespace
{
constexpr Pc pcNbrRd = 0x5004;  //!< sorPass: load neighbor boundary
constexpr Pc pcOwnWr = 0x5008;  //!< sorPass: store own boundary element
constexpr Pc pcFluxRd = 0x500c; //!< sorPass: load pair flux
constexpr Pc pcFluxWr = 0x5010; //!< sorPass: store pair flux
constexpr Pc pcDiagRd = 0x5014; //!< read neighbor diagonal term
constexpr Pc pcDiagWr = 0x5018; //!< write own diagonal term
constexpr unsigned diagBlocks = 4;
constexpr unsigned fluxPerPair = 8;
} // namespace

void
OceanKernel::setup(AddressSpace &as, MemoryValues &mem,
                   const KernelConfig &cfg)
{
    cfg_ = cfg;
    blocksPerNode_ = cfg.size;
    unsigned bs = as.blockSize();

    as.allocPerNode("ocean.boundary",
                    std::uint64_t(blocksPerNode_) * bs, cfg.nodes);
    boundary_.clear();
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        boundary_.push_back(as.chunkBase("ocean.boundary", n));
        for (unsigned b = 0; b < blocksPerNode_; ++b)
            mem.store(boundary_[n] + Addr(b) * bs, 1);
    }

    // Four flux blocks per adjacent pair (n, n+1), homed at n.
    Addr flux = as.allocStriped("ocean.flux", cfg.nodes * fluxPerPair);
    fluxAddr_.clear();
    for (unsigned i = 0; i < cfg.nodes * fluxPerPair; ++i) {
        fluxAddr_.push_back(as.stripedBlock(flux, i));
        mem.store(fluxAddr_[i], 1);
    }

    // Per-node diagonal terms: written once and read once per pass by
    // the neighbor — simple single-touch sharing (the part of ocean
    // Last-PC does predict).
    as.allocPerNode("ocean.diag", std::uint64_t(diagBlocks) * bs,
                    cfg.nodes);
    diag_.clear();
    for (NodeId n = 0; n < cfg.nodes; ++n)
        diag_.push_back(as.chunkBase("ocean.diag", n));
}

Task<void>
OceanKernel::sorPass(ThreadCtx &ctx, unsigned color)
{
    NodeId n = ctx.id();
    NodeId left = (n + cfg_.nodes - 1) % cfg_.nodes;
    unsigned bs = 32;

    // Update the boundary blocks of this color (two stores per block
    // from the single update instruction), then gather the neighbor's
    // boundary for the next half-step (two loads per block from the
    // single stencil instruction).
    for (unsigned b = color; b < blocksPerNode_; b += 2) {
        Addr own = boundary_[n] + Addr(b) * bs;
        co_await ctx.store(pcOwnWr, own, color + 1);
        co_await ctx.store(pcOwnWr, own + 8, color + 2);
        co_await ctx.compute(12);
    }
    std::uint64_t acc = 0;
    for (unsigned b = color; b < blocksPerNode_; b += 2) {
        Addr nbr = boundary_[left] + Addr(b) * bs;
        acc += co_await ctx.load(pcNbrRd, nbr);
        acc += co_await ctx.load(pcNbrRd, nbr + 8);
        co_await ctx.compute(12);
    }
    // Diagonal terms: one store / one load per block per pass, each
    // from its own instruction.
    for (unsigned d = 0; d < diagBlocks; ++d) {
        co_await ctx.store(pcDiagWr, diag_[n] + Addr(d) * bs, acc + d);
        acc += co_await ctx.load(pcDiagRd, diag_[left] + Addr(d) * bs);
    }
    (void)acc;

    // Pair fluxes: both pair members read them every pass; the writer
    // alternates — so each pass's producer reads the blocks again in
    // the NEXT pass before the other node writes them. These are the
    // blocks whose sharing "spans beyond the critical section" and
    // makes DSI's barrier flush premature.
    bool my_turn = (color == 0) == (n % 2 == 0);
    for (unsigned i = 0; i < fluxPerPair; ++i) {
        Addr flux = fluxAddr_[n * fluxPerPair + i];
        Addr flux_left = fluxAddr_[left * fluxPerPair + i];
        std::uint64_t f = co_await ctx.load(pcFluxRd, flux);
        f += co_await ctx.load(pcFluxRd, flux_left);
        if (my_turn)
            co_await ctx.store(pcFluxWr, flux, f + 1);
    }
}

Task<void>
OceanKernel::run(ThreadCtx &ctx)
{
    for (unsigned it = 0; it < cfg_.iters; ++it) {
        co_await sorPass(ctx, 0); // red
        co_await barrier(ctx);
        co_await sorPass(ctx, 1); // black — same PCs, second invocation
        co_await barrier(ctx);
    }
}

} // namespace ltp
