/**
 * @file
 * raytrace (SPLASH-2): ray tracing with a lock-protected global work
 * pool.
 *
 * Paper's characterization: "there is a global workpool holding the
 * jobs, protected by a lock. Invalidations of the global workpool are
 * on the execution's critical path... jobs are assigned to one
 * processor at a time, so memory blocks exhibit a migratory sharing
 * pattern and DSI exhibits a low prediction accuracy. Both Last-PC and
 * LTP successfully predict the migratory blocks, achieving 50%." And
 * (5.4): "LTP cannot correctly self-invalidate the critical-section
 * locks because they spin a variable number of times per visit."
 *
 * Structure here: a single test-and-set lock guards a job counter.
 * Per-job processing time is (deterministically) random, so lock
 * contention — and thus each visit's spin count — varies, defeating
 * trace prediction on the lock block. The counter and job blocks
 * migrate cleanly and are predictable.
 */

#include "kernel/kernel_impls.hh"

namespace ltp
{

namespace
{
constexpr LockPcs poolLock = {0x9000, 0x9004, 0x9008};
constexpr Pc pcCtrRd = 0x900c; //!< read the next-job counter
constexpr Pc pcCtrWr = 0x9010; //!< bump the next-job counter
constexpr Pc pcJobRd1 = 0x9014;
constexpr Pc pcJobRd2 = 0x9018;
constexpr Pc pcJobWr = 0x901c; //!< mark the job taken
constexpr Pc pcHdrRd = 0x9020; //!< read the pool header (in the CS)
constexpr Pc pcHdrWr = 0x9024; //!< repartition: rewrite the header
} // namespace

void
RaytraceKernel::setup(AddressSpace &as, MemoryValues &mem,
                      const KernelConfig &cfg)
{
    cfg_ = cfg;
    jobs_ = cfg.size;

    lockAddr_ = as.allocStriped("raytrace.lock", 1);
    Addr ctr = as.allocStriped("raytrace.counter", 1);
    counterAddr_ = ctr;
    mem.store(counterAddr_, 0);
    headerAddr_ = as.allocStriped("raytrace.header", 1);
    mem.store(headerAddr_, 1);

    Addr jb = as.allocStriped("raytrace.jobs", jobs_);
    jobAddr_.clear();
    for (unsigned j = 0; j < jobs_; ++j) {
        jobAddr_.push_back(as.stripedBlock(jb, j));
        mem.store(jobAddr_[j], j + 1);
    }
}

Task<void>
RaytraceKernel::run(ThreadCtx &ctx)
{
    for (;;) {
        // A short backoff cap keeps the waiters actively re-reading the
        // lock word, so each visit's spin count varies with contention —
        // the behaviour that defeats trace prediction on this block.
        co_await acquireLock(ctx, lockAddr_, poolLock, /*annotated=*/true,
                             /*max_backoff=*/64);
        std::uint64_t idx = co_await ctx.load(pcCtrRd, counterAddr_);
        // Consult the pool header: read-mostly critical-section data —
        // the blocks DSI's critical-section flushes do help with.
        co_await ctx.load(pcHdrRd, headerAddr_);
        if (idx % 8 == 7)
            co_await ctx.store(pcHdrWr, headerAddr_, idx);
        // Inspect / repartition the work pool while holding the lock;
        // the variable hold time is what makes each waiter's spin count
        // differ from visit to visit.
        co_await ctx.compute(200 + ctx.rng().below(2200));
        co_await ctx.store(pcCtrWr, counterAddr_, idx + 1);
        co_await releaseLock(ctx, lockAddr_, poolLock, /*annotated=*/true);
        if (idx >= jobs_)
            break;

        // Trace the rays of this job: read the job descriptor twice,
        // mark it taken, then compute for a variable amount of time.
        Addr job = jobAddr_[idx];
        std::uint64_t a = co_await ctx.load(pcJobRd1, job);
        std::uint64_t b = co_await ctx.load(pcJobRd2, job + 8);
        co_await ctx.store(pcJobWr, job, a + b);
        co_await ctx.compute(200 + ctx.rng().below(1800));
    }
    co_await barrier(ctx);
}

} // namespace ltp
