/**
 * @file
 * The workload-kernel framework and the registry of the paper's nine
 * benchmarks (Table 2).
 *
 * Each kernel is a scaled-down, from-scratch reimplementation of the
 * *sharing structure* the paper describes for the corresponding
 * application (Section 5.1): what matters to a last-touch predictor is
 * the (PC, block) reference stream between coherence misses and
 * invalidations, and that is what these kernels reproduce. See DESIGN.md
 * for the per-application structure notes.
 */

#ifndef LTP_KERNEL_KERNELS_HH
#define LTP_KERNEL_KERNELS_HH

#include <memory>
#include <string>
#include <vector>

#include "kernel/layout.hh"
#include "kernel/task.hh"
#include "kernel/thread_ctx.hh"
#include "mem/memory_values.hh"

namespace ltp
{

/** Generic kernel sizing knobs (interpretation is per kernel). */
struct KernelConfig
{
    unsigned nodes = 32;  //!< number of threads == DSM nodes
    unsigned iters = 4;   //!< outer iterations
    unsigned size = 64;   //!< primary problem dimension (per kernel)
    unsigned size2 = 0;   //!< secondary dimension (per kernel; 0 = default)
    std::uint64_t seed = 1;
};

/**
 * A workload kernel. setup() runs once (plain code) to lay out shared
 * memory; run() is started once per node as a coroutine.
 */
class KernelBase
{
  public:
    virtual ~KernelBase() = default;

    virtual std::string name() const = 0;

    /** Lay out shared regions and initialize simulated memory. */
    virtual void setup(AddressSpace &as, MemoryValues &mem,
                       const KernelConfig &cfg) = 0;

    /** The per-thread program. */
    virtual Task<void> run(ThreadCtx &ctx) = 0;

    const KernelConfig &config() const { return cfg_; }

  protected:
    KernelConfig cfg_;
};

/** Instantiate a kernel by name; throws std::invalid_argument if unknown. */
std::unique_ptr<KernelBase> makeKernel(const std::string &name);

/** The nine benchmark names, in the paper's (alphabetical) order. */
const std::vector<std::string> &allKernelNames();

/**
 * The default (scaled) input configuration for a kernel — our analogue
 * of Table 2.
 */
KernelConfig defaultConfig(const std::string &name);

/** One-line description of a kernel's input, for report headers. */
std::string describeConfig(const std::string &name,
                           const KernelConfig &cfg);

} // namespace ltp

#endif // LTP_KERNEL_KERNELS_HH
