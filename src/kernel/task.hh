/**
 * @file
 * A minimal C++20 coroutine task type for simulated threads.
 *
 * Workload kernels are written as coroutines that co_await memory
 * operations; the simulator suspends the kernel until the coherence
 * protocol completes the access. Task<T> supports nesting (a kernel can
 * co_await a helper "procedure" — which is exactly how the paper's
 * Figure 3(b) last-touch-in-a-procedure patterns arise).
 *
 * Tasks are lazy: creation does not run any code. A parent either
 * co_awaits the task (symmetric transfer) or, for the per-node root
 * task, the Processor starts it explicitly.
 */

#ifndef LTP_KERNEL_TASK_HH
#define LTP_KERNEL_TASK_HH

#include <cassert>
#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

namespace ltp
{

namespace detail
{

/** Common promise machinery: continuation chaining + root completion. */
struct PromiseBase
{
    std::coroutine_handle<> continuation;
    std::function<void()> *onComplete = nullptr;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) const noexcept
        {
            PromiseBase &p = h.promise();
            if (p.continuation)
                return p.continuation;
            if (p.onComplete && *p.onComplete)
                (*p.onComplete)();
            return std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void unhandled_exception() { std::terminate(); }
};

} // namespace detail

/** A lazily-started coroutine returning T. */
template <typename T = void>
class [[nodiscard]] Task
{
  public:
    struct promise_type : detail::PromiseBase
    {
        T value{};

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_value(T v) { value = std::move(v); }
    };

    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}
    Task(Task &&o) noexcept : handle_(std::exchange(o.handle_, {})) {}

    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    ~Task() { destroy(); }

    bool valid() const { return bool(handle_); }
    bool done() const { return handle_ && handle_.done(); }

    /** Awaiting a task starts it and yields its return value. */
    auto
    operator co_await() noexcept
    {
        struct Awaiter
        {
            Handle h;
            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                h.promise().continuation = cont;
                return h;
            }

            T await_resume() { return std::move(h.promise().value); }
        };
        assert(handle_ && !handle_.done());
        return Awaiter{handle_};
    }

    Handle handle() const { return handle_; }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    Handle handle_;
};

/** void specialization. */
template <>
class [[nodiscard]] Task<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() {}
    };

    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}
    Task(Task &&o) noexcept : handle_(std::exchange(o.handle_, {})) {}

    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;
    ~Task() { destroy(); }

    bool valid() const { return bool(handle_); }
    bool done() const { return handle_ && handle_.done(); }

    auto
    operator co_await() noexcept
    {
        struct Awaiter
        {
            Handle h;
            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                h.promise().continuation = cont;
                return h;
            }

            void await_resume() const noexcept {}
        };
        assert(handle_ && !handle_.done());
        return Awaiter{handle_};
    }

    Handle handle() const { return handle_; }

    /**
     * Root-task entry: install a completion callback (must outlive the
     * task) and start execution.
     */
    void
    start(std::function<void()> *on_complete)
    {
        assert(handle_ && !handle_.done());
        handle_.promise().onComplete = on_complete;
        handle_.resume();
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    Handle handle_;
};

} // namespace ltp

#endif // LTP_KERNEL_TASK_HH
