/**
 * @file
 * appbt (NAS): block-tridiagonal solver.
 *
 * Paper's characterization: "In appbt, most last-touches to data blocks
 * are spread among different PCs. The application, however, uses
 * spin-locks in a gaussian elimination phase. Last-PC predicts most of
 * the data block last-touches, but fails to predict the last-touches to
 * the spin-locks (75%). Because the spin-locks are not exposed to DSI,
 * it fails to predict a large fraction of the invalidations (40%) and
 * predicts 25% prematurely."
 *
 * Structure here: three sweep phases (x, y, z) per iteration, each with
 * its own trio of PCs — a face block's last touch is a *different*,
 * deterministic PC in every phase, which Last-PC handles fine. The
 * gaussian-elimination phase uses UNANNOTATED spin locks (DSI never
 * sees them). Readers re-read neighbor faces in the very next phase,
 * so DSI's barrier-triggered flushes race the re-reads — the paper's
 * 25% premature.
 */

#include "kernel/kernel_impls.hh"

namespace ltp
{

namespace
{
// One PC trio per sweep phase: two reads of the neighbor face, one
// write of the own face.
// The x and y sweeps read the neighbor face with two distinct
// (unrolled) instructions; the z sweep iterates over the k dimension,
// so both reads come from the SAME loop instruction — the Last-PC
// failure mode of Section 3.1.
constexpr Pc pcRd1[3] = {0x6000, 0x6020, 0x6040};
constexpr Pc pcRd2[3] = {0x6004, 0x6024, 0x6040};
constexpr Pc pcWr[3] = {0x6008, 0x6028, 0x6048};
constexpr Pc pcSeed[3] = {0x600c, 0x602c, 0x604c};
// Gaussian elimination.
constexpr LockPcs gaussLock = {0x6100, 0x6104, 0x6108};
constexpr Pc pcGaussRd = 0x610c;
constexpr Pc pcGaussWr = 0x6110;
} // namespace

void
AppbtKernel::setup(AddressSpace &as, MemoryValues &mem,
                   const KernelConfig &cfg)
{
    cfg_ = cfg;
    faceBlocks_ = cfg.size;
    locks_ = cfg.size2 ? cfg.size2 : 6;
    unsigned bs = as.blockSize();

    as.allocPerNode("appbt.face", std::uint64_t(faceBlocks_) * bs,
                    cfg.nodes);
    face_.clear();
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        face_.push_back(as.chunkBase("appbt.face", n));
        for (unsigned b = 0; b < faceBlocks_; ++b)
            mem.store(face_[n] + Addr(b) * bs, 1);
    }

    Addr lk = as.allocStriped("appbt.locks", locks_);
    Addr rows = as.allocStriped("appbt.rows", locks_);
    lockAddr_.clear();
    rowAddr_.clear();
    for (unsigned l = 0; l < locks_; ++l) {
        lockAddr_.push_back(as.stripedBlock(lk, l));
        rowAddr_.push_back(as.stripedBlock(rows, l));
        mem.store(rowAddr_[l], 1);
    }
}

Task<void>
AppbtKernel::sweep(ThreadCtx &ctx, unsigned phase)
{
    NodeId n = ctx.id();
    NodeId left = (n + cfg_.nodes - 1) % cfg_.nodes;
    unsigned bs = 32;

    // Seed the sweep: re-read a subset of the previous phase's own-face
    // results right at phase start — these are the post-synchronization
    // touches that make DSI's barrier flush premature (Section 5.1).
    for (unsigned b = 0; b < faceBlocks_; b += 3)
        co_await ctx.load(pcSeed[phase], face_[n] + Addr(b) * bs);

    // Gather: read the whole neighbor face first...
    std::uint64_t acc = 0;
    for (unsigned b = 0; b < faceBlocks_; ++b) {
        Addr nbr = face_[left] + Addr(b) * bs;
        acc += co_await ctx.load(pcRd1[phase], nbr);
        acc += co_await ctx.load(pcRd2[phase], nbr + 8);
        co_await ctx.compute(20);
    }
    // ...then update the own face. The gap between a reader's last
    // touch and the owner's rewrite is what lets a self-invalidation
    // reach the directory in time.
    for (unsigned b = 0; b < faceBlocks_; ++b) {
        Addr own = face_[n] + Addr(b) * bs;
        co_await ctx.store(pcWr[phase], own, acc + b + phase);
        co_await ctx.compute(20);
    }
}

Task<void>
AppbtKernel::gaussian(ThreadCtx &ctx)
{
    NodeId n = ctx.id();
    // Pipelined elimination: nodes enter the pipeline staggered and
    // visit the row locks starting at rotated offsets, keeping
    // contention (and spin counts) low and regular.
    co_await ctx.compute(Tick(n) * 150);
    for (unsigned k = 0; k < locks_; ++k) {
        unsigned l = (k + n) % locks_;
        co_await acquireLock(ctx, lockAddr_[l], gaussLock,
                             /*annotated=*/false);
        std::uint64_t v = co_await ctx.load(pcGaussRd, rowAddr_[l]);
        co_await ctx.store(pcGaussWr, rowAddr_[l], v + 1);
        co_await releaseLock(ctx, lockAddr_[l], gaussLock,
                             /*annotated=*/false);
        co_await ctx.compute(80);
    }
}

Task<void>
AppbtKernel::run(ThreadCtx &ctx)
{
    for (unsigned it = 0; it < cfg_.iters; ++it) {
        for (unsigned phase = 0; phase < 3; ++phase) {
            co_await sweep(ctx, phase);
            co_await barrier(ctx);
        }
        co_await gaussian(ctx);
        co_await barrier(ctx);
    }
}

} // namespace ltp
