/**
 * @file
 * unstructured: computational fluid dynamics over an unstructured mesh.
 *
 * Paper's characterization: static sharing patterns, LTP > 95%; "the
 * main loop iterates over data values computing a threshold" so the
 * same instruction references a block multiple times (Last-PC fails);
 * DSI only reaches 38% because it refuses migratory blocks (exclusive
 * request by the requester holding the only read-only copy) as
 * candidates.
 *
 * Structure here: each node owns boundary vertices (4 packed per block)
 * that its left neighbor's edges read-modify-write several times per
 * sweep — a textbook migratory pattern (GetS, then a sole-sharer
 * upgrade) that DSI's versioning deliberately skips. A small set of
 * read-shared coefficient blocks, rewritten by node 0 each iteration,
 * provides the non-migratory fraction DSI does catch.
 */

#include "kernel/kernel_impls.hh"

namespace ltp
{

namespace
{
constexpr Pc pcEdgeRd = 0x3000;  //!< edge sweep: load remote vertex
constexpr Pc pcEdgeWr = 0x3004;  //!< edge sweep: store remote vertex
constexpr Pc pcOwnRd = 0x3008;   //!< owner refresh: load own vertex
constexpr Pc pcOwnWr = 0x300c;   //!< owner refresh: store own vertex
constexpr Pc pcCoefRd = 0x3010;  //!< threshold loop: load coefficient
constexpr Pc pcCoefWr = 0x3014;  //!< node 0: rewrite coefficients
constexpr unsigned coefBlocks = 4;
constexpr unsigned wordsPerBlock = 4;
} // namespace

void
UnstructuredKernel::setup(AddressSpace &as, MemoryValues &mem,
                          const KernelConfig &cfg)
{
    cfg_ = cfg;
    vertsPerNode_ = cfg.size;
    unsigned edges_per_block = cfg.size2 ? cfg.size2 : 3;
    unsigned bs = as.blockSize();

    as.allocPerNode("unstructured.verts",
                    std::uint64_t(vertsPerNode_) * 8, cfg.nodes);
    Addr coef_base = as.allocStriped("unstructured.coef", coefBlocks);
    coefAddr_.clear();
    for (unsigned c = 0; c < coefBlocks; ++c) {
        coefAddr_.push_back(as.stripedBlock(coef_base, c));
        mem.store(coefAddr_[c], 1);
    }

    vertChunk_.clear();
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        vertChunk_.push_back(as.chunkBase("unstructured.verts", n));
        for (unsigned v = 0; v < vertsPerNode_; ++v)
            mem.store(vertChunk_[n] + Addr(v) * 8, 1);
    }

    // Static edge lists: node n's edges target the boundary blocks of
    // node (n+1) % N, several edges per block (the mesh's degree).
    Rng rng(cfg.seed * 7 + 3);
    edges_.assign(cfg.nodes, {});
    unsigned blocks_per_node = vertsPerNode_ * 8 / bs;
    for (NodeId n = 0; n < cfg.nodes; ++n) {
        NodeId neighbor = (n + 1) % cfg.nodes;
        for (unsigned b = 0; b < blocks_per_node; ++b) {
            // The mesh degree varies from block to block (but is static
            // across iterations): some blocks' full traces are prefixes
            // of others' — the global-table aliasing scenario.
            unsigned degree =
                2 + unsigned((b + n) % (edges_per_block + 1));
            for (unsigned e = 0; e < degree; ++e) {
                Addr remote = vertChunk_[neighbor] + Addr(b) * bs +
                              Addr(rng.below(wordsPerBlock)) * 8;
                edges_[n].push_back(remote);
            }
        }
    }
}

Task<void>
UnstructuredKernel::run(ThreadCtx &ctx)
{
    NodeId n = ctx.id();

    for (unsigned it = 0; it < cfg_.iters; ++it) {
        // Threshold loop: every node reads the shared coefficients.
        std::uint64_t threshold = 0;
        for (unsigned c = 0; c < coefBlocks; ++c)
            threshold += co_await ctx.load(pcCoefRd, coefAddr_[c]);
        co_await ctx.compute(40);

        // Edge sweep: read-modify-write the neighbor's boundary
        // vertices, several edges landing in each block — the same two
        // instructions touch a block repeatedly.
        for (Addr remote : edges_[n]) {
            std::uint64_t v = co_await ctx.load(pcEdgeRd, remote);
            co_await ctx.store(pcEdgeWr, remote, v + threshold % 5);
            co_await ctx.compute(20);
        }
        co_await barrier(ctx);

        // Owner refresh: every node renormalizes its own boundary
        // vertices (again one load + one store instruction per word).
        for (unsigned v = 0; v < vertsPerNode_; ++v) {
            Addr a = vertChunk_[n] + Addr(v) * 8;
            std::uint64_t x = co_await ctx.load(pcOwnRd, a);
            co_await ctx.store(pcOwnWr, a, x / 2 + 1);
            if (v % 4 == 3)
                co_await ctx.compute(12);
        }
        // Node 0 refreshes the coefficients for the next iteration.
        if (n == 0) {
            for (unsigned c = 0; c < coefBlocks; ++c)
                co_await ctx.store(pcCoefWr, coefAddr_[c], it + 2);
        }
        co_await barrier(ctx);
    }
}

} // namespace ltp
