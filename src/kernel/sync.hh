/**
 * @file
 * Synchronization for simulated threads.
 *
 * Locks are real test-and-test-and-set spin locks over coherent memory —
 * their blocks ride the normal protocol, so lock traffic produces the
 * traces, migratory patterns, and critical-path invalidations the paper
 * discusses (appbt's gaussian-elimination spin locks, raytrace's work-
 * pool lock). Lock acquire/release report synchronization boundaries to
 * the predictor, which is how DSI triggers.
 *
 * Barriers are "magic": arrival blocks the thread until all threads of
 * the domain arrive (plus a fixed latency), without generating spin
 * traffic. Barrier arrival also reports a synchronization boundary. See
 * DESIGN.md for why this substitution is safe.
 */

#ifndef LTP_KERNEL_SYNC_HH
#define LTP_KERNEL_SYNC_HH

#include <coroutine>
#include <vector>

#include "kernel/task.hh"
#include "kernel/thread_ctx.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace ltp
{

/** Barrier coordination across all threads of a run. */
class SyncDomain
{
  public:
    SyncDomain(EventQueue &eq, unsigned num_threads,
               Tick barrier_latency = 200)
        : eq_(eq), numThreads_(num_threads),
          barrierLatency_(barrier_latency)
    {
    }

    unsigned numThreads() const { return numThreads_; }
    std::uint64_t barriersCompleted() const { return completed_; }

    /** Awaitable barrier arrival. */
    struct [[nodiscard]] BarrierAwaiter
    {
        SyncDomain *dom;

        bool await_ready() const { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            dom->arrive(h);
        }
        void await_resume() const {}
    };

    BarrierAwaiter wait() { return BarrierAwaiter{this}; }

  private:
    void
    arrive(std::coroutine_handle<> h)
    {
        waiting_.push_back(h);
        if (waiting_.size() < numThreads_)
            return;
        // Everyone is here: release the whole generation.
        std::vector<std::coroutine_handle<>> batch;
        batch.swap(waiting_);
        ++completed_;
        eq_.scheduleIn(barrierLatency_, [batch = std::move(batch)] {
            for (auto handle : batch)
                handle.resume();
        });
    }

    EventQueue &eq_;
    unsigned numThreads_;
    Tick barrierLatency_;
    std::vector<std::coroutine_handle<>> waiting_;
    std::uint64_t completed_ = 0;
};

/** PCs of the instructions inside a lock acquire/release sequence. */
struct LockPcs
{
    Pc tas;     //!< the test-and-set instruction
    Pc spin;    //!< the spin-load instruction
    Pc release; //!< the releasing store
};

/**
 * Arrive at the global barrier: reports the synchronization boundary
 * (DSI trigger) and blocks until all threads arrive.
 */
inline Task<void>
barrier(ThreadCtx &ctx)
{
    ctx.syncBoundary();
    co_await ctx.sync().wait();
}

/**
 * Acquire a test-and-test-and-set spin lock at @p lock_addr.
 * Spins with exponential backoff to bound simulation traffic; the
 * backoff makes per-visit spin counts vary with contention, which is
 * what defeats LTP on raytrace's work-pool lock (Section 5.4).
 *
 * @param annotated whether this lock is exposed to the DSM hardware as
 *        a synchronization boundary. DSI requires annotation (Section
 *        2.1); appbt's hand-rolled spin locks are NOT annotated, which
 *        is why DSI misses them (Section 5.1).
 */
inline Task<void>
acquireLock(ThreadCtx &ctx, Addr lock_addr, const LockPcs &pcs,
            bool annotated = true, Tick max_backoff = 4096)
{
    for (;;) {
        std::uint64_t old = co_await ctx.testAndSet(pcs.tas, lock_addr, 1);
        if (old == 0)
            break;
        // Randomized exponential backoff (per-visit jitter), as real
        // spin-lock libraries use to avoid lockstep retry storms.
        Tick backoff = 48 + ctx.rng().below(96);
        while (co_await ctx.load(pcs.spin, lock_addr) != 0) {
            co_await ctx.compute(backoff);
            if (backoff < max_backoff)
                backoff = backoff * 2 + ctx.rng().below(64);
        }
        // Jitter before re-arming the test-and-set so the waiters do
        // not storm the lock word in lockstep when it is released.
        co_await ctx.compute(ctx.rng().below(240));
    }
    if (annotated)
        ctx.syncBoundary(); // critical-section entry
}

/** Release a spin lock. */
inline Task<void>
releaseLock(ThreadCtx &ctx, Addr lock_addr, const LockPcs &pcs,
            bool annotated = true)
{
    co_await ctx.store(pcs.release, lock_addr, 0);
    if (annotated)
        ctx.syncBoundary(); // critical-section exit
}

} // namespace ltp

#endif // LTP_KERNEL_SYNC_HH
