/**
 * @file
 * Synchronization for simulated threads.
 *
 * Locks are real test-and-test-and-set spin locks over coherent memory —
 * their blocks ride the normal protocol, so lock traffic produces the
 * traces, migratory patterns, and critical-path invalidations the paper
 * discusses (appbt's gaussian-elimination spin locks, raytrace's work-
 * pool lock). Lock acquire/release report synchronization boundaries to
 * the predictor, which is how DSI triggers.
 *
 * Barriers are "magic": arrival blocks the thread until all threads of
 * the domain arrive (plus a fixed latency), without generating spin
 * traffic. Barrier arrival also reports a synchronization boundary. See
 * DESIGN.md for why this substitution is safe.
 *
 * Under the parallel engine the domain switches to a sharded protocol:
 * arrivals from different shards meet in atomics (a count plus a
 * monotonic max of the arrival ticks — both commutative, so the release
 * tick is independent of wall-clock arrival order), and the completing
 * arrival posts one per-node wakeup through the engine at
 * lastArrival + barrierLatency. That delay is what bounds the engine's
 * lookahead window alongside the network (see sim/par/lookahead.hh).
 */

#ifndef LTP_KERNEL_SYNC_HH
#define LTP_KERNEL_SYNC_HH

#include <atomic>
#include <coroutine>
#include <vector>

#include "kernel/task.hh"
#include "kernel/thread_ctx.hh"
#include "sim/event_queue.hh"
#include "sim/par/sim_context.hh"
#include "sim/types.hh"

namespace ltp
{

/** Barrier coordination across all threads of a run. */
class SyncDomain
{
  public:
    SyncDomain(EventQueue &eq, unsigned num_threads,
               Tick barrier_latency = 200)
        : eq_(&eq), numThreads_(num_threads),
          barrierLatency_(barrier_latency)
    {
    }

    /**
     * Engine-aware domain: plain sequential contexts take the exact
     * legacy path; canonical (windowed) contexts use the sharded
     * arrival protocol at every shard count, so the release events are
     * identical whether one thread runs or eight.
     */
    SyncDomain(SimContext &ctx, unsigned num_threads,
               Tick barrier_latency = 200)
        : eq_(&ctx.queueFor(0)), numThreads_(num_threads),
          barrierLatency_(barrier_latency)
    {
        if (ctx.canonical()) {
            ctx_ = &ctx;
            slots_.assign(num_threads, nullptr);
        }
    }

    unsigned numThreads() const { return numThreads_; }
    std::uint64_t
    barriersCompleted() const
    {
        return completed_.load(std::memory_order_relaxed);
    }

    /** Awaitable barrier arrival of simulated thread @p node. */
    struct [[nodiscard]] BarrierAwaiter
    {
        SyncDomain *dom;
        NodeId node;

        bool await_ready() const { return false; }
        void
        await_suspend(std::coroutine_handle<> h)
        {
            dom->arrive(node, h);
        }
        void await_resume() const {}
    };

    BarrierAwaiter wait(NodeId node) { return BarrierAwaiter{this, node}; }

  private:
    void
    arrive(NodeId node, std::coroutine_handle<> h)
    {
        if (!ctx_) {
            waiting_.push_back(h);
            if (waiting_.size() < numThreads_)
                return;
            // Everyone is here: release the whole generation.
            std::vector<std::coroutine_handle<>> batch;
            batch.swap(waiting_);
            completed_.fetch_add(1, std::memory_order_relaxed);
            eq_->scheduleIn(barrierLatency_, [batch = std::move(batch)] {
                for (auto handle : batch)
                    handle.resume();
            });
            return;
        }

        // Sharded protocol. Publish this arrival (slot write, then max
        // of the arrival tick, then the count — the completer's acquire
        // on the count makes both visible), and let whoever arrives
        // last schedule the release.
        slots_[node] = h;
        Tick t = ctx_->queueFor(node).now();
        Tick seen = lastArrival_.load(std::memory_order_relaxed);
        while (t > seen &&
               !lastArrival_.compare_exchange_weak(
                   seen, t, std::memory_order_release,
                   std::memory_order_relaxed)) {
        }
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 <
            numThreads_)
            return;

        // Completing arrival: every simulated thread is parked in the
        // barrier, so resetting for the next generation cannot race
        // with a new arrival.
        Tick release = lastArrival_.load(std::memory_order_acquire) +
                       barrierLatency_;
        arrived_.store(0, std::memory_order_relaxed);
        lastArrival_.store(0, std::memory_order_relaxed);
        completed_.fetch_add(1, std::memory_order_relaxed);
        for (NodeId n = 0; n < NodeId(slots_.size()); ++n) {
            std::coroutine_handle<> hn = slots_[n];
            slots_[n] = nullptr;
            ctx_->post(n, release, chan::barrier(n),
                       [hn] { hn.resume(); });
        }
    }

    EventQueue *eq_;
    SimContext *ctx_ = nullptr; //!< set only for canonical engines
    unsigned numThreads_;
    Tick barrierLatency_;
    std::vector<std::coroutine_handle<>> waiting_;
    std::vector<std::coroutine_handle<>> slots_; //!< per-node arrivals
    std::atomic<unsigned> arrived_{0};
    std::atomic<Tick> lastArrival_{0};
    std::atomic<std::uint64_t> completed_{0};
};

/** PCs of the instructions inside a lock acquire/release sequence. */
struct LockPcs
{
    Pc tas;     //!< the test-and-set instruction
    Pc spin;    //!< the spin-load instruction
    Pc release; //!< the releasing store
};

/**
 * Arrive at the global barrier: reports the synchronization boundary
 * (DSI trigger) and blocks until all threads arrive.
 */
inline Task<void>
barrier(ThreadCtx &ctx)
{
    ctx.syncBoundary();
    co_await ctx.sync().wait(ctx.id());
}

/**
 * Acquire a test-and-test-and-set spin lock at @p lock_addr.
 * Spins with exponential backoff to bound simulation traffic; the
 * backoff makes per-visit spin counts vary with contention, which is
 * what defeats LTP on raytrace's work-pool lock (Section 5.4).
 *
 * @param annotated whether this lock is exposed to the DSM hardware as
 *        a synchronization boundary. DSI requires annotation (Section
 *        2.1); appbt's hand-rolled spin locks are NOT annotated, which
 *        is why DSI misses them (Section 5.1).
 */
inline Task<void>
acquireLock(ThreadCtx &ctx, Addr lock_addr, const LockPcs &pcs,
            bool annotated = true, Tick max_backoff = 4096)
{
    for (;;) {
        std::uint64_t old = co_await ctx.testAndSet(pcs.tas, lock_addr, 1);
        if (old == 0)
            break;
        // Randomized exponential backoff (per-visit jitter), as real
        // spin-lock libraries use to avoid lockstep retry storms.
        Tick backoff = 48 + ctx.rng().below(96);
        while (co_await ctx.load(pcs.spin, lock_addr) != 0) {
            co_await ctx.compute(backoff);
            if (backoff < max_backoff)
                backoff = backoff * 2 + ctx.rng().below(64);
        }
        // Jitter before re-arming the test-and-set so the waiters do
        // not storm the lock word in lockstep when it is released.
        co_await ctx.compute(ctx.rng().below(240));
    }
    if (annotated)
        ctx.syncBoundary(); // critical-section entry
}

/** Release a spin lock. */
inline Task<void>
releaseLock(ThreadCtx &ctx, Addr lock_addr, const LockPcs &pcs,
            bool annotated = true)
{
    co_await ctx.store(pcs.release, lock_addr, 0);
    if (annotated)
        ctx.syncBoundary(); // critical-section exit
}

} // namespace ltp

#endif // LTP_KERNEL_SYNC_HH
