/**
 * @file
 * Shared-address-space layout for workload kernels.
 *
 * Kernels allocate named regions pinned to chosen home nodes (emulating
 * the careful page placement all the paper's benchmarks use). The
 * allocator is page-granular so region homes never interfere.
 */

#ifndef LTP_KERNEL_LAYOUT_HH
#define LTP_KERNEL_LAYOUT_HH

#include <cassert>
#include <map>
#include <string>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace ltp
{

/** Page-granular region allocator over the simulated address space. */
class AddressSpace
{
  public:
    AddressSpace(HomeMap &homes, unsigned block_size)
        : homes_(homes), blockMath_(block_size)
    {
    }

    unsigned blockSize() const { return blockMath_.blockSize(); }
    const BlockMath &blockMath() const { return blockMath_; }
    HomeMap &homes() { return homes_; }

    /**
     * Allocate @p bytes pinned to @p home; returns the page-aligned base.
     */
    Addr
    alloc(const std::string &name, std::uint64_t bytes, NodeId home)
    {
        assert(bytes > 0);
        Addr base = next_;
        std::uint64_t page = homes_.pageSize();
        std::uint64_t span = ((bytes + page - 1) / page) * page;
        homes_.pinRange(base, span, home);
        next_ += span;
        regions_[name] = Region{base, bytes, home};
        return base;
    }

    /**
     * Allocate one chunk of @p bytes_per_node per node, each pinned to
     * its node; returns the base of node 0's chunk. Chunk i starts at
     * chunkBase(base, i).
     */
    Addr
    allocPerNode(const std::string &name, std::uint64_t bytes_per_node,
                 NodeId nodes)
    {
        std::uint64_t page = homes_.pageSize();
        chunkSpan_[name] =
            ((bytes_per_node + page - 1) / page) * page;
        Addr base = next_;
        for (NodeId n = 0; n < nodes; ++n)
            alloc(name + "." + std::to_string(n), bytes_per_node, n);
        perNodeBase_[name] = base;
        return base;
    }

    /** Base address of node @p i's chunk in a per-node region. */
    Addr
    chunkBase(const std::string &name, NodeId i) const
    {
        auto bit = perNodeBase_.find(name);
        auto sit = chunkSpan_.find(name);
        assert(bit != perNodeBase_.end() && sit != chunkSpan_.end());
        return bit->second + Addr(i) * sit->second;
    }

    /**
     * Allocate @p blocks cache blocks striped block-by-block across all
     * nodes (block i homed at node i % numNodes). Each block sits in its
     * own page (the address space is sparse, so this costs nothing) —
     * this emulates fine-grain round-robin placement of small global
     * structures. Block i lives at stripedBlock(base, i).
     */
    Addr
    allocStriped(const std::string &name, unsigned blocks)
    {
        Addr base = next_;
        std::uint64_t page = homes_.pageSize();
        for (unsigned i = 0; i < blocks; ++i) {
            homes_.pinRange(base + Addr(i) * page, page,
                            NodeId(i % homes_.numNodes()));
        }
        next_ += Addr(blocks) * page;
        regions_[name] = Region{base, Addr(blocks) * page, invalidNode};
        return base;
    }

    /** Address of striped block @p i in a region from allocStriped(). */
    Addr
    stripedBlock(Addr base, unsigned i) const
    {
        return base + Addr(i) * homes_.pageSize();
    }

    /** Region base by name (0 if absent). */
    Addr
    regionBase(const std::string &name) const
    {
        auto it = regions_.find(name);
        return it == regions_.end() ? 0 : it->second.base;
    }

    std::size_t numRegions() const { return regions_.size(); }

  private:
    struct Region
    {
        Addr base;
        std::uint64_t bytes;
        NodeId home;
    };

    HomeMap &homes_;
    BlockMath blockMath_;
    Addr next_ = 0x10000; // leave page zero unused
    std::map<std::string, Region> regions_;
    std::map<std::string, Addr> perNodeBase_;
    std::map<std::string, std::uint64_t> chunkSpan_;
};

} // namespace ltp

#endif // LTP_KERNEL_LAYOUT_HH
