#include "dsm/system.hh"

#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "net/topo/routed_network.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "predictor/dsi.hh"
#include "predictor/last_pc.hh"
#include "predictor/ltp_global.hh"
#include "predictor/ltp_per_block.hh"
#include "sim/guard/checkers.hh"
#include "sim/guard/fault.hh"
#include "sim/guard/flight_recorder.hh"
#include "sim/guard/watchdog.hh"
#include "sim/par/parallel_scheduler.hh"

namespace ltp
{

namespace
{

/** Decide the engine (shards + window) for @p params. */
ShardPlan
planFor(const SystemParams &params)
{
    if (params.simThreads == 0 || params.simThreads > maxSimThreads) {
        throw std::invalid_argument(
            "SystemParams::simThreads must be in [1, " +
            std::to_string(maxSimThreads) + "], got " +
            std::to_string(params.simThreads));
    }
    // Reject invalid network knobs with the descriptive error before
    // deriving a lookahead from them (makeInterconnect would only get
    // to say so later).
    validateNetworkParams(params.net, params.numNodes);
    NetLookahead net = networkLookahead(params.net);
    LookaheadInputs in;
    in.requestedThreads = params.simThreads;
    in.numNodes = params.numNodes;
    in.netLookahead = net.ticks;
    in.netSerialReason = net.serialReason;
    in.barrierLatency = params.barrierLatency;
    if (params.mode == PredictorMode::Active &&
        params.predictor != PredictorKind::Base) {
        // The home directory trains the self-invalidating node's
        // predictor combinationally when it verifies a SelfInv
        // (DirController::setVerifyHook) — a zero-lookahead cross-node
        // wire no conservative window can span.
        in.zeroLookaheadCoupling =
            "active predictor verification feedback is a zero-lookahead "
            "cross-node coupling";
    }
    return resolveShardPlan(in);
}

std::unique_ptr<SimContext>
makeContext(const ShardPlan &plan, NodeId num_nodes)
{
    if (plan.canonical()) {
        return std::make_unique<ParallelScheduler>(plan.shards, num_nodes,
                                                   plan.window);
    }
    return std::make_unique<SequentialContext>();
}

} // namespace

const char *
predictorKindName(PredictorKind k)
{
    switch (k) {
      case PredictorKind::Base: return "base";
      case PredictorKind::Dsi: return "dsi";
      case PredictorKind::LastPc: return "last-pc";
      case PredictorKind::LtpPerBlock: return "ltp";
      case PredictorKind::LtpGlobal: return "ltp-global";
    }
    return "?";
}

SystemParams
SystemParams::base()
{
    return SystemParams{};
}

SystemParams
SystemParams::withPredictor(PredictorKind kind, PredictorMode mode,
                            unsigned sig_bits)
{
    SystemParams p;
    p.predictor = kind;
    p.mode = kind == PredictorKind::Base ? PredictorMode::Off : mode;
    p.ltp.sigBits = sig_bits;
    return p;
}

SystemParams
SystemParams::withTopology(TopologyKind kind, NodeId nodes)
{
    SystemParams p;
    p.numNodes = nodes;
    p.net.topology = kind;
    return p;
}

DsmSystem::DsmSystem(SystemParams params)
    : params_(params),
      plan_(planFor(params)),
      sim_(makeContext(plan_, params.numNodes)),
      homes_(params.pageSize, params.numNodes),
      as_(std::make_unique<AddressSpace>(homes_, params.cache.blockSize)),
      net_(makeInterconnect(*sim_, params.numNodes, params.net)),
      sync_(std::make_unique<SyncDomain>(*sim_, params.numNodes,
                                         params.barrierLatency))
{
    mem_.setConcurrent(plan_.parallel());
    for (NodeId n = 0; n < params_.numNodes; ++n) {
        // Every component of node n runs on n's shard: its queue and
        // its shard's stat group (merged after the run).
        EventQueue &eq = sim_->queueFor(n);
        StatGroup &stats = sim_->shardStats(sim_->shardOf(n));
        auto node = std::make_unique<DsmNode>();
        node->predictor = makePredictor();
        node->cacheCtrl = std::make_unique<CacheController>(
            n, eq, *net_, homes_, params_.cache, stats);
        node->cacheCtrl->setPredictor(node->predictor.get(), params_.mode);
        node->dirCtrl = std::make_unique<DirController>(
            n, eq, *net_, params_.dir, stats);
        nodes_.push_back(std::move(node));
    }

    // Route inbound messages: requests, acks, writebacks and
    // self-invalidations go to the home directory; invalidations and
    // data replies go to the cache controller.
    for (NodeId n = 0; n < params_.numNodes; ++n) {
        net_->setSink(n, [this, n](const Message &msg) {
            switch (msg.type) {
              case MsgType::GetS:
              case MsgType::GetX:
              case MsgType::InvAck:
              case MsgType::WbData:
              case MsgType::SelfInvS:
              case MsgType::SelfInvX:
              case MsgType::EvictS:
              case MsgType::EvictX:
                nodes_[n]->dirCtrl->receive(msg);
                break;
              default:
                nodes_[n]->cacheCtrl->receive(msg);
                break;
            }
        });
        // Verification outcomes train the self-invalidating node's
        // predictor (hardware piggybacks these bits; see DESIGN.md).
        nodes_[n]->dirCtrl->setVerifyHook(
            [this](NodeId who, Addr blk, bool premature, bool timely) {
                nodes_[who]->cacheCtrl->onDirVerify(blk, premature,
                                                    timely);
            });
    }
}

DsmSystem::~DsmSystem() = default;

std::unique_ptr<InvalidationPredictor>
DsmSystem::makePredictor() const
{
    switch (params_.predictor) {
      case PredictorKind::Base:
        return std::make_unique<NullPredictor>();
      case PredictorKind::Dsi:
        return std::make_unique<DsiPredictor>();
      case PredictorKind::LastPc:
        return std::make_unique<LastPcPredictor>(params_.ltp);
      case PredictorKind::LtpPerBlock:
        return std::make_unique<LtpPerBlock>(params_.ltp);
      case PredictorKind::LtpGlobal:
        return std::make_unique<LtpGlobal>(params_.ltp);
    }
    return std::make_unique<NullPredictor>();
}

RunResult
DsmSystem::run(KernelBase &kernel, const KernelConfig &cfg)
{
    if (!nodes_.front()->task.valid() && finished_ == 0) {
        // first (and only) run on this system instance
    } else {
        throw std::logic_error("DsmSystem::run may only be called once");
    }

    KernelConfig actual = cfg;
    actual.nodes = params_.numNodes;
    kernel.setup(*as_, mem_, actual);

    for (NodeId n = 0; n < params_.numNodes; ++n) {
        DsmNode &node = *nodes_[n];
        node.thread = std::make_unique<ThreadCtx>(
            n, sim_->queueFor(n), *node.cacheCtrl, mem_, *sync_,
            actual.seed);
        node.onDone = [this] {
            finished_.fetch_add(1, std::memory_order_relaxed);
        };
        node.task = kernel.run(*node.thread);
        node.task.start(&node.onDone);
    }

    auto *par = dynamic_cast<ParallelScheduler *>(sim_.get());

    // Guard bring-up (src/sim/guard/): the fault injector and the
    // invariant checkers are process-wide singletons (like the tracer),
    // armed for exactly this run and disarmed on every exit path so a
    // throwing checker cannot leak armed state into the next run.
    const guard::GuardParams &gp = params_.guard;
    struct GuardDisarm
    {
        bool checks = false;
        bool faults = false;
        bool recorder = false;
        ~GuardDisarm()
        {
            if (checks)
                guard::Checks::instance().disarm();
            if (faults)
                guard::Faults::instance().disarm();
            if (recorder)
                guard::FlightRecorder::instance().disarm();
        }
    } disarm;
    if (gp.faultsEnabled()) {
        guard::FaultPlan plan = guard::parseFaultSpec(gp.faultSpec);
        if (plan.on(guard::FaultKind::BarrierWedge) &&
            (!par || par->directDispatch())) {
            throw std::invalid_argument(
                "LTP_FAULT=barrier-wedge needs the staged parallel engine "
                "(simThreads >= 2); this run has no window barrier");
        }
        guard::Faults::instance().arm(plan);
        disarm.faults = true;
    }
    if (gp.checksEnabled()) {
        // The pairwise-FIFO check reads netSeq, which only the routed
        // network stamps (the p2p model delivers in order by design).
        bool pair_fifo =
            dynamic_cast<RoutedNetwork *>(net_.get()) != nullptr;
        guard::Checks::instance().arm(gp.checkMask, params_.numNodes,
                                      pair_fifo);
        disarm.checks = true;
    }
    if (gp.recorderEnabled()) {
        guard::RecorderContext rc;
        rc.tick = [this] { return sim_->tickApprox(); };
        rc.events = [this] { return sim_->executedApprox(); };
        rc.shards = plan_.shards;
        if (par && !par->directDispatch()) {
            rc.barrierGeneration = [par] {
                return par->barrier().generationValue();
            };
            rc.barrierArrived = [par] {
                return par->barrier().arrivedCount();
            };
        }
        if (par)
            rc.profile = [par] { return par->profile(); };
        guard::FlightRecorder::instance().arm(gp.flightRecorderFile,
                                              std::move(rc));
        disarm.recorder = true;
    }

    // Observability bring-up, all observer-only: the tracer buffers
    // compact records per shard (flushed to Chrome JSON after the run)
    // and the sampler reads statistics at quiescent points. Neither
    // schedules events or touches simulated state, so results are
    // byte-identical with or without them.
    if (params_.obs.traceEnabled()) {
        obs::TraceConfig tc;
        tc.path = params_.obs.traceFile;
        tc.categories = params_.obs.tracerCategories;
        tc.eventCapPerShard = params_.obs.traceEventCapPerShard;
        std::vector<unsigned> node_shard(params_.numNodes);
        for (NodeId n = 0; n < params_.numNodes; ++n)
            node_shard[n] = sim_->shardOf(n);
        obs::Tracer::instance().start(tc, node_shard);
    }
    if (params_.obs.metricsEnabled()) {
        sampler_ = std::make_unique<obs::MetricsSampler>(
            params_.obs.metricsFile, params_.obs.metricsIntervalTicks);
        if (par && !par->directDispatch()) {
            // Staged engine: sample in the window-planning barrier.
            par->setMetricsSampler(sampler_.get());
        } else {
            // One queue (sequential or direct dispatch): the tick
            // watcher fires between events, rearmed from the sampler's
            // own due-tick grid.
            sim_->queueFor(0).armTickWatcher(
                sampler_->nextDue(), [this](Tick now) {
                    return sampler_->maybeSample(now, sim_->stats(),
                                                 sim_->eventsExecuted());
                });
        }
    }

    {
        // The watchdog scope brackets exactly the engine run: its
        // destructor joins the monitor thread before any result is
        // collected, so nothing below races with a late detector.
        guard::WatchdogHooks hooks;
        hooks.tick = [this] { return sim_->tickApprox(); };
        hooks.events = [this] { return sim_->executedApprox(); };
        if (par && !par->directDispatch()) {
            hooks.barrierGeneration = [par] {
                return par->barrier().generationValue();
            };
            hooks.barrierArrived = [par] {
                return par->barrier().arrivedCount();
            };
        }
        hooks.abort = [this](const std::string &reason) {
            sim_->requestAbort(reason);
        };
        guard::Watchdog watchdog(gp, std::move(hooks));

        try {
            sim_->runUntil(params_.maxTicks);
        } catch (const std::exception &e) {
            // A checker (or anything else) threw mid-run: leave a
            // flight record behind before the exception unwinds the
            // harness.
            guard::FlightRecorder::instance().dumpNow(
                std::string("exception: ") + e.what());
            throw;
        }
    }

    unsigned finished = finished_.load(std::memory_order_relaxed);
    bool completed = finished == params_.numNodes;
    std::string abortReason;
    if (!completed) {
        abortReason = sim_->abortReason();
        if (abortReason.empty()) {
            if (sim_->now() >= params_.maxTicks) {
                abortReason = "maxTicks exceeded: tick " +
                              std::to_string(sim_->now()) +
                              " reached the " +
                              std::to_string(params_.maxTicks) +
                              "-cycle budget";
            } else {
                abortReason =
                    "idle deadlock: all event queues drained at tick " +
                    std::to_string(sim_->now()) + " with " +
                    std::to_string(params_.numNodes - finished) + " of " +
                    std::to_string(params_.numNodes) +
                    " threads unfinished";
            }
        }
        // The clean-path flight record: the engine joined its workers
        // when runUntil() returned, so this dump is complete and
        // race-free. It must land before Tracer::stop() below drains
        // the trace buffers the dump's traceTail reads.
        guard::FlightRecorder::instance().dumpNow("aborted: " +
                                                  abortReason);
    }

    if (sampler_) {
        sampler_->finish(sim_->now(), sim_->stats(),
                         sim_->eventsExecuted());
        if (par && !par->directDispatch())
            par->setMetricsSampler(nullptr);
        else
            sim_->queueFor(0).disarmTickWatcher();
    }
    if (params_.obs.traceEnabled())
        obs::Tracer::instance().stop();

    RunResult r = collect(completed);
    if (completed) {
        // Quiesce invariants only make sense on a drained machine; an
        // aborted run legitimately has messages in flight and busy
        // directory entries.
        if (disarm.checks)
            guardQuiesceChecks();
    } else {
        r.outcome = RunOutcome::Aborted;
        r.abortReason = std::move(abortReason);
    }
    return r;
}

void
DsmSystem::guardQuiesceChecks() const
{
    if (guard::Checks::on(obs::Cat::Message))
        guard::Checks::instance().checkMessageConservation();

    if (guard::Checks::on(obs::Cat::Link)) {
        if (auto *rn = dynamic_cast<RoutedNetwork *>(net_.get()))
            rn->guardCheckQuiesce();
    }

    // Directory -> cache: every sharer bit maps to a Shared copy, every
    // owner to an Exclusive copy, nothing still busy. Valid at quiesce
    // because evictions and self-invalidations all notify home
    // (EvictS/EvictX, SelfInvS/SelfInvX).
    if (guard::Checks::on(obs::Cat::Directory)) {
        for (NodeId h = 0; h < params_.numNodes; ++h) {
            nodes_[h]->dirCtrl->directory().forEach([&](Addr blk,
                                                        const DirEntry &e) {
                auto fail = [&](const std::string &what) {
                    char addr[32];
                    std::snprintf(addr, sizeof(addr), "0x%llx",
                                  (unsigned long long)blk);
                    throw guard::CheckFailure(
                        "directory<->cache: " + what + " (home " +
                        std::to_string(h) + ", block " + addr +
                        ", dir state " + dirStateName(e.state) + ")");
                };
                if (e.busy)
                    fail("entry still busy at quiesce");
                switch (e.state) {
                  case DirState::Idle:
                    if (e.sharers != 0)
                        fail("Idle entry with sharer bits set");
                    break;
                  case DirState::Shared:
                    for (NodeId n = 0; n < params_.numNodes; ++n) {
                        if (!e.isSharer(n))
                            continue;
                        if (nodes_[n]->cacheCtrl->cache().state(blk) !=
                            CacheState::Shared) {
                            fail("sharer bit for node " +
                                 std::to_string(n) +
                                 " but its cached copy is not Shared");
                        }
                    }
                    break;
                  case DirState::Exclusive:
                    if (e.owner == invalidNode ||
                        e.owner >= params_.numNodes)
                        fail("Exclusive entry with no valid owner");
                    else if (nodes_[e.owner]->cacheCtrl->cache().state(
                                 blk) != CacheState::Exclusive) {
                        fail("owner node " + std::to_string(e.owner) +
                             " does not hold the block Exclusive");
                    }
                    break;
                }
            });
        }
    }

    // Cache -> directory: every resident line is backed by the home's
    // bookkeeping (the converse direction catches a directory that
    // dropped a copy it should still track).
    if (guard::Checks::on(obs::Cat::Cache)) {
        for (NodeId n = 0; n < params_.numNodes; ++n) {
            nodes_[n]->cacheCtrl->cache().forEachResident(
                [&](Addr blk, const CacheLine &line) {
                    NodeId h = homes_.home(blk);
                    const DirEntry *e =
                        nodes_[h]->dirCtrl->directory().find(blk);
                    auto fail = [&](const std::string &what) {
                        char addr[32];
                        std::snprintf(addr, sizeof(addr), "0x%llx",
                                      (unsigned long long)blk);
                        throw guard::CheckFailure(
                            "cache<->directory: " + what + " (node " +
                            std::to_string(n) + ", block " + addr +
                            ", home " + std::to_string(h) + ")");
                    };
                    if (!e)
                        fail("resident line with no directory entry");
                    if (line.state == CacheState::Shared) {
                        if (e->state != DirState::Shared)
                            fail("Shared line but dir state is " +
                                 std::string(dirStateName(e->state)));
                        else if (!e->isSharer(n))
                            fail("Shared line but home's sharer bit "
                                 "is clear");
                    } else if (line.state == CacheState::Exclusive) {
                        if (e->state != DirState::Exclusive)
                            fail("Exclusive line but dir state is " +
                                 std::string(dirStateName(e->state)));
                        else if (e->owner != n)
                            fail("Exclusive line but home's owner is " +
                                 std::to_string(e->owner));
                    }
                });
        }
    }
}

RunResult
DsmSystem::collect(bool completed) const
{
    StatGroup &stats = sim_->stats();
    RunResult r;
    r.completed = completed;
    r.cycles = sim_->now();
    r.eventsExecuted = sim_->eventsExecuted();
    r.simShards = plan_.shards;
    r.invalidations = stats.counterValue("pred.invalidations");
    r.predicted = stats.counterValue("pred.predicted");
    r.notPredicted = stats.counterValue("pred.notPredicted");
    r.mispredicted = stats.counterValue("pred.mispredicted");
    r.dirQueueingMean = stats.averageMean("dir.queueing");
    r.dirServiceMean = stats.averageMean("dir.service");
    r.selfInvTimelyCorrect = stats.counterValue("dir.selfInvTimelyCorrect");
    r.selfInvLateCorrect = stats.counterValue("dir.selfInvLateCorrect");
    r.selfInvPremature = stats.counterValue("dir.selfInvPremature");
    r.selfInvsIssued = stats.counterValue("pred.selfInvsIssued");

    r.netMsgs = stats.counterValue("net.msgs");
    r.netLatencyMean = stats.averageMean("net.endToEndLatency");
    if (const Histogram *h = stats.findHistogram("net.endToEndLatency")) {
        r.netLatencyP50 = h->percentile(0.5);
        r.netLatencyP99 = h->percentile(0.99);
        r.netLatencyOverflow = h->overflow();
    }
    r.netHopMean = stats.averageMean("net.hopsPerMsg");
    r.netPeakLinkBusy = stats.maxCounterValueWithPrefix("net.linkBusy.");

    if (auto *par = dynamic_cast<ParallelScheduler *>(sim_.get()))
        r.engineProfile = par->profile();
    else
        r.engineProfile.overflowMigrations =
            sim_->queueFor(0).overflowMigrations();

    for (const auto &node : nodes_) {
        if (node->thread)
            r.memOps += node->thread->memOps();
        if (auto s = node->predictor->storage()) {
            r.storage.sigBits = s->sigBits;
            r.storage.activeBlocks += s->activeBlocks;
            r.storage.totalEntries += s->totalEntries;
        }
    }
    return r;
}

} // namespace ltp
