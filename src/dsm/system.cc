#include "dsm/system.hh"

#include <cassert>
#include <stdexcept>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "predictor/dsi.hh"
#include "predictor/last_pc.hh"
#include "predictor/ltp_global.hh"
#include "predictor/ltp_per_block.hh"
#include "sim/par/parallel_scheduler.hh"

namespace ltp
{

namespace
{

/** Decide the engine (shards + window) for @p params. */
ShardPlan
planFor(const SystemParams &params)
{
    if (params.simThreads == 0 || params.simThreads > maxSimThreads) {
        throw std::invalid_argument(
            "SystemParams::simThreads must be in [1, " +
            std::to_string(maxSimThreads) + "], got " +
            std::to_string(params.simThreads));
    }
    // Reject invalid network knobs with the descriptive error before
    // deriving a lookahead from them (makeInterconnect would only get
    // to say so later).
    validateNetworkParams(params.net, params.numNodes);
    NetLookahead net = networkLookahead(params.net);
    LookaheadInputs in;
    in.requestedThreads = params.simThreads;
    in.numNodes = params.numNodes;
    in.netLookahead = net.ticks;
    in.netSerialReason = net.serialReason;
    in.barrierLatency = params.barrierLatency;
    if (params.mode == PredictorMode::Active &&
        params.predictor != PredictorKind::Base) {
        // The home directory trains the self-invalidating node's
        // predictor combinationally when it verifies a SelfInv
        // (DirController::setVerifyHook) — a zero-lookahead cross-node
        // wire no conservative window can span.
        in.zeroLookaheadCoupling =
            "active predictor verification feedback is a zero-lookahead "
            "cross-node coupling";
    }
    return resolveShardPlan(in);
}

std::unique_ptr<SimContext>
makeContext(const ShardPlan &plan, NodeId num_nodes)
{
    if (plan.canonical()) {
        return std::make_unique<ParallelScheduler>(plan.shards, num_nodes,
                                                   plan.window);
    }
    return std::make_unique<SequentialContext>();
}

} // namespace

const char *
predictorKindName(PredictorKind k)
{
    switch (k) {
      case PredictorKind::Base: return "base";
      case PredictorKind::Dsi: return "dsi";
      case PredictorKind::LastPc: return "last-pc";
      case PredictorKind::LtpPerBlock: return "ltp";
      case PredictorKind::LtpGlobal: return "ltp-global";
    }
    return "?";
}

SystemParams
SystemParams::base()
{
    return SystemParams{};
}

SystemParams
SystemParams::withPredictor(PredictorKind kind, PredictorMode mode,
                            unsigned sig_bits)
{
    SystemParams p;
    p.predictor = kind;
    p.mode = kind == PredictorKind::Base ? PredictorMode::Off : mode;
    p.ltp.sigBits = sig_bits;
    return p;
}

SystemParams
SystemParams::withTopology(TopologyKind kind, NodeId nodes)
{
    SystemParams p;
    p.numNodes = nodes;
    p.net.topology = kind;
    return p;
}

DsmSystem::DsmSystem(SystemParams params)
    : params_(params),
      plan_(planFor(params)),
      sim_(makeContext(plan_, params.numNodes)),
      homes_(params.pageSize, params.numNodes),
      as_(std::make_unique<AddressSpace>(homes_, params.cache.blockSize)),
      net_(makeInterconnect(*sim_, params.numNodes, params.net)),
      sync_(std::make_unique<SyncDomain>(*sim_, params.numNodes,
                                         params.barrierLatency))
{
    mem_.setConcurrent(plan_.parallel());
    for (NodeId n = 0; n < params_.numNodes; ++n) {
        // Every component of node n runs on n's shard: its queue and
        // its shard's stat group (merged after the run).
        EventQueue &eq = sim_->queueFor(n);
        StatGroup &stats = sim_->shardStats(sim_->shardOf(n));
        auto node = std::make_unique<DsmNode>();
        node->predictor = makePredictor();
        node->cacheCtrl = std::make_unique<CacheController>(
            n, eq, *net_, homes_, params_.cache, stats);
        node->cacheCtrl->setPredictor(node->predictor.get(), params_.mode);
        node->dirCtrl = std::make_unique<DirController>(
            n, eq, *net_, params_.dir, stats);
        nodes_.push_back(std::move(node));
    }

    // Route inbound messages: requests, acks, writebacks and
    // self-invalidations go to the home directory; invalidations and
    // data replies go to the cache controller.
    for (NodeId n = 0; n < params_.numNodes; ++n) {
        net_->setSink(n, [this, n](const Message &msg) {
            switch (msg.type) {
              case MsgType::GetS:
              case MsgType::GetX:
              case MsgType::InvAck:
              case MsgType::WbData:
              case MsgType::SelfInvS:
              case MsgType::SelfInvX:
              case MsgType::EvictS:
              case MsgType::EvictX:
                nodes_[n]->dirCtrl->receive(msg);
                break;
              default:
                nodes_[n]->cacheCtrl->receive(msg);
                break;
            }
        });
        // Verification outcomes train the self-invalidating node's
        // predictor (hardware piggybacks these bits; see DESIGN.md).
        nodes_[n]->dirCtrl->setVerifyHook(
            [this](NodeId who, Addr blk, bool premature, bool timely) {
                nodes_[who]->cacheCtrl->onDirVerify(blk, premature,
                                                    timely);
            });
    }
}

DsmSystem::~DsmSystem() = default;

std::unique_ptr<InvalidationPredictor>
DsmSystem::makePredictor() const
{
    switch (params_.predictor) {
      case PredictorKind::Base:
        return std::make_unique<NullPredictor>();
      case PredictorKind::Dsi:
        return std::make_unique<DsiPredictor>();
      case PredictorKind::LastPc:
        return std::make_unique<LastPcPredictor>(params_.ltp);
      case PredictorKind::LtpPerBlock:
        return std::make_unique<LtpPerBlock>(params_.ltp);
      case PredictorKind::LtpGlobal:
        return std::make_unique<LtpGlobal>(params_.ltp);
    }
    return std::make_unique<NullPredictor>();
}

RunResult
DsmSystem::run(KernelBase &kernel, const KernelConfig &cfg)
{
    if (!nodes_.front()->task.valid() && finished_ == 0) {
        // first (and only) run on this system instance
    } else {
        throw std::logic_error("DsmSystem::run may only be called once");
    }

    KernelConfig actual = cfg;
    actual.nodes = params_.numNodes;
    kernel.setup(*as_, mem_, actual);

    for (NodeId n = 0; n < params_.numNodes; ++n) {
        DsmNode &node = *nodes_[n];
        node.thread = std::make_unique<ThreadCtx>(
            n, sim_->queueFor(n), *node.cacheCtrl, mem_, *sync_,
            actual.seed);
        node.onDone = [this] {
            finished_.fetch_add(1, std::memory_order_relaxed);
        };
        node.task = kernel.run(*node.thread);
        node.task.start(&node.onDone);
    }

    // Observability bring-up, all observer-only: the tracer buffers
    // compact records per shard (flushed to Chrome JSON after the run)
    // and the sampler reads statistics at quiescent points. Neither
    // schedules events or touches simulated state, so results are
    // byte-identical with or without them.
    auto *par = dynamic_cast<ParallelScheduler *>(sim_.get());
    if (params_.obs.traceEnabled()) {
        obs::TraceConfig tc;
        tc.path = params_.obs.traceFile;
        tc.categories = params_.obs.tracerCategories;
        tc.eventCapPerShard = params_.obs.traceEventCapPerShard;
        std::vector<unsigned> node_shard(params_.numNodes);
        for (NodeId n = 0; n < params_.numNodes; ++n)
            node_shard[n] = sim_->shardOf(n);
        obs::Tracer::instance().start(tc, node_shard);
    }
    if (params_.obs.metricsEnabled()) {
        sampler_ = std::make_unique<obs::MetricsSampler>(
            params_.obs.metricsFile, params_.obs.metricsIntervalTicks);
        if (par && !par->directDispatch()) {
            // Staged engine: sample in the window-planning barrier.
            par->setMetricsSampler(sampler_.get());
        } else {
            // One queue (sequential or direct dispatch): the tick
            // watcher fires between events, rearmed from the sampler's
            // own due-tick grid.
            sim_->queueFor(0).armTickWatcher(
                sampler_->nextDue(), [this](Tick now) {
                    return sampler_->maybeSample(now, sim_->stats(),
                                                 sim_->eventsExecuted());
                });
        }
    }

    sim_->runUntil(params_.maxTicks);

    if (sampler_) {
        sampler_->finish(sim_->now(), sim_->stats(),
                         sim_->eventsExecuted());
        if (par && !par->directDispatch())
            par->setMetricsSampler(nullptr);
        else
            sim_->queueFor(0).disarmTickWatcher();
    }
    if (params_.obs.traceEnabled())
        obs::Tracer::instance().stop();

    bool completed =
        finished_.load(std::memory_order_relaxed) == params_.numNodes;
    return collect(completed);
}

RunResult
DsmSystem::collect(bool completed) const
{
    StatGroup &stats = sim_->stats();
    RunResult r;
    r.completed = completed;
    r.cycles = sim_->now();
    r.eventsExecuted = sim_->eventsExecuted();
    r.simShards = plan_.shards;
    r.invalidations = stats.counterValue("pred.invalidations");
    r.predicted = stats.counterValue("pred.predicted");
    r.notPredicted = stats.counterValue("pred.notPredicted");
    r.mispredicted = stats.counterValue("pred.mispredicted");
    r.dirQueueingMean = stats.averageMean("dir.queueing");
    r.dirServiceMean = stats.averageMean("dir.service");
    r.selfInvTimelyCorrect = stats.counterValue("dir.selfInvTimelyCorrect");
    r.selfInvLateCorrect = stats.counterValue("dir.selfInvLateCorrect");
    r.selfInvPremature = stats.counterValue("dir.selfInvPremature");
    r.selfInvsIssued = stats.counterValue("pred.selfInvsIssued");

    r.netMsgs = stats.counterValue("net.msgs");
    r.netLatencyMean = stats.averageMean("net.endToEndLatency");
    if (const Histogram *h = stats.findHistogram("net.endToEndLatency")) {
        r.netLatencyP50 = h->percentile(0.5);
        r.netLatencyP99 = h->percentile(0.99);
        r.netLatencyOverflow = h->overflow();
    }
    r.netHopMean = stats.averageMean("net.hopsPerMsg");
    r.netPeakLinkBusy = stats.maxCounterValueWithPrefix("net.linkBusy.");

    if (auto *par = dynamic_cast<ParallelScheduler *>(sim_.get()))
        r.engineProfile = par->profile();
    else
        r.engineProfile.overflowMigrations =
            sim_->queueFor(0).overflowMigrations();

    for (const auto &node : nodes_) {
        if (node->thread)
            r.memOps += node->thread->memOps();
        if (auto s = node->predictor->storage()) {
            r.storage.sigBits = s->sigBits;
            r.storage.activeBlocks += s->activeBlocks;
            r.storage.totalEntries += s->totalEntries;
        }
    }
    return r;
}

} // namespace ltp
