#include "dsm/system.hh"

#include <cassert>
#include <stdexcept>

#include "predictor/dsi.hh"
#include "predictor/last_pc.hh"
#include "predictor/ltp_global.hh"
#include "predictor/ltp_per_block.hh"

namespace ltp
{

const char *
predictorKindName(PredictorKind k)
{
    switch (k) {
      case PredictorKind::Base: return "base";
      case PredictorKind::Dsi: return "dsi";
      case PredictorKind::LastPc: return "last-pc";
      case PredictorKind::LtpPerBlock: return "ltp";
      case PredictorKind::LtpGlobal: return "ltp-global";
    }
    return "?";
}

SystemParams
SystemParams::base()
{
    return SystemParams{};
}

SystemParams
SystemParams::withPredictor(PredictorKind kind, PredictorMode mode,
                            unsigned sig_bits)
{
    SystemParams p;
    p.predictor = kind;
    p.mode = kind == PredictorKind::Base ? PredictorMode::Off : mode;
    p.ltp.sigBits = sig_bits;
    return p;
}

SystemParams
SystemParams::withTopology(TopologyKind kind, NodeId nodes)
{
    SystemParams p;
    p.numNodes = nodes;
    p.net.topology = kind;
    return p;
}

DsmSystem::DsmSystem(SystemParams params)
    : params_(params),
      homes_(params.pageSize, params.numNodes),
      as_(std::make_unique<AddressSpace>(homes_, params.cache.blockSize)),
      net_(makeInterconnect(eq_, params.numNodes, params.net, stats_)),
      sync_(std::make_unique<SyncDomain>(eq_, params.numNodes,
                                         params.barrierLatency))
{
    for (NodeId n = 0; n < params_.numNodes; ++n) {
        auto node = std::make_unique<DsmNode>();
        node->predictor = makePredictor();
        node->cacheCtrl = std::make_unique<CacheController>(
            n, eq_, *net_, homes_, params_.cache, stats_);
        node->cacheCtrl->setPredictor(node->predictor.get(), params_.mode);
        node->dirCtrl = std::make_unique<DirController>(
            n, eq_, *net_, params_.dir, stats_);
        nodes_.push_back(std::move(node));
    }

    // Route inbound messages: requests, acks, writebacks and
    // self-invalidations go to the home directory; invalidations and
    // data replies go to the cache controller.
    for (NodeId n = 0; n < params_.numNodes; ++n) {
        net_->setSink(n, [this, n](const Message &msg) {
            switch (msg.type) {
              case MsgType::GetS:
              case MsgType::GetX:
              case MsgType::InvAck:
              case MsgType::WbData:
              case MsgType::SelfInvS:
              case MsgType::SelfInvX:
              case MsgType::EvictS:
              case MsgType::EvictX:
                nodes_[n]->dirCtrl->receive(msg);
                break;
              default:
                nodes_[n]->cacheCtrl->receive(msg);
                break;
            }
        });
        // Verification outcomes train the self-invalidating node's
        // predictor (hardware piggybacks these bits; see DESIGN.md).
        nodes_[n]->dirCtrl->setVerifyHook(
            [this](NodeId who, Addr blk, bool premature, bool timely) {
                nodes_[who]->cacheCtrl->onDirVerify(blk, premature,
                                                    timely);
            });
    }
}

DsmSystem::~DsmSystem() = default;

std::unique_ptr<InvalidationPredictor>
DsmSystem::makePredictor() const
{
    switch (params_.predictor) {
      case PredictorKind::Base:
        return std::make_unique<NullPredictor>();
      case PredictorKind::Dsi:
        return std::make_unique<DsiPredictor>();
      case PredictorKind::LastPc:
        return std::make_unique<LastPcPredictor>(params_.ltp);
      case PredictorKind::LtpPerBlock:
        return std::make_unique<LtpPerBlock>(params_.ltp);
      case PredictorKind::LtpGlobal:
        return std::make_unique<LtpGlobal>(params_.ltp);
    }
    return std::make_unique<NullPredictor>();
}

RunResult
DsmSystem::run(KernelBase &kernel, const KernelConfig &cfg)
{
    if (!nodes_.front()->task.valid() && finished_ == 0) {
        // first (and only) run on this system instance
    } else {
        throw std::logic_error("DsmSystem::run may only be called once");
    }

    KernelConfig actual = cfg;
    actual.nodes = params_.numNodes;
    kernel.setup(*as_, mem_, actual);

    for (NodeId n = 0; n < params_.numNodes; ++n) {
        DsmNode &node = *nodes_[n];
        node.thread = std::make_unique<ThreadCtx>(
            n, eq_, *node.cacheCtrl, mem_, *sync_, actual.seed);
        node.onDone = [this] { ++finished_; };
        node.task = kernel.run(*node.thread);
        node.task.start(&node.onDone);
    }

    eq_.runUntil(params_.maxTicks);
    bool completed = finished_ == params_.numNodes;
    return collect(completed);
}

RunResult
DsmSystem::collect(bool completed) const
{
    RunResult r;
    r.completed = completed;
    r.cycles = eq_.now();
    r.eventsExecuted = eq_.eventsExecuted();
    r.invalidations = stats_.counterValue("pred.invalidations");
    r.predicted = stats_.counterValue("pred.predicted");
    r.notPredicted = stats_.counterValue("pred.notPredicted");
    r.mispredicted = stats_.counterValue("pred.mispredicted");
    r.dirQueueingMean = stats_.averageMean("dir.queueing");
    r.dirServiceMean = stats_.averageMean("dir.service");
    r.selfInvTimelyCorrect = stats_.counterValue("dir.selfInvTimelyCorrect");
    r.selfInvLateCorrect = stats_.counterValue("dir.selfInvLateCorrect");
    r.selfInvPremature = stats_.counterValue("dir.selfInvPremature");
    r.selfInvsIssued = stats_.counterValue("pred.selfInvsIssued");

    r.netMsgs = stats_.counterValue("net.msgs");
    r.netLatencyMean = stats_.averageMean("net.endToEndLatency");
    if (const Histogram *h = stats_.findHistogram("net.endToEndLatency")) {
        r.netLatencyP50 = h->percentile(0.5);
        r.netLatencyP99 = h->percentile(0.99);
        r.netLatencyOverflow = h->overflow();
    }
    r.netHopMean = stats_.averageMean("net.hopsPerMsg");
    r.netPeakLinkBusy = stats_.maxCounterValueWithPrefix("net.linkBusy.");

    for (const auto &node : nodes_) {
        if (node->thread)
            r.memOps += node->thread->memOps();
        if (auto s = node->predictor->storage()) {
            r.storage.sigBits = s->sigBits;
            r.storage.activeBlocks += s->activeBlocks;
            r.storage.totalEntries += s->totalEntries;
        }
    }
    return r;
}

} // namespace ltp
