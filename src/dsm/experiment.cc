#include "dsm/experiment.hh"

#include <cmath>
#include <cstdlib>

namespace ltp
{

RunResult
runExperiment(const ExperimentSpec &spec)
{
    SystemParams sp = SystemParams::withPredictor(spec.predictor,
                                                  spec.mode, spec.sigBits);
    if (spec.nodes)
        sp.numNodes = *spec.nodes;
    if (spec.simThreads) {
        sp.simThreads = *spec.simThreads;
    } else if (const char *env = std::getenv("LTP_SIM_THREADS")) {
        sp.simThreads = unsigned(std::strtoul(env, nullptr, 10));
    }
    if (spec.net) {
        sp.net = *spec.net;
    } else {
        sp.net.topology = spec.topology;
        sp.net.routing = spec.routing;
    }

    KernelConfig cfg =
        spec.config ? *spec.config : defaultConfig(spec.kernel);
    cfg.nodes = sp.numNodes;
    if (spec.iterScale != 1.0) {
        cfg.iters = std::max(
            1u, unsigned(std::llround(cfg.iters * spec.iterScale)));
    }

    DsmSystem sys(sp);
    auto kernel = makeKernel(spec.kernel);
    return sys.run(*kernel, cfg);
}

SpeedupResult
runSpeedup(const std::string &kernel, PredictorKind kind,
           unsigned sig_bits)
{
    ExperimentSpec base_spec;
    base_spec.kernel = kernel;
    base_spec.predictor = PredictorKind::Base;
    base_spec.mode = PredictorMode::Off;

    ExperimentSpec pred_spec;
    pred_spec.kernel = kernel;
    pred_spec.predictor = kind;
    pred_spec.mode = PredictorMode::Active;
    pred_spec.sigBits = sig_bits;

    SpeedupResult r;
    r.base = runExperiment(base_spec);
    r.pred = runExperiment(pred_spec);
    return r;
}

} // namespace ltp
