#include "dsm/experiment.hh"

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ltp
{

unsigned
parseSimThreads(const char *text)
{
    unsigned long value = 0;
    const char *p = text;
    bool any = false;
    for (; *p >= '0' && *p <= '9'; ++p) {
        any = true;
        value = value * 10 + unsigned(*p - '0');
        if (value > maxSimThreads)
            break; // cap the accumulator; the range check below fires
    }
    if (!any || *p != '\0' || value == 0 || value > maxSimThreads) {
        throw std::invalid_argument(
            std::string("LTP_SIM_THREADS must be an integer in [1, ") +
            std::to_string(maxSimThreads) + "], got \"" + text + "\"");
    }
    return unsigned(value);
}

RunResult
runExperiment(const ExperimentSpec &spec)
{
    SystemParams sp = SystemParams::withPredictor(spec.predictor,
                                                  spec.mode, spec.sigBits);
    if (spec.nodes)
        sp.numNodes = *spec.nodes;
    if (spec.simThreads) {
        sp.simThreads = *spec.simThreads;
    } else if (const char *env = std::getenv("LTP_SIM_THREADS")) {
        sp.simThreads = parseSimThreads(env);
    }
    if (spec.net) {
        sp.net = *spec.net;
    } else {
        sp.net.topology = spec.topology;
        sp.net.routing = spec.routing;
    }
    sp.obs = spec.obs ? *spec.obs : obs::obsParamsFromEnv();
    sp.guard = spec.guard ? *spec.guard : guard::guardParamsFromEnv();

    KernelConfig cfg =
        spec.config ? *spec.config : defaultConfig(spec.kernel);
    cfg.nodes = sp.numNodes;
    if (spec.iterScale != 1.0) {
        cfg.iters = std::max(
            1u, unsigned(std::llround(cfg.iters * spec.iterScale)));
    }

    DsmSystem sys(sp);
    auto kernel = makeKernel(spec.kernel);
    return sys.run(*kernel, cfg);
}

SpeedupResult
runSpeedup(const std::string &kernel, PredictorKind kind,
           unsigned sig_bits)
{
    ExperimentSpec base_spec;
    base_spec.kernel = kernel;
    base_spec.predictor = PredictorKind::Base;
    base_spec.mode = PredictorMode::Off;

    ExperimentSpec pred_spec;
    pred_spec.kernel = kernel;
    pred_spec.predictor = kind;
    pred_spec.mode = PredictorMode::Active;
    pred_spec.sigBits = sig_bits;

    SpeedupResult r;
    r.base = runExperiment(base_spec);
    r.pred = runExperiment(pred_spec);
    return r;
}

} // namespace ltp
