/**
 * @file
 * DsmSystem: assembles the full simulated machine — event queue,
 * network, one cache controller + directory controller + predictor per
 * node — and runs a workload kernel on it.
 *
 * This is the library's main entry point:
 *
 *   auto kernel = makeKernel("em3d");
 *   DsmSystem sys(SystemParams::withPredictor(
 *       PredictorKind::LtpPerBlock, PredictorMode::Passive));
 *   RunResult r = sys.run(*kernel, defaultConfig("em3d"));
 *   // r.accuracy(), r.cycles, ...
 */

#ifndef LTP_DSM_SYSTEM_HH
#define LTP_DSM_SYSTEM_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dsm/params.hh"
#include "kernel/kernels.hh"
#include "kernel/sync.hh"
#include "kernel/thread_ctx.hh"
#include "mem/addr.hh"
#include "mem/memory_values.hh"
#include "net/topo/interconnect.hh"
#include "obs/engine_profile.hh"
#include "predictor/invalidation_predictor.hh"
#include "proto/cache_controller.hh"
#include "proto/dir_controller.hh"
#include "sim/event_queue.hh"
#include "sim/par/lookahead.hh"
#include "sim/par/sim_context.hh"
#include "sim/stats.hh"

namespace ltp
{

namespace obs
{
class MetricsSampler;
} // namespace obs

/** How a run ended (RunResult::outcome). */
enum class RunOutcome : std::uint8_t
{
    Completed, //!< every thread finished
    Aborted,   //!< a guard fired or the tick budget ran out (abortReason)
};

/** Aggregate results of one kernel execution. */
struct RunResult
{
    bool completed = false; //!< all threads finished before maxTicks
    /** Completed, or Aborted with the structured abortReason. */
    RunOutcome outcome = RunOutcome::Completed;
    /**
     * Why the run aborted: the watchdog detector's structured reason
     * ("no-progress: ...", "barrier stall: ...", "...budget exceeded"),
     * or the harness's own ("maxTicks exceeded...", "idle deadlock...").
     * Empty when outcome == Completed.
     */
    std::string abortReason;
    Tick cycles = 0;
    std::uint64_t memOps = 0;
    /** Discrete events executed by the simulation core (perf tracking). */
    std::uint64_t eventsExecuted = 0;
    /** Partitions the engine actually ran (1 = sequential fallback). */
    unsigned simShards = 1;

    // Prediction-accuracy accounting (Figures 6-8). The denominator is
    // the number of (real or correctly-replaced) invalidations.
    std::uint64_t invalidations = 0;
    std::uint64_t predicted = 0;
    std::uint64_t notPredicted = 0;
    std::uint64_t mispredicted = 0;

    // Directory observables (Table 4).
    double dirQueueingMean = 0.0;
    double dirServiceMean = 0.0;
    std::uint64_t selfInvTimelyCorrect = 0;
    std::uint64_t selfInvLateCorrect = 0;
    std::uint64_t selfInvPremature = 0;
    std::uint64_t selfInvsIssued = 0;

    // Predictor storage (Table 3), aggregated over all nodes.
    StorageStats storage;

    // Interconnect observables (topology studies).
    std::uint64_t netMsgs = 0;
    double netLatencyMean = 0.0;
    double netLatencyP50 = 0.0;
    double netLatencyP99 = 0.0;
    /** Latency samples beyond the histogram range (percentiles clamp). */
    std::uint64_t netLatencyOverflow = 0;

    /**
     * Host-side engine self-profile (windows, barrier waits, spills).
     * Machine-dependent wall-clock territory — reported beside the
     * deterministic results, never inside the stats dump.
     */
    obs::EngineProfile engineProfile;
    double netHopMean = 0.0;       //!< 0 for the point-to-point model
    std::uint64_t netPeakLinkBusy = 0; //!< busiest link's busy cycles

    /** Peak per-link utilization in [0, 1] (0 without physical links). */
    double
    peakLinkUtilization() const
    {
        return cycles ? double(netPeakLinkBusy) / double(cycles) : 0.0;
    }

    double
    fraction(std::uint64_t x) const
    {
        return invalidations ? double(x) / double(invalidations) : 0.0;
    }

    double accuracy() const { return fraction(predicted); }
    double mispredictionRate() const { return fraction(mispredicted); }

    /** Fraction of correct self-invalidations that arrived timely. */
    double
    timeliness() const
    {
        std::uint64_t correct = selfInvTimelyCorrect + selfInvLateCorrect;
        return correct ? double(selfInvTimelyCorrect) / double(correct)
                       : 0.0;
    }
};

/** One DSM node's components. */
struct DsmNode
{
    std::unique_ptr<InvalidationPredictor> predictor;
    std::unique_ptr<CacheController> cacheCtrl;
    std::unique_ptr<DirController> dirCtrl;
    std::unique_ptr<ThreadCtx> thread;
    Task<void> task;
    std::function<void()> onDone;
};

/** The whole simulated machine. */
class DsmSystem
{
  public:
    explicit DsmSystem(SystemParams params);
    ~DsmSystem();

    DsmSystem(const DsmSystem &) = delete;
    DsmSystem &operator=(const DsmSystem &) = delete;

    /**
     * Run @p kernel (with @p cfg inputs) to completion.
     * The kernel's node count must equal the system's.
     */
    RunResult run(KernelBase &kernel, const KernelConfig &cfg);

    const SystemParams &params() const { return params_; }
    /**
     * Whole-run statistics. Under the canonical engine this is a
     * merged snapshot rebuilt on every call: references stay valid
     * across calls, but treat it as read-only — writes are discarded by
     * the next rebuild. To register custom stats, use
     * simContext().shardStats() before the run instead.
     */
    StatGroup &stats() { return sim_->stats(); }
    /** Node 0's event queue — the only queue on a sequential run. */
    EventQueue &eventQueue() { return sim_->queueFor(0); }
    /** The engine (sharding, window width) this system runs on. */
    const ShardPlan &shardPlan() const { return plan_; }
    SimContext &simContext() { return *sim_; }
    Interconnect &network() { return *net_; }
    DsmNode &node(NodeId n) { return *nodes_[n]; }
    MemoryValues &memory() { return mem_; }
    AddressSpace &addressSpace() { return *as_; }

  private:
    std::unique_ptr<InvalidationPredictor> makePredictor() const;
    RunResult collect(bool completed) const;
    /** LTP_CHECK quiesce invariants (completed runs only). */
    void guardQuiesceChecks() const;

    SystemParams params_;
    ShardPlan plan_;
    std::unique_ptr<SimContext> sim_;
    HomeMap homes_;
    MemoryValues mem_;
    std::unique_ptr<AddressSpace> as_;
    std::unique_ptr<Interconnect> net_;
    std::unique_ptr<SyncDomain> sync_;
    std::vector<std::unique_ptr<DsmNode>> nodes_;
    std::atomic<unsigned> finished_{0};
    std::unique_ptr<obs::MetricsSampler> sampler_;
};

} // namespace ltp

#endif // LTP_DSM_SYSTEM_HH
