/**
 * @file
 * Experiment presets: one-call helpers that build a fresh DsmSystem,
 * run one benchmark kernel under a given predictor configuration, and
 * return the aggregate results. The bench/ binaries that regenerate the
 * paper's tables and figures are thin loops over these helpers.
 */

#ifndef LTP_DSM_EXPERIMENT_HH
#define LTP_DSM_EXPERIMENT_HH

#include <optional>
#include <string>

#include "dsm/system.hh"

namespace ltp
{

/** Everything needed to reproduce one (kernel, predictor) cell. */
struct ExperimentSpec
{
    std::string kernel;
    PredictorKind predictor = PredictorKind::Base;
    /** Passive = accuracy methodology (Figs 6-8, Table 3);
     *  Active = performance methodology (Fig 9, Table 4). */
    PredictorMode mode = PredictorMode::Passive;
    unsigned sigBits = 30;
    /** Scale factor applied to the kernel's default iteration count. */
    double iterScale = 1.0;
    std::optional<KernelConfig> config; //!< overrides defaultConfig()
    std::optional<NodeId> nodes;        //!< overrides 32
    /** Interconnect topology (paper's point-to-point by default). */
    TopologyKind topology = TopologyKind::PointToPoint;
    /** Routing policy for routed topologies (ignored by p2p). Safe under
     *  the protocol for all policies: the routed network restores
     *  pairwise FIFO delivery with an ingress reorder buffer. */
    RoutingPolicy routing = RoutingPolicy::DimensionOrder;
    /** Full network-knob override (wins over `topology`/`routing`). */
    std::optional<NetworkParams> net;
    /**
     * Simulation worker threads (SystemParams::simThreads). Results are
     * bit-identical for every value. When unset, the LTP_SIM_THREADS
     * environment variable applies (CI runs a tier-1 shard with
     * LTP_SIM_THREADS=2 to exercise the parallel engine); setting any
     * value — including 1 — pins the run and ignores the environment.
     */
    std::optional<unsigned> simThreads;
    /**
     * Observability (tracing + metrics sampling, src/obs/). When unset,
     * the LTP_TRACE / LTP_TRACE_CATS / LTP_METRICS /
     * LTP_METRICS_INTERVAL environment variables apply
     * (obs::obsParamsFromEnv); setting a value — including a default
     * ObsParams, i.e. everything off — pins it and ignores the
     * environment. Observer-only either way: results are identical.
     */
    std::optional<obs::ObsParams> obs;
    /**
     * Harness guards (watchdog, invariant checkers, fault injection,
     * flight recorder — src/sim/guard/). When unset, the LTP_CHECK /
     * LTP_FAULT / LTP_WATCHDOG_MS / LTP_BARRIER_STALL_MS /
     * LTP_MAX_WALL_MS / LTP_MAX_EVENTS / LTP_MAX_RSS_MB /
     * LTP_FLIGHT_RECORDER environment variables apply
     * (guard::guardParamsFromEnv); setting a value — including a
     * default GuardParams, i.e. everything off — pins it and ignores
     * the environment.
     */
    std::optional<guard::GuardParams> guard;
};

/** Run one experiment on a fresh system. */
RunResult runExperiment(const ExperimentSpec &spec);

/**
 * Parse an LTP_SIM_THREADS-style thread count. Accepts exactly a
 * decimal integer in [1, 256]; anything else (non-numeric text, zero,
 * trailing junk, absurd values) throws std::invalid_argument with a
 * message naming the offending value — a misspelled environment
 * variable must fail loudly, not silently fall back to one thread.
 */
unsigned parseSimThreads(const char *text);

/**
 * Run the base system and one active predictor on the same kernel and
 * inputs; returns (base cycles / predictor cycles) — Figure 9's speedup.
 */
struct SpeedupResult
{
    RunResult base;
    RunResult pred;

    double
    speedup() const
    {
        return pred.cycles ? double(base.cycles) / double(pred.cycles)
                           : 0.0;
    }
};

SpeedupResult runSpeedup(const std::string &kernel, PredictorKind kind,
                         unsigned sig_bits = 30);

} // namespace ltp

#endif // LTP_DSM_EXPERIMENT_HH
