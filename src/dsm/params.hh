/**
 * @file
 * Whole-system configuration (the counterpart of the paper's Table 1).
 */

#ifndef LTP_DSM_PARAMS_HH
#define LTP_DSM_PARAMS_HH

#include <cstdint>
#include <string>

#include "net/network.hh"
#include "obs/obs_params.hh"
#include "predictor/ltp_per_block.hh"
#include "proto/cache_controller.hh"
#include "proto/dir_controller.hh"
#include "sim/guard/guard_params.hh"
#include "sim/types.hh"

namespace ltp
{

/** Which self-invalidation scheme a run uses. */
enum class PredictorKind
{
    Base,        //!< no self-invalidation
    Dsi,         //!< Lebeck & Wood versioning + sync-boundary flush
    LastPc,      //!< single-instruction correlation
    LtpPerBlock, //!< trace-based, per-block tables (the paper's base LTP)
    LtpGlobal,   //!< trace-based, global table
};

const char *predictorKindName(PredictorKind k);

/**
 * Upper bound on SystemParams::simThreads. Far above any sane host
 * (shards can never exceed the node count anyway); its purpose is to
 * reject typo'd values — LTP_SIM_THREADS=2000000 — loudly at
 * construction instead of silently spawning a thread army.
 */
constexpr unsigned maxSimThreads = 256;

/** Full system configuration. Defaults reproduce Table 1. */
struct SystemParams
{
    NodeId numNodes = 32;
    unsigned pageSize = 4096;

    CacheParams cache;   //!< 32 B blocks, unbounded (network cache)
    DirParams dir;       //!< 104-cycle memory, two-stage pipelined engine
    /** Interconnect model. Defaults to the paper's point-to-point network
     *  (80-cycle flight latency, NI contention); set net.topology to
     *  Mesh2D/Torus2D/Ring for hop- and congestion-dependent latency,
     *  net.routing/vcDepth for adaptive routing and finite-buffer
     *  backpressure (see src/net/README.md). */
    NetworkParams net;

    Tick barrierLatency = 200;

    /**
     * Simulation worker threads (not simulated processors!). Each
     * thread owns a contiguous shard of the nodes and runs it under the
     * parallel engine's conservative windows (src/sim/par/). Results
     * are bit-identical for every value; configurations with a
     * zero-lookahead cross-node coupling (Active predictors' directory
     * verification feedback) fall back to one thread. 1 = the classic
     * sequential engine.
     */
    unsigned simThreads = 1;

    PredictorKind predictor = PredictorKind::Base;
    PredictorMode mode = PredictorMode::Off;
    LtpParams ltp; //!< signature width etc. (LTP and Last-PC variants)

    /** Safety net: abort a run that exceeds this many cycles. */
    Tick maxTicks = 4'000'000'000ull;

    /**
     * Observability: event tracing and time-series metrics sampling
     * (src/obs/). Observer-only — results and statistics are
     * byte-identical whatever is enabled here; defaults are all-off.
     */
    obs::ObsParams obs;

    /**
     * Harness guards: progress watchdog, protocol invariant checkers,
     * deterministic fault injection, crash flight recorder
     * (src/sim/guard/). Watchdog/checkers/recorder are observer-only —
     * results and statistics are byte-identical whatever is armed here
     * (fault injection deliberately perturbs virtual time, but stays
     * deterministic and shard-count invariant); defaults are all-off.
     */
    guard::GuardParams guard;

    /** Convenience factories for the standard configurations. */
    static SystemParams base();
    static SystemParams withPredictor(PredictorKind kind,
                                      PredictorMode mode,
                                      unsigned sig_bits = 30);
    /** Base system on interconnect topology @p kind. */
    static SystemParams withTopology(TopologyKind kind, NodeId nodes = 32);
};

} // namespace ltp

#endif // LTP_DSM_PARAMS_HH
