/**
 * @file
 * The one observability-category taxonomy.
 *
 * Debug logging (LTP_DEBUG, sim/log.hh) and event tracing (LTP_TRACE /
 * LTP_TRACE_CATS, obs/trace.hh) share this category set: the same name
 * selects a subsystem's debug lines and its trace events, so "turn on
 * the directory" is one word in either environment variable.
 *
 *   message    protocol-message lifecycle: injection, end-to-end
 *              delivery spans (NI layer, every interconnect model)
 *   link       routed-network physical links: per-hop serialization
 *              grants (with the allocated VC), escape reroutes
 *   directory  home-directory transactions: queueing + service spans,
 *              protocol debug lines
 *   cache      cache-controller debug lines (protocol actions)
 *   predictor  self-invalidation predictor: predictions, issued
 *              self-invalidations, verification outcomes, mispredictions
 *   engine     parallel-engine internals: conservative windows, barrier
 *              waits, mailbox spills
 *
 * "all" selects every category. Unknown names are rejected loudly by
 * parseCategoryMask() — a typo'd LTP_TRACE_CATS must not silently trace
 * nothing.
 */

#ifndef LTP_OBS_CATEGORIES_HH
#define LTP_OBS_CATEGORIES_HH

#include <cstdint>
#include <optional>
#include <string>

namespace ltp
{
namespace obs
{

/** One observability category (see file comment for the taxonomy). */
enum class Cat : std::uint8_t
{
    Message,
    Link,
    Directory,
    Cache,
    Predictor,
    Engine,
    NumCats,
};

constexpr unsigned numCats = unsigned(Cat::NumCats);

/** Mask with every category enabled. */
constexpr std::uint32_t allCatsMask = (1u << numCats) - 1;

constexpr std::uint32_t
catBit(Cat c)
{
    return 1u << unsigned(c);
}

/** Canonical lowercase name of @p c (the LTP_DEBUG/LTP_TRACE token). */
const char *catName(Cat c);

/** Parse one category token ("directory"); nullopt when unknown. */
std::optional<Cat> parseCat(const std::string &token);

/**
 * Parse a comma-separated category list ("link,engine", or "all") into
 * a bit mask. Throws std::invalid_argument naming the offending token
 * on anything that is not a category.
 */
std::uint32_t parseCategoryMask(const std::string &csv);

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_CATEGORIES_HH
