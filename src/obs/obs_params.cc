#include "obs/obs_params.hh"

#include <cstdlib>
#include <stdexcept>

namespace ltp
{
namespace obs
{

ObsParams
obsParamsFromEnv()
{
    ObsParams obs;
    if (const char *v = std::getenv("LTP_TRACE"))
        obs.traceFile = v;
    if (const char *v = std::getenv("LTP_TRACE_CATS"))
        obs.tracerCategories = parseCategoryMask(v);
    if (const char *v = std::getenv("LTP_METRICS"))
        obs.metricsFile = v;
    if (const char *v = std::getenv("LTP_METRICS_INTERVAL")) {
        char *end = nullptr;
        unsigned long long ticks = std::strtoull(v, &end, 10);
        if (!end || *end != '\0' || ticks == 0) {
            throw std::invalid_argument(
                std::string("LTP_METRICS_INTERVAL: expected a positive "
                            "tick count, got \"") + v + "\"");
        }
        obs.metricsIntervalTicks = Tick(ticks);
    }
    return obs;
}

} // namespace obs
} // namespace ltp
