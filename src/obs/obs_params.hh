/**
 * @file
 * Observability configuration, threaded SystemParams -> ExperimentSpec
 * -> CLI. All fields default to "off": a default-constructed ObsParams
 * is the zero-cost configuration.
 *
 * Environment variables (read by obsParamsFromEnv(), applied by
 * runExperiment() and the debug CLI):
 *
 *   LTP_TRACE=trace.json          write a Chrome/Perfetto trace; "%p"
 *                                 expands to the pid (parallel ctest)
 *   LTP_TRACE_CATS=link,engine    restrict traced categories
 *                                 (default all; see obs/categories.hh)
 *   LTP_METRICS=metrics.jsonl     stream StatGroup delta samples
 *   LTP_METRICS_INTERVAL=5000     sampling period in ticks
 */

#ifndef LTP_OBS_OBS_PARAMS_HH
#define LTP_OBS_OBS_PARAMS_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/categories.hh"
#include "sim/types.hh"

namespace ltp
{
namespace obs
{

struct ObsParams
{
    /** Chrome-trace output path; empty = tracing off. */
    std::string traceFile;
    /** Mask of traced categories (obs/categories.hh). */
    std::uint32_t tracerCategories = allCatsMask;
    /** Per-shard trace record cap (drops are counted, never silent). */
    std::size_t traceEventCapPerShard = std::size_t(1) << 20;

    /** JSONL metrics output path; empty = sampling off. */
    std::string metricsFile;
    /** Ticks between metric samples. */
    Tick metricsIntervalTicks = 10'000;

    bool traceEnabled() const { return !traceFile.empty(); }
    bool metricsEnabled() const { return !metricsFile.empty(); }
    bool anyEnabled() const { return traceEnabled() || metricsEnabled(); }
};

/**
 * ObsParams from LTP_TRACE / LTP_TRACE_CATS / LTP_METRICS /
 * LTP_METRICS_INTERVAL; defaults where unset. Throws
 * std::invalid_argument on an unparseable category list or interval.
 */
ObsParams obsParamsFromEnv();

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_OBS_PARAMS_HH
