#include "obs/categories.hh"

#include <stdexcept>

namespace ltp
{
namespace obs
{

const char *
catName(Cat c)
{
    switch (c) {
      case Cat::Message: return "message";
      case Cat::Link: return "link";
      case Cat::Directory: return "directory";
      case Cat::Cache: return "cache";
      case Cat::Predictor: return "predictor";
      case Cat::Engine: return "engine";
      case Cat::NumCats: break;
    }
    return "?";
}

std::optional<Cat>
parseCat(const std::string &token)
{
    for (unsigned i = 0; i < numCats; ++i) {
        if (token == catName(Cat(i)))
            return Cat(i);
    }
    return std::nullopt;
}

std::uint32_t
parseCategoryMask(const std::string &csv)
{
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > pos) {
            std::string token = csv.substr(pos, comma - pos);
            if (token == "all") {
                mask |= allCatsMask;
            } else if (auto c = parseCat(token)) {
                mask |= catBit(*c);
            } else {
                throw std::invalid_argument(
                    "unknown observability category \"" + token +
                    "\" (expected a comma-separated list of: all, "
                    "message, link, directory, cache, predictor, "
                    "engine)");
            }
        }
        pos = comma + 1;
    }
    return mask;
}

} // namespace obs
} // namespace ltp
