/**
 * @file
 * Engine self-profiling counters.
 *
 * These measure how the *host* executed a run — barrier waits in
 * nanoseconds, mailbox-ring spills, calendar-overflow migrations — so
 * they are machine- and thread-count-dependent by nature. They are
 * deliberately NOT StatGroup statistics: the stats dump must stay
 * byte-identical across simThreads values (the determinism matrix and
 * every golden depend on it), so wall-clock-shaped numbers live in this
 * plain struct, surfaced through RunResult::engineProfile, bench_perf's
 * JSON rows (extra keys, ignored by perf_gate's cells), and the debug
 * CLI's LTP_ENGINE_PROFILE=1 stderr dump.
 */

#ifndef LTP_OBS_ENGINE_PROFILE_HH
#define LTP_OBS_ENGINE_PROFILE_HH

#include <cstdint>

namespace ltp
{
namespace obs
{

/** Host-side execution profile of one run, summed over shards. */
struct EngineProfile
{
    /** Conservative windows planned (rounds of the parallel loop). */
    std::uint64_t rounds = 0;
    /** Sum of window widths in ticks (avg width = windowTicks/rounds). */
    std::uint64_t windowTicks = 0;
    /** Barrier arrivals that exhausted the spin budget and futex-parked. */
    std::uint64_t barrierParks = 0;
    /** Wall nanoseconds spent inside barrier waits (spin + park). */
    std::uint64_t barrierWaitNs = 0;
    /** Cross-shard posts that overflowed an SPSC ring into its spill. */
    std::uint64_t spilledPosts = 0;
    /** EventQueue far-future events migrated out of the calendar. */
    std::uint64_t overflowMigrations = 0;

    EngineProfile &
    operator+=(const EngineProfile &o)
    {
        rounds += o.rounds;
        windowTicks += o.windowTicks;
        barrierParks += o.barrierParks;
        barrierWaitNs += o.barrierWaitNs;
        spilledPosts += o.spilledPosts;
        overflowMigrations += o.overflowMigrations;
        return *this;
    }
};

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_ENGINE_PROFILE_HH
