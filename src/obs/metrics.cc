#include "obs/metrics.hh"

#include <unistd.h>

namespace ltp
{
namespace obs
{

namespace
{

std::string
substitutePid(std::string path)
{
    std::size_t at = path.find("%p");
    if (at != std::string::npos)
        path.replace(at, 2, std::to_string(::getpid()));
    return path;
}

} // namespace

MetricsSampler::MetricsSampler(const std::string &path, Tick interval_ticks)
    : out_(substitutePid(path)),
      interval_(interval_ticks > 0 ? interval_ticks : 1),
      nextDue_(interval_)
{
}

void
MetricsSampler::sample(Tick now, const StatGroup &stats,
                       std::uint64_t events_executed)
{
    StatSnapshot snap = stats.snapshot();
    StatSnapshot delta = snap.delta(last_);

    out_ << "{\"tick\":" << now << ",\"sinceTick\":" << lastTick_
         << ",\"events\":" << (events_executed - lastEvents_)
         << ",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : delta.counters) {
        if (value == 0)
            continue;
        if (!first)
            out_ << ",";
        first = false;
        out_ << "\"" << name << "\":" << value;
    }
    out_ << "},\"averages\":{";
    first = true;
    for (const auto &[name, avg] : delta.averages) {
        if (avg.count == 0)
            continue;
        if (!first)
            out_ << ",";
        first = false;
        out_ << "\"" << name << "\":{\"sum\":" << avg.sum
             << ",\"count\":" << avg.count << "}";
    }
    out_ << "}}\n";

    last_ = std::move(snap);
    lastTick_ = now;
    lastEvents_ = events_executed;
    ++samples_;
    // Realign to the grid strictly after `now` so a late sample (the
    // parallel engine samples at window boundaries) doesn't trigger an
    // immediate second one.
    nextDue_ = ((now / interval_) + 1) * interval_;
}

void
MetricsSampler::finish(Tick now, const StatGroup &stats,
                       std::uint64_t events_executed)
{
    if (now > lastTick_ || samples_ == 0)
        sample(now, stats, events_executed);
    out_.flush();
}

} // namespace obs
} // namespace ltp
