#include "obs/trace.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>

namespace ltp
{
namespace obs
{

std::atomic<std::uint32_t> Tracer::activeMask_{0};

namespace
{

/** The calling thread's shard buffer index; rebound by bindThread(). */
thread_local unsigned tlsTraceShard = 0;

std::string
substitutePid(std::string path)
{
    std::size_t at = path.find("%p");
    if (at != std::string::npos)
        path.replace(at, 2, std::to_string(::getpid()));
    return path;
}

} // namespace

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::bindThread(unsigned shard)
{
    tlsTraceShard = shard;
}

unsigned
Tracer::boundShard()
{
    return tlsTraceShard;
}

void
Tracer::start(const TraceConfig &config,
              const std::vector<unsigned> &node_shard)
{
    if (active())
        stop();
    if (config.path.empty())
        return;

    config_ = config;
    nodeShard_ = node_shard;
    unsigned shards = 1;
    for (unsigned s : nodeShard_)
        shards = std::max(shards, s + 1);
    buffers_.clear();
    for (unsigned s = 0; s < shards; ++s)
        buffers_.push_back(std::make_unique<ShardBuf>());
    lastDropped_ = 0;
    activeMask_.store(config_.categories & allCatsMask,
                      std::memory_order_relaxed);
}

void
Tracer::record(Cat c, bool span, std::uint32_t node, const char *name,
               Tick ts, Tick dur, std::uint64_t a0, std::uint64_t a1)
{
    unsigned shard = tlsTraceShard;
    if (shard >= buffers_.size())
        shard = 0;
    ShardBuf &buf = *buffers_[shard];
    if (buf.count >= config_.eventCapPerShard) {
        ++buf.dropped;
        return;
    }
    Rec rec;
    rec.ts = ts;
    rec.dur = dur;
    rec.a0 = a0;
    rec.a1 = a1;
    rec.name = name;
    rec.node = node;
    rec.shard = std::uint16_t(shard);
    rec.cat = std::uint8_t(c);
    rec.span = span;
    // Lane idiom: once a buffer has spilled past its ring it must keep
    // spilling, or ring-then-spill drain order would interleave.
    if (!buf.spill.empty() || !buf.ring.tryPush(std::move(rec)))
        buf.spill.push_back(rec);
    ++buf.count;
}

void
Tracer::stop()
{
    if (!active())
        return;
    activeMask_.store(0, std::memory_order_relaxed);

    std::vector<Rec> recs;
    lastDropped_ = 0;
    for (auto &buf : buffers_) {
        recs.reserve(recs.size() + buf->count);
        Rec rec;
        while (buf->ring.tryPop(rec))
            recs.push_back(rec);
        recs.insert(recs.end(), buf->spill.begin(), buf->spill.end());
        lastDropped_ += buf->dropped;
    }
    unsigned shards = unsigned(buffers_.size());
    buffers_.clear();

    // Perfetto tolerates unsorted input, but a time-sorted file is
    // friendlier to trace_summarize.py and to diffing.
    std::stable_sort(recs.begin(), recs.end(),
                     [](const Rec &a, const Rec &b) { return a.ts < b.ts; });

    std::ofstream out(substitutePid(config_.path));
    if (!out)
        return;

    auto pidOf = [](const Rec &r) {
        return Cat(r.cat) == Cat::Engine ? enginePidBase + r.node : r.node;
    };

    out << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":"
        << lastDropped_ << "},\"traceEvents\":[\n";
    bool first = true;
    auto comma = [&] {
        if (!first)
            out << ",\n";
        first = false;
    };
    for (std::uint32_t node = 0; node < nodeShard_.size(); ++node) {
        comma();
        out << "{\"ph\":\"M\",\"pid\":" << node
            << ",\"name\":\"process_name\",\"args\":{\"name\":\"node "
            << node << "\"}}";
        comma();
        out << "{\"ph\":\"M\",\"pid\":" << node << ",\"tid\":"
            << nodeShard_[node]
            << ",\"name\":\"thread_name\",\"args\":{\"name\":\"shard "
            << nodeShard_[node] << "\"}}";
    }
    for (unsigned s = 0; s < shards; ++s) {
        comma();
        out << "{\"ph\":\"M\",\"pid\":" << (enginePidBase + s)
            << ",\"name\":\"process_name\",\"args\":{\"name\":"
            << "\"engine shard " << s << "\"}}";
    }
    char line[256];
    for (const Rec &rec : recs) {
        comma();
        if (rec.span) {
            std::snprintf(line, sizeof(line),
                          "{\"ph\":\"X\",\"cat\":\"%s\",\"name\":\"%s\","
                          "\"pid\":%u,\"tid\":%u,\"ts\":%llu,"
                          "\"dur\":%llu,\"args\":{\"a0\":%llu,"
                          "\"a1\":%llu}}",
                          catName(Cat(rec.cat)), rec.name, pidOf(rec),
                          unsigned(rec.shard),
                          (unsigned long long)rec.ts,
                          (unsigned long long)rec.dur,
                          (unsigned long long)rec.a0,
                          (unsigned long long)rec.a1);
        } else {
            std::snprintf(line, sizeof(line),
                          "{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"%s\","
                          "\"name\":\"%s\",\"pid\":%u,\"tid\":%u,"
                          "\"ts\":%llu,\"args\":{\"a0\":%llu,"
                          "\"a1\":%llu}}",
                          catName(Cat(rec.cat)), rec.name, pidOf(rec),
                          unsigned(rec.shard),
                          (unsigned long long)rec.ts,
                          (unsigned long long)rec.a0,
                          (unsigned long long)rec.a1);
        }
        out << line;
    }
    out << "\n]}\n";
}

std::uint64_t
Tracer::droppedRecords() const
{
    std::uint64_t dropped = lastDropped_;
    for (const auto &buf : buffers_)
        dropped += buf->dropped;
    return dropped;
}

std::uint64_t
Tracer::bufferedRecords() const
{
    std::uint64_t count = 0;
    for (const auto &buf : buffers_)
        count += buf->count;
    return count;
}

std::vector<Tracer::Rec>
Tracer::tailRecords(std::size_t max_records) const
{
    std::vector<Rec> recs;
    for (const auto &buf : buffers_) {
        // Per-shard emit order is ring first, then spill (the lane
        // idiom keeps that FIFO); walk each source from its newest end,
        // at most max_records per shard — the global sort below trims
        // the merged set.
        std::size_t want = max_records;
        const std::vector<Rec> &spill = buf->spill;
        for (std::size_t i = spill.size(); i > 0 && want; --i, --want)
            recs.push_back(spill[i - 1]);
        // The ring is never popped while a run is active, so its live
        // sequence range is exactly [0, rawTail) and rawTail never
        // exceeds the ring capacity.
        for (std::size_t seq = buf->ring.rawTail(); seq > 0 && want;
             --seq, --want) {
            if (const Rec *rec = buf->ring.rawSlot(seq - 1))
                recs.push_back(*rec);
        }
    }
    std::stable_sort(recs.begin(), recs.end(),
                     [](const Rec &a, const Rec &b) { return a.ts < b.ts; });
    if (recs.size() > max_records)
        recs.erase(recs.begin(), recs.end() - std::ptrdiff_t(max_records));
    return recs;
}

} // namespace obs
} // namespace ltp
