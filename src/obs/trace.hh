/**
 * @file
 * Zero-perturbation event tracer: Chrome-trace/Perfetto JSON output.
 *
 * The tracer records compact fixed-size event records into per-shard
 * buffers while the simulation runs and serializes them to one
 * Chrome-trace JSON file (loadable at https://ui.perfetto.dev) when the
 * run ends. It is strictly observer-only:
 *
 *  - Nothing here touches the EventQueue, a StatGroup, or any simulated
 *    state, so every golden output and statistics dump is byte-identical
 *    with tracing on or off, at every shard count.
 *
 *  - The disabled fast path is one load + test of a cached bitmask
 *    (Tracer::on()); call sites compile to a predictable untaken branch.
 *    Defining LTP_OBS_DISABLE_TRACE removes even that: every emit
 *    helper becomes an empty inline function.
 *
 *  - The enabled path is wait-free per record: each simulation worker
 *    thread owns one buffer (the parallel engine binds its shard index
 *    through bindThread()), built from the mailbox-lane idiom of
 *    src/sim/par/spsc_ring.hh — a fixed SPSC ring absorbs the common
 *    case, a spill vector absorbs bursts, and once a buffer spills it
 *    keeps spilling so ring-then-spill drain order stays FIFO. A hard
 *    per-shard record cap bounds memory; records beyond it are counted
 *    (`dropped` in the JSON metadata), never silently lost.
 *
 * Track model: pid = simulated node (process track), tid = executing
 * shard (thread track), exactly as the parallel engine partitions work.
 * Engine-internal events (windows, barrier waits, mailbox spills) have
 * no node; they ride synthetic "engine shard S" processes at
 * pid = enginePidBase + shard. Timestamps are simulated ticks written
 * as trace microseconds: 1 us in the viewer == 1 simulated cycle.
 *
 * The tracer is a process-wide singleton (like Debug in sim/log.hh):
 * components emit without threading a pointer through every
 * constructor, and exactly one traced run is active at a time (a second
 * start() flushes and restarts).
 */

#ifndef LTP_OBS_TRACE_HH
#define LTP_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/categories.hh"
#include "sim/par/spsc_ring.hh"
#include "sim/types.hh"

namespace ltp
{
namespace obs
{

/**
 * Synthetic pid base for engine (per-shard, node-less) tracks. Emitters
 * of Cat::Engine records pass the shard id where other categories pass
 * the node id; serialization maps it to pid = enginePidBase + shard.
 */
constexpr std::uint32_t enginePidBase = 1'000'000;

/** Tracer configuration (threaded through SystemParams::obs). */
struct TraceConfig
{
    /** Output path; "%p" expands to the process id. Empty = disabled. */
    std::string path;
    /** Category mask (see obs/categories.hh); default: everything. */
    std::uint32_t categories = allCatsMask;
    /** Hard cap on records per shard buffer (ring + spill). */
    std::size_t eventCapPerShard = std::size_t(1) << 20;
};

class Tracer
{
  public:
    /** The process-wide tracer. */
    static Tracer &instance();

    /** True when category @p c is being traced (the hot-path guard). */
    static bool
    on(Cat c)
    {
#ifdef LTP_OBS_DISABLE_TRACE
        (void)c;
        return false;
#else
        return (activeMask_.load(std::memory_order_relaxed) &
                catBit(c)) != 0;
#endif
    }

    /**
     * Begin a traced run: allocate @p shards record buffers, remember
     * the node -> shard map (@p node_shard) for track metadata, and
     * enable the configured categories. Flushes any still-active trace
     * first. No-op when @p config.path is empty.
     */
    void start(const TraceConfig &config,
               const std::vector<unsigned> &node_shard);

    /** End the run: drain every buffer to the JSON file, disable. */
    void stop();

    /**
     * Bind the calling thread to shard @p shard's buffer. The parallel
     * engine calls this as each worker starts; single-threaded runs
     * write through the default binding (shard 0).
     */
    static void bindThread(unsigned shard);

    /** A span [@p start, @p end] on node @p node's track. */
    static void
    span(Cat c, std::uint32_t node, const char *name, Tick start, Tick end,
         std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
#ifndef LTP_OBS_DISABLE_TRACE
        if (on(c))
            instance().record(c, /*span=*/true, node, name, start,
                              end - start, a0, a1);
#else
        (void)c; (void)node; (void)name; (void)start; (void)end;
        (void)a0; (void)a1;
#endif
    }

    /** An instant at @p ts on node @p node's track. */
    static void
    instant(Cat c, std::uint32_t node, const char *name, Tick ts,
            std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
#ifndef LTP_OBS_DISABLE_TRACE
        if (on(c))
            instance().record(c, /*span=*/false, node, name, ts, 0, a0, a1);
#else
        (void)c; (void)node; (void)name; (void)ts; (void)a0; (void)a1;
#endif
    }

    /** Shard the calling thread is bound to (bindThread; default 0). */
    static unsigned boundShard();

    /**
     * Engine-track span/instant: Cat::Engine on the calling thread's
     * own shard track (the shard id rides the node field — see
     * enginePidBase).
     */
    static void
    engineSpan(const char *name, Tick start, Tick end,
               std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
#ifndef LTP_OBS_DISABLE_TRACE
        if (on(Cat::Engine))
            span(Cat::Engine, boundShard(), name, start, end, a0, a1);
#else
        (void)name; (void)start; (void)end; (void)a0; (void)a1;
#endif
    }

    static void
    engineInstant(const char *name, Tick ts, std::uint64_t a0 = 0,
                  std::uint64_t a1 = 0)
    {
#ifndef LTP_OBS_DISABLE_TRACE
        if (on(Cat::Engine))
            instant(Cat::Engine, boundShard(), name, ts, a0, a1);
#else
        (void)name; (void)ts; (void)a0; (void)a1;
#endif
    }

    /** Records dropped over the per-shard cap in the last/current run. */
    std::uint64_t droppedRecords() const;

    /** Records currently buffered (tests). */
    std::uint64_t bufferedRecords() const;

    bool active() const { return !buffers_.empty(); }

    /**
     * One buffered trace record. `name` must point at storage that
     * outlives the run (string literals / msgTypeName()'s statics).
     */
    struct Rec
    {
        Tick ts = 0;
        Tick dur = 0;
        std::uint64_t a0 = 0;
        std::uint64_t a1 = 0;
        const char *name = nullptr;
        std::uint32_t node = 0;
        std::uint16_t shard = 0;
        std::uint8_t cat = 0;
        bool span = false;
    };

    /**
     * The newest (by timestamp) @p max_records buffered records without
     * consuming them, oldest first — the crash flight recorder's view
     * of "what just happened". Race-free after the run's workers have
     * joined (the clean abort path); from a crash signal handler it is
     * best-effort by contract: the rings are read non-destructively via
     * their raw slots and a record being written concurrently may come
     * back torn.
     */
    std::vector<Rec> tailRecords(std::size_t max_records) const;

  private:
    static constexpr std::size_t ringCapacity = 4096;

    /**
     * One shard's record buffer — the ParallelScheduler::Lane idiom:
     * ring first, spill after the first overflow (so drain order stays
     * FIFO), hard cap with a drop counter after that.
     */
    struct ShardBuf
    {
        SpscRing<Rec, ringCapacity> ring;
        std::vector<Rec> spill;
        std::uint64_t dropped = 0;
        std::size_t count = 0;
    };

    Tracer() = default;

    void record(Cat c, bool span, std::uint32_t node, const char *name,
                Tick ts, Tick dur, std::uint64_t a0, std::uint64_t a1);

    /**
     * The guard every emit helper reads; nonzero only while a traced
     * run is active. Atomic because persistent engine workers may
     * exist across start()/stop(); relaxed is enough — buffer
     * visibility is ordered by the engine's own run barriers.
     */
    static std::atomic<std::uint32_t> activeMask_;

    TraceConfig config_;
    std::vector<unsigned> nodeShard_;
    std::vector<std::unique_ptr<ShardBuf>> buffers_;
    std::uint64_t lastDropped_ = 0;
};

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_TRACE_HH
