/**
 * @file
 * Time-series metrics sampler: periodic StatGroup delta snapshots
 * streamed to JSONL.
 *
 * The simulator's statistics accumulate monotonically; the interesting
 * time-resolved signals (link utilization, directory load, running
 * predictor accuracy, events retired) are the *differences* between
 * successive points. The sampler captures a StatSnapshot at a
 * configurable tick period and writes one JSON line per interval
 * holding only the counters/averages that moved — so a saturation or
 * warmup curve plots straight off the file with `jq`/pandas.
 *
 * Zero perturbation by construction: the sampler never schedules
 * simulation events (a self-rescheduling sampler event would inflate
 * eventsExecuted and drag the run to maxTicks). Instead the engine
 * calls maybeSample() from instrumentation points where all simulated
 * state is quiescent — the EventQueue's tick watcher for sequential
 * runs, the conservative-window planning barrier for parallel ones.
 * Sample *timing* therefore quantizes to window boundaries under the
 * parallel engine, but sampled *values* are the same deterministic
 * merged statistics the final dump reports.
 *
 * JSONL schema (one object per line):
 *   {"tick": T, "sinceTick": T0, "events": deltaRetired,
 *    "counters": {"net.linkBusy.0-1": delta, ...},
 *    "averages": {"dir.0.service": {"sum": s, "count": n}, ...}}
 * A final line is written at end of run regardless of alignment.
 */

#ifndef LTP_OBS_METRICS_HH
#define LTP_OBS_METRICS_HH

#include <cstdint>
#include <fstream>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace ltp
{
namespace obs
{

class MetricsSampler
{
  public:
    /** Opens @p path ("%p" expands to the pid) for line streaming. */
    MetricsSampler(const std::string &path, Tick interval_ticks);

    /** First tick at/after which a sample is due. */
    Tick nextDue() const { return nextDue_; }

    /**
     * Take a sample if @p now has reached the due tick (called from
     * quiescent points; cheap no-op otherwise). Returns nextDue().
     */
    Tick
    maybeSample(Tick now, const StatGroup &stats,
                std::uint64_t events_executed)
    {
        if (now >= nextDue_)
            sample(now, stats, events_executed);
        return nextDue_;
    }

    /** Force the closing sample at end of run. */
    void finish(Tick now, const StatGroup &stats,
                std::uint64_t events_executed);

    bool ok() const { return bool(out_); }
    std::uint64_t samplesWritten() const { return samples_; }

  private:
    void sample(Tick now, const StatGroup &stats,
                std::uint64_t events_executed);

    std::ofstream out_;
    Tick interval_;
    Tick nextDue_;
    Tick lastTick_ = 0;
    std::uint64_t lastEvents_ = 0;
    StatSnapshot last_;
    std::uint64_t samples_ = 0;
};

} // namespace obs
} // namespace ltp

#endif // LTP_OBS_METRICS_HH
