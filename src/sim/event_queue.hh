/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Events are arbitrary callables scheduled at an absolute tick. Events
 * scheduled for the same tick execute in scheduling order (FIFO within a
 * tick), which makes every simulation run bit-reproducible.
 */

#ifndef LTP_SIM_EVENT_QUEUE_HH
#define LTP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace ltp
{

/**
 * Discrete-event scheduler.
 *
 * The queue owns the notion of "now" for a simulation. Clients schedule
 * callbacks at absolute ticks (or relative delays) and then drive the
 * simulation with run() / runUntil() / step().
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Handle used to cancel a scheduled event. */
    using EventId = std::uint64_t;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * @pre when >= now(); scheduling in the past is a caller bug.
     * @return an id usable with cancel().
     */
    EventId scheduleAt(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId scheduleIn(Tick delay, Callback cb)
    {
        return scheduleAt(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled; false if
     *         it already ran, was already cancelled, or never existed.
     */
    bool cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return liveEvents_; }

    /**
     * Execute the single next event (advancing time to it).
     *
     * @return false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains. @return the final tick reached. */
    Tick run();

    /**
     * Run until the queue drains or simulated time would exceed @p limit.
     *
     * Events at tick == limit still execute.
     * @return the final tick reached.
     */
    Tick runUntil(Tick limit);

    /** Total number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq; //!< tie-breaker: FIFO within a tick
        EventId id;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    /** Pop the next live entry; returns false if none. */
    bool popNext(Entry &out);

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_map<EventId, Callback> callbacks_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::size_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace ltp

#endif // LTP_SIM_EVENT_QUEUE_HH
