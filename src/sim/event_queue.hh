/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Events are arbitrary callables scheduled at an absolute tick. Events
 * scheduled for the same tick execute in a fully specified order (see
 * "Same-tick order" below), which makes every simulation run
 * bit-reproducible.
 *
 * Implementation (see src/sim/README.md for the full design notes):
 *
 *  - Callbacks live in a slab of pooled, recycled slots — a free-list
 *    arena — and are stored inline via SmallFunction, so the steady-state
 *    schedule/execute cycle performs zero heap allocations.
 *
 *  - An event id encodes its slot index plus a generation tag (the
 *    global schedule sequence number), so cancellation simply releases
 *    the slot: stale queue entries no longer match the slot's tag and
 *    are skipped on pop. The sequence number doubles as the
 *    FIFO tie-breaker.
 *
 *  - Time order is a calendar: events within `window` ticks of now go
 *    into a per-tick bucket ring (O(1) push, bitmap-accelerated scan to
 *    the next non-empty tick); the rare far-future event waits in a
 *    binary-heap overflow area and migrates into the ring as the window
 *    advances. Nearly every simulator delay (NI occupancy, wire flight,
 *    memory access, barrier release) is far below the window, so the
 *    common path never touches the heap.
 *
 * Same-tick order
 * ---------------
 * Every event carries an ordering key (phase, channel, sequence) and a
 * tick's events execute in ascending key order:
 *
 *  - scheduleAt() events ("locals") take the queue's current even phase
 *    and channel 0, so with no rounds in play (the plain sequential
 *    engine: phase stays 0) same-tick order is pure FIFO — exactly the
 *    historical behaviour.
 *
 *  - scheduleAtChannel() events ("channel posts") take the current odd
 *    phase (phase + 1) and the caller's channel id: at one tick they
 *    sort after the current round's locals, by channel id, FIFO within
 *    a channel. beginRound() advances the phase by 2, so posts of round
 *    r land between round r's locals and round r+1's locals.
 *
 * This is the canonical (deliveryTick, channel) tie-break of the
 * parallel engine (src/sim/par/): a 1-shard ParallelScheduler posts
 * straight into the queue through scheduleAtChannel() and the sorted
 * bucket reproduces, insertion-order-independently, exactly the order
 * the multi-shard engine realizes by sorting its mailbox lanes at a
 * window barrier.
 */

#ifndef LTP_SIM_EVENT_QUEUE_HH
#define LTP_SIM_EVENT_QUEUE_HH

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/small_function.hh"
#include "sim/types.hh"

namespace ltp
{

/**
 * Discrete-event scheduler.
 *
 * The queue owns the notion of "now" for a simulation. Clients schedule
 * callbacks at absolute ticks (or relative delays) and then drive the
 * simulation with run() / runUntil() / step().
 */
class EventQueue
{
  public:
    using Callback = SmallFunction;

    /**
     * Handle used to cancel a scheduled event.
     *
     * Encodes (generation << slotBits) | slot. Generation tags make ids
     * single-use: once an event runs or is cancelled its slot is
     * recycled under a new generation, so a stale id can never cancel
     * the slot's next occupant.
     */
    using EventId = std::uint64_t;

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * Ordering key: (current even phase, channel 0, schedule sequence) —
     * FIFO among same-tick scheduleAt() events of the same round.
     *
     * @pre when >= now(); scheduling in the past is a caller bug.
     * @return an id usable with cancel().
     */
    EventId
    scheduleAt(Tick when, Callback cb)
    {
        return scheduleKeyed(when, phase_ << chanBits, std::move(cb));
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId scheduleIn(Tick delay, Callback cb)
    {
        return scheduleAt(now_ + delay, std::move(cb));
    }

    /**
     * Schedule @p cb at tick @p when on logical FIFO channel @p chan.
     *
     * Ordering key: (current odd phase, chan, schedule sequence). At one
     * tick, channel events of a round execute after that round's
     * scheduleAt() events, ordered by channel id and FIFO within a
     * channel — the parallel engine's canonical (tick, channel) merge
     * order, realized here directly without mailbox staging.
     */
    EventId
    scheduleAtChannel(Tick when, std::uint64_t chan, Callback cb)
    {
        assert(chan < (std::uint64_t(1) << chanBits) &&
               "channel ids must fit 32 bits (see chan::spaceShift)");
        return scheduleKeyed(when, ((phase_ + 1) << chanBits) | chan,
                             std::move(cb));
    }

    /**
     * Open the next canonical round: subsequent scheduleAt() events sort
     * after every channel event of the previous round. Never needed by
     * plain sequential users (the phase just stays 0). The packed key
     * gives phases 32 bits: 2^31 rounds, which at the minimum window
     * of one tick per round outlives any realistic run by orders of
     * magnitude.
     */
    void beginRound() { phase_ += 2; }

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled; false if
     *         it already ran, was already cancelled, or never existed.
     */
    bool cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return liveEvents_; }

    /**
     * Execute the single next event (advancing time to it).
     *
     * @return false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains. @return the final tick reached. */
    Tick run() { return runUntil(tickNever); }

    /**
     * Run until the queue drains or simulated time would exceed @p limit.
     *
     * Events at tick == limit still execute.
     * @return the final tick reached.
     */
    Tick runUntil(Tick limit);

    /**
     * Run like runUntil(@p limit), but drive the canonical round clock
     * inline: whenever the next event lies beyond the current round's
     * window, open a new round (beginRound()) spanning
     * [tick, tick + @p window) — clamped to @p limit — before executing
     * it. This replays exactly the window sequence the staged parallel
     * engine would plan at its barriers (the window start is the global
     * minimum pending tick, which for one shard is simply the next
     * event), at the cost of one compare per event instead of a
     * separate peek-plan-execute pass per round. The 1-shard fast path
     * is this call; windowEnd() exposes the current round's end for the
     * post() lookahead assertion.
     */
    Tick runWindowed(Tick limit, Tick window);

    /** End of the current canonical round (0 before the first one). */
    Tick windowEnd() const { return windowEnd_; }

    /** Total number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /**
     * Observer hook for the callback type of armTickWatcher(): invoked
     * with the current tick, returns the next tick to watch for (or
     * tickNever to disarm).
     */
    using TickWatcher = std::function<Tick(Tick)>;

    /**
     * Arm a watcher that fires between events, the first time simulated
     * time reaches (or passes) @p at. The watcher runs at a quiescent
     * point — after the event that crossed the threshold returned,
     * before the next one pops — and must not schedule events: it is
     * the zero-perturbation observation hook the metrics sampler
     * (obs/metrics.hh) uses to take periodic StatGroup snapshots
     * without touching eventsExecuted or the run's event stream.
     * Disarmed cost is one predictable compare per executed event.
     */
    void
    armTickWatcher(Tick at, TickWatcher fn)
    {
        watcher_ = std::move(fn);
        watchAt_ = at;
    }

    void
    disarmTickWatcher()
    {
        watcher_ = nullptr;
        watchAt_ = tickNever;
    }

    /**
     * Ask the run loops (runUntil/runWindowed/step) to stop before the
     * next event. Safe to call from any thread (the guard watchdog's
     * abort path); the executing thread observes the flag within one
     * event. Pending events stay queued — the run simply stops making
     * progress, and the caller reports a structured abort instead of
     * hanging.
     */
    void
    requestAbort()
    {
        abort_.store(true, std::memory_order_relaxed);
    }

    bool
    abortRequested() const
    {
        return abort_.load(std::memory_order_relaxed);
    }

    /** Re-arm the loops after an aborted run (tests). */
    void clearAbort() { abort_.store(false, std::memory_order_relaxed); }

    /**
     * Progress mirrors for the guard watchdog: the executing thread
     * publishes now()/eventsExecuted() into atomics every
     * `beatPeriod` events (and at every runWindowed round boundary), so
     * a monitor thread can observe forward progress without a data race
     * on the hot members. Monitoring only — values may trail the true
     * counters by up to beatPeriod events.
     */
    Tick
    tickApprox() const
    {
        return tickMirror_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    executedApprox() const
    {
        return executedMirror_.load(std::memory_order_relaxed);
    }

    /** Windows opened by runWindowed() (the 1-shard round count). */
    std::uint64_t windowedRounds() const { return windowedRounds_; }
    /** Sum of runWindowed() window widths in ticks. */
    std::uint64_t windowedTicksSum() const { return windowedTicksSum_; }
    /** Far-future events migrated overflow-heap -> calendar ring. */
    std::uint64_t overflowMigrations() const { return overflowMigrations_; }

    /**
     * Tick of the earliest pending (non-cancelled) event, or tickNever
     * when the queue is drained. Used by the parallel engine to plan
     * conservative windows; prunes tombstones as a side effect but
     * never dequeues or executes anything.
     */
    Tick nextEventTick();

    /**
     * Size of the slot arena (diagnostics/tests). Grows to the high-water
     * mark of concurrently pending events, then stays flat: steady-state
     * scheduling recycles slots instead of allocating.
     */
    std::size_t poolSlots() const { return slots_.size(); }

  private:
    /** Low bits of an EventId select the slot; the rest are the tag. */
    static constexpr unsigned slotBits = 24;
    static constexpr std::uint64_t slotMask = (std::uint64_t(1)
                                               << slotBits) -
                                              1;

    /** Calendar span: events within [now, now + window) are bucketed. */
    static constexpr std::size_t window = 2048;
    static constexpr std::size_t windowMask = window - 1;
    static constexpr std::size_t windowWords = window / 64;

    /** One pooled event: its current id tag and the inline callback. */
    struct Slot
    {
        EventId id = 0; //!< 0 = free (generations start at 1)
        Tick when = 0;
        Callback cb;
    };

    /**
     * One queued reference to a slot, carrying the ordering key packed
     * as (phase << 32) | chan — phases and channel ids both fit 32
     * bits (see scheduleAtChannel) — so the entry stays 16 bytes and a
     * bucket comparison is two machine words. The schedule sequence
     * lives in the id's generation bits, making the full order
     * (phase, chan, sequence).
     */
    struct Entry
    {
        EventId id;
        std::uint64_t key;
    };

    /** Bits of the packed key available for the channel id. */
    static constexpr unsigned chanBits = 32;

    static bool
    entryBefore(const Entry &a, const Entry &b)
    {
        if (a.key != b.key)
            return a.key < b.key;
        return a.id < b.id; // generation bits dominate: schedule order
    }

    /**
     * One calendar tick's events, kept sorted by ordering key. `head`
     * marks the consumed prefix (entries are popped front-to-back
     * within a tick); insertions never land before `head` — see
     * pushBucket().
     */
    struct Bucket
    {
        std::vector<Entry> entries;
        std::size_t head = 0;
    };

    struct OverflowEntry
    {
        Tick when;
        Entry entry; //!< stable key copy: slots may be recycled under it

        bool
        operator>(const OverflowEntry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return entryBefore(o.entry, entry);
        }
    };

    /** The keyed implementation behind both schedule flavours. */
    EventId scheduleKeyed(Tick when, std::uint64_t key, Callback cb);

    /** Sorted-insert into the ring bucket for @p when (within window). */
    void pushBucket(Tick when, Entry e);

    /** Cold path of pushBucket: a key-overtaking (channel) insert. */
    void insertSorted(Bucket &b, Entry e);

    /** Move overflow events that entered the window into the ring. */
    void migrate();

    /** Run the tick watcher and rearm/disarm from its return value. */
    void fireTickWatcher();

    /**
     * Locate and dequeue the next live event with when <= @p limit.
     * Leaves it (and now_) untouched when the next event is beyond the
     * limit. @return the slot index, or -1 when nothing is runnable.
     */
    std::int64_t popNextLive(Tick limit);

    /** Ring index of the first non-empty bucket at or after now_. */
    std::size_t firstBucket() const;

    /** Advance now_ to @p slot's tick, recycle it, run its callback. */
    void executeSlot(std::uint32_t slot);

    void
    clearBucket(std::size_t idx)
    {
        buckets_[idx].entries.clear();
        buckets_[idx].head = 0;
        bitmap_[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
    }

    /** Release @p slot back to the free list. */
    void
    release(std::uint32_t slot)
    {
        slots_[slot].id = 0;
        freeList_.push_back(slot);
    }

    std::vector<Bucket> buckets_;           //!< window per-tick buckets
    std::uint64_t bitmap_[windowWords] = {}; //!< non-empty-bucket bits
    std::size_t bucketedEntries_ = 0;       //!< entries in the ring (incl. stale)
    std::priority_queue<OverflowEntry, std::vector<OverflowEntry>,
                        std::greater<>>
        overflow_;

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeList_;
    Tick now_ = 0;
    Tick windowEnd_ = 0; //!< current canonical round's end (runWindowed)
    bool windowOpen_ = false; //!< a runWindowed round has ever begun
    std::uint64_t nextGen_ = 1;
    std::uint64_t phase_ = 0; //!< even; +1 = the channel-post phase
    std::size_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;

    Tick watchAt_ = tickNever; //!< tickNever = watcher disarmed
    TickWatcher watcher_;
    std::uint64_t windowedRounds_ = 0;
    std::uint64_t windowedTicksSum_ = 0;
    std::uint64_t overflowMigrations_ = 0;

    /** Events between progress-mirror publishes (power of two). */
    static constexpr std::uint64_t beatPeriod = 4096;

    void
    publishProgress()
    {
        tickMirror_.store(now_, std::memory_order_relaxed);
        executedMirror_.store(executed_, std::memory_order_relaxed);
    }

    std::atomic<bool> abort_{false};
    std::atomic<Tick> tickMirror_{0};
    std::atomic<std::uint64_t> executedMirror_{0};
};

} // namespace ltp

#endif // LTP_SIM_EVENT_QUEUE_HH
