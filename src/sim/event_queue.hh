/**
 * @file
 * A deterministic discrete-event queue.
 *
 * Events are arbitrary callables scheduled at an absolute tick. Events
 * scheduled for the same tick execute in scheduling order (FIFO within a
 * tick), which makes every simulation run bit-reproducible.
 *
 * Implementation (see src/sim/README.md for the full design notes):
 *
 *  - Callbacks live in a slab of pooled, recycled slots — a free-list
 *    arena — and are stored inline via SmallFunction, so the steady-state
 *    schedule/execute cycle performs zero heap allocations.
 *
 *  - An event id encodes its slot index plus a generation tag (the
 *    global schedule sequence number), so cancellation simply releases
 *    the slot: stale queue entries no longer match the slot's tag and
 *    are skipped on pop. The sequence number doubles as the
 *    FIFO-within-tick tie-breaker.
 *
 *  - Time order is a calendar: events within `window` ticks of now go
 *    into a per-tick bucket ring (O(1) push, bitmap-accelerated scan to
 *    the next non-empty tick); the rare far-future event waits in a
 *    binary-heap overflow area and migrates into the ring as the window
 *    advances. Nearly every simulator delay (NI occupancy, wire flight,
 *    memory access, barrier release) is far below the window, so the
 *    common path never touches the heap.
 */

#ifndef LTP_SIM_EVENT_QUEUE_HH
#define LTP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/small_function.hh"
#include "sim/types.hh"

namespace ltp
{

/**
 * Discrete-event scheduler.
 *
 * The queue owns the notion of "now" for a simulation. Clients schedule
 * callbacks at absolute ticks (or relative delays) and then drive the
 * simulation with run() / runUntil() / step().
 */
class EventQueue
{
  public:
    using Callback = SmallFunction;

    /**
     * Handle used to cancel a scheduled event.
     *
     * Encodes (generation << slotBits) | slot. Generation tags make ids
     * single-use: once an event runs or is cancelled its slot is
     * recycled under a new generation, so a stale id can never cancel
     * the slot's next occupant.
     */
    using EventId = std::uint64_t;

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulation time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * @pre when >= now(); scheduling in the past is a caller bug.
     * @return an id usable with cancel().
     */
    EventId scheduleAt(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId scheduleIn(Tick delay, Callback cb)
    {
        return scheduleAt(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled; false if
     *         it already ran, was already cancelled, or never existed.
     */
    bool cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return liveEvents_; }

    /**
     * Execute the single next event (advancing time to it).
     *
     * @return false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains. @return the final tick reached. */
    Tick run() { return runUntil(tickNever); }

    /**
     * Run until the queue drains or simulated time would exceed @p limit.
     *
     * Events at tick == limit still execute.
     * @return the final tick reached.
     */
    Tick runUntil(Tick limit);

    /** Total number of events executed so far. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /**
     * Tick of the earliest pending (non-cancelled) event, or tickNever
     * when the queue is drained. Used by the parallel engine to plan
     * conservative windows; prunes tombstones as a side effect but
     * never dequeues or executes anything.
     */
    Tick nextEventTick();

    /**
     * Size of the slot arena (diagnostics/tests). Grows to the high-water
     * mark of concurrently pending events, then stays flat: steady-state
     * scheduling recycles slots instead of allocating.
     */
    std::size_t poolSlots() const { return slots_.size(); }

  private:
    /** Low bits of an EventId select the slot; the rest are the tag. */
    static constexpr unsigned slotBits = 24;
    static constexpr std::uint64_t slotMask = (std::uint64_t(1)
                                               << slotBits) -
                                              1;

    /** Calendar span: events within [now, now + window) are bucketed. */
    static constexpr std::size_t window = 2048;
    static constexpr std::size_t windowMask = window - 1;
    static constexpr std::size_t windowWords = window / 64;

    /** One pooled event: its current id tag and the inline callback. */
    struct Slot
    {
        EventId id = 0; //!< 0 = free (generations start at 1)
        Tick when = 0;
        Callback cb;
    };

    /**
     * One calendar tick's events, in scheduling order. `head` marks the
     * consumed prefix (entries are popped front-to-back within a tick).
     */
    struct Bucket
    {
        std::vector<EventId> ids;
        std::size_t head = 0;
    };

    struct OverflowEntry
    {
        Tick when;
        EventId id; //!< high bits = schedule order -> FIFO tie-break

        bool
        operator>(const OverflowEntry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return id > o.id;
        }
    };

    /** Append to the ring bucket for @p when (must be within window). */
    void pushBucket(Tick when, EventId id);

    /** Move overflow events that entered the window into the ring. */
    void migrate();

    /**
     * Locate and dequeue the next live event with when <= @p limit.
     * Leaves it (and now_) untouched when the next event is beyond the
     * limit. @return the slot index, or -1 when nothing is runnable.
     */
    std::int64_t popNextLive(Tick limit);

    /** Ring index of the first non-empty bucket at or after now_. */
    std::size_t firstBucket() const;

    /** Advance now_ to @p slot's tick, recycle it, run its callback. */
    void executeSlot(std::uint32_t slot);

    void
    clearBucket(std::size_t idx)
    {
        buckets_[idx].ids.clear();
        buckets_[idx].head = 0;
        bitmap_[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
    }

    /** Release @p slot back to the free list. */
    void
    release(std::uint32_t slot)
    {
        slots_[slot].id = 0;
        freeList_.push_back(slot);
    }

    std::vector<Bucket> buckets_;           //!< window per-tick buckets
    std::uint64_t bitmap_[windowWords] = {}; //!< non-empty-bucket bits
    std::size_t bucketedEntries_ = 0;       //!< entries in the ring (incl. stale)
    std::priority_queue<OverflowEntry, std::vector<OverflowEntry>,
                        std::greater<>>
        overflow_;

    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeList_;
    Tick now_ = 0;
    std::uint64_t nextGen_ = 1;
    std::size_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace ltp

#endif // LTP_SIM_EVENT_QUEUE_HH
