/**
 * @file
 * Lightweight named-statistics package (counters, scalars, averages,
 * histograms) used by every simulated component.
 *
 * A StatGroup is a flat registry of named statistics. Components create
 * their stats against a group; harnesses dump or query the group after a
 * run. The package is intentionally simple: everything is a double or a
 * 64-bit counter, there is no hierarchy beyond the component name prefix.
 *
 * Hot-path cost model: a stat's string name is resolved exactly once, at
 * registration, into a dense StatId indexing slab-backed storage
 * (contiguous arrays of Counter/Average values, 256 per slab). A
 * per-event bump through a registered handle — or through counterAt(id)
 * — is a plain array access with no string hashing or tree walk; the
 * name registry (a sorted map, which is also what keeps dump() output
 * canonical) is only touched at registration and report time. Slabs
 * never move, so references returned by counter()/average() stay valid
 * for the group's lifetime, exactly as before.
 */

#ifndef LTP_SIM_STATS_HH
#define LTP_SIM_STATS_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace ltp
{

/**
 * Dense index of one registered statistic within its kind's storage
 * (counters and averages number independently). Ids are assigned in
 * registration order, starting at 0, and are stable for the group's
 * lifetime — intern a name once, bump by id ever after.
 */
using StatId = std::uint32_t;

/** A monotonically increasing 64-bit event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * An accumulating average: tracks sum, count, min and max of samples.
 * Used for, e.g., per-message queueing delay at a directory.
 */
class Average
{
  public:
    void sample(double v);

    /** Fold another average's samples into this one (exact for the
     *  tick-valued samples the simulator records). */
    void merge(const Average &o);

    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A fixed-bucket histogram over [0, bucketWidth * nBuckets); samples
 * beyond the last bucket land in an overflow bucket.
 */
class Histogram
{
  public:
    Histogram(double bucket_width, std::size_t n_buckets);

    /** Record @p v. Negative (or NaN) samples clamp into bucket 0. */
    void sample(double v);

    /** Fold another histogram (same shape) into this one. */
    void merge(const Histogram &o);

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    std::size_t numBuckets() const { return buckets_.size(); }
    double bucketWidth() const { return width_; }
    std::uint64_t totalSamples() const { return total_; }
    double mean() const { return total_ ? sum_ / double(total_) : 0.0; }

    /**
     * Value below which fraction @p p of the samples fall (upper edge of
     * the covering bucket; overflow samples report the histogram range).
     * @pre 0.0 <= p <= 1.0. Returns 0.0 when empty.
     */
    double percentile(double p) const;

    void reset();

  private:
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/**
 * A point-in-time capture of a StatGroup's scalar state: counter
 * values plus average (sum, count) pairs. Two snapshots subtract to
 * an interval delta — the basis of the time-series metrics sampler
 * (obs/metrics.hh), which reads "what happened in the last N ticks"
 * off a monotonically accumulating group. Histograms are deliberately
 * not captured: copying every bucket per sample would make sampling
 * cost scale with histogram shape, and the sampler only needs rates.
 */
struct StatSnapshot
{
    struct AvgState
    {
        double sum = 0.0;
        std::uint64_t count = 0;
    };

    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, AvgState> averages;

    /**
     * This snapshot minus @p older (per name; names absent from
     * @p older subtract zero, i.e. stats registered mid-interval
     * report their full accumulation).
     */
    StatSnapshot delta(const StatSnapshot &older) const;
};

/**
 * A flat, named registry of statistics.
 *
 * Names are dotted paths ("dir.0.queueing"). Registration returns a
 * reference that stays valid for the lifetime of the group.
 */
class StatGroup
{
  public:
    Counter &counter(const std::string &name)
    {
        return counterAt(counterId(name));
    }
    Average &average(const std::string &name)
    {
        return averageAt(averageId(name));
    }

    /**
     * Intern @p name into its dense counter id (registering the counter
     * on first sight). The id indexes slab storage: resolve once, keep
     * the id (or the counterAt() reference), bump with no lookups.
     */
    StatId counterId(const std::string &name);
    StatId averageId(const std::string &name);

    /** Counter storage behind @p id. @pre id came from counterId(). */
    Counter &
    counterAt(StatId id)
    {
        assert(id < counters_.count);
        return counters_.at(id);
    }
    Average &
    averageAt(StatId id)
    {
        assert(id < averages_.count);
        return averages_.at(id);
    }

    /** Registered counters (== the next id counterId() would assign). */
    std::uint32_t numCounters() const { return counters_.count; }
    std::uint32_t numAverages() const { return averages_.count; }

    /**
     * Register (or look up) a histogram. The shape arguments only apply
     * on first registration; later calls return the existing histogram.
     */
    Histogram &histogram(const std::string &name, double bucket_width = 16.0,
                         std::size_t n_buckets = 128);

    /** Value of the counter @p name; 0 when absent (never creates one —
     *  use counter() to register). */
    std::uint64_t counterValue(const std::string &name) const;
    /** Look up an existing average's mean (0.0 if absent). */
    double averageMean(const std::string &name) const;
    /** Look up an existing histogram (nullptr if absent). */
    const Histogram *findHistogram(const std::string &name) const;

    bool hasCounter(const std::string &name) const;
    bool hasAverage(const std::string &name) const;
    bool hasHistogram(const std::string &name) const;

    /** Largest value among counters whose name starts with @p prefix. */
    std::uint64_t maxCounterValueWithPrefix(const std::string &prefix) const;
    /** Sum of all counters whose name starts with @p prefix. */
    std::uint64_t sumCountersWithPrefix(const std::string &prefix) const;

    /**
     * Fold another group into this one: counters add, averages and
     * histograms (same shape) merge, names absent here are created.
     * The parallel engine uses this to aggregate per-shard groups; all
     * merged quantities are integer-valued sums, so the result is
     * bit-identical to single-group accumulation regardless of how
     * samples were spread over shards.
     */
    void mergeFrom(const StatGroup &o);

    /**
     * Dump every statistic, one per line. The registries are sorted
     * maps, so the output is canonical: a name-sorted order that does
     * not depend on registration (or shard construction) order.
     */
    void dump(std::ostream &os) const;

    /** Reset every statistic to zero. */
    void resetAll();

    /** Capture counter and average state (see StatSnapshot). */
    StatSnapshot snapshot() const;

  private:
    /**
     * One stat kind's storage: a sorted name -> id registry (the sorted
     * iteration is what keeps dump()/snapshot() output canonical) plus
     * dense value slabs. Slabs are fixed arrays behind stable pointers:
     * values of consecutive ids are contiguous (structure-of-arrays
     * cache behaviour on hot bump loops) and growth never moves an
     * existing value, so handed-out references survive any amount of
     * later registration.
     */
    template <typename T>
    struct Registry
    {
        static constexpr std::uint32_t slabShift = 8; //!< 256 per slab
        static constexpr std::uint32_t slabMask = (1u << slabShift) - 1;
        using Slab = std::array<T, std::size_t(1) << slabShift>;

        std::map<std::string, StatId> ids;
        std::vector<std::unique_ptr<Slab>> slabs;
        std::uint32_t count = 0;

        StatId
        intern(const std::string &name)
        {
            auto [it, inserted] = ids.emplace(name, count);
            if (inserted) {
                if ((count >> slabShift) == slabs.size())
                    slabs.push_back(std::make_unique<Slab>());
                ++count;
            }
            return it->second;
        }

        T &
        at(StatId id)
        {
            return (*slabs[id >> slabShift])[id & slabMask];
        }

        const T &
        at(StatId id) const
        {
            return (*slabs[id >> slabShift])[id & slabMask];
        }

        /** Look up an existing name (nullptr when absent; never interns). */
        const T *
        find(const std::string &name) const
        {
            auto it = ids.find(name);
            return it == ids.end() ? nullptr : &at(it->second);
        }
    };

    Registry<Counter> counters_;
    Registry<Average> averages_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace ltp

#endif // LTP_SIM_STATS_HH
