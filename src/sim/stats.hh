/**
 * @file
 * Lightweight named-statistics package (counters, scalars, averages,
 * histograms) used by every simulated component.
 *
 * A StatGroup is a flat registry of named statistics. Components create
 * their stats against a group; harnesses dump or query the group after a
 * run. The package is intentionally simple: everything is a double or a
 * 64-bit counter, there is no hierarchy beyond the component name prefix.
 */

#ifndef LTP_SIM_STATS_HH
#define LTP_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ltp
{

/** A monotonically increasing 64-bit event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * An accumulating average: tracks sum, count, min and max of samples.
 * Used for, e.g., per-message queueing delay at a directory.
 */
class Average
{
  public:
    void sample(double v);

    /** Fold another average's samples into this one (exact for the
     *  tick-valued samples the simulator records). */
    void merge(const Average &o);

    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A fixed-bucket histogram over [0, bucketWidth * nBuckets); samples
 * beyond the last bucket land in an overflow bucket.
 */
class Histogram
{
  public:
    Histogram(double bucket_width, std::size_t n_buckets);

    /** Record @p v. Negative (or NaN) samples clamp into bucket 0. */
    void sample(double v);

    /** Fold another histogram (same shape) into this one. */
    void merge(const Histogram &o);

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    std::size_t numBuckets() const { return buckets_.size(); }
    double bucketWidth() const { return width_; }
    std::uint64_t totalSamples() const { return total_; }
    double mean() const { return total_ ? sum_ / double(total_) : 0.0; }

    /**
     * Value below which fraction @p p of the samples fall (upper edge of
     * the covering bucket; overflow samples report the histogram range).
     * @pre 0.0 <= p <= 1.0. Returns 0.0 when empty.
     */
    double percentile(double p) const;

    void reset();

  private:
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/**
 * A point-in-time capture of a StatGroup's scalar state: counter
 * values plus average (sum, count) pairs. Two snapshots subtract to
 * an interval delta — the basis of the time-series metrics sampler
 * (obs/metrics.hh), which reads "what happened in the last N ticks"
 * off a monotonically accumulating group. Histograms are deliberately
 * not captured: copying every bucket per sample would make sampling
 * cost scale with histogram shape, and the sampler only needs rates.
 */
struct StatSnapshot
{
    struct AvgState
    {
        double sum = 0.0;
        std::uint64_t count = 0;
    };

    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, AvgState> averages;

    /**
     * This snapshot minus @p older (per name; names absent from
     * @p older subtract zero, i.e. stats registered mid-interval
     * report their full accumulation).
     */
    StatSnapshot delta(const StatSnapshot &older) const;
};

/**
 * A flat, named registry of statistics.
 *
 * Names are dotted paths ("dir.0.queueing"). Registration returns a
 * reference that stays valid for the lifetime of the group.
 */
class StatGroup
{
  public:
    Counter &counter(const std::string &name);
    Average &average(const std::string &name);

    /**
     * Register (or look up) a histogram. The shape arguments only apply
     * on first registration; later calls return the existing histogram.
     */
    Histogram &histogram(const std::string &name, double bucket_width = 16.0,
                         std::size_t n_buckets = 128);

    /** Value of the counter @p name; 0 when absent (never creates one —
     *  use counter() to register). */
    std::uint64_t counterValue(const std::string &name) const;
    /** Look up an existing average's mean (0.0 if absent). */
    double averageMean(const std::string &name) const;
    /** Look up an existing histogram (nullptr if absent). */
    const Histogram *findHistogram(const std::string &name) const;

    bool hasCounter(const std::string &name) const;
    bool hasAverage(const std::string &name) const;
    bool hasHistogram(const std::string &name) const;

    /** Largest value among counters whose name starts with @p prefix. */
    std::uint64_t maxCounterValueWithPrefix(const std::string &prefix) const;
    /** Sum of all counters whose name starts with @p prefix. */
    std::uint64_t sumCountersWithPrefix(const std::string &prefix) const;

    /**
     * Fold another group into this one: counters add, averages and
     * histograms (same shape) merge, names absent here are created.
     * The parallel engine uses this to aggregate per-shard groups; all
     * merged quantities are integer-valued sums, so the result is
     * bit-identical to single-group accumulation regardless of how
     * samples were spread over shards.
     */
    void mergeFrom(const StatGroup &o);

    /**
     * Dump every statistic, one per line. The registries are sorted
     * maps, so the output is canonical: a name-sorted order that does
     * not depend on registration (or shard construction) order.
     */
    void dump(std::ostream &os) const;

    /** Reset every statistic to zero. */
    void resetAll();

    /** Capture counter and average state (see StatSnapshot). */
    StatSnapshot snapshot() const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace ltp

#endif // LTP_SIM_STATS_HH
