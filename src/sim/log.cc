#include "sim/log.hh"

#include <cstdlib>
#include <mutex>
#include <set>

namespace ltp
{

namespace
{

std::set<std::string> &
categories()
{
    static std::set<std::string> cats = [] {
        std::set<std::string> s;
        if (const char *env = std::getenv("LTP_DEBUG")) {
            std::string v(env);
            std::size_t pos = 0;
            while (pos < v.size()) {
                std::size_t comma = v.find(',', pos);
                if (comma == std::string::npos)
                    comma = v.size();
                if (comma > pos)
                    s.insert(v.substr(pos, comma - pos));
                pos = comma + 1;
            }
        }
        return s;
    }();
    return cats;
}

} // namespace

bool Debug::anyEnabled_ = !categories().empty();

bool
Debug::enabled(const std::string &cat)
{
    const auto &cats = categories();
    return cats.count("all") || cats.count(cat);
}

void
Debug::enable(const std::string &cat)
{
    categories().insert(cat);
    anyEnabled_ = true;
}

void
Debug::clear()
{
    categories().clear();
    anyEnabled_ = false;
}

void
debugLog(const std::string &cat, Tick now, const std::string &msg)
{
    std::cerr << now << ": [" << cat << "] " << msg << "\n";
}

} // namespace ltp
