/**
 * @file
 * Fundamental scalar types shared by every subsystem of the simulator.
 */

#ifndef LTP_SIM_TYPES_HH
#define LTP_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace ltp
{

/** Simulation time, measured in processor clock cycles. */
using Tick = std::uint64_t;

/** A (physical) memory byte address. */
using Addr = std::uint64_t;

/** Program counter of a (simulated) memory instruction. */
using Pc = std::uint64_t;

/** Identifier of a DSM node (processor + memory + directory slice). */
using NodeId = std::uint32_t;

/** Sentinel node id meaning "no node". */
constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

/** Sentinel tick meaning "never". */
constexpr Tick tickNever = std::numeric_limits<Tick>::max();

} // namespace ltp

#endif // LTP_SIM_TYPES_HH
