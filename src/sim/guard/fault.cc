#include "sim/guard/fault.hh"

#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace ltp
{
namespace guard
{
namespace
{

/** SplitMix64 finalizer over a composed key: the per-site pure RNG. */
std::uint64_t
siteHash(std::uint64_t seed, std::uint64_t site, std::uint64_t counter)
{
    std::uint64_t z = seed;
    z += 0x9e3779b97f4a7c15ull * (site + 1);
    z += 0x9e3779b97f4a7c15ull * (counter + 1) * 0x2545f4914f6cdd1dull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
unitInterval(std::uint64_t h)
{
    return double(h >> 11) * (1.0 / 9007199254740992.0);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t end = s.find(sep, start);
        if (end == std::string::npos)
            end = s.size();
        if (end > start)
            out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::uint64_t
parseU64(const std::string &what, const std::string &v, bool allowZero)
{
    char *end = nullptr;
    unsigned long long x = std::strtoull(v.c_str(), &end, 10);
    if (!end || *end != '\0' || v.empty() || (!allowZero && x == 0)) {
        throw std::invalid_argument("LTP_FAULT: " + what +
                                    ": expected a positive integer, got \"" +
                                    v + "\"");
    }
    return x;
}

double
parseProb(const std::string &what, const std::string &v)
{
    char *end = nullptr;
    double p = std::strtod(v.c_str(), &end);
    if (!end || *end != '\0' || v.empty() || p < 0.0 || p > 1.0) {
        throw std::invalid_argument("LTP_FAULT: " + what +
                                    ": expected a probability in [0,1], "
                                    "got \"" + v + "\"");
    }
    return p;
}

} // namespace

FaultPlan
parseFaultSpec(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &fault : split(spec, ';')) {
        std::size_t colon = fault.find(':');
        std::string kind = fault.substr(0, colon);
        std::string opts =
            colon == std::string::npos ? "" : fault.substr(colon + 1);

        FaultKind k;
        if (kind == "link-stall")
            k = FaultKind::LinkStall;
        else if (kind == "spill-storm")
            k = FaultKind::SpillStorm;
        else if (kind == "cal-overflow")
            k = FaultKind::CalendarOverflow;
        else if (kind == "barrier-wedge")
            k = FaultKind::BarrierWedge;
        else
            throw std::invalid_argument(
                "LTP_FAULT: unknown fault kind \"" + kind +
                "\" (know link-stall, spill-storm, cal-overflow, "
                "barrier-wedge)");
        plan.mask |= faultBit(k);

        for (const std::string &kv : split(opts, ',')) {
            std::size_t eq = kv.find('=');
            if (eq == std::string::npos) {
                throw std::invalid_argument("LTP_FAULT: " + kind +
                                            ": expected key=value, got \"" +
                                            kv + "\"");
            }
            std::string key = kv.substr(0, eq);
            std::string val = kv.substr(eq + 1);
            bool known = false;
            if (k == FaultKind::LinkStall) {
                known = true;
                if (key == "p")
                    plan.linkStallP = parseProb(kind + ":p", val);
                else if (key == "extra")
                    plan.linkStallExtra =
                        std::uint32_t(parseU64(kind + ":extra", val, false));
                else if (key == "seed")
                    plan.linkStallSeed = parseU64(kind + ":seed", val, true);
                else
                    known = false;
            } else if (k == FaultKind::CalendarOverflow) {
                known = key == "period";
                if (known)
                    plan.calOverflowPeriod =
                        parseU64(kind + ":period", val, false);
            } else if (k == FaultKind::BarrierWedge) {
                known = true;
                if (key == "round")
                    plan.wedgeRound = parseU64(kind + ":round", val, true);
                else if (key == "shard")
                    plan.wedgeShard =
                        unsigned(parseU64(kind + ":shard", val, true));
                else
                    known = false;
            }
            if (!known) {
                throw std::invalid_argument("LTP_FAULT: " + kind +
                                            ": unknown key \"" + key + "\"");
            }
        }
    }
    if (spec.empty() == false && plan.mask == 0)
        throw std::invalid_argument("LTP_FAULT: empty fault spec \"" +
                                    spec + "\"");
    return plan;
}

std::atomic<std::uint32_t> Faults::mask_{0};

Faults &
Faults::instance()
{
    static Faults f;
    return f;
}

void
Faults::arm(const FaultPlan &plan)
{
    plan_ = plan;
    mask_.store(plan.mask, std::memory_order_release);
}

void
Faults::disarm()
{
    mask_.store(0, std::memory_order_release);
    plan_ = FaultPlan{};
}

Tick
Faults::linkStallTicks(std::uint64_t site, std::uint64_t counter) const
{
    std::uint64_t h = siteHash(plan_.linkStallSeed, site, counter);
    if (unitInterval(h) >= plan_.linkStallP)
        return 0;
    // Second, independent draw for the stall length.
    std::uint64_t h2 = siteHash(plan_.linkStallSeed ^ 0xa5a5a5a5a5a5a5a5ull,
                                site, counter);
    return Tick(1 + h2 % plan_.linkStallExtra);
}

} // namespace guard
} // namespace ltp
