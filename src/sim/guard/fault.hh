/**
 * @file
 * Deterministic, seeded fault injection (LTP_FAULT).
 *
 * Fault decisions use a counter-based per-site RNG: every decision is a
 * pure hash of (seed, site id, site-local counter), never a shared
 * mutable stream. The call site owns its counter (one per physical
 * link, per event queue, ...), and the simulation itself is
 * bit-deterministic, so each site sees the identical decision sequence
 * for every simThreads value — fault-injected runs stay shard-count
 * invariant exactly like fault-free ones.
 *
 * Spec grammar (semicolon-separated faults, comma-separated keys):
 *
 *   LTP_FAULT=kind[:key=value[,key=value...]][;kind2...]
 *
 *   link-stall[:p=0.01,extra=64,seed=1]
 *       At each link grant, with probability p, stretch the message's
 *       serialization by 1..extra extra ticks. Perturbs *virtual* time
 *       deterministically (results differ from fault-free runs but are
 *       identical across shard counts and reruns).
 *   spill-storm
 *       Every cross-shard mailbox post takes the FIFO spill path as if
 *       the SPSC ring were full. Host-side stress only — results are
 *       byte-identical to fault-free runs.
 *   cal-overflow[:period=1]
 *       Every period-th scheduled event is forced onto the calendar
 *       queue's far-future overflow heap and must migrate back into the
 *       bucket ring before it can fire. Host-side stress only — results
 *       are byte-identical to fault-free runs.
 *   barrier-wedge[:round=10,shard=1]
 *       The given shard wedges (stops arriving at the WindowBarrier)
 *       at the given window round until the run is aborted. Requires
 *       >= 2 shards; used to prove the watchdog fires.
 *
 * Faults is a process-wide singleton armed per run by DsmSystem (like
 * obs::Tracer); the disarmed fast path is one relaxed atomic load.
 */

#ifndef LTP_SIM_GUARD_FAULT_HH
#define LTP_SIM_GUARD_FAULT_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace ltp
{
namespace guard
{

enum class FaultKind : std::uint8_t
{
    LinkStall,
    SpillStorm,
    CalendarOverflow,
    BarrierWedge,
    NumKinds,
};

constexpr std::uint32_t
faultBit(FaultKind k)
{
    return 1u << unsigned(k);
}

/** Parsed LTP_FAULT spec. */
struct FaultPlan
{
    std::uint32_t mask = 0; //!< faultBit() mask of armed kinds

    // link-stall
    double linkStallP = 0.01;        //!< per-grant stall probability
    std::uint32_t linkStallExtra = 64; //!< max extra ticks per stall
    std::uint64_t linkStallSeed = 1;

    // cal-overflow
    std::uint64_t calOverflowPeriod = 1; //!< force every Nth schedule

    // barrier-wedge
    std::uint64_t wedgeRound = 10; //!< window round to wedge at
    unsigned wedgeShard = 1;       //!< shard that wedges

    bool on(FaultKind k) const { return mask & faultBit(k); }
};

/**
 * Parse an LTP_FAULT spec. Throws std::invalid_argument naming the
 * offending token on an unknown kind, unknown key, or bad value.
 */
FaultPlan parseFaultSpec(const std::string &spec);

/**
 * Process-wide fault-injection switchboard. At most one armed run at a
 * time (same contract as obs::Tracer).
 */
class Faults
{
  public:
    static Faults &instance();

    /** Arm @p plan for the coming run. */
    void arm(const FaultPlan &plan);
    /** Disarm all faults (end of run). */
    void disarm();

    /** Fast path: is @p k armed? One relaxed atomic load. */
    static bool
    on(FaultKind k)
    {
        return mask_.load(std::memory_order_relaxed) & faultBit(k);
    }

    const FaultPlan &plan() const { return plan_; }

    /**
     * link-stall decision for site @p site (link index) at its
     * @p counter-th grant: 0 = no stall, else extra serialization
     * ticks. Pure function of (seed, site, counter).
     */
    Tick linkStallTicks(std::uint64_t site, std::uint64_t counter) const;

    /** cal-overflow decision for a site's @p counter-th schedule. */
    bool
    calendarOverflowHit(std::uint64_t counter) const
    {
        return plan_.calOverflowPeriod <= 1 ||
               counter % plan_.calOverflowPeriod == 0;
    }

    /** barrier-wedge decision for @p shard entering window @p round. */
    bool
    wedgeHit(unsigned shard, std::uint64_t round) const
    {
        return shard == plan_.wedgeShard && round >= plan_.wedgeRound;
    }

  private:
    Faults() = default;

    static std::atomic<std::uint32_t> mask_;
    FaultPlan plan_;
};

} // namespace guard
} // namespace ltp

#endif // LTP_SIM_GUARD_FAULT_HH
