#include "sim/guard/flight_recorder.hh"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "obs/categories.hh"
#include "obs/trace.hh"
#include "sim/guard/watchdog.hh"

namespace ltp
{
namespace guard
{

namespace
{

constexpr std::size_t maxPath = 512;
constexpr std::size_t tailRecordCount = 256;

// Global recorder state: signal handlers have no argument channel.
// gArmed is the handler's only gate; gPath/gCtx are written under gMu
// strictly before arming and after disarming, so the armed handler
// reads stable values.
std::atomic<bool> gArmed{false};
char gPath[maxPath] = {0};
RecorderContext gCtx;
std::mutex gMu;
std::once_flag gInstallOnce;

/** printf straight to @p fd (no stdio stream, signal-path friendly). */
void
fdPrintf(int fd, const char *fmt, ...)
{
    char buf[2048];
    va_list ap;
    va_start(ap, fmt);
    int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (n <= 0)
        return;
    std::size_t len = std::size_t(n) < sizeof(buf) ? std::size_t(n)
                                                   : sizeof(buf) - 1;
    std::size_t off = 0;
    while (off < len) {
        ssize_t w = ::write(fd, buf + off, len - off);
        if (w <= 0)
            return;
        off += std::size_t(w);
    }
}

/** JSON-escape @p in (capped) into @p out; always NUL-terminated. */
void
escapeJson(const char *in, char *out, std::size_t cap)
{
    std::size_t o = 0;
    for (std::size_t i = 0; in && in[i] && o + 8 < cap; ++i) {
        unsigned char c = (unsigned char)in[i];
        if (c == '"' || c == '\\') {
            out[o++] = '\\';
            out[o++] = char(c);
        } else if (c < 0x20) {
            o += std::size_t(std::snprintf(out + o, cap - o, "\\u%04x", c));
        } else {
            out[o++] = char(c);
        }
    }
    out[o] = '\0';
}

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGBUS: return "SIGBUS";
      case SIGFPE: return "SIGFPE";
      case SIGABRT: return "SIGABRT";
    }
    return "signal";
}

/**
 * The dump itself. @p sig is 0 on the clean path. Returns false when
 * the file could not be opened. The crash path runs this on a dying
 * process — every read is best-effort by contract (see header).
 */
bool
writeDump(const char *reason, int sig)
{
    if (!gArmed.load(std::memory_order_acquire))
        return false;
    int fd = ::open(gPath, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;

    char esc[600];
    escapeJson(reason, esc, sizeof(esc));
    fdPrintf(fd, "{\n  \"reason\": \"%s\",\n", esc);
    if (sig) {
        fdPrintf(fd, "  \"signal\": {\"number\": %d, \"name\": \"%s\"},\n",
                 sig, signalName(sig));
    } else {
        fdPrintf(fd, "  \"signal\": null,\n");
    }

    unsigned long long tick = gCtx.tick ? (unsigned long long)gCtx.tick()
                                        : 0;
    unsigned long long events =
        gCtx.events ? (unsigned long long)gCtx.events() : 0;
    fdPrintf(fd,
             "  \"tick\": %llu,\n  \"events\": %llu,\n"
             "  \"shards\": %u,\n  \"rssMb\": %llu,\n",
             tick, events, gCtx.shards,
             (unsigned long long)currentRssMb());

    if (gCtx.barrierGeneration && gCtx.barrierArrived) {
        fdPrintf(fd,
                 "  \"barrier\": {\"generation\": %lu, \"arrived\": %u},\n",
                 (unsigned long)gCtx.barrierGeneration(),
                 gCtx.barrierArrived());
    } else {
        fdPrintf(fd, "  \"barrier\": null,\n");
    }

    // The profile hook takes the scheduler's profile lock — fine after
    // the workers joined, a potential deadlock on the crash path.
    if (!sig && gCtx.profile) {
        obs::EngineProfile p = gCtx.profile();
        fdPrintf(fd,
                 "  \"profile\": {\"rounds\": %llu, \"windowTicks\": %llu, "
                 "\"barrierParks\": %llu, \"barrierWaitNs\": %llu, "
                 "\"spilledPosts\": %llu, \"overflowMigrations\": %llu},\n",
                 (unsigned long long)p.rounds,
                 (unsigned long long)p.windowTicks,
                 (unsigned long long)p.barrierParks,
                 (unsigned long long)p.barrierWaitNs,
                 (unsigned long long)p.spilledPosts,
                 (unsigned long long)p.overflowMigrations);
    } else {
        fdPrintf(fd, "  \"profile\": null,\n");
    }

    fdPrintf(fd, "  \"traceTail\": [");
    const char *sep = "\n    ";
    for (const obs::Tracer::Rec &rec :
         obs::Tracer::instance().tailRecords(tailRecordCount)) {
        char name[160];
        escapeJson(rec.name ? rec.name : "", name, sizeof(name));
        fdPrintf(fd,
                 "%s{\"ts\": %llu, \"dur\": %llu, \"name\": \"%s\", "
                 "\"cat\": \"%s\", \"node\": %lu, \"shard\": %u, "
                 "\"span\": %s, \"a0\": %llu, \"a1\": %llu}",
                 sep, (unsigned long long)rec.ts,
                 (unsigned long long)rec.dur, name,
                 obs::catName(obs::Cat(rec.cat)), (unsigned long)rec.node,
                 unsigned(rec.shard), rec.span ? "true" : "false",
                 (unsigned long long)rec.a0, (unsigned long long)rec.a1);
        sep = ",\n    ";
    }
    fdPrintf(fd, "\n  ]\n}\n");
    ::close(fd);
    return true;
}

void
crashHandler(int sig)
{
    // SA_RESETHAND restored SIG_DFL on entry; one dump attempt, then
    // re-raise so the default disposition (core, nonzero exit) happens.
    static std::atomic<bool> dumping{false};
    if (!dumping.exchange(true)) {
        char reason[64];
        std::snprintf(reason, sizeof(reason), "crash: %s",
                      signalName(sig));
        writeDump(reason, sig);
    }
    ::raise(sig);
}

void
installHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crashHandler;
    sa.sa_flags = SA_RESETHAND;
    sigemptyset(&sa.sa_mask);
    for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT})
        ::sigaction(sig, &sa, nullptr);
}

std::string
substitutePid(std::string path)
{
    std::size_t at = path.find("%p");
    if (at != std::string::npos)
        path.replace(at, 2, std::to_string(::getpid()));
    return path;
}

} // namespace

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

void
FlightRecorder::arm(const std::string &path, RecorderContext ctx)
{
    std::lock_guard<std::mutex> g(gMu);
    gArmed.store(false, std::memory_order_release);
    std::string resolved = substitutePid(path);
    std::snprintf(gPath, sizeof(gPath), "%s", resolved.c_str());
    gCtx = std::move(ctx);
    std::call_once(gInstallOnce, installHandlers);
    gArmed.store(true, std::memory_order_release);
}

void
FlightRecorder::disarm()
{
    std::lock_guard<std::mutex> g(gMu);
    gArmed.store(false, std::memory_order_release);
    gCtx = RecorderContext{};
}

bool
FlightRecorder::armed() const
{
    return gArmed.load(std::memory_order_acquire);
}

bool
FlightRecorder::dumpNow(const std::string &reason)
{
    std::lock_guard<std::mutex> g(gMu);
    return writeDump(reason.c_str(), 0);
}

std::string
FlightRecorder::resolvedPath() const
{
    std::lock_guard<std::mutex> g(gMu);
    return std::string(gPath);
}

} // namespace guard
} // namespace ltp
