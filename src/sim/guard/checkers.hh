/**
 * @file
 * Runtime protocol invariant checkers (LTP_CHECK).
 *
 * The category vocabulary is the obs taxonomy (obs/categories.hh) —
 * "turn on the directory" means the same word to LTP_DEBUG, LTP_TRACE
 * and LTP_CHECK:
 *
 *   message    message conservation (injected == delivered at quiesce)
 *              and pairwise-FIFO delivery order (per (src, dst) netSeq
 *              monotonicity through the reorder buffer; routed only)
 *   link       per-link VC credit conservation at quiesce (every credit
 *              returned, no stranded queue/reorder entries) plus the
 *              on-the-fly over-return check at each credit arrival
 *   directory  directory -> cache cross-check at quiesce: every sharer
 *              bit maps to a Shared copy, every owner to an Exclusive
 *              copy, no entry left busy
 *   cache      cache -> directory cross-check at quiesce: every
 *              resident line is backed by the home's bookkeeping
 *
 * Checkers are observer-only until they fire: counters live OUTSIDE
 * StatGroup (the obs::EngineProfile precedent), so stats dumps stay
 * byte-identical whether checks are armed or not. A violated invariant
 * throws CheckFailure with full context — the run fails loudly at the
 * first corrupt state instead of three goldens later.
 *
 * Checks is a process-wide singleton armed per run by DsmSystem (the
 * obs::Tracer pattern); the disarmed fast path is one relaxed atomic
 * load. Hot-path counters are relaxed atomics: shards count injections
 * and deliveries concurrently, and the totals are only compared at
 * quiesce, after the engine joined its workers.
 */

#ifndef LTP_SIM_GUARD_CHECKERS_HH
#define LTP_SIM_GUARD_CHECKERS_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/categories.hh"
#include "sim/types.hh"

namespace ltp
{
namespace guard
{

/** A violated protocol/engine invariant; what() carries full context. */
class CheckFailure : public std::runtime_error
{
  public:
    explicit CheckFailure(const std::string &what)
        : std::runtime_error("LTP_CHECK: " + what)
    {
    }
};

/** Process-wide invariant-checker switchboard and counters. */
class Checks
{
  public:
    static Checks &instance();

    /**
     * Arm the checkers in @p mask (obs category bits) for a run over
     * @p num_nodes nodes. @p pair_fifo additionally arms the per-pair
     * delivery-order check (routed topologies only: the p2p model does
     * not stamp netSeq).
     */
    void arm(std::uint32_t mask, NodeId num_nodes, bool pair_fifo);
    void disarm();

    /** Fast path: is category @p c armed? One relaxed atomic load. */
    static bool
    on(obs::Cat c)
    {
        return mask_.load(std::memory_order_relaxed) & obs::catBit(c);
    }

    /** Hot hook: a message entered the network (any topology). */
    void
    countInject()
    {
        injected_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Hot hook: a message reached its destination sink. Also enforces
     * pairwise FIFO when armed: the routed network stamps netSeq per
     * (src, dst) from 0, so delivery order on a pair must be exactly
     * 0, 1, 2, ... — anything else means the ingress reorder buffer
     * let a message overtake. Runs on dst's shard; each pair slot has
     * a single writer, so the seq table needs no synchronization.
     */
    void countDeliver(NodeId src, NodeId dst, std::uint32_t net_seq,
                      Tick now);

    std::uint64_t
    injected() const
    {
        return injected_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    delivered() const
    {
        return delivered_.load(std::memory_order_relaxed);
    }

    /**
     * Quiesce check: with the run complete every injected message must
     * have been delivered (in-flight == 0). Throws CheckFailure naming
     * both counts otherwise.
     */
    void checkMessageConservation() const;

  private:
    Checks() = default;

    static std::atomic<std::uint32_t> mask_;

    NodeId numNodes_ = 0;
    bool pairFifo_ = false;
    std::atomic<std::uint64_t> injected_{0};
    std::atomic<std::uint64_t> delivered_{0};
    /** Next expected netSeq per (src, dst); single writer (dst shard). */
    std::vector<std::uint32_t> nextSeq_;
};

} // namespace guard
} // namespace ltp

#endif // LTP_SIM_GUARD_CHECKERS_HH
