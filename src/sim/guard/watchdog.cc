#include "sim/guard/watchdog.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace ltp
{
namespace guard
{

std::uint64_t
currentRssMb()
{
#if defined(__linux__)
    // statm field 2: resident pages. Cheap enough to poll.
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    unsigned long long size = 0, resident = 0;
    int n = std::fscanf(f, "%llu %llu", &size, &resident);
    std::fclose(f);
    if (n != 2)
        return 0;
    return resident * std::uint64_t(sysconf(_SC_PAGESIZE)) / (1024 * 1024);
#else
    return 0;
#endif
}

Watchdog::Watchdog(const GuardParams &params, WatchdogHooks hooks)
    : params_(params), hooks_(std::move(hooks))
{
    if (params_.watchdogEnabled())
        thread_ = std::thread([this] { loop(); });
}

Watchdog::~Watchdog()
{
    if (!thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> g(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

std::string
Watchdog::reason() const
{
    std::lock_guard<std::mutex> g(mu_);
    return reason_;
}

void
Watchdog::fire(const std::string &reason)
{
    {
        std::lock_guard<std::mutex> g(mu_);
        if (fired_.load(std::memory_order_relaxed))
            return;
        reason_ = reason;
    }
    fired_.store(true, std::memory_order_release);
    if (hooks_.abort)
        hooks_.abort(reason);
}

void
Watchdog::loop()
{
    using Clock = std::chrono::steady_clock;
    using Ms = std::chrono::milliseconds;

    // Poll at a quarter of the tightest armed budget, clamped to
    // [5, 100] ms: responsive enough that "within the configured
    // budget" holds with margin, cheap enough to be invisible. The
    // countable budgets (events, RSS) have no natural wall period —
    // poll fast so even a short run overshoots them by at most a few
    // milliseconds' worth of events.
    std::uint64_t tightest = UINT64_MAX;
    for (std::uint64_t b : {params_.noProgressMs, params_.barrierStallMs,
                            params_.maxWallMs}) {
        if (b)
            tightest = std::min(tightest, b);
    }
    Ms poll{tightest == UINT64_MAX
                ? 100
                : std::clamp<std::uint64_t>(tightest / 4, 5, 100)};
    if (params_.maxEvents || params_.maxRssMb)
        poll = std::min(poll, Ms{10});

    const auto start = Clock::now();
    auto now_ms = [&] {
        return std::uint64_t(std::chrono::duration_cast<Ms>(Clock::now() -
                                                            start)
                                 .count());
    };

    Tick last_tick = hooks_.tick ? hooks_.tick() : 0;
    std::uint64_t last_events = hooks_.events ? hooks_.events() : 0;
    std::uint64_t progress_since = 0;

    std::uint32_t last_gen =
        hooks_.barrierGeneration ? hooks_.barrierGeneration() : 0;
    std::uint64_t gen_since = 0;

    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        if (cv_.wait_for(lk, poll, [this] { return stop_; }))
            return;
        if (fired_.load(std::memory_order_relaxed))
            continue; // keep sleeping until the run tears us down
        lk.unlock();

        std::uint64_t elapsed = now_ms();

        if (params_.noProgressMs && hooks_.tick && hooks_.events) {
            Tick t = hooks_.tick();
            std::uint64_t ev = hooks_.events();
            if (t != last_tick || ev != last_events) {
                last_tick = t;
                last_events = ev;
                progress_since = elapsed;
            } else if (elapsed - progress_since >= params_.noProgressMs) {
                fire("no-progress: tick " + std::to_string(t) +
                     " and retired events " + std::to_string(ev) +
                     " frozen for " +
                     std::to_string(elapsed - progress_since) +
                     " ms (budget " + std::to_string(params_.noProgressMs) +
                     " ms)");
            }
        }

        if (params_.barrierStallMs && hooks_.barrierGeneration &&
            hooks_.barrierArrived) {
            std::uint32_t gen = hooks_.barrierGeneration();
            unsigned arrived = hooks_.barrierArrived();
            if (gen != last_gen || arrived == 0) {
                last_gen = gen;
                gen_since = elapsed;
            } else if (elapsed - gen_since >= params_.barrierStallMs) {
                fire("barrier stall: " + std::to_string(arrived) +
                     " shard(s) parked on the window barrier (generation " +
                     std::to_string(gen) + " frozen for " +
                     std::to_string(elapsed - gen_since) + " ms, budget " +
                     std::to_string(params_.barrierStallMs) + " ms)");
            }
        }

        if (params_.maxWallMs && elapsed >= params_.maxWallMs) {
            fire("wall-clock budget exceeded: " + std::to_string(elapsed) +
                 " ms >= " + std::to_string(params_.maxWallMs) + " ms");
        }

        if (params_.maxEvents && hooks_.events) {
            std::uint64_t ev = hooks_.events();
            if (ev >= params_.maxEvents) {
                fire("event budget exceeded: " + std::to_string(ev) +
                     " retired events >= " +
                     std::to_string(params_.maxEvents));
            }
        }

        if (params_.maxRssMb) {
            std::uint64_t rss = currentRssMb();
            if (rss >= params_.maxRssMb) {
                fire("RSS budget exceeded: " + std::to_string(rss) +
                     " MiB resident >= " + std::to_string(params_.maxRssMb) +
                     " MiB");
            }
        }

        lk.lock();
    }
}

} // namespace guard
} // namespace ltp
