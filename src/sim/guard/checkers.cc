#include "sim/guard/checkers.hh"

namespace ltp
{
namespace guard
{

std::atomic<std::uint32_t> Checks::mask_{0};

Checks &
Checks::instance()
{
    static Checks c;
    return c;
}

void
Checks::arm(std::uint32_t mask, NodeId num_nodes, bool pair_fifo)
{
    numNodes_ = num_nodes;
    pairFifo_ = pair_fifo;
    injected_.store(0, std::memory_order_relaxed);
    delivered_.store(0, std::memory_order_relaxed);
    nextSeq_.assign(pair_fifo ? std::size_t(num_nodes) * num_nodes : 0, 0);
    mask_.store(mask, std::memory_order_release);
}

void
Checks::disarm()
{
    mask_.store(0, std::memory_order_release);
    nextSeq_.clear();
    numNodes_ = 0;
    pairFifo_ = false;
}

void
Checks::countDeliver(NodeId src, NodeId dst, std::uint32_t net_seq,
                     Tick now)
{
    delivered_.fetch_add(1, std::memory_order_relaxed);
    if (!pairFifo_ || src == dst)
        return; // local bypass never enters the fabric: no netSeq
    std::uint32_t &next = nextSeq_[std::size_t(src) * numNodes_ + dst];
    if (net_seq != next) {
        throw CheckFailure(
            "pairwise FIFO violated: pair " + std::to_string(src) + "->" +
            std::to_string(dst) + " delivered netSeq " +
            std::to_string(net_seq) + " but expected " +
            std::to_string(next) + " at tick " + std::to_string(now) +
            " (the ingress reorder buffer let a message overtake)");
    }
    ++next;
}

void
Checks::checkMessageConservation() const
{
    std::uint64_t in = injected();
    std::uint64_t out = delivered();
    if (in != out) {
        throw CheckFailure(
            "message conservation violated at quiesce: injected " +
            std::to_string(in) + " != delivered " + std::to_string(out) +
            " (" + std::to_string(in > out ? in - out : out - in) +
            (in > out ? " lost in flight)" : " delivered from nowhere)"));
    }
}

} // namespace guard
} // namespace ltp
