/**
 * @file
 * Crash flight recorder (LTP_FLIGHT_RECORDER).
 *
 * Records what the engine was doing when a run died — the last-N obs
 * trace-ring records, the engine self-profile, and the window/shard
 * state — as one JSON file, on two paths:
 *
 *  - Clean abort: DsmSystem calls dumpNow() after the watchdog (or a
 *    checker) aborted the run and the engine joined its workers. The
 *    buffers are quiescent, so this dump is complete and race-free.
 *
 *  - Crash: arm() installs SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers (the
 *    last also catching assert()), so even a wild pointer or a failed
 *    assertion leaves a dump behind. This path is best-effort by
 *    contract: it runs on a dying process, reads the trace rings
 *    non-destructively while writers may still be mid-record, and then
 *    re-raises the signal so the default disposition (core dump,
 *    nonzero exit) still happens.
 *
 * The recorder is a process-wide singleton (the obs::Tracer pattern):
 * signal handlers have no argument channel, so the armed state must be
 * globally reachable. At most one armed run at a time.
 */

#ifndef LTP_SIM_GUARD_FLIGHT_RECORDER_HH
#define LTP_SIM_GUARD_FLIGHT_RECORDER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "obs/engine_profile.hh"
#include "sim/types.hh"

namespace ltp
{
namespace guard
{

/**
 * How the recorder observes the run. Every hook must be safe to call
 * from another thread while shards run (atomic reads only) — the crash
 * path calls them from a signal handler on whatever thread faulted.
 */
struct RecorderContext
{
    std::function<Tick()> tick;            //!< tickApprox()
    std::function<std::uint64_t()> events; //!< executedApprox()
    /** Barrier generation word; unset on barrier-less engines. */
    std::function<std::uint32_t()> barrierGeneration;
    /** Barrier pending-arrival count (paired with barrierGeneration). */
    std::function<unsigned()> barrierArrived;
    /** Engine self-profile; clean path only (locks internally). */
    std::function<obs::EngineProfile()> profile;
    unsigned shards = 1;
};

class FlightRecorder
{
  public:
    static FlightRecorder &instance();

    /**
     * Arm the recorder: remember @p path ("%p" expands to the pid) and
     * @p ctx, and install the crash signal handlers (first arm() only;
     * they stay installed but do nothing while disarmed).
     */
    void arm(const std::string &path, RecorderContext ctx);

    /** Disarm (end of run). Leaves any written dump file in place. */
    void disarm();

    bool armed() const;

    /**
     * Clean-path dump: write the flight-record JSON with @p reason.
     * Call after the engine joined its workers (buffers quiescent).
     * @return false when the recorder is disarmed or the file cannot
     * be written.
     */
    bool dumpNow(const std::string &reason);

    /** The path the last arm() resolved (pid substituted; tests). */
    std::string resolvedPath() const;

  private:
    FlightRecorder() = default;
};

} // namespace guard
} // namespace ltp

#endif // LTP_SIM_GUARD_FLIGHT_RECORDER_HH
