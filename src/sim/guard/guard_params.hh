/**
 * @file
 * Guard-subsystem configuration: watchdog budgets, invariant-checker
 * mask, fault-injection spec and flight-recorder path, threaded
 * SystemParams -> ExperimentSpec -> CLI exactly like obs/obs_params.hh.
 * All fields default to "off": a default-constructed GuardParams is the
 * zero-cost configuration and keeps every golden byte-identical.
 *
 * Environment variables (read by guardParamsFromEnv(), applied by
 * runExperiment() and the debug CLI):
 *
 *   LTP_CHECK=<cats>            arm invariant checkers; same category
 *                               vocabulary as LTP_DEBUG/LTP_TRACE_CATS
 *                               (obs/categories.hh): message = message
 *                               conservation + pairwise-FIFO delivery,
 *                               link = VC credit conservation, directory
 *                               and cache = directory<->cache state
 *                               cross-checks. "all" arms everything.
 *   LTP_FAULT=<spec>            deterministic fault injection (see
 *                               guard/fault.hh for the spec grammar)
 *   LTP_WATCHDOG_MS=2000        abort when neither the simulated tick
 *                               nor the retired-event count moves for
 *                               this many wall-clock ms
 *   LTP_BARRIER_STALL_MS=1000   abort when shards sit parked on the
 *                               WindowBarrier (generation frozen with
 *                               arrivals pending) for this long
 *                               (defaults to LTP_WATCHDOG_MS when that
 *                               is set and this is not)
 *   LTP_MAX_WALL_MS=60000       total wall-clock budget for the run
 *   LTP_MAX_EVENTS=1e9          retired-event budget for the run
 *   LTP_MAX_RSS_MB=4096         resident-set-size budget for the run
 *   LTP_FLIGHT_RECORDER=f.json  install crash handlers + write the
 *                               flight-record JSON here on abort/crash
 */

#ifndef LTP_SIM_GUARD_GUARD_PARAMS_HH
#define LTP_SIM_GUARD_GUARD_PARAMS_HH

#include <cstdint>
#include <string>

namespace ltp
{
namespace guard
{

struct GuardParams
{
    /** Armed invariant-checker categories (obs/categories.hh mask). */
    std::uint32_t checkMask = 0;

    /** Fault-injection spec (guard/fault.hh grammar); empty = off. */
    std::string faultSpec;

    /** No-progress wall budget in ms; 0 = detector off. */
    std::uint64_t noProgressMs = 0;
    /** Barrier-stall wall budget in ms; 0 = detector off. */
    std::uint64_t barrierStallMs = 0;
    /** Total wall-clock budget in ms; 0 = unlimited. */
    std::uint64_t maxWallMs = 0;
    /** Retired-event budget; 0 = unlimited. */
    std::uint64_t maxEvents = 0;
    /** Resident-set-size budget in MiB; 0 = unlimited. */
    std::uint64_t maxRssMb = 0;

    /** Flight-record JSON path; empty = recorder off. "%p" = pid. */
    std::string flightRecorderFile;

    bool
    watchdogEnabled() const
    {
        return noProgressMs || barrierStallMs || maxWallMs || maxEvents ||
               maxRssMb;
    }

    bool checksEnabled() const { return checkMask != 0; }
    bool faultsEnabled() const { return !faultSpec.empty(); }
    bool recorderEnabled() const { return !flightRecorderFile.empty(); }

    bool
    anyEnabled() const
    {
        return watchdogEnabled() || checksEnabled() || faultsEnabled() ||
               recorderEnabled();
    }
};

/**
 * GuardParams from the LTP_CHECK / LTP_FAULT / LTP_WATCHDOG_MS /
 * LTP_BARRIER_STALL_MS / LTP_MAX_WALL_MS / LTP_MAX_EVENTS /
 * LTP_MAX_RSS_MB / LTP_FLIGHT_RECORDER environment; defaults where
 * unset. Throws std::invalid_argument on an unparseable category list,
 * fault spec, or budget value.
 */
GuardParams guardParamsFromEnv();

} // namespace guard
} // namespace ltp

#endif // LTP_SIM_GUARD_GUARD_PARAMS_HH
