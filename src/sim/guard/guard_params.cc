#include "sim/guard/guard_params.hh"

#include <cstdlib>
#include <stdexcept>

#include "obs/categories.hh"
#include "sim/guard/fault.hh"

namespace ltp
{
namespace guard
{
namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v)
        return fallback;
    char *end = nullptr;
    unsigned long long x = std::strtoull(v, &end, 10);
    if (!end || *end != '\0' || *v == '\0' || x == 0) {
        throw std::invalid_argument(std::string(name) +
                                    ": expected a positive integer, got \"" +
                                    v + "\"");
    }
    return x;
}

} // namespace

GuardParams
guardParamsFromEnv()
{
    GuardParams g;
    if (const char *v = std::getenv("LTP_CHECK"))
        g.checkMask = obs::parseCategoryMask(v);
    if (const char *v = std::getenv("LTP_FAULT")) {
        parseFaultSpec(v); // validate now, fail loudly before the run
        g.faultSpec = v;
    }
    g.noProgressMs = envU64("LTP_WATCHDOG_MS", 0);
    g.barrierStallMs = envU64("LTP_BARRIER_STALL_MS", g.noProgressMs);
    g.maxWallMs = envU64("LTP_MAX_WALL_MS", 0);
    g.maxEvents = envU64("LTP_MAX_EVENTS", 0);
    g.maxRssMb = envU64("LTP_MAX_RSS_MB", 0);
    if (const char *v = std::getenv("LTP_FLIGHT_RECORDER"))
        g.flightRecorderFile = v;
    return g;
}

} // namespace guard
} // namespace ltp
