/**
 * @file
 * Progress watchdog + resource guards.
 *
 * A monitor thread started around SimContext::runUntil() that samples
 * only atomic mirrors (EventQueue::tickApprox()/executedApprox(), the
 * WindowBarrier generation/arrival words, /proc/self/statm) — never the
 * engine's hot members — so it is data-race-free under TSan and costs
 * the simulation nothing. It detects:
 *
 *   - no-progress: simulated tick AND retired-event count both frozen
 *     past the wall budget (a livelock or wedge anywhere),
 *   - barrier stall: the WindowBarrier's generation frozen with
 *     arrivals pending past the stall budget (the signature of a shard
 *     that stopped arriving),
 *   - budget violations: retired events, wall-clock, or resident-set
 *     size past their caps (runaway runs).
 *
 * On the first violation it calls the abort hook exactly once — which
 * routes to SimContext::requestAbort(), stopping every shard cleanly
 * within one event — and records the structured reason for
 * RunResult::outcome. The run never hangs and never OOMs the host; a
 * sweep driver sees `aborted(<reason>)` for this run and moves on.
 */

#ifndef LTP_SIM_GUARD_WATCHDOG_HH
#define LTP_SIM_GUARD_WATCHDOG_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "sim/guard/guard_params.hh"
#include "sim/types.hh"

namespace ltp
{
namespace guard
{

/** How the watchdog observes the engine. All hooks must be safe to
 *  call from the monitor thread while shards run (atomic reads only). */
struct WatchdogHooks
{
    std::function<Tick()> tick;                 //!< tickApprox()
    std::function<std::uint64_t()> events;      //!< executedApprox()
    /** Barrier generation word; unset on barrier-less engines. */
    std::function<std::uint32_t()> barrierGeneration;
    /** Barrier pending-arrival count (paired with barrierGeneration). */
    std::function<unsigned()> barrierArrived;
    /** Abort the run with a structured reason (requestAbort). */
    std::function<void(const std::string &)> abort;
};

/** Current resident-set size in MiB (0 when unavailable). */
std::uint64_t currentRssMb();

class Watchdog
{
  public:
    /** Start monitoring immediately. @p params decides which detectors
     *  arm; a params set with watchdogEnabled() == false starts no
     *  thread at all. */
    Watchdog(const GuardParams &params, WatchdogHooks hooks);

    /** Stop and join the monitor thread. */
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** True once a detector fired (the run was asked to abort). */
    bool fired() const { return fired_.load(std::memory_order_acquire); }

    /** The firing detector's structured reason (empty before firing). */
    std::string reason() const;

  private:
    void loop();
    void fire(const std::string &reason);

    GuardParams params_;
    WatchdogHooks hooks_;

    std::atomic<bool> fired_{false};
    mutable std::mutex mu_;
    std::string reason_;

    // Shutdown handshake: the destructor flips stop_ and signals cv_ so
    // the monitor wakes from its poll sleep immediately.
    bool stop_ = false;
    std::condition_variable cv_;
    std::thread thread_;
};

} // namespace guard
} // namespace ltp

#endif // LTP_SIM_GUARD_WATCHDOG_HH
