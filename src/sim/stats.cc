#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>

namespace ltp
{

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Average::reset()
{
    sum_ = 0.0;
    count_ = 0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(double bucket_width, std::size_t n_buckets)
    : width_(bucket_width), buckets_(n_buckets, 0)
{
}

void
Histogram::sample(double v)
{
    ++total_;
    sum_ += v;
    auto idx = static_cast<std::size_t>(v / width_);
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Average &
StatGroup::average(const std::string &name)
{
    return averages_[name];
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
StatGroup::averageMean(const std::string &name) const
{
    auto it = averages_.find(name);
    return it == averages_.end() ? 0.0 : it->second.mean();
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.count(name) != 0;
}

bool
StatGroup::hasAverage(const std::string &name) const
{
    return averages_.count(name) != 0;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, a] : averages_) {
        os << name << " mean=" << std::fixed << std::setprecision(2)
           << a.mean() << " count=" << a.count() << " min=" << a.min()
           << " max=" << a.max() << "\n";
    }
}

void
StatGroup::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, a] : averages_)
        a.reset();
}

} // namespace ltp
