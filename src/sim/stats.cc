#include "sim/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>

namespace ltp
{

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Average::merge(const Average &o)
{
    if (o.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = o.min_;
        max_ = o.max_;
    } else {
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }
    sum_ += o.sum_;
    count_ += o.count_;
}

void
Average::reset()
{
    sum_ = 0.0;
    count_ = 0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(double bucket_width, std::size_t n_buckets)
    : width_(bucket_width), buckets_(n_buckets, 0)
{
    assert(bucket_width > 0.0 && n_buckets > 0);
}

void
Histogram::sample(double v)
{
    ++total_;
    sum_ += v;
    // Compare in double before converting: casting a negative or
    // out-of-range value to size_t is undefined behavior. Negative (and
    // NaN) samples clamp into bucket 0.
    double idx = v / width_;
    if (idx >= double(buckets_.size()))
        ++overflow_;
    else if (idx > 0.0)
        ++buckets_[static_cast<std::size_t>(idx)];
    else
        ++buckets_[0];
}

void
Histogram::merge(const Histogram &o)
{
    assert(width_ == o.width_ && buckets_.size() == o.buckets_.size() &&
           "merging histograms of different shapes");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += o.buckets_[i];
    overflow_ += o.overflow_;
    total_ += o.total_;
    sum_ += o.sum_;
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    // Nearest-rank: the smallest bucket whose cumulative count covers
    // sample ceil(p * N), clamped to [1, N].
    auto target = static_cast<std::uint64_t>(std::ceil(p * double(total_)));
    target = std::max<std::uint64_t>(1, std::min(target, total_));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cum += buckets_[i];
        if (cum >= target)
            return width_ * double(i + 1);
    }
    return width_ * double(buckets_.size());
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    total_ = 0;
    sum_ = 0.0;
}

StatId
StatGroup::counterId(const std::string &name)
{
    return counters_.intern(name);
}

StatId
StatGroup::averageId(const std::string &name)
{
    return averages_.intern(name);
}

Histogram &
StatGroup::histogram(const std::string &name, double bucket_width,
                     std::size_t n_buckets)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(name),
                          std::forward_as_tuple(bucket_width, n_buckets))
                 .first;
    }
    return it->second;
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    const Counter *c = counters_.find(name);
    return c ? c->value() : 0;
}

double
StatGroup::averageMean(const std::string &name) const
{
    const Average *a = averages_.find(name);
    return a ? a->mean() : 0.0;
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.ids.count(name) != 0;
}

bool
StatGroup::hasAverage(const std::string &name) const
{
    return averages_.ids.count(name) != 0;
}

const Histogram *
StatGroup::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

bool
StatGroup::hasHistogram(const std::string &name) const
{
    return histograms_.count(name) != 0;
}

std::uint64_t
StatGroup::maxCounterValueWithPrefix(const std::string &prefix) const
{
    std::uint64_t best = 0;
    for (auto it = counters_.ids.lower_bound(prefix);
         it != counters_.ids.end() && it->first.compare(0, prefix.size(),
                                                        prefix) == 0;
         ++it)
        best = std::max(best, counters_.at(it->second).value());
    return best;
}

std::uint64_t
StatGroup::sumCountersWithPrefix(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (auto it = counters_.ids.lower_bound(prefix);
         it != counters_.ids.end() && it->first.compare(0, prefix.size(),
                                                        prefix) == 0;
         ++it)
        sum += counters_.at(it->second).value();
    return sum;
}

void
StatGroup::mergeFrom(const StatGroup &o)
{
    for (const auto &[name, id] : o.counters_.ids)
        counterAt(counterId(name)).inc(o.counters_.at(id).value());
    for (const auto &[name, id] : o.averages_.ids)
        averageAt(averageId(name)).merge(o.averages_.at(id));
    for (const auto &[name, h] : o.histograms_) {
        histogram(name, h.bucketWidth(), h.numBuckets()).merge(h);
    }
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, id] : counters_.ids)
        os << name << " " << counters_.at(id).value() << "\n";
    for (const auto &[name, id] : averages_.ids) {
        const Average &a = averages_.at(id);
        os << name << " mean=" << std::fixed << std::setprecision(2)
           << a.mean() << " count=" << a.count() << " min=" << a.min()
           << " max=" << a.max() << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        os << name << " hist mean=" << std::fixed << std::setprecision(2)
           << h.mean() << " count=" << h.totalSamples()
           << " p50=" << h.percentile(0.5) << " p99=" << h.percentile(0.99)
           << " overflow=" << h.overflow() << "\n";
    }
}

StatSnapshot
StatSnapshot::delta(const StatSnapshot &older) const
{
    StatSnapshot d;
    for (const auto &[name, value] : counters) {
        auto it = older.counters.find(name);
        d.counters[name] =
            value - (it == older.counters.end() ? 0 : it->second);
    }
    for (const auto &[name, avg] : averages) {
        auto it = older.averages.find(name);
        AvgState base =
            it == older.averages.end() ? AvgState{} : it->second;
        d.averages[name] = AvgState{avg.sum - base.sum,
                                    avg.count - base.count};
    }
    return d;
}

StatSnapshot
StatGroup::snapshot() const
{
    StatSnapshot snap;
    for (const auto &[name, id] : counters_.ids)
        snap.counters[name] = counters_.at(id).value();
    for (const auto &[name, id] : averages_.ids) {
        const Average &a = averages_.at(id);
        snap.averages[name] = StatSnapshot::AvgState{a.sum(), a.count()};
    }
    return snap;
}

void
StatGroup::resetAll()
{
    for (const auto &[name, id] : counters_.ids)
        counters_.at(id).reset();
    for (const auto &[name, id] : averages_.ids)
        averages_.at(id).reset();
    for (auto &[name, h] : histograms_)
        h.reset();
}

} // namespace ltp
