/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * We use SplitMix64: tiny, fast, full-period, and — unlike std::mt19937 —
 * guaranteed to produce the same stream on every platform, which keeps
 * simulation results reproducible across compilers.
 *
 * Two idioms live here:
 *
 *  - Rng: a seeded mutable stream. Sanctioned only for state that is
 *    owned by exactly one sequential consumer (a kernel's per-node
 *    ThreadCtx, a standalone bench driver). A stream whose draws
 *    interleave across nodes makes the consumption order part of the
 *    result — the exact coupling that forces a serial engine.
 *
 *  - counterHash(): a *pure* function of (seed, stream coordinates...,
 *    counter). This is the shared-state-free replacement: every call
 *    site derives its own independent stream from stable model
 *    coordinates (node ids, sequence numbers), so any shard can evaluate
 *    any draw at any time and the result is still bit-identical for
 *    every simThreads value. Oblivious routing's per-(src, dst, seq,
 *    hop) coin flips and guard fault injection (sim/guard/fault.cc) both
 *    use it. The ltp-no-shared-rng lint (tools/ltp-tidy/) enforces the
 *    boundary.
 */

#ifndef LTP_SIM_RNG_HH
#define LTP_SIM_RNG_HH

#include <cstdint>

namespace ltp
{

/** The SplitMix64 output mix as a pure function (no mutable state). */
constexpr std::uint64_t
splitMix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Counter-based RNG: one uniform 64-bit draw as a pure hash of a seed
 * and the stream coordinates that identify the draw (site ids, sequence
 * numbers, hop positions, ...). No shared state, no consumption order —
 * the draw for a given coordinate tuple is the same no matter which
 * shard evaluates it, or when.
 */
template <typename... Rest>
constexpr std::uint64_t
counterHash(std::uint64_t head, Rest... rest)
{
    if constexpr (sizeof...(rest) == 0)
        return splitMix64(head);
    else
        return splitMix64(head ^ counterHash(std::uint64_t(rest)...));
}

/** SplitMix64 deterministic PRNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed)
    {
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = splitMix64(state_);
        state_ += 0x9e3779b97f4a7c15ull;
        return z;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. @pre lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
};

} // namespace ltp

#endif // LTP_SIM_RNG_HH
