/**
 * @file
 * Deterministic pseudo-random number generation for workload kernels.
 *
 * We use SplitMix64: tiny, fast, full-period, and — unlike std::mt19937 —
 * guaranteed to produce the same stream on every platform, which keeps
 * simulation results reproducible across compilers.
 */

#ifndef LTP_SIM_RNG_HH
#define LTP_SIM_RNG_HH

#include <cstdint>

namespace ltp
{

/** SplitMix64 deterministic PRNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed)
    {
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. @pre lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state_;
};

} // namespace ltp

#endif // LTP_SIM_RNG_HH
