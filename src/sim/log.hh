/**
 * @file
 * Minimal leveled debug logging.
 *
 * Logging is off by default and enabled per category via the environment
 * variable LTP_DEBUG (comma-separated category names, or "all"). Debug
 * output never affects simulated behaviour.
 *
 * Category names are the observability taxonomy of obs/categories.hh
 * (message, link, directory, cache, predictor, engine): the same token
 * selects a subsystem's debug lines here and its trace events in
 * LTP_TRACE_CATS, so LTP_DEBUG=directory and LTP_TRACE_CATS=directory
 * talk about the same thing. This switchboard intentionally accepts any
 * string (tests enable ad-hoc categories); call sites in src/ stick to
 * the taxonomy.
 */

#ifndef LTP_SIM_LOG_HH
#define LTP_SIM_LOG_HH

#include <iostream>
#include <sstream>
#include <string>

#include "sim/types.hh"

namespace ltp
{

/** Global debug-category switchboard. */
class Debug
{
  public:
    /**
     * True when at least one category is enabled. Hot-path guard: the
     * common all-disabled case is one branch on a cached flag, with no
     * string construction or set lookup.
     */
    static bool anyEnabled() { return anyEnabled_; }

    /** True if category @p cat was enabled via LTP_DEBUG. */
    static bool enabled(const std::string &cat);

    /** Force-enable a category programmatically (used by tests). */
    static void enable(const std::string &cat);
    /** Disable all categories. */
    static void clear();

  private:
    static bool anyEnabled_;
};

/** Emit one debug line if @p cat is enabled. */
void debugLog(const std::string &cat, Tick now, const std::string &msg);

} // namespace ltp

/**
 * Convenience macro: DPRINTF("Proto", queue.now(), "got " << msg).
 * The stream expression is only evaluated when the category is enabled.
 */
#define LTP_DPRINTF(cat, now, expr)                                         \
    do {                                                                    \
        if (::ltp::Debug::anyEnabled() && ::ltp::Debug::enabled(cat)) {     \
            std::ostringstream oss_;                                        \
            oss_ << expr;                                                   \
            ::ltp::debugLog(cat, now, oss_.str());                          \
        }                                                                   \
    } while (0)

#endif // LTP_SIM_LOG_HH
