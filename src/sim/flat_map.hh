/**
 * @file
 * FlatMap / FlatSet: open-addressing hash containers for the simulator's
 * hot lookup tables (directory entries, cache tags, predictor state,
 * sparse memory words).
 *
 * `std::unordered_map` pays one heap node per element and a pointer
 * chase per lookup; the simulator's hot tables are keyed by dense
 * integer-like keys (Addr, NodeId) and live on every simulated memory
 * access. FlatMap stores key/value slots contiguously, probes linearly
 * from a mixed hash with power-of-two capacity, and deletes by backward
 * shift (no tombstones), so lookups touch one or two cache lines and
 * the load factor never degrades.
 *
 * Usage rules (see src/sim/README.md):
 *  - K must be trivially hashable via FlatHash (integral/enum keys out
 *    of the box; specialize FlatHash for anything else).
 *  - V must be move-constructible; operator[] additionally requires
 *    default-constructible.
 *  - Any insert (operator[], insert) may rehash and any erase may
 *    backward-shift: BOTH invalidate every pointer/reference/iterator
 *    into the map. Never hold a reference across a mutation. (This is
 *    stricter than std::unordered_map, whose references survive rehash —
 *    audit before migrating a table.)
 *  - Iteration order is deterministic for a given insertion/erasure
 *    history but is NOT sorted and changes across rehashes: never iterate
 *    where ordering is observable (use std::map/std::set there).
 */

#ifndef LTP_SIM_FLAT_MAP_HH
#define LTP_SIM_FLAT_MAP_HH

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ltp
{

/**
 * Default hash: an invertible 64-bit finalizer (splitmix64). Integer
 * keys are often block-aligned addresses whose low bits are all zero;
 * the mix spreads them over the whole probe space.
 */
template <typename K, typename Enable = void>
struct FlatHash;

template <typename K>
struct FlatHash<K, std::enable_if_t<std::is_integral_v<K> ||
                                    std::is_enum_v<K>>>
{
    std::size_t
    operator()(K k) const
    {
        std::uint64_t x = std::uint64_t(k);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return std::size_t(x);
    }
};

/** Open-addressing hash map; see the file header for the usage rules. */
template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap
{
    struct Slot
    {
        K key;
        [[no_unique_address]] V val;
    };
    // The slot arena comes from operator new[], which only guarantees
    // the default allocation alignment; over-aligned value types would
    // get misaligned placement-new storage.
    static_assert(alignof(K) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__ &&
                      alignof(V) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "FlatMap does not support over-aligned key/value types");

  public:
    FlatMap() = default;

    FlatMap(FlatMap &&o) noexcept { swap(o); }

    FlatMap &
    operator=(FlatMap &&o) noexcept
    {
        if (this != &o) {
            destroyAll();
            capacity_ = mask_ = size_ = 0;
            raw_.reset();
            used_.reset();
            swap(o);
        }
        return *this;
    }

    FlatMap(const FlatMap &o) { copyFrom(o); }

    FlatMap &
    operator=(const FlatMap &o)
    {
        if (this != &o) {
            destroyAll();
            capacity_ = mask_ = size_ = 0;
            raw_.reset();
            used_.reset();
            copyFrom(o);
        }
        return *this;
    }

    ~FlatMap() { destroyAll(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return capacity_; }

    /** Pointer to the mapped value, or nullptr when absent. */
    V *
    find(const K &key)
    {
        std::size_t idx;
        return probe(key, idx) ? &slotAt(idx).val : nullptr;
    }

    const V *
    find(const K &key) const
    {
        std::size_t idx;
        return probe(key, idx) ? &slotAt(idx).val : nullptr;
    }

    bool contains(const K &key) const { return find(key) != nullptr; }
    std::size_t count(const K &key) const { return contains(key) ? 1 : 0; }

    /** Get (default-constructing on demand) the value for @p key. */
    V &
    operator[](const K &key)
    {
        std::size_t idx;
        if (capacity_ && probe(key, idx))
            return slotAt(idx).val; // hit: no rehash, references stay valid
        reserveForInsert(key, idx);
        ::new (&slotAt(idx)) Slot{key, V()};
        used_[idx] = 1;
        ++size_;
        return slotAt(idx).val;
    }

    /**
     * Insert (key, value); overwrites an existing mapping.
     * @return reference to the stored value.
     */
    template <typename VV>
    V &
    insert(const K &key, VV &&value)
    {
        std::size_t idx;
        if (capacity_ && probe(key, idx)) {
            slotAt(idx).val = std::forward<VV>(value);
        } else {
            reserveForInsert(key, idx);
            ::new (&slotAt(idx)) Slot{key, V(std::forward<VV>(value))};
            used_[idx] = 1;
            ++size_;
        }
        return slotAt(idx).val;
    }

    /** Remove @p key. @return true when it was present. */
    bool
    erase(const K &key)
    {
        std::size_t hole;
        if (!probe(key, hole))
            return false;
        slotAt(hole).~Slot();
        used_[hole] = 0;
        --size_;

        // Backward shift: walk the collision run after the hole and pull
        // back every slot whose ideal bucket lies at or before the hole
        // (cyclically), so probes never hit a gap mid-run.
        std::size_t next = (hole + 1) & mask_;
        while (used_[next]) {
            std::size_t ideal = bucketFor(slotAt(next).key);
            std::size_t curDist = (next - ideal) & mask_;
            std::size_t newDist = (hole - ideal) & mask_;
            if (newDist <= curDist) {
                relocate(next, hole);
                hole = next;
            }
            next = (next + 1) & mask_;
        }
        return true;
    }

    /** Drop every element; keeps the allocated capacity. */
    void
    clear()
    {
        destroyAll();
        if (capacity_)
            std::memset(used_.get(), 0, capacity_);
        size_ = 0;
    }

    /** Ensure capacity for @p n elements without rehashing on the way. */
    void
    reserve(std::size_t n)
    {
        std::size_t want = 16;
        while (want * maxLoadNum < n * maxLoadDen)
            want <<= 1;
        if (want > capacity_)
            rehash(want);
    }

    // -- iteration (order: bucket order; see usage rules) ----------------

    template <bool Const>
    class Iter
    {
        using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
        using Ref = std::pair<const K &,
                              std::conditional_t<Const, const V &, V &>>;

      public:
        Iter(MapT *m, std::size_t idx) : m_(m), idx_(idx) { skip(); }

        Ref operator*() const
        {
            auto &s = m_->slotAt(idx_);
            return Ref{s.key, s.val};
        }

        Iter &
        operator++()
        {
            ++idx_;
            skip();
            return *this;
        }

        bool operator==(const Iter &o) const { return idx_ == o.idx_; }
        bool operator!=(const Iter &o) const { return idx_ != o.idx_; }

      private:
        void
        skip()
        {
            while (idx_ < m_->capacity_ && !m_->used_[idx_])
                ++idx_;
        }

        MapT *m_;
        std::size_t idx_;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, capacity_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, capacity_); }

  private:
    /** Max load factor 7/8: probe runs stay short, memory stays tight. */
    static constexpr std::size_t maxLoadNum = 7;
    static constexpr std::size_t maxLoadDen = 8;

    Slot &
    slotAt(std::size_t idx)
    {
        return reinterpret_cast<Slot *>(raw_.get())[idx];
    }

    const Slot &
    slotAt(std::size_t idx) const
    {
        return reinterpret_cast<const Slot *>(raw_.get())[idx];
    }

    std::size_t bucketFor(const K &key) const
    {
        return Hash{}(key)&mask_;
    }

    /**
     * Find @p key's slot. @return true when found (idx = its bucket);
     * false when absent (idx = the empty bucket that ends its run —
     * i.e., the insertion point). Requires capacity_ > 0.
     */
    bool
    probe(const K &key, std::size_t &idx) const
    {
        if (capacity_ == 0) {
            idx = 0;
            return false;
        }
        std::size_t i = bucketFor(key);
        while (used_[i]) {
            if (slotAt(i).key == key) {
                idx = i;
                return true;
            }
            i = (i + 1) & mask_;
        }
        idx = i;
        return false;
    }

    /**
     * Prepare to insert @p key (known absent): grow if the insert would
     * exceed the max load factor, and (re)compute its insertion point.
     */
    void
    reserveForInsert(const K &key, std::size_t &idx)
    {
        if ((size_ + 1) * maxLoadDen > capacity_ * maxLoadNum) {
            rehash(capacity_ ? capacity_ * 2 : 16);
            probe(key, idx);
        }
    }

    void
    rehash(std::size_t new_cap)
    {
        assert((new_cap & (new_cap - 1)) == 0);
        auto old_raw = std::move(raw_);
        auto old_used = std::move(used_);
        std::size_t old_cap = capacity_;

        raw_ = std::make_unique<std::byte[]>(new_cap * sizeof(Slot));
        used_ = std::make_unique<std::uint8_t[]>(new_cap);
        std::memset(used_.get(), 0, new_cap);
        capacity_ = new_cap;
        mask_ = new_cap - 1;

        Slot *old_slots = reinterpret_cast<Slot *>(old_raw.get());
        for (std::size_t i = 0; i < old_cap; ++i) {
            if (!old_used[i])
                continue;
            Slot &s = old_slots[i];
            std::size_t idx = bucketFor(s.key);
            while (used_[idx])
                idx = (idx + 1) & mask_;
            ::new (&slotAt(idx)) Slot(std::move(s));
            used_[idx] = 1;
            s.~Slot();
        }
    }

    /** Move the slot at @p from into the empty bucket @p to. */
    void
    relocate(std::size_t from, std::size_t to)
    {
        ::new (&slotAt(to)) Slot(std::move(slotAt(from)));
        slotAt(from).~Slot();
        used_[to] = 1;
        used_[from] = 0;
    }

    void
    destroyAll()
    {
        if constexpr (!std::is_trivially_destructible_v<Slot>) {
            for (std::size_t i = 0; i < capacity_; ++i) {
                if (used_[i])
                    slotAt(i).~Slot();
            }
        }
    }

    void
    swap(FlatMap &o)
    {
        std::swap(capacity_, o.capacity_);
        std::swap(mask_, o.mask_);
        std::swap(size_, o.size_);
        std::swap(raw_, o.raw_);
        std::swap(used_, o.used_);
    }

    void
    copyFrom(const FlatMap &o)
    {
        reserve(o.size());
        for (const auto &[k, v] : o)
            insert(k, v);
    }

    std::size_t capacity_ = 0;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    std::unique_ptr<std::byte[]> raw_;
    std::unique_ptr<std::uint8_t[]> used_;
};

/** Open-addressing hash set: FlatMap with an empty mapped type. */
template <typename K, typename Hash = FlatHash<K>>
class FlatSet
{
    struct Unit
    {
    };

  public:
    std::size_t size() const { return m_.size(); }
    bool empty() const { return m_.empty(); }
    bool contains(const K &key) const { return m_.contains(key); }
    std::size_t count(const K &key) const { return m_.count(key); }

    /** @return true when @p key was newly inserted. */
    bool
    insert(const K &key)
    {
        std::size_t before = m_.size();
        m_[key];
        return m_.size() != before;
    }

    bool erase(const K &key) { return m_.erase(key); }
    void clear() { m_.clear(); }
    void reserve(std::size_t n) { m_.reserve(n); }

  private:
    FlatMap<K, Unit, Hash> m_;
};

} // namespace ltp

#endif // LTP_SIM_FLAT_MAP_HH
