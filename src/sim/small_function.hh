/**
 * @file
 * SmallFunction: a move-only `void()` callable with small-buffer
 * optimization, the event queue's callback representation.
 *
 * `std::function` heap-allocates any capture list larger than two
 * pointers, which put one malloc/free pair on every scheduled event.
 * SmallFunction stores callables up to `inlineSize` bytes directly in
 * the object (all of the simulator's hot-path lambdas fit) and only
 * falls back to the heap for oversized or throwing-move callables, so
 * the steady-state schedule/execute cycle performs zero allocations.
 *
 * Differences from std::function, by design:
 *  - move-only (a copyable wrapper would force copyable captures);
 *  - no target-type introspection;
 *  - invoking an empty SmallFunction is undefined (asserts in debug).
 */

#ifndef LTP_SIM_SMALL_FUNCTION_HH
#define LTP_SIM_SMALL_FUNCTION_HH

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ltp
{

/** Move-only void() callable with inline storage for small captures. */
class SmallFunction
{
  public:
    /**
     * Sized for the largest hot-path lambda: the cache controller's
     * access-completion captures (this + Addr + Pc + flags + a 32-byte
     * std::function + Tick = 72). Network events got far smaller when
     * messages started traveling as 8-byte pool handles
     * (net/message_pool.hh), which is what let this drop from 96 and
     * with it every event slot and mailbox ring item.
     */
    static constexpr std::size_t inlineSize = 72;

    SmallFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    SmallFunction(F &&f) // NOLINT: implicit, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            ops_ = &heapOps<Fn>;
        }
    }

    SmallFunction(SmallFunction &&o) noexcept { moveFrom(o); }

    SmallFunction &
    operator=(SmallFunction &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { reset(); }

    void
    operator()()
    {
        assert(ops_ && "invoking an empty SmallFunction");
        ops_->invoke(buf_);
    }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Destroy the held callable (no-op when empty). */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    /** Manually-managed vtable: one static instance per callable type. */
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Relocate from @p src to @p dst, leaving @p src destroyed. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *storage);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineSize &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *s) { (*static_cast<Fn *>(s))(); },
        [](void *src, void *dst) noexcept {
            Fn *f = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *s) { static_cast<Fn *>(s)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *s) { (**static_cast<Fn **>(s))(); },
        [](void *src, void *dst) noexcept {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        },
        [](void *s) { delete *static_cast<Fn **>(s); },
    };

    void
    moveFrom(SmallFunction &o) noexcept
    {
        if (o.ops_) {
            o.ops_->relocate(o.buf_, buf_);
            ops_ = o.ops_;
            o.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[inlineSize];
    const Ops *ops_ = nullptr;
};

} // namespace ltp

#endif // LTP_SIM_SMALL_FUNCTION_HH
