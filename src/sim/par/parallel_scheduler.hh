/**
 * @file
 * ParallelScheduler: node-partitioned, conservative, bit-deterministic
 * parallel discrete-event engine.
 *
 * Nodes are split into S contiguous partitions, each owning a private
 * EventQueue and StatGroup. Intra-shard events execute exactly as in
 * the sequential engine; cross-shard interactions — which only occur
 * through SimContext::post(), every one of them at least the lookahead
 * window L beyond its cause — are exchanged at window barriers through
 * lock-free SPSC mailbox lanes.
 *
 * One round (S > 1, the staged path):
 *
 *   1. apply inbox    every shard drains the lanes addressed to it,
 *                     sorted by (deliveryTick, channel): the canonical
 *                     merge order. Each channel is fed by exactly one
 *                     shard, so the sort is a total, thread-timing- and
 *                     shard-count-independent order.
 *   2. plan window    barrier; the last arriver computes the global
 *                     minimum pending tick W and the window end
 *                     min(W + L - 1, limit), or stops the run.
 *   3. execute        every shard runs its queue through the window.
 *                     Lookahead guarantees any post lands at >= W + L,
 *                     i.e. strictly beyond the window, so no shard can
 *                     see an effect before its cause.
 *   4. publish        barrier; lane writes become visible for step 1.
 *
 * The direct-dispatch fast path (S == 1): with a single shard there is
 * nothing to exchange, so post() skips the mailbox entirely and lands
 * in the owner queue through EventQueue::scheduleAtChannel(), whose
 * sorted same-tick buckets realize the identical (deliveryTick,
 * channel) order without staging, sorting, or barrier traffic. The
 * window loop survives only as a phase clock (EventQueue::beginRound()):
 * it derives the same round boundaries the staged engine would, which
 * pins where one round's posts sort relative to the next round's local
 * events — byte-identical output, none of the staging tax.
 *
 * Determinism: each shard's execution is a function of its queue
 * content only; queue content is the deterministic intra-shard schedule
 * plus inbox applications in canonical order. Per-channel post order is
 * the feeding shard's deterministic execution order. Nothing observes
 * wall-clock interleaving, so S = 1 (fast path), S = 2 and S = 8
 * produce identical per-node event sequences — and identical (merged)
 * statistics.
 */

#ifndef LTP_SIM_PAR_PARALLEL_SCHEDULER_HH
#define LTP_SIM_PAR_PARALLEL_SCHEDULER_HH

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/engine_profile.hh"
#include "sim/par/sim_context.hh"
#include "sim/par/spsc_ring.hh"
#include "sim/par/window_barrier.hh"

namespace ltp
{

namespace obs
{
class MetricsSampler;
} // namespace obs

/** The multi-shard SimContext (see file comment). */
class ParallelScheduler final : public SimContext
{
  public:
    /**
     * @param shards   partition/thread count. One is valid — and is how
     *                 simThreads=1 runs on parallel-safe configurations:
     *                 the same canonical (tick, channel) semantics on
     *                 the calling thread through the direct-dispatch
     *                 fast path, so results match every other shard
     *                 count bit for bit.
     * @param num_nodes nodes to spread over the partitions.
     * @param window   conservative lookahead L in ticks (>= 1); every
     *                 post() must land at least this far after its
     *                 posting event.
     */
    ParallelScheduler(unsigned shards, NodeId num_nodes, Tick window);
    ~ParallelScheduler() override;

    unsigned numShards() const override
    {
        return unsigned(parts_.size());
    }
    bool canonical() const override { return true; }
    unsigned shardOf(NodeId node) const override { return shard_[node]; }
    EventQueue &queueFor(NodeId node) override
    {
        return parts_[shard_[node]]->eq;
    }
    StatGroup &shardStats(unsigned shard) override
    {
        return parts_[shard]->stats;
    }

    void post(NodeId dst, Tick when, std::uint64_t chan,
              EventQueue::Callback cb) override;

    Tick runUntil(Tick limit) override;
    Tick now() const override;
    std::uint64_t eventsExecuted() const override;

    /**
     * Stop the engine from any thread: raises every shard queue's abort
     * flag, sets the stop flag, and tears down the window barrier so
     * parked shards wake and exit their worker loops instead of waiting
     * for a round that will never complete.
     */
    void requestAbort(const std::string &reason) override;
    std::string abortReason() const override;

    Tick tickApprox() const override;
    std::uint64_t executedApprox() const override;

    /** The round barrier (watchdog stall probes); staged path only. */
    const WindowBarrier &barrier() const { return barrier_; }

    /** Aggregate view over the per-shard groups (rebuilt per call). */
    StatGroup &stats() override;

    Tick window() const { return window_; }

    /** True when posts dispatch straight into the owner queue (S == 1). */
    bool directDispatch() const { return parts_.size() == 1; }

    /**
     * Attach (or detach, nullptr) a metrics sampler. The staged engine
     * samples from planWindow()'s serial completion phase — every shard
     * parked at the barrier, merged statistics quiescent — so sampling
     * perturbs nothing and quantizes to window boundaries. The sampler
     * must outlive the run. (The S == 1 fast path has no barrier; the
     * harness samples it through EventQueue::armTickWatcher instead.)
     */
    void setMetricsSampler(obs::MetricsSampler *sampler)
    {
        sampler_ = sampler;
    }

    /** Host-side execution profile of the run so far (all shards). */
    obs::EngineProfile profile() const;

  private:
    /** One buffered cross-shard event. */
    struct PostItem
    {
        Tick when = 0;
        std::uint64_t chan = 0;
        EventQueue::Callback cb;
    };

    /** Mailbox lane capacity (items) before spilling to the vector. */
    static constexpr std::size_t laneCapacity = 256;

    /**
     * One single-writer mailbox lane. The ring is the wait-free common
     * case; `spill` absorbs overflow of a message-storm window (written
     * by the producer, read only at the barrier with both sides
     * quiescent). Once a round spills, it keeps spilling so ring-then-
     * spill drain order stays FIFO.
     */
    struct Lane
    {
        SpscRing<PostItem, laneCapacity> ring;
        std::vector<PostItem> spill;
        std::uint64_t spilled = 0; //!< lifetime spill count (profiling)

        /**
         * @param force_spill bypass the ring (the spill-storm fault).
         * @return true when the item spilled past the ring.
         */
        bool
        push(PostItem &&item, bool force_spill = false)
        {
            if (force_spill || !spill.empty() ||
                !ring.tryPush(std::move(item))) {
                spill.push_back(std::move(item));
                ++spilled;
                return true;
            }
            return false;
        }
    };

    struct Partition
    {
        EventQueue eq;
        StatGroup stats;
        /** Outgoing mail, one lane per destination shard. */
        std::vector<Lane> out;
        /** Reused merge buffer for applyInbox (avoids per-round churn). */
        std::vector<PostItem> inbox;
        /** Earliest pending tick, published for window planning. */
        std::atomic<Tick> nextTick{tickNever};
        /** Wall ns this shard's thread spent in barrier waits. Written
         *  only by the owning thread; read after the run joins. */
        std::uint64_t barrierWaitNs = 0;
    };

    void workerLoop(unsigned shard, Tick limit);
    void applyInbox(unsigned shard);
    void planWindow(Tick limit);
    /** The S == 1 engine: same windows and order, no staging. */
    Tick runDirect(Tick limit);

    std::vector<std::unique_ptr<Partition>> parts_;
    std::vector<unsigned> shard_; //!< node -> shard
    Tick window_;

    WindowBarrier barrier_;
    std::atomic<Tick> windowStart_{0};
    std::atomic<Tick> windowEnd_{0};
    std::atomic<bool> stop_{false};

    /** Round accounting; written only in planWindow()'s serial phase. */
    std::uint64_t rounds_ = 0;
    std::uint64_t windowTicksSum_ = 0;

    obs::MetricsSampler *sampler_ = nullptr;

    std::mutex errorMu_;
    std::exception_ptr error_;

    mutable std::mutex abortMu_;
    std::string abortReason_;

    StatGroup merged_;
};

} // namespace ltp

#endif // LTP_SIM_PAR_PARALLEL_SCHEDULER_HH
