#include "sim/par/parallel_scheduler.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/guard/fault.hh"

namespace ltp
{

namespace
{

/**
 * Which shard the current OS thread executes. Shard threads are pinned
 * to one partition for a whole run, so post() can find its outgoing
 * lane without any synchronization.
 */
thread_local unsigned tlsShard = 0;

} // namespace

ParallelScheduler::ParallelScheduler(unsigned shards, NodeId num_nodes,
                                     Tick window)
    : shard_(num_nodes), window_(window), barrier_(shards)
{
    assert(shards >= 1 && shards <= num_nodes);
    assert(window >= 1 && "conservative window needs lookahead");

    parts_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
        auto p = std::make_unique<Partition>();
        if (shards > 1)
            p->out = std::vector<Lane>(shards);
        parts_.push_back(std::move(p));
    }
    // Contiguous blocks: neighbors (and mesh rows) tend to share a
    // shard, which keeps cross-shard traffic low on local topologies.
    for (NodeId n = 0; n < num_nodes; ++n)
        shard_[n] = unsigned((std::uint64_t(n) * shards) / num_nodes);
}

ParallelScheduler::~ParallelScheduler() = default;

void
ParallelScheduler::post(NodeId dst, Tick when, std::uint64_t chan,
                        EventQueue::Callback cb)
{
    if (directDispatch()) {
        // Fast path: no staging, no sort, no barrier. The queue's
        // sorted same-tick buckets put the event exactly where the
        // staged merge would: after the posting round's local events,
        // ordered by channel id, FIFO within the channel. The round
        // clock lives in the queue itself (runWindowed).
        assert(when > parts_[0]->eq.windowEnd() &&
               "post() inside the current window: lookahead contract "
               "broken");
        parts_[0]->eq.scheduleAtChannel(when, chan, std::move(cb));
        return;
    }

    // The conservative contract: a post must land strictly beyond the
    // window it was made from (windowEnd_ is 0 before the first round,
    // so setup-time posts pass). Violations would otherwise surface
    // only as silent shard-count-dependent results.
    assert(when > windowEnd_.load(std::memory_order_relaxed) &&
           "post() inside the current window: lookahead contract broken");

    unsigned from = tlsShard;
    unsigned to = shard_[dst];
    assert(from < parts_.size());
    bool storm = guard::Faults::on(guard::FaultKind::SpillStorm);
    if (parts_[from]->out[to].push(PostItem{when, chan, std::move(cb)},
                                   storm))
        obs::Tracer::engineInstant("mailbox spill", when, to);
}

void
ParallelScheduler::applyInbox(unsigned shard)
{
    // Gather the lanes addressed to this shard. Collection order (by
    // source shard) only matters as a stable-sort tie-break, and ties
    // are impossible across lanes: a channel is fed by one shard, so
    // items from different lanes never share (when, chan).
    std::vector<PostItem> &items = parts_[shard]->inbox;
    for (auto &src : parts_) {
        Lane &lane = src->out[shard];
        PostItem item;
        while (lane.ring.tryPop(item))
            items.push_back(std::move(item));
        if (!lane.spill.empty()) {
            items.insert(items.end(),
                         std::make_move_iterator(lane.spill.begin()),
                         std::make_move_iterator(lane.spill.end()));
            lane.spill.clear();
        }
    }
    if (items.empty())
        return;

    std::stable_sort(items.begin(), items.end(),
                     [](const PostItem &a, const PostItem &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         return a.chan < b.chan;
                     });
    EventQueue &eq = parts_[shard]->eq;
    for (auto &item : items)
        eq.scheduleAt(item.when, std::move(item.cb));
    items.clear();
}

void
ParallelScheduler::planWindow(Tick limit)
{
    if (error_) {
        stop_.store(true, std::memory_order_relaxed);
        return;
    }
    Tick w = tickNever;
    for (auto &p : parts_)
        w = std::min(w, p->nextTick.load(std::memory_order_relaxed));
    if (w == tickNever || w > limit) {
        stop_.store(true, std::memory_order_relaxed);
        return;
    }
    Tick end = std::min(w + window_ - 1, limit);
    windowStart_.store(w, std::memory_order_relaxed);
    windowEnd_.store(end, std::memory_order_relaxed);
    ++rounds_;
    windowTicksSum_ += end - w + 1;
    // Metrics sampling belongs exactly here: the completion phase runs
    // serially with every other shard parked, so the merged StatGroup
    // is quiescent and reading it perturbs nothing the shards observe.
    if (sampler_ && w >= sampler_->nextDue())
        sampler_->maybeSample(w, stats(), eventsExecuted());
}

void
ParallelScheduler::workerLoop(unsigned shard, Tick limit)
{
    using Clock = std::chrono::steady_clock;
    auto ns = [](Clock::time_point a, Clock::time_point b) {
        return std::uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                .count());
    };

    tlsShard = shard;
    obs::Tracer::bindThread(shard);
    Partition &p = *parts_[shard];
    std::uint64_t iter = 0;
    for (;; ++iter) {
        applyInbox(shard);
        p.nextTick.store(p.eq.nextEventTick(), std::memory_order_relaxed);

        if (guard::Faults::on(guard::FaultKind::BarrierWedge) &&
            guard::Faults::instance().wedgeHit(shard, iter)) {
            // Induced wedge: this shard stops arriving at the barrier,
            // which freezes every other shard mid-round — exactly the
            // failure the watchdog's barrier-stall detector exists for.
            // Sit out until an abort (or normal stop) releases us.
            while (!stop_.load(std::memory_order_relaxed))
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            break;
        }

        auto t0 = Clock::now();
        bool parked =
            barrier_.arriveAndWait([this, limit] { planWindow(limit); });
        auto t1 = Clock::now();
        p.barrierWaitNs += ns(t0, t1);
        if (stop_.load(std::memory_order_relaxed))
            break;

        Tick wStart = windowStart_.load(std::memory_order_relaxed);
        Tick wEnd = windowEnd_.load(std::memory_order_relaxed);
        if (obs::Tracer::on(obs::Cat::Engine)) {
            if (parked)
                obs::Tracer::engineInstant("barrier park", wStart,
                                           ns(t0, t1));
            obs::Tracer::engineSpan("window", wStart, wEnd + 1,
                                    wEnd - wStart + 1);
        }

        try {
            p.eq.runUntil(wEnd);
        } catch (...) {
            std::lock_guard<std::mutex> g(errorMu_);
            if (!error_)
                error_ = std::current_exception();
        }

        auto t2 = Clock::now();
        // Publish lanes for the next round.
        parked = barrier_.arriveAndWait();
        auto t3 = Clock::now();
        p.barrierWaitNs += ns(t2, t3);
        if (parked && obs::Tracer::on(obs::Cat::Engine))
            obs::Tracer::engineInstant("barrier park", wEnd, ns(t2, t3));
    }
}

Tick
ParallelScheduler::runDirect(Tick limit)
{
    // The staged engine's round loop with everything but the clock
    // removed: posts already sit in the queue (scheduleAtChannel), so
    // "apply inbox" is gone; the global minimum pending tick that
    // planWindow() would compute is simply the next event; and the
    // only round-boundary work left is advancing the queue's phase so
    // one round's channel posts sort before the next round's local
    // events — the same boundary the mailbox merge would have imposed.
    // runWindowed() drives all of that inline at one compare per event.
    tlsShard = 0;
    obs::Tracer::bindThread(0);
    return parts_[0]->eq.runWindowed(limit, window_);
}

obs::EngineProfile
ParallelScheduler::profile() const
{
    obs::EngineProfile prof;
    if (directDispatch()) {
        // The fast path's round clock lives inside the queue.
        prof.rounds = parts_[0]->eq.windowedRounds();
        prof.windowTicks = parts_[0]->eq.windowedTicksSum();
    } else {
        prof.rounds = rounds_;
        prof.windowTicks = windowTicksSum_;
    }
    prof.barrierParks = barrier_.parks();
    for (const auto &p : parts_) {
        prof.barrierWaitNs += p->barrierWaitNs;
        prof.overflowMigrations += p->eq.overflowMigrations();
        for (const auto &lane : p->out)
            prof.spilledPosts += lane.spilled;
    }
    return prof;
}

Tick
ParallelScheduler::runUntil(Tick limit)
{
    stop_.store(false, std::memory_order_relaxed);

    if (directDispatch())
        return runDirect(limit);

    std::vector<std::thread> workers;
    workers.reserve(parts_.size() - 1);
    for (unsigned s = 1; s < parts_.size(); ++s)
        workers.emplace_back([this, s, limit] { workerLoop(s, limit); });
    workerLoop(0, limit);
    for (auto &t : workers)
        t.join();

    if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        std::rethrow_exception(e);
    }
    return now();
}

void
ParallelScheduler::requestAbort(const std::string &reason)
{
    {
        std::lock_guard<std::mutex> g(abortMu_);
        if (abortReason_.empty())
            abortReason_ = reason;
    }
    // Order matters: raise the stop flag first so any shard released
    // from the barrier (or the wedge fault's poll loop) immediately
    // exits its worker loop, then stop the event loops, then tear down
    // the barrier so parked shards wake to observe the flag.
    stop_.store(true, std::memory_order_seq_cst);
    for (auto &p : parts_)
        p->eq.requestAbort();
    if (!directDispatch())
        barrier_.abort();
}

std::string
ParallelScheduler::abortReason() const
{
    std::lock_guard<std::mutex> g(abortMu_);
    return abortReason_;
}

Tick
ParallelScheduler::tickApprox() const
{
    Tick t = 0;
    for (const auto &p : parts_)
        t = std::max(t, p->eq.tickApprox());
    return t;
}

std::uint64_t
ParallelScheduler::executedApprox() const
{
    std::uint64_t n = 0;
    for (const auto &p : parts_)
        n += p->eq.executedApprox();
    return n;
}

Tick
ParallelScheduler::now() const
{
    Tick t = 0;
    for (const auto &p : parts_)
        t = std::max(t, p->eq.now());
    return t;
}

std::uint64_t
ParallelScheduler::eventsExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &p : parts_)
        n += p->eq.eventsExecuted();
    return n;
}

StatGroup &
ParallelScheduler::stats()
{
    // Rebuild in place: resetAll() zeroes entries without erasing them
    // and names only ever accumulate, so references handed out by a
    // previous call stay valid (std::map nodes are stable). It is still
    // a snapshot — writes to it are discarded by the next rebuild.
    merged_.resetAll();
    for (auto &p : parts_)
        merged_.mergeFrom(p->stats);
    return merged_;
}

} // namespace ltp
