/**
 * @file
 * Conservative-lookahead planning for the parallel engine.
 *
 * A node-partitioned run is only correct when every cross-shard
 * interaction is separated from its cause by at least the window width
 * L (the classic conservative-DES precondition). The paper's machine
 * hands us that lookahead: the interconnect's minimum cross-node
 * latency (80-cycle point-to-point flight; serialization + wire +
 * router pipeline on every routed hop). resolveShardPlan() combines
 *
 *  - the network's exported lookahead (networkLookahead() in
 *    net/topo/interconnect.hh, passed in here as a plain number so the
 *    sim layer stays below net),
 *  - the sync domain's barrier latency (barrier wakeups are the other
 *    cross-shard channel), and
 *  - system couplings with *zero* lookahead, which force the serial
 *    fallback: an Active predictor's directory-verification feedback is
 *    wired combinationally from the home directory into the
 *    self-invalidating node's predictor. (Oblivious routing used to be
 *    the other such coupling — its shared RNG was replaced by pure
 *    counter-based per-(src, dst) streams, so it now shards.)
 *
 * The fallback is not a failure mode: a plan with shards == 1 simply
 * runs the historical sequential engine, so every configuration remains
 * supported and bit-reproducible; only configurations whose couplings
 * all have >= 1 cycle of lookahead execute on multiple threads.
 */

#ifndef LTP_SIM_PAR_LOOKAHEAD_HH
#define LTP_SIM_PAR_LOOKAHEAD_HH

#include <string>

#include "sim/types.hh"

namespace ltp
{

/** Everything the planner needs, as plain numbers (no layering cycle). */
struct LookaheadInputs
{
    unsigned requestedThreads = 1;
    NodeId numNodes = 1;
    /** Minimum cross-node latency of the interconnect model; 0 when the
     *  model cannot shard at all (serialReason explains why). */
    Tick netLookahead = 0;
    const char *netSerialReason = nullptr;
    /** SyncDomain release delay (barrier wakeups cross shards). */
    Tick barrierLatency = 0;
    /** Set when the run has a zero-lookahead cross-node coupling above
     *  the network (Active predictor verification feedback). */
    const char *zeroLookaheadCoupling = nullptr;
};

/** The engine configuration a run will actually use. */
struct ShardPlan
{
    unsigned shards = 1; //!< partitions/threads the engine runs
    Tick window = 0;     //!< conservative window width L (canonical only)
    /** Why the run fell back to the plain sequential engine (empty for
     *  the canonical engine, whatever the shard count). */
    std::string serialReason;

    /** True when the canonical windowed engine runs (any shard count). */
    bool canonical() const { return serialReason.empty(); }
    /** True when more than one worker thread actually executes. */
    bool parallel() const { return shards > 1; }
};

/** Decide shards and window width for a run. */
ShardPlan resolveShardPlan(const LookaheadInputs &in);

} // namespace ltp

#endif // LTP_SIM_PAR_LOOKAHEAD_HH
