/**
 * @file
 * WindowBarrier: the synchronization point between parallel-engine
 * rounds.
 *
 * A sense-reversing spin barrier for a small, fixed set of shard
 * threads. The last thread to arrive runs a completion callable while
 * every other thread is parked — that is where the engine merges
 * cross-shard mailboxes and plans the next conservative window with
 * all shards quiescent — then releases the generation.
 *
 * Windows are tens of microseconds of work, so waiters spin with a
 * cpu-relax hint first and only fall back to yielding; a futex/condvar
 * would cost more than the wait. When the machine has fewer cores than
 * parties (oversubscribed), spinning only steals the running thread's
 * timeslice, so waiters yield immediately instead.
 */

#ifndef LTP_SIM_PAR_WINDOW_BARRIER_HH
#define LTP_SIM_PAR_WINDOW_BARRIER_HH

#include <atomic>
#include <cstdint>
#include <thread>

namespace ltp
{

/** Reusable barrier with a serial completion phase. */
class WindowBarrier
{
  public:
    explicit WindowBarrier(unsigned parties)
        : parties_(parties),
          spinLimit_(parties <= std::thread::hardware_concurrency()
                         ? 4096u
                         : 0u)
    {
    }

    WindowBarrier(const WindowBarrier &) = delete;
    WindowBarrier &operator=(const WindowBarrier &) = delete;

    /**
     * Arrive; the last arriver runs @p completion (alone), then all
     * parties proceed. Release/acquire ordering on the generation word
     * makes every write before any arrive visible to every thread after
     * the corresponding return.
     */
    template <typename F>
    void
    arriveAndWait(F &&completion)
    {
        std::uint64_t gen = generation_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            completion();
            arrived_.store(0, std::memory_order_relaxed);
            generation_.fetch_add(1, std::memory_order_release);
            return;
        }
        unsigned spins = 0;
        while (generation_.load(std::memory_order_acquire) == gen) {
            if (++spins < spinLimit_) {
#if defined(__x86_64__) || defined(__i386__)
                __builtin_ia32_pause();
#endif
            } else {
                std::this_thread::yield();
            }
        }
    }

    /** Arrive with no completion work. */
    void arriveAndWait() { arriveAndWait([] {}); }

    unsigned parties() const { return parties_; }

  private:
    const unsigned parties_;
    const unsigned spinLimit_; //!< 0 when oversubscribed: yield at once
    std::atomic<unsigned> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
};

} // namespace ltp

#endif // LTP_SIM_PAR_WINDOW_BARRIER_HH
