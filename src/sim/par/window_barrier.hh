/**
 * @file
 * WindowBarrier: the synchronization point between parallel-engine
 * rounds.
 *
 * A sense-reversing barrier for a small, fixed set of shard threads.
 * The last thread to arrive runs a completion callable while every
 * other thread is parked — that is where the engine merges cross-shard
 * mailboxes and plans the next conservative window with all shards
 * quiescent — then releases the generation.
 *
 * Windows are tens of microseconds of work, so waiters spin with a
 * cpu-relax hint first; a short wait almost always ends inside the
 * spin budget. When it does not — a shard with a lopsided window, or a
 * machine with fewer cores than shards — the waiter parks on a futex
 * keyed to the generation word instead of burning its timeslice, and
 * the releasing thread wakes the parked set only when someone actually
 * sleeps (a flag keeps the common all-spinners round syscall-free).
 * On non-Linux hosts the park degrades to std::this_thread::yield().
 * Oversubscribed runs (more parties than cores) skip the spin phase
 * entirely: spinning there only steals the running shard's timeslice.
 */

#ifndef LTP_SIM_PAR_WINDOW_BARRIER_HH
#define LTP_SIM_PAR_WINDOW_BARRIER_HH

#include <atomic>
#include <cstdint>
#include <thread>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <climits>
#endif

namespace ltp
{

/** Reusable barrier with a serial completion phase. */
class WindowBarrier
{
  public:
    explicit WindowBarrier(unsigned parties)
        : parties_(parties),
          spinLimit_(parties <= std::thread::hardware_concurrency()
                         ? 4096u
                         : 0u)
    {
    }

    WindowBarrier(const WindowBarrier &) = delete;
    WindowBarrier &operator=(const WindowBarrier &) = delete;

    /**
     * Arrive; the last arriver runs @p completion (alone), then all
     * parties proceed. Release/acquire ordering on the generation word
     * makes every write before any arrive visible to every thread after
     * the corresponding return.
     *
     * @return true when this arrival exhausted its spin budget and
     *         parked at least once (profiling/tracing signal; the last
     *         arriver never waits, hence never parks).
     */
    template <typename F>
    bool
    arriveAndWait(F &&completion)
    {
        if (aborted_.load(std::memory_order_acquire))
            return false;
        std::uint32_t gen = generation_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            completion();
            arrived_.store(0, std::memory_order_relaxed);
            // Publish the new generation BEFORE reading the sleeper
            // flag: a waiter that sets the flag after our exchange is
            // guaranteed to observe the new generation (or to have its
            // futex-wait bounce off the changed word), so no wake-up
            // can be lost. Both sides of this Dekker-style handshake
            // (store generation / load sleepers here, store sleepers /
            // load generation in park()) must be seq_cst: with mere
            // release ordering a weakly ordered machine could hoist
            // the sleepers_ read above the generation publish and
            // elide the wake for a waiter that then sleeps forever.
            generation_.fetch_add(1, std::memory_order_seq_cst);
            if (sleepers_.exchange(false, std::memory_order_seq_cst))
                wakeAll();
            return false;
        }
        unsigned spins = 0;
        bool parked = false;
        while (generation_.load(std::memory_order_acquire) == gen &&
               !aborted_.load(std::memory_order_acquire)) {
            if (++spins < spinLimit_) {
#if defined(__x86_64__) || defined(__i386__)
                __builtin_ia32_pause();
#endif
            } else {
                park(gen);
                parked = true;
            }
        }
        return parked;
    }

    /** Arrive with no completion work. */
    bool arriveAndWait() { return arriveAndWait([] {}); }

    unsigned parties() const { return parties_; }

    /**
     * Tear the barrier down: every current and future arriveAndWait()
     * returns immediately without running a completion. Bumping the
     * generation word (seq_cst, same Dekker handshake as a normal
     * release) kicks spinners and futex-parked waiters loose. Callable
     * from any thread — this is the guard watchdog's escape hatch for a
     * wedged round; callers are expected to observe a stop flag after
     * returning. Irreversible for the barrier's lifetime.
     */
    void
    abort()
    {
        aborted_.store(true, std::memory_order_seq_cst);
        generation_.fetch_add(1, std::memory_order_seq_cst);
        sleepers_.exchange(false, std::memory_order_seq_cst);
        wakeAll();
    }

    bool
    aborted() const
    {
        return aborted_.load(std::memory_order_acquire);
    }

    /**
     * Watchdog probes (relaxed; monitoring only): a frozen generation
     * with a nonzero arrival count for longer than the stall budget
     * means some shard stopped arriving — the signature of a wedge.
     */
    std::uint32_t
    generationValue() const
    {
        return generation_.load(std::memory_order_relaxed);
    }

    unsigned
    arrivedCount() const
    {
        return arrived_.load(std::memory_order_relaxed);
    }

    /**
     * Arrivals that exhausted the spin budget and futex-parked, summed
     * over all parties — the engine profile's spin-vs-park signal
     * (obs/engine_profile.hh). Relaxed: a profiling count, read after
     * the run's final barrier.
     */
    std::uint64_t
    parks() const
    {
        return parks_.load(std::memory_order_relaxed);
    }

  private:
    void
    park(std::uint32_t gen)
    {
        parks_.fetch_add(1, std::memory_order_relaxed);
#if defined(__linux__)
        sleepers_.store(true, std::memory_order_seq_cst);
        // FUTEX_WAIT re-checks the word against gen atomically in the
        // kernel: if the releaser already bumped the generation this
        // returns immediately with EAGAIN instead of sleeping.
        syscall(SYS_futex, reinterpret_cast<std::uint32_t *>(&generation_),
                FUTEX_WAIT_PRIVATE, gen, nullptr, nullptr, 0);
#else
        (void)gen;
        std::this_thread::yield();
#endif
    }

    void
    wakeAll()
    {
#if defined(__linux__)
        syscall(SYS_futex, reinterpret_cast<std::uint32_t *>(&generation_),
                FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
#endif
    }

    const unsigned parties_;
    const unsigned spinLimit_; //!< 0 when oversubscribed: park at once
    std::atomic<unsigned> arrived_{0};
    /** The futex word. 32 bits so the kernel can compare it; wraparound
     *  is harmless (waiters only test inequality, and 2^32 windows is
     *  far beyond any run). */
    std::atomic<std::uint32_t> generation_{0};
    /** Set by a parking waiter; cleared (and acted on) by the releaser. */
    std::atomic<bool> sleepers_{false};
    std::atomic<std::uint64_t> parks_{0};
    /** Torn down by abort(); waiters fall through from then on. */
    std::atomic<bool> aborted_{false};

    static_assert(sizeof(std::atomic<std::uint32_t>) == 4,
                  "futex word must be 32 bits");
};

} // namespace ltp

#endif // LTP_SIM_PAR_WINDOW_BARRIER_HH
