#include "sim/par/lookahead.hh"

#include <algorithm>

namespace ltp
{

ShardPlan
resolveShardPlan(const LookaheadInputs &in)
{
    ShardPlan plan;
    plan.shards = 1;

    if (in.zeroLookaheadCoupling) {
        plan.serialReason = in.zeroLookaheadCoupling;
        return plan;
    }
    if (in.netLookahead == 0) {
        plan.serialReason = in.netSerialReason
                                ? in.netSerialReason
                                : "interconnect has no cross-node lookahead";
        return plan;
    }

    // Barrier wakeups are posted barrierLatency ticks after the last
    // arrival, so they bound the window alongside the network.
    Tick window = std::min(in.netLookahead, in.barrierLatency);
    if (window < 1) {
        plan.serialReason = "zero barrier latency leaves no lookahead";
        return plan;
    }

    // A safe configuration always runs the canonical engine, even when
    // only one thread is requested: a 1-shard canonical run is what the
    // shards {1, 2, 4, ...} bit-identity guarantee is anchored on.
    plan.shards = std::max(1u, std::min<unsigned>(in.requestedThreads,
                                                  in.numNodes));
    plan.window = window;
    return plan;
}

} // namespace ltp
