/**
 * @file
 * SpscRing: a fixed-capacity, lock-free single-producer/single-consumer
 * ring buffer.
 *
 * The parallel engine's mailbox lanes are exactly SPSC: each (source
 * shard, destination shard) lane has one writer (the source shard's
 * worker thread, during window execution) and one reader (the
 * destination shard's worker, at the window barrier). The ring makes a
 * lane's hand-off wait-free and allocation-free: head and tail live on
 * separate cache lines so the producer's stores never bounce the
 * consumer's line, and the slot array is written once per item with no
 * CAS, no mutex and no heap traffic.
 *
 * Capacity is a compile-time power of two. tryPush() returns false when
 * full — the caller decides the overflow policy (the scheduler spills
 * to a plain per-lane vector that only the barrier phase reads, keeping
 * FIFO order; see ParallelScheduler::Lane).
 *
 * Memory ordering: the producer publishes a slot with a release store
 * of tail; the consumer acquires tail before reading the slot and
 * publishes consumption with a release store of head. This is the
 * classic Lamport SPSC queue, valid only for exactly one concurrent
 * producer thread and one concurrent consumer thread.
 */

#ifndef LTP_SIM_PAR_SPSC_RING_HH
#define LTP_SIM_PAR_SPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace ltp
{

template <typename T, std::size_t Capacity>
class SpscRing
{
    static_assert(Capacity >= 2 && (Capacity & (Capacity - 1)) == 0,
                  "capacity must be a power of two");

  public:
    SpscRing() = default;
    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    static constexpr std::size_t capacity() { return Capacity; }

    /** Producer side. @return false when the ring is full. */
    bool
    tryPush(T &&value)
    {
        std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - headCache_ == Capacity) {
            // Refresh the cached head before giving up: the consumer
            // may have drained since we last looked.
            headCache_ = head_.load(std::memory_order_acquire);
            if (tail - headCache_ == Capacity)
                return false;
        }
        if (slots_.empty()) {
            // Lazy storage: with S shards there are S^2 lanes but only
            // neighbor shards actually talk on local topologies, so
            // idle lanes stay at zero bytes. Single writer (this
            // producer), and the release store of tail_ below
            // publishes the resized vector before the consumer ever
            // indexes it (tryPop touches slots_ only after observing
            // tail_ > head).
            slots_.resize(Capacity);
        }
        slots_[tail & (Capacity - 1)] = std::move(value);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. @return false when the ring is empty. */
    bool
    tryPop(T &out)
    {
        std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == tailCache_) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            if (head == tailCache_)
                return false;
        }
        out = std::move(slots_[head & (Capacity - 1)]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Racy size estimate; exact when producer and consumer are quiet. */
    std::size_t
    size() const
    {
        return tail_.load(std::memory_order_acquire) -
               head_.load(std::memory_order_acquire);
    }

    bool empty() const { return size() == 0; }

    /** Sequence number of the next slot to fill (monotonic). */
    std::size_t
    rawTail() const
    {
        return tail_.load(std::memory_order_acquire);
    }

    /**
     * Crash-dump inspection: the slot holding sequence number @p seq,
     * or nullptr before the first push. Only exact for sequence numbers
     * in [tail - Capacity, tail) with both sides quiet; the flight
     * recorder reads it best-effort on the way down.
     */
    const T *
    rawSlot(std::size_t seq) const
    {
        return slots_.empty() ? nullptr : &slots_[seq & (Capacity - 1)];
    }

  private:
    // One cache line per side: the consumer's line holds head_ plus its
    // private tail cache, the producer's line holds tail_ plus its
    // private head cache. Each thread dirties only its own line; the
    // cross-line reads (acquire loads) happen only when a cached bound
    // goes stale.
    alignas(64) std::atomic<std::size_t> head_{0}; //!< next slot to pop
    std::size_t tailCache_ = 0;             //!< consumer's view of tail_
    alignas(64) std::atomic<std::size_t> tail_{0}; //!< next slot to fill
    std::size_t headCache_ = 0;             //!< producer's view of head_

    std::vector<T> slots_;
};

} // namespace ltp

#endif // LTP_SIM_PAR_SPSC_RING_HH
