/**
 * @file
 * SimContext: the seam between simulation components and the engine
 * that executes them.
 *
 * Every component (network, controllers, thread contexts, sync domain)
 * schedules its events through a SimContext instead of holding a raw
 * EventQueue. The context decides where an event lives:
 *
 *  - SequentialContext (this file): one EventQueue, one StatGroup.
 *    queueFor()/post() degenerate to the plain scheduleAt() calls the
 *    sequential simulator always made, so a 1-shard run is bit-identical
 *    to the historical single-threaded engine.
 *
 *  - ParallelScheduler (parallel_scheduler.hh): nodes are sharded over
 *    several partitions, each with its own EventQueue and StatGroup,
 *    executed by worker threads under conservative lookahead windows.
 *
 * The contract that makes sharding safe:
 *
 *  - All state a component mutates from an event belongs to one node
 *    (or one link, owned by its upstream node), and that event runs on
 *    the owning node's queue (queueFor()).
 *
 *  - The only cross-node interactions are post() calls, and every
 *    post() targets a tick at least the engine's lookahead window
 *    beyond the posting event. The network guarantees this through its
 *    minimum link/flight latency (see networkLookahead()).
 *
 *  - post() carries a *channel id* identifying the logical FIFO the
 *    event travels on (a (src, dst) pair, a physical link, a barrier
 *    slot). The parallel engine realizes the canonical (tick, channel)
 *    order two ways — staged for shards > 1 (buffered lanes sorted and
 *    merged at window barriers) and direct for one shard (straight
 *    into the owner queue via EventQueue::scheduleAtChannel, whose
 *    sorted buckets impose the same order with zero staging). A
 *    channel is only ever fed by one shard, so the order is
 *    deterministic: independent of thread timing AND of the shard
 *    count.
 */

#ifndef LTP_SIM_PAR_SIM_CONTEXT_HH
#define LTP_SIM_PAR_SIM_CONTEXT_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ltp
{

/**
 * Channel-id helpers for post(). The spaces are disjoint; ids only need
 * to be unique per logical FIFO channel (and each channel must be fed
 * from a single shard for the canonical merge order to be total).
 *
 * Ids must fit 32 bits (EventQueue packs them next to the round phase
 * in one ordering word), so the space tag sits at bit 28: room for
 * 2^28 ids per space — 16 K nodes' (src, dst) pairs, a million links.
 */
namespace chan
{

constexpr std::uint64_t spaceShift = 28;

/** Point-to-point flight of the (src, dst) node pair. */
constexpr std::uint64_t
pair(NodeId src, NodeId dst, NodeId num_nodes)
{
    return (std::uint64_t(0) << spaceShift) |
           (std::uint64_t(src) * num_nodes + dst);
}

/** Hop arrivals leaving physical link @p link_index. */
constexpr std::uint64_t
link(std::size_t link_index)
{
    return (std::uint64_t(1) << spaceShift) | link_index;
}

/** Credit returns for physical link @p link_index. */
constexpr std::uint64_t
credit(std::size_t link_index)
{
    return (std::uint64_t(2) << spaceShift) | link_index;
}

/** Barrier-release wakeups for @p node. */
constexpr std::uint64_t
barrier(NodeId node)
{
    return (std::uint64_t(3) << spaceShift) | node;
}

} // namespace chan

/** Where simulation components schedule their events. */
class SimContext
{
  public:
    virtual ~SimContext() = default;

    /** Number of partitions events are sharded over (1 = sequential). */
    virtual unsigned numShards() const = 0;

    /**
     * True when the engine applies post() calls in the canonical
     * (tick, channel) order — the ParallelScheduler at ANY shard count,
     * including one. False for the plain sequential engine, whose
     * post() order is raw schedule order. Components with a choice of
     * protocols (SyncDomain) key on this, never on numShards(), so a
     * 1-shard canonical run stays bit-identical to an 8-shard one.
     */
    virtual bool canonical() const = 0;

    /** Partition that owns @p node's events. */
    virtual unsigned shardOf(NodeId node) const = 0;

    /** The event queue @p node's events run on. */
    virtual EventQueue &queueFor(NodeId node) = 0;

    /** Statistics registry of partition @p shard. */
    virtual StatGroup &shardStats(unsigned shard) = 0;

    /**
     * Schedule @p cb at absolute tick @p when on @p dst's queue, from an
     * event possibly running on another shard.
     *
     * @p chan identifies the logical FIFO the event belongs to (see
     * namespace chan). @p when must be at least the engine's lookahead
     * window beyond the posting event's tick.
     */
    virtual void post(NodeId dst, Tick when, std::uint64_t chan,
                      EventQueue::Callback cb) = 0;

    /** Drive the simulation until drained or beyond @p limit. */
    virtual Tick runUntil(Tick limit) = 0;

    /**
     * Ask a running runUntil() to stop cleanly with @p reason instead
     * of completing. Callable from any thread (the guard watchdog); the
     * first reason wins. The engine stops within one event per shard
     * (and tears down its barrier so parked shards wake); pending
     * events stay queued and runUntil() returns normally.
     */
    virtual void requestAbort(const std::string &reason) = 0;

    /** The winning requestAbort() reason; empty when none fired. */
    virtual std::string abortReason() const = 0;

    /** Latest tick any partition has reached. */
    virtual Tick now() const = 0;

    /** Total events executed across all partitions. */
    virtual std::uint64_t eventsExecuted() const = 0;

    /**
     * Watchdog progress probes: monitor-thread-safe (atomic mirrors),
     * may trail the true values by a publication beat. See
     * EventQueue::tickApprox().
     */
    virtual Tick tickApprox() const = 0;
    virtual std::uint64_t executedApprox() const = 0;

    /**
     * The whole run's statistics. Sequentially this is the one group;
     * the parallel engine merges its per-shard groups into an
     * aggregate view (rebuilt on each call).
     */
    virtual StatGroup &stats() = 0;
};

/** The historical single-threaded engine behind the SimContext seam. */
class SequentialContext final : public SimContext
{
  public:
    /** Own a fresh queue and stat group (the DsmSystem case). */
    SequentialContext()
        : owned_(std::make_unique<Owned>()),
          eq_(&owned_->eq),
          stats_(&owned_->stats)
    {
    }

    /** Borrow an existing queue/group (standalone network tests). */
    SequentialContext(EventQueue &eq, StatGroup &stats)
        : eq_(&eq), stats_(&stats)
    {
    }

    unsigned numShards() const override { return 1; }
    bool canonical() const override { return false; }
    unsigned shardOf(NodeId) const override { return 0; }
    EventQueue &queueFor(NodeId) override { return *eq_; }
    StatGroup &shardStats(unsigned) override { return *stats_; }

    void
    post(NodeId, Tick when, std::uint64_t, EventQueue::Callback cb) override
    {
        eq_->scheduleAt(when, std::move(cb));
    }

    Tick runUntil(Tick limit) override { return eq_->runUntil(limit); }

    void
    requestAbort(const std::string &reason) override
    {
        {
            std::lock_guard<std::mutex> g(abortMu_);
            if (abortReason_.empty())
                abortReason_ = reason;
        }
        eq_->requestAbort();
    }

    std::string
    abortReason() const override
    {
        std::lock_guard<std::mutex> g(abortMu_);
        return abortReason_;
    }

    Tick now() const override { return eq_->now(); }
    std::uint64_t eventsExecuted() const override
    {
        return eq_->eventsExecuted();
    }
    Tick tickApprox() const override { return eq_->tickApprox(); }
    std::uint64_t executedApprox() const override
    {
        return eq_->executedApprox();
    }
    StatGroup &stats() override { return *stats_; }

  private:
    struct Owned
    {
        EventQueue eq;
        StatGroup stats;
    };

    std::unique_ptr<Owned> owned_;
    EventQueue *eq_;
    StatGroup *stats_;
    mutable std::mutex abortMu_;
    std::string abortReason_;
};

} // namespace ltp

#endif // LTP_SIM_PAR_SIM_CONTEXT_HH
