#include "sim/event_queue.hh"

#include <cassert>

namespace ltp
{

EventQueue::EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    assert(when >= now_ && "scheduling an event in the past");
    EventId id = nextId_++;
    heap_.push(Entry{when, nextSeq_++, id});
    callbacks_.emplace(id, std::move(cb));
    ++liveEvents_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    auto it = callbacks_.find(id);
    if (it == callbacks_.end())
        return false;
    callbacks_.erase(it);
    --liveEvents_;
    // The heap entry stays behind as a tombstone; popNext() skips it.
    return true;
}

bool
EventQueue::popNext(Entry &out)
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        if (callbacks_.count(e.id)) {
            out = e;
            return true;
        }
        // tombstone from a cancelled event
    }
    return false;
}

bool
EventQueue::step()
{
    Entry e;
    if (!popNext(e))
        return false;
    assert(e.when >= now_);
    now_ = e.when;
    auto node = callbacks_.extract(e.id);
    --liveEvents_;
    ++executed_;
    node.mapped()();
    return true;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty()) {
        // Peek the next live event without executing it.
        Entry e;
        if (!popNext(e))
            break;
        if (e.when > limit) {
            // Push it back: re-register under the same id.
            heap_.push(e);
            break;
        }
        now_ = e.when;
        auto node = callbacks_.extract(e.id);
        --liveEvents_;
        ++executed_;
        node.mapped()();
    }
    return now_;
}

} // namespace ltp
