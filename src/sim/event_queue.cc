#include "sim/event_queue.hh"

#include <algorithm>
#include <cassert>

#include "obs/trace.hh"
#include "sim/guard/fault.hh"

namespace ltp
{

EventQueue::EventQueue() : buckets_(window) {}

void
EventQueue::pushBucket(Tick when, Entry e)
{
    assert(when - now_ < window);
    std::size_t idx = std::size_t(when) & windowMask;
    Bucket &b = buckets_[idx];
    if (b.entries.empty() || !entryBefore(e, b.entries.back())) {
        // Hot path: keys are nondecreasing for plain scheduleAt()
        // traffic (phase fixed, sequence monotonic), so this is a pure
        // append exactly like the historical FIFO bucket.
        b.entries.push_back(e);
    } else {
        insertSorted(b, e);
    }
    bitmap_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
    ++bucketedEntries_;
}

// Out of line on purpose: only a channel post overtaking same-tick
// entries of a later key (a larger channel id, or the round's locals
// scheduled after it) lands here, and keeping the binary search out of
// pushBucket() keeps the append path's code footprint minimal.
__attribute__((noinline)) void
EventQueue::insertSorted(Bucket &b, Entry e)
{
    // Never insert before `head`: the prefix holds only consumed
    // tombstones (live entries with a larger key cannot have run —
    // execution is in key order and posts never target a tick that is
    // already executing). Buckets are small; binary search finds the
    // spot.
    auto pos = std::upper_bound(
        b.entries.begin() + std::ptrdiff_t(b.head), b.entries.end(), e,
        [](const Entry &a, const Entry &x) { return entryBefore(a, x); });
    b.entries.insert(pos, e);
}

void
EventQueue::migrate()
{
    while (!overflow_.empty() && overflow_.top().when - now_ < window) {
        OverflowEntry e = overflow_.top();
        overflow_.pop();
        std::uint32_t slot = std::uint32_t(e.entry.id & slotMask);
        if (slots_[slot].id != e.entry.id)
            continue; // cancelled while parked in the overflow heap
        pushBucket(e.when, e.entry);
        ++overflowMigrations_;
    }
}

// Out of line: only reached when an armed watcher's threshold is hit.
__attribute__((noinline)) void
EventQueue::fireTickWatcher()
{
    watchAt_ = watcher_ ? watcher_(now_) : tickNever;
}

EventQueue::EventId
EventQueue::scheduleKeyed(Tick when, std::uint64_t key, Callback cb)
{
    assert(when >= now_ && "scheduling an event in the past");

    // Pull freshly-eligible overflow events in first; their keys were
    // assigned at schedule time, so they land at their sorted position
    // regardless, but migrating early keeps the ring scan cheap.
    migrate();

    std::uint32_t slot;
    if (!freeList_.empty()) {
        slot = freeList_.back();
        freeList_.pop_back();
    } else {
        assert(slots_.size() < slotMask && "event slot arena exhausted");
        slot = std::uint32_t(slots_.size());
        slots_.emplace_back();
    }

    EventId id = (nextGen_++ << slotBits) | slot;
    slots_[slot].id = id;
    slots_[slot].when = when;
    slots_[slot].cb = std::move(cb);

    Entry e{id, key};
    bool force_overflow =
        guard::Faults::on(guard::FaultKind::CalendarOverflow) &&
        guard::Faults::instance().calendarOverflowHit(nextGen_);
    if (when - now_ < window && !force_overflow) {
        pushBucket(when, e);
    } else {
        // Far-future event — or the cal-overflow fault pretending it
        // is one. Either way the entry waits in the heap and migrate()
        // moves it into the ring before it can fire, so the forced
        // detour is invisible to results.
        overflow_.push(OverflowEntry{when, e});
    }
    ++liveEvents_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (id == 0)
        return false; // the null handle; free slots carry id 0
    std::uint32_t slot = std::uint32_t(id & slotMask);
    if (slot >= slots_.size() || slots_[slot].id != id)
        return false; // already ran, already cancelled, or never existed
    slots_[slot].cb.reset();
    release(slot);
    --liveEvents_;
    // The ring/overflow entry stays behind as a tombstone; its tag no
    // longer matches the slot, so the pop path skips it.
    return true;
}

std::size_t
EventQueue::firstBucket() const
{
    // Ring-order scan from now_: every bucketed event's tick lies in
    // [now_, now_ + window), so the first set bit at or after now_'s
    // ring position (wrapping) is the earliest pending tick.
    std::size_t start = std::size_t(now_) & windowMask;
    std::size_t w = start >> 6;
    std::uint64_t first = bitmap_[w] & (~std::uint64_t(0) << (start & 63));
    if (first)
        return (w << 6) + std::size_t(__builtin_ctzll(first));
    for (std::size_t i = 1; i <= windowWords; ++i) {
        std::size_t ww = (w + i) & (windowWords - 1);
        if (bitmap_[ww])
            return (ww << 6) + std::size_t(__builtin_ctzll(bitmap_[ww]));
    }
    assert(false && "firstBucket called with an empty ring");
    return 0;
}

std::int64_t
EventQueue::popNextLive(Tick limit)
{
    while (liveEvents_ > 0) {
        migrate();

        if (bucketedEntries_ > 0) {
            std::size_t idx = firstBucket();
            Bucket &b = buckets_[idx];
            while (b.head < b.entries.size()) {
                EventId id = b.entries[b.head].id;
                std::uint32_t slot = std::uint32_t(id & slotMask);
                if (slots_[slot].id != id) {
                    ++b.head; // tombstone from a cancelled event
                    --bucketedEntries_;
                    continue;
                }
                if (slots_[slot].when > limit)
                    return -1; // leave it pending for a later run
                ++b.head;
                --bucketedEntries_;
                if (b.head == b.entries.size())
                    clearBucket(idx);
                return std::int64_t(slot);
            }
            clearBucket(idx); // all tombstones: rescan
            continue;
        }

        // Ring empty: the next event is a far-future one in the overflow
        // heap (migrate() above guarantees overflow events are beyond
        // the current window, hence later than anything bucketed).
        while (!overflow_.empty()) {
            OverflowEntry e = overflow_.top();
            std::uint32_t slot = std::uint32_t(e.entry.id & slotMask);
            if (slots_[slot].id != e.entry.id) {
                overflow_.pop(); // tombstone
                continue;
            }
            if (e.when > limit)
                return -1;
            overflow_.pop();
            return std::int64_t(slot);
        }
        assert(false && "live events but empty ring and overflow");
        break;
    }
    return -1;
}

Tick
EventQueue::nextEventTick()
{
    while (liveEvents_ > 0) {
        migrate();

        if (bucketedEntries_ > 0) {
            std::size_t idx = firstBucket();
            Bucket &b = buckets_[idx];
            while (b.head < b.entries.size()) {
                EventId id = b.entries[b.head].id;
                std::uint32_t slot = std::uint32_t(id & slotMask);
                if (slots_[slot].id != id) {
                    ++b.head; // tombstone from a cancelled event
                    --bucketedEntries_;
                    continue;
                }
                return slots_[slot].when;
            }
            clearBucket(idx); // all tombstones: rescan
            continue;
        }

        while (!overflow_.empty()) {
            OverflowEntry e = overflow_.top();
            std::uint32_t slot = std::uint32_t(e.entry.id & slotMask);
            if (slots_[slot].id != e.entry.id) {
                overflow_.pop(); // tombstone
                continue;
            }
            return e.when;
        }
        assert(false && "live events but empty ring and overflow");
        break;
    }
    return tickNever;
}

void
EventQueue::executeSlot(std::uint32_t slot)
{
    assert(slots_[slot].when >= now_);
    now_ = slots_[slot].when;
    // Move the callback out and recycle the slot *before* invoking: the
    // callback may schedule new events (growing the slot arena) or even
    // reuse this very slot.
    Callback cb = std::move(slots_[slot].cb);
    release(slot);
    --liveEvents_;
    ++executed_;
    cb();
}

bool
EventQueue::step()
{
    std::int64_t slot = popNextLive(tickNever);
    if (slot < 0)
        return false;
    executeSlot(std::uint32_t(slot));
    return true;
}

Tick
EventQueue::runUntil(Tick limit)
{
    std::int64_t slot;
    while (!abort_.load(std::memory_order_relaxed) &&
           (slot = popNextLive(limit)) >= 0) {
        executeSlot(std::uint32_t(slot));
        if ((executed_ & (beatPeriod - 1)) == 0)
            publishProgress();
        if (now_ >= watchAt_)
            fireTickWatcher();
    }
    publishProgress();
    return now_;
}

Tick
EventQueue::runWindowed(Tick limit, Tick window)
{
    std::int64_t slot;
    while (!abort_.load(std::memory_order_relaxed) &&
           (slot = popNextLive(limit)) >= 0) {
        Tick when = slots_[std::uint32_t(slot)].when;
        if (when > windowEnd_ || !windowOpen_) {
            // First event past the round (or the very first event, even
            // at tick 0): the staged engine would have hit a barrier
            // here, planned [when, when + L), and merged its mailboxes.
            // The merge already happened incrementally
            // (scheduleAtChannel); only the phase boundary remains.
            windowOpen_ = true;
            windowEnd_ = std::min(when + window - 1, limit);
            beginRound();
            ++windowedRounds_;
            windowedTicksSum_ += windowEnd_ - when + 1;
            publishProgress();
            if (obs::Tracer::on(obs::Cat::Engine))
                obs::Tracer::engineSpan("window", when, windowEnd_ + 1,
                                        windowEnd_ - when + 1);
        }
        executeSlot(std::uint32_t(slot));
        if ((executed_ & (beatPeriod - 1)) == 0)
            publishProgress();
        if (now_ >= watchAt_)
            fireTickWatcher();
    }
    publishProgress();
    return now_;
}

} // namespace ltp
