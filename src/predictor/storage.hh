/**
 * @file
 * Storage-cost accounting for predictors (Table 3 of the paper).
 */

#ifndef LTP_PREDICTOR_STORAGE_HH
#define LTP_PREDICTOR_STORAGE_HH

#include <cstdint>

namespace ltp
{

/**
 * Predictor storage summary, following the paper's accounting: both
 * organizations charge one current signature per block plus a two-bit
 * saturating counter per last-touch signature entry.
 */
struct StorageStats
{
    /** Blocks that completed at least one trace (were invalidated). */
    std::uint64_t activeBlocks = 0;
    /** Total last-touch signature entries across the predictor. */
    std::uint64_t totalEntries = 0;
    /** Signature width in bits. */
    unsigned sigBits = 0;

    double
    entriesPerBlock() const
    {
        return activeBlocks ? double(totalEntries) / double(activeBlocks)
                            : 0.0;
    }

    /**
     * Per-active-block overhead in bytes: the current signature plus the
     * amortized last-touch entries (signature + 2-bit counter each).
     */
    double
    bytesPerBlock() const
    {
        double bits =
            double(sigBits) + entriesPerBlock() * (double(sigBits) + 2.0);
        return bits / 8.0;
    }
};

} // namespace ltp

#endif // LTP_PREDICTOR_STORAGE_HH
