/**
 * @file
 * The base-case Last-Touch Predictor: a PAp-like two-level organization
 * with a per-block last-touch signature table (Figure 4, top).
 *
 * Level one is the current-signature table: one truncated-addition
 * register per block recording the trace since the block's last
 * coherence miss. Level two is, per block, the set of previously
 * observed last-touch signatures, each guarded by a two-bit saturating
 * confidence counter. A touch whose updated current signature matches a
 * confident last-touch signature is predicted to be the last touch.
 */

#ifndef LTP_PREDICTOR_LTP_PER_BLOCK_HH
#define LTP_PREDICTOR_LTP_PER_BLOCK_HH

#include <optional>
#include <vector>

#include "predictor/invalidation_predictor.hh"
#include "predictor/signature.hh"
#include "sim/flat_map.hh"

namespace ltp
{

/** Shared configuration for the trace-based predictors. */
struct LtpParams
{
    /** Signature width in bits (paper: 30 = "Base", 13, 11, 6). */
    unsigned sigBits = 30;
    /** Counter value required before a match predicts (saturated). */
    unsigned confThreshold = 3;
    unsigned confMax = 3;
    unsigned confInitial = 2;
    /** Trace-encoding function (paper uses truncated addition). */
    SigEncoding encoding = SigEncoding::TruncatedAdd;
};

/** Per-block-table Last-Touch Predictor. */
class LtpPerBlock : public InvalidationPredictor
{
  public:
    explicit LtpPerBlock(LtpParams params = {}) : params_(params) {}

    bool onTouch(Addr blk, Pc pc, bool is_write, bool fill) override;
    void onInvalidation(Addr blk) override;
    void onVerification(Addr blk, bool premature) override;
    std::string name() const override { return "ltp"; }
    std::optional<StorageStats> storage() const override;

    /** Last-touch table size for @p blk (tests / Table 3). */
    std::size_t tableSize(Addr blk) const;

    const LtpParams &params() const { return params_; }

  private:
    struct TableEntry
    {
        Signature sig;
        ConfidenceCounter conf;
    };

    struct BlockState
    {
        Signature cur;
        bool traceOpen = false;
        std::vector<TableEntry> table;
        /** Signature of the outstanding prediction (for verification). */
        std::optional<Signature> predictedSig;
    };

    TableEntry *findEntry(BlockState &b, const Signature &sig);

    LtpParams params_;
    FlatMap<Addr, BlockState> blocks_;
};

} // namespace ltp

#endif // LTP_PREDICTOR_LTP_PER_BLOCK_HH
