/**
 * @file
 * Trace signatures (Section 3.2).
 *
 * A trace — the sequence of instructions touching a block from its
 * coherence miss until its invalidation — is compressed into a small
 * fixed-width encoding called a signature. The paper uses *truncated
 * addition*: the signature is the running sum of instruction PCs,
 * truncated to a configurable number of bits (30 bits identifies a
 * single PC exactly; Section 5.2 shows 13 bits suffice in practice).
 */

#ifndef LTP_PREDICTOR_SIGNATURE_HH
#define LTP_PREDICTOR_SIGNATURE_HH

#include <cassert>
#include <cstdint>

#include "sim/types.hh"

namespace ltp
{

/**
 * Trace-encoding function (Section 3.2: "LTPs can use arbitrary
 * encoding functions trading off accuracy, cost, and performance").
 */
enum class SigEncoding : std::uint8_t
{
    /** The paper's choice: commutative, order-insensitive. */
    TruncatedAdd,
    /**
     * Rotate-and-XOR: order-SENSITIVE (distinguishes {A,B} from {B,A}
     * and, unlike truncated addition, two different traces of equal PC
     * multisets), at the same storage cost.
     */
    RotateXor,
};

/** A compressed trace signature. */
class Signature
{
  public:
    Signature() = default;

    /**
     * Scramble a PC before adding it into the signature.
     *
     * The paper adds raw instruction addresses, whose natural entropy
     * spreads across the truncated sum. Our workload kernels use small,
     * word-aligned synthetic PC constants, which would make the low
     * signature bits artificially regular — so we pass each PC through
     * a 64-bit finalizer first. The encoding is still truncated
     * addition (commutative, order-insensitive) over per-instruction
     * constants, preserving the paper's aliasing behaviour.
     */
    static std::uint64_t
    mix(Pc pc)
    {
        std::uint64_t z = pc + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Start a new trace at the coherence-missing instruction @p pc. */
    static Signature
    init(Pc pc, unsigned bits,
         SigEncoding enc = SigEncoding::TruncatedAdd)
    {
        assert(bits >= 1 && bits <= 64);
        Signature s;
        s.bits_ = bits;
        s.enc_ = enc;
        s.value_ = mix(pc) & mask(bits);
        return s;
    }

    /** Extend the trace with the next touching instruction @p pc. */
    Signature
    extend(Pc pc) const
    {
        Signature s;
        s.bits_ = bits_;
        s.enc_ = enc_;
        if (enc_ == SigEncoding::TruncatedAdd) {
            s.value_ = (value_ + mix(pc)) & mask(bits_);
        } else {
            std::uint64_t rot =
                ((value_ << 1) | (value_ >> (bits_ - 1))) & mask(bits_);
            s.value_ = (rot ^ mix(pc)) & mask(bits_);
        }
        return s;
    }

    std::uint64_t value() const { return value_; }
    unsigned bits() const { return bits_; }
    SigEncoding encoding() const { return enc_; }

    bool
    operator==(const Signature &o) const
    {
        return value_ == o.value_ && bits_ == o.bits_;
    }

    bool operator!=(const Signature &o) const { return !(*this == o); }

  private:
    static constexpr std::uint64_t
    mask(unsigned bits)
    {
        return bits >= 64 ? ~std::uint64_t(0)
                          : ((std::uint64_t(1) << bits) - 1);
    }

    std::uint64_t value_ = 0;
    unsigned bits_ = 0;
    SigEncoding enc_ = SigEncoding::TruncatedAdd;
};

/**
 * A saturating confidence counter (Section 4 uses 2-bit counters to
 * filter low-accuracy last-touch signatures).
 *
 * Strengthened by +1 whenever the signature is observed to end a trace
 * (or a prediction verifies correct); predictions are made only when
 * the counter is saturated. A premature self-invalidation clears the
 * counter — the strong penalty is what keeps signature aliases (e.g., a
 * mid-trace prefix that matches another block's full trace) from
 * mispredicting over and over, and is how Last-PC's misprediction rate
 * stays near 2% even where its coverage collapses.
 */
class ConfidenceCounter
{
  public:
    explicit ConfidenceCounter(unsigned initial = 2, unsigned max = 3)
        : value_(initial), max_(max)
    {
    }

    void
    strengthen()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Penalize a premature prediction: clear the counter. */
    void weaken() { value_ = 0; }

    unsigned value() const { return value_; }
    bool atLeast(unsigned threshold) const { return value_ >= threshold; }
    bool saturated() const { return value_ >= max_; }

  private:
    unsigned value_;
    unsigned max_;
};

} // namespace ltp

#endif // LTP_PREDICTOR_SIGNATURE_HH
