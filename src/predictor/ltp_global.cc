#include "predictor/ltp_global.hh"

namespace ltp
{

bool
LtpGlobal::onTouch(Addr blk, Pc pc, bool is_write, bool fill)
{
    (void)is_write;
    BlockState &b = blocks_[blk];
    if (fill || !b.traceOpen) {
        b.cur = Signature::init(pc, params_.sigBits, params_.encoding);
        b.traceOpen = true;
    } else {
        b.cur = b.cur.extend(pc);
    }

    auto it = table_.find(b.cur.value());
    if (it != table_.end() && it->second.atLeast(params_.confThreshold)) {
        b.predictedSig = b.cur;
        return true;
    }
    return false;
}

void
LtpGlobal::onInvalidation(Addr blk)
{
    auto it = blocks_.find(blk);
    if (it == blocks_.end() || !it->second.traceOpen)
        return;
    BlockState &b = it->second;
    activeBlocks_[blk] = true;

    auto tit = table_.find(b.cur.value());
    if (tit != table_.end()) {
        tit->second.strengthen();
    } else {
        table_.emplace(b.cur.value(), ConfidenceCounter(params_.confInitial,
                                                        params_.confMax));
    }
    b.traceOpen = false;
    b.predictedSig.reset();
}

void
LtpGlobal::onVerification(Addr blk, bool premature)
{
    auto it = blocks_.find(blk);
    if (it == blocks_.end())
        return;
    BlockState &b = it->second;
    if (!b.predictedSig)
        return;
    activeBlocks_[blk] = true;

    auto tit = table_.find(b.predictedSig->value());
    if (tit != table_.end()) {
        if (premature)
            tit->second.weaken();
        else
            tit->second.strengthen();
    }
    b.predictedSig.reset();
    b.traceOpen = false;
}

std::optional<StorageStats>
LtpGlobal::storage() const
{
    StorageStats s;
    s.sigBits = params_.sigBits;
    s.activeBlocks = activeBlocks_.size();
    s.totalEntries = table_.size();
    return s;
}

} // namespace ltp
