#include "predictor/ltp_global.hh"

namespace ltp
{

bool
LtpGlobal::onTouch(Addr blk, Pc pc, bool is_write, bool fill)
{
    (void)is_write;
    BlockState &b = blocks_[blk];
    if (fill || !b.traceOpen) {
        b.cur = Signature::init(pc, params_.sigBits, params_.encoding);
        b.traceOpen = true;
    } else {
        b.cur = b.cur.extend(pc);
    }

    const ConfidenceCounter *conf = table_.find(b.cur.value());
    if (conf && conf->atLeast(params_.confThreshold)) {
        b.predictedSig = b.cur;
        return true;
    }
    return false;
}

void
LtpGlobal::onInvalidation(Addr blk)
{
    BlockState *bp = blocks_.find(blk);
    if (!bp || !bp->traceOpen)
        return;
    BlockState &b = *bp;
    activeBlocks_[blk] = true;

    if (ConfidenceCounter *conf = table_.find(b.cur.value())) {
        conf->strengthen();
    } else {
        table_.insert(b.cur.value(), ConfidenceCounter(params_.confInitial,
                                                       params_.confMax));
    }
    b.traceOpen = false;
    b.predictedSig.reset();
}

void
LtpGlobal::onVerification(Addr blk, bool premature)
{
    BlockState *bp = blocks_.find(blk);
    if (!bp)
        return;
    BlockState &b = *bp;
    if (!b.predictedSig)
        return;
    activeBlocks_[blk] = true;

    if (ConfidenceCounter *conf = table_.find(b.predictedSig->value())) {
        if (premature)
            conf->weaken();
        else
            conf->strengthen();
    }
    b.predictedSig.reset();
    b.traceOpen = false;
}

std::optional<StorageStats>
LtpGlobal::storage() const
{
    StorageStats s;
    s.sigBits = params_.sigBits;
    s.activeBlocks = activeBlocks_.size();
    s.totalEntries = table_.size();
    return s;
}

} // namespace ltp
