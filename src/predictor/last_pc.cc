#include "predictor/last_pc.hh"

namespace ltp
{

LastPcPredictor::TableEntry *
LastPcPredictor::findEntry(BlockState &b, Pc pc)
{
    for (auto &e : b.table) {
        if (e.pc == pc)
            return &e;
    }
    return nullptr;
}

bool
LastPcPredictor::onTouch(Addr blk, Pc pc, bool is_write, bool fill)
{
    (void)is_write;
    (void)fill;
    BlockState &b = blocks_[blk];
    b.lastPc = pc;
    b.traceOpen = true;

    TableEntry *e = findEntry(b, pc);
    if (e && e->conf.atLeast(params_.confThreshold)) {
        b.predictedPc = pc;
        return true;
    }
    return false;
}

void
LastPcPredictor::onInvalidation(Addr blk)
{
    BlockState *bp = blocks_.find(blk);
    if (!bp || !bp->traceOpen)
        return;
    BlockState &b = *bp;

    if (TableEntry *e = findEntry(b, b.lastPc)) {
        e->conf.strengthen();
    } else {
        b.table.push_back(TableEntry{
            b.lastPc,
            ConfidenceCounter(params_.confInitial, params_.confMax)});
    }
    b.traceOpen = false;
    b.predictedPc.reset();
}

void
LastPcPredictor::onVerification(Addr blk, bool premature)
{
    BlockState *bp = blocks_.find(blk);
    if (!bp)
        return;
    BlockState &b = *bp;
    if (!b.predictedPc)
        return;

    if (TableEntry *e = findEntry(b, *b.predictedPc)) {
        if (premature)
            e->conf.weaken();
        else
            e->conf.strengthen();
    }
    b.predictedPc.reset();
    b.traceOpen = false;
}

std::optional<StorageStats>
LastPcPredictor::storage() const
{
    StorageStats s;
    s.sigBits = 30; // a full PC
    for (const auto &[blk, b] : blocks_) {
        (void)blk;
        if (b.table.empty())
            continue;
        ++s.activeBlocks;
        s.totalEntries += b.table.size();
    }
    return s;
}

} // namespace ltp
