/**
 * @file
 * Dynamic Self-Invalidation (Lebeck & Wood), the paper's comparison
 * point (Section 2.1).
 *
 * "Which blocks": the directory's versioning protocol marks a data reply
 * as a candidate when the requester's remembered write-version differs
 * from the directory's — i.e., the block is actively shared. Migratory
 * upgrades (exclusive request by the block's only read-copy holder) are
 * deliberately excluded, as Lebeck & Wood found they cause premature
 * self-invalidation.
 *
 * "When": all candidate blocks self-invalidate when the processor
 * crosses a synchronization boundary (lock acquire/release or barrier) —
 * the brute-force trigger whose burstiness and lateness LTP fixes.
 */

#ifndef LTP_PREDICTOR_DSI_HH
#define LTP_PREDICTOR_DSI_HH

#include <set>

#include "predictor/invalidation_predictor.hh"

namespace ltp
{

/** DSI self-invalidation scheme. */
class DsiPredictor : public InvalidationPredictor
{
  public:
    bool
    onTouch(Addr, Pc, bool, bool) override
    {
        return false; // DSI never predicts at a touch
    }

    void
    onInvalidation(Addr blk) override
    {
        candidates_.erase(blk);
    }

    void
    onVerification(Addr blk, bool premature) override
    {
        // A premature self-invalidation re-fetches the block; its version
        // then matches the directory's again, so in the real scheme the
        // block stops being a candidate until another processor writes.
        if (premature)
            candidates_.erase(blk);
    }

    void
    onFillInfo(Addr blk, const FillInfo &info) override
    {
        if (info.dsiCandidate)
            candidates_.insert(blk);
        else
            candidates_.erase(blk);
    }

    void
    onSyncBoundary() override
    {
        // Flush the whole candidate list — the burst the paper measures.
        if (!port_)
            return;
        for (Addr blk : candidates_)
            port_->requestSelfInvalidate(blk);
    }

    std::string name() const override { return "dsi"; }

    std::size_t numCandidates() const { return candidates_.size(); }
    bool isCandidate(Addr blk) const { return candidates_.count(blk) != 0; }

  private:
    /** Ordered so that the flush burst is deterministic. */
    std::set<Addr> candidates_;
};

} // namespace ltp

#endif // LTP_PREDICTOR_DSI_HH
