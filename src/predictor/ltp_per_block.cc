#include "predictor/ltp_per_block.hh"

namespace ltp
{

LtpPerBlock::TableEntry *
LtpPerBlock::findEntry(BlockState &b, const Signature &sig)
{
    for (auto &e : b.table) {
        if (e.sig == sig)
            return &e;
    }
    return nullptr;
}

bool
LtpPerBlock::onTouch(Addr blk, Pc pc, bool is_write, bool fill)
{
    (void)is_write;
    BlockState &b = blocks_[blk];
    if (fill || !b.traceOpen) {
        b.cur = Signature::init(pc, params_.sigBits, params_.encoding);
        b.traceOpen = true;
    } else {
        b.cur = b.cur.extend(pc);
    }

    TableEntry *e = findEntry(b, b.cur);
    if (e && e->conf.atLeast(params_.confThreshold)) {
        b.predictedSig = b.cur;
        return true;
    }
    return false;
}

void
LtpPerBlock::onInvalidation(Addr blk)
{
    BlockState *bp = blocks_.find(blk);
    if (!bp || !bp->traceOpen)
        return;
    BlockState &b = *bp;

    // The trace just completed: its current signature IS the last-touch
    // signature for this sharing phase. Learn it.
    if (TableEntry *e = findEntry(b, b.cur)) {
        e->conf.strengthen();
    } else {
        b.table.push_back(TableEntry{
            b.cur, ConfidenceCounter(params_.confInitial, params_.confMax)});
    }
    b.traceOpen = false;
    b.predictedSig.reset();
}

void
LtpPerBlock::onVerification(Addr blk, bool premature)
{
    BlockState *bp = blocks_.find(blk);
    if (!bp)
        return;
    BlockState &b = *bp;
    if (!b.predictedSig)
        return;

    if (TableEntry *e = findEntry(b, *b.predictedSig)) {
        if (premature)
            e->conf.weaken();
        else
            e->conf.strengthen();
    }
    b.predictedSig.reset();
    // Either way the old trace is over: a correct self-invalidation ended
    // it; a premature one means the next touch misses and restarts it.
    b.traceOpen = false;
}

std::optional<StorageStats>
LtpPerBlock::storage() const
{
    StorageStats s;
    s.sigBits = params_.sigBits;
    for (const auto &[blk, b] : blocks_) {
        (void)blk;
        if (b.table.empty())
            continue; // never invalidated: not an actively shared block
        ++s.activeBlocks;
        s.totalEntries += b.table.size();
    }
    return s;
}

std::size_t
LtpPerBlock::tableSize(Addr blk) const
{
    const BlockState *b = blocks_.find(blk);
    return b ? b->table.size() : 0;
}

} // namespace ltp
