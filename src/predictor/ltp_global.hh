/**
 * @file
 * The alternative Last-Touch Predictor: a PAg-like two-level organization
 * with a single global last-touch signature table shared by all blocks
 * (Figure 4, bottom).
 *
 * The global table capitalizes on common sharing patterns across blocks
 * and cuts storage, but — as Section 5.3 shows — suffers subtrace
 * aliasing across blocks: a complete trace of one block that is a prefix
 * of another block's trace triggers premature predictions.
 */

#ifndef LTP_PREDICTOR_LTP_GLOBAL_HH
#define LTP_PREDICTOR_LTP_GLOBAL_HH

#include <optional>

#include "predictor/invalidation_predictor.hh"
#include "predictor/ltp_per_block.hh"
#include "predictor/signature.hh"
#include "sim/flat_map.hh"

namespace ltp
{

/** Global-table Last-Touch Predictor. */
class LtpGlobal : public InvalidationPredictor
{
  public:
    explicit LtpGlobal(LtpParams params = {}) : params_(params) {}

    bool onTouch(Addr blk, Pc pc, bool is_write, bool fill) override;
    void onInvalidation(Addr blk) override;
    void onVerification(Addr blk, bool premature) override;
    std::string name() const override { return "ltp-global"; }
    std::optional<StorageStats> storage() const override;

    std::size_t globalTableSize() const { return table_.size(); }

  private:
    struct BlockState
    {
        Signature cur;
        bool traceOpen = false;
        std::optional<Signature> predictedSig;
    };

    LtpParams params_;
    FlatMap<Addr, BlockState> blocks_;
    /** Global last-touch table: signature value -> confidence. */
    FlatMap<std::uint64_t, ConfidenceCounter> table_;
    /** Blocks that have completed at least one trace (Table 3 divisor). */
    FlatMap<Addr, bool> activeBlocks_;
};

} // namespace ltp

#endif // LTP_PREDICTOR_LTP_GLOBAL_HH
