/**
 * @file
 * The Last-PC predictor (Section 5.1's strawman).
 *
 * Same two-level organization as the per-block LTP, but instead of a
 * trace signature the per-block table stores the single PC of the last
 * instruction that touched the block before each invalidation. A touch
 * whose PC matches a confident stored last-PC is predicted to be the
 * last touch. Instruction reuse within a sharing phase (loops, repeated
 * procedure calls) defeats this scheme — the point of Section 3.1.
 */

#ifndef LTP_PREDICTOR_LAST_PC_HH
#define LTP_PREDICTOR_LAST_PC_HH

#include <optional>
#include <vector>

#include "predictor/invalidation_predictor.hh"
#include "predictor/ltp_per_block.hh"
#include "predictor/signature.hh"
#include "sim/flat_map.hh"

namespace ltp
{

/** Single-instruction (last-PC) predictor. */
class LastPcPredictor : public InvalidationPredictor
{
  public:
    explicit LastPcPredictor(LtpParams params = {}) : params_(params) {}

    bool onTouch(Addr blk, Pc pc, bool is_write, bool fill) override;
    void onInvalidation(Addr blk) override;
    void onVerification(Addr blk, bool premature) override;
    std::string name() const override { return "last-pc"; }
    std::optional<StorageStats> storage() const override;

  private:
    struct TableEntry
    {
        Pc pc;
        ConfidenceCounter conf;
    };

    struct BlockState
    {
        Pc lastPc = 0;
        bool traceOpen = false;
        std::vector<TableEntry> table;
        std::optional<Pc> predictedPc;
    };

    TableEntry *findEntry(BlockState &b, Pc pc);

    LtpParams params_;
    FlatMap<Addr, BlockState> blocks_;
};

} // namespace ltp

#endif // LTP_PREDICTOR_LAST_PC_HH
