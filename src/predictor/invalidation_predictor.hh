/**
 * @file
 * The predictor-side interface between a node's cache controller and any
 * self-invalidation predictor (LTP per-block, LTP global, Last-PC, DSI,
 * or the null predictor of the base system).
 *
 * The cache controller reports every completed touch to a coherently
 * cached block, every external invalidation, and every verification
 * outcome fed back by the directory. The predictor answers "is this the
 * last touch?" either synchronously (return value of onTouch) or, for
 * DSI-style schemes, asynchronously via the SelfInvalidationPort at a
 * synchronization boundary.
 */

#ifndef LTP_PREDICTOR_INVALIDATION_PREDICTOR_HH
#define LTP_PREDICTOR_INVALIDATION_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <string>

#include "predictor/storage.hh"
#include "sim/types.hh"

namespace ltp
{

/**
 * Callback surface a predictor uses to request self-invalidations that
 * are not tied to the current touch (DSI invalidates its whole candidate
 * list when the program crosses a synchronization boundary).
 */
class SelfInvalidationPort
{
  public:
    virtual ~SelfInvalidationPort() = default;

    /** Ask the owning cache controller to self-invalidate @p blk. */
    virtual void requestSelfInvalidate(Addr blk) = 0;
};

/** Per-block metadata arriving with a data reply. */
struct FillInfo
{
    /** DSI versioning verdict: block is actively shared. */
    bool dsiCandidate = false;
};

/**
 * Abstract self-invalidation predictor. One instance per node.
 *
 * All addresses passed in are block-aligned.
 */
class InvalidationPredictor
{
  public:
    virtual ~InvalidationPredictor() = default;

    /** Wire up the port used for asynchronous self-invalidation. */
    void setPort(SelfInvalidationPort *port) { port_ = port; }

    /**
     * A touch (load or store) to coherently cached block @p blk by the
     * instruction at @p pc has completed.
     *
     * @param fill true when this access filled the block (miss), i.e.,
     *             this touch begins a new trace.
     * @return true to predict this touch is the LAST touch before the
     *         next invalidation (the controller may then self-invalidate).
     */
    virtual bool onTouch(Addr blk, Pc pc, bool is_write, bool fill) = 0;

    /**
     * An external invalidation (Inv or WbReq) removed @p blk while it was
     * resident: the current trace ended without a last-touch prediction.
     * This is the predictor's learning event.
     */
    virtual void onInvalidation(Addr blk) = 0;

    /**
     * The directory verified an earlier self-invalidation of @p blk.
     * @param premature true if we self-invalidated too early (the next
     *        request for the block came from this same node).
     */
    virtual void onVerification(Addr blk, bool premature) = 0;

    /** Metadata that arrived with a data reply filling @p blk. */
    virtual void onFillInfo(Addr blk, const FillInfo &info)
    {
        (void)blk;
        (void)info;
    }

    /**
     * The processor crossed a synchronization boundary (lock acquire or
     * release, or barrier). Only DSI reacts to this; LTP is transparent.
     */
    virtual void onSyncBoundary() {}

    /** Short predictor name for reports. */
    virtual std::string name() const = 0;

    /** Storage-cost summary (Table 3); nullopt for table-less schemes. */
    virtual std::optional<StorageStats>
    storage() const
    {
        return std::nullopt;
    }

  protected:
    SelfInvalidationPort *port_ = nullptr;
};

/** The base system: never predicts anything. */
class NullPredictor : public InvalidationPredictor
{
  public:
    bool
    onTouch(Addr, Pc, bool, bool) override
    {
        return false;
    }

    void onInvalidation(Addr) override {}
    void onVerification(Addr, bool) override {}
    std::string name() const override { return "base"; }
};

} // namespace ltp

#endif // LTP_PREDICTOR_INVALIDATION_PREDICTOR_HH
