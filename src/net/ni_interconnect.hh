/**
 * @file
 * Shared network-interface machinery for Interconnect implementations:
 * injection accounting, the local-delivery bypass, the egress/ingress
 * NI FIFO servers, and end-to-end latency sampling (Average plus
 * Histogram, both named `net.endToEndLatency`).
 *
 * Subclasses only model what happens between the egress NI and the
 * ingress NI — a constant flight (Network) or a routed walk over FIFO
 * links (RoutedNetwork) — which keeps the NI contention and latency
 * accounting of all models identical by construction.
 */

#ifndef LTP_NET_NI_INTERCONNECT_HH
#define LTP_NET_NI_INTERCONNECT_HH

#include <deque>
#include <vector>

#include "net/message.hh"
#include "net/topo/interconnect.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace ltp
{

/** Interconnect base handling everything at the network interfaces. */
class NiInterconnect : public Interconnect
{
  public:
    void setSink(NodeId node, Sink sink) override;
    NodeId numNodes() const override { return NodeId(sinks_.size()); }
    const NetworkParams &params() const override { return params_; }

  protected:
    NiInterconnect(EventQueue &eq, NodeId num_nodes, NetworkParams params,
                   StatGroup &stats);

    Tick niOccupancy(const Message &m) const
    {
        return carriesData(m.type) ? params_.dataOccupancy
                                   : params_.controlOccupancy;
    }

    /**
     * Stamp and count an injected message; when src == dst, schedule the
     * 1-cycle local-delivery bypass and return true (nothing further for
     * the subclass to do).
     */
    bool injectLocalOrCount(Message &msg);

    /** Serialize @p msg through its egress NI; returns the clear tick. */
    Tick egressDone(const Message &msg);

    /** Hand @p msg (arriving from the subclass's fabric) to dst's NI. */
    void arriveAtIngress(Message msg);

    /** Sample latency stats and hand @p msg to its sink. */
    virtual void deliver(const Message &msg);

    EventQueue &eq_;
    NetworkParams params_;

    Counter &msgsSent_;
    Counter &dataMsgs_;
    Average &endToEndLatency_;
    Histogram &latencyHist_;

  private:
    void drainIngress(NodeId node);

    /** Earliest tick each egress NI is free. */
    std::vector<Tick> niEgressFree_;
    /** Per-ingress-NI FIFO of arrived-but-undelivered messages. */
    std::vector<std::deque<Message>> ingressQueue_;
    /** True while an ingress NI drain event is scheduled. */
    std::vector<bool> ingressBusy_;
    std::vector<Sink> sinks_;
};

} // namespace ltp

#endif // LTP_NET_NI_INTERCONNECT_HH
