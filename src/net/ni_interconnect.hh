/**
 * @file
 * Shared network-interface machinery for Interconnect implementations:
 * injection accounting, the local-delivery bypass, the egress/ingress
 * NI FIFO servers, and end-to-end latency sampling (Average plus
 * Histogram, both named `net.endToEndLatency`).
 *
 * Subclasses only model what happens between the egress NI and the
 * ingress NI — a constant flight (Network) or a routed walk over FIFO
 * links (RoutedNetwork) — which keeps the NI contention and latency
 * accounting of all models identical by construction.
 *
 * Sharding: every piece of NI state is owned by one node — the egress
 * server by the sender, the ingress queue and reorder state by the
 * receiver — and every event here runs on the owning node's queue
 * (SimContext::queueFor). Statistics are per-shard handles merged after
 * the run. The only cross-node step, handing a message from the
 * sender's fabric to the receiver, is the subclass's post() call.
 */

#ifndef LTP_NET_NI_INTERCONNECT_HH
#define LTP_NET_NI_INTERCONNECT_HH

#include <cassert>
#include <deque>
#include <memory>
#include <vector>

#include "net/message.hh"
#include "net/message_pool.hh"
#include "net/topo/interconnect.hh"
#include "sim/par/sim_context.hh"
#include "sim/stats.hh"

namespace ltp
{

/** Interconnect base handling everything at the network interfaces. */
class NiInterconnect : public Interconnect
{
  public:
    void setSink(NodeId node, Sink sink) override;
    NodeId numNodes() const override { return NodeId(sinks_.size()); }
    const NetworkParams &params() const override { return params_; }

  protected:
    NiInterconnect(SimContext &ctx, NodeId num_nodes,
                   NetworkParams params);

    /** Sequential-engine convenience: owns a context over @p eq/@p stats. */
    NiInterconnect(EventQueue &eq, NodeId num_nodes, NetworkParams params,
                   StatGroup &stats);

    /** The queue @p node's events run on. */
    EventQueue &q(NodeId node) { return ctx_->queueFor(node); }

    SimContext &ctx() { return *ctx_; }

    /** Take ownership of the context a subclass built for a legacy
     *  (EventQueue, StatGroup) constructor. @pre ctx() is *owned. */
    void
    adoptContext(std::unique_ptr<SimContext> owned)
    {
        assert(owned.get() == ctx_);
        ownedCtx_ = std::move(owned);
    }

    Tick niOccupancy(const Message &m) const
    {
        return carriesData(m.type) ? params_.dataOccupancy
                                   : params_.controlOccupancy;
    }

    /**
     * Stamp and count an injected message; when src == dst, schedule the
     * 1-cycle local-delivery bypass and return true (nothing further for
     * the subclass to do).
     */
    bool injectLocalOrCount(Message &msg);

    /** Serialize @p msg through its egress NI; returns the clear tick. */
    Tick egressDone(const Message &msg);

    /**
     * The in-flight message arena. Subclasses alloc at injection (on
     * the source node's shard) and every later hop moves only the
     * handle; deliver() frees it after the sink ran.
     */
    MessagePool &pool() { return pool_; }
    const MessagePool &pool() const { return pool_; }

    /** Hand @p h (arriving from the subclass's fabric) to dst's NI.
     *  Runs on the destination node's shard. */
    void arriveAtIngress(MsgHandle h);

    /** Sample latency stats, hand the message to its sink, free @p h. */
    virtual void deliver(MsgHandle h);

    NetworkParams params_;

  private:
    NiInterconnect(std::unique_ptr<SimContext> owned, NodeId num_nodes,
                   NetworkParams params);

    /** Schedule @p h's ingress-NI service (ends occupancy from now). */
    void serveIngress(NodeId node, MsgHandle h);

    SimContext *ctx_;
    std::unique_ptr<SimContext> ownedCtx_; //!< legacy-constructor shim
    MessagePool pool_;

    // Shared stat names, one handle per shard (merged after the run).
    std::vector<Counter *> msgsSent_;
    std::vector<Counter *> dataMsgs_;
    std::vector<Average *> endToEndLatency_;
    std::vector<Histogram *> latencyHist_;

    /** Earliest tick each egress NI is free. */
    std::vector<Tick> niEgressFree_;
    /** Per-ingress-NI FIFO of arrived-but-undelivered messages. */
    std::vector<std::deque<MsgHandle>> ingressQueue_;
    /** True while an ingress NI drain event is scheduled. */
    std::vector<bool> ingressBusy_;
    std::vector<Sink> sinks_;
};

} // namespace ltp

#endif // LTP_NET_NI_INTERCONNECT_HH
