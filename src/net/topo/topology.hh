/**
 * @file
 * Interconnect topology descriptions and deterministic routing.
 *
 * TopologyGeometry maps node ids onto a topology (point-to-point crossbar,
 * 2D mesh, 2D torus, or ring), enumerates physical links, and computes
 * the deterministic route a message follows:
 *
 *  - Mesh2D:  dimension-order (X then Y) routing.
 *  - Torus2D: dimension-order routing, taking the shorter wrap direction
 *             per dimension (ties broken toward increasing coordinate).
 *  - Ring:    shorter direction around the ring (tie toward increasing).
 *  - PointToPoint: every pair is directly connected (the paper's model).
 *
 * Deterministic single-path routing is what lets the routed interconnect
 * preserve the pairwise (src, dst) FIFO delivery order the coherence
 * protocol relies on: messages of a pair traverse the same sequence of
 * FIFO links, so they can never overtake each other.
 */

#ifndef LTP_NET_TOPO_TOPOLOGY_HH
#define LTP_NET_TOPO_TOPOLOGY_HH

#include <optional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace ltp
{

/** Which physical interconnect a system instantiates. */
enum class TopologyKind
{
    PointToPoint, //!< constant-latency crossbar (paper Table 1; default)
    Mesh2D,       //!< 2D mesh, dimension-order routed
    Torus2D,      //!< 2D torus, dimension-order routed with wrap links
    Ring,         //!< bidirectional ring, shortest-direction routed
};

/** Short stable name ("mesh", "torus", ...) for banners and CLIs. */
const char *topologyKindName(TopologyKind k);

/** Parse a CLI spelling ("p2p", "mesh", "torus2d", ...). */
std::optional<TopologyKind> parseTopologyKind(const std::string &name);

/** All kinds, in declaration order (sweep helpers). */
const std::vector<TopologyKind> &allTopologyKinds();

/**
 * How a router picks among the minimal (productive) output ports.
 *
 * DimensionOrder is the deterministic baseline every DSM run defaults
 * to. The other two add path diversity on 2D topologies; the routed
 * network restores pairwise (src, dst) delivery order behind them with
 * a sequence-numbered ingress reorder buffer, so all three are safe
 * under the coherence protocol.
 */
enum class RoutingPolicy
{
    DimensionOrder,  //!< X fully, then Y (deterministic; default)
    MinimalAdaptive, //!< least-congested productive port, DOR escape
    Oblivious,       //!< uniformly random productive port, DOR escape
};

/** Short stable name ("dor", "adaptive", "oblivious"). */
const char *routingPolicyName(RoutingPolicy p);

/** Parse a CLI spelling ("dor", "adaptive", "oblivious", ...). */
std::optional<RoutingPolicy> parseRoutingPolicy(const std::string &name);

/** All policies, in declaration order (sweep helpers). */
const std::vector<RoutingPolicy> &allRoutingPolicies();

/** Position of a node in the 2D layout (rings have y == 0). */
struct Coord
{
    unsigned x = 0;
    unsigned y = 0;

    bool operator==(const Coord &o) const { return x == o.x && y == o.y; }
};

/**
 * The static shape of one interconnect instance: node placement,
 * neighbor links, hop counts, and next-hop routing decisions.
 */
class TopologyGeometry
{
  public:
    /**
     * Lay @p num_nodes out on topology @p kind.
     *
     * For Mesh2D/Torus2D, @p mesh_width fixes the X dimension; it must
     * divide the node count or the constructor throws
     * std::invalid_argument (a silently re-factorized layout would make
     * every hop-count result quietly wrong). When 0 the most-square
     * factorization is chosen (e.g. 32 nodes -> 4 x 8).
     */
    TopologyGeometry(TopologyKind kind, NodeId num_nodes,
                     unsigned mesh_width = 0);

    TopologyKind kind() const { return kind_; }
    NodeId numNodes() const { return n_; }
    unsigned width() const { return width_; }
    unsigned height() const { return height_; }

    Coord coordOf(NodeId node) const;
    NodeId idOf(Coord c) const;

    /**
     * The next node on the deterministic dimension-order route from
     * @p cur to @p dst.
     * @pre cur != dst.
     */
    NodeId nextHop(NodeId cur, NodeId dst) const;

    /**
     * All minimal next hops from @p cur toward @p dst: at most one per
     * dimension, X candidate first (so element 0 is nextHop() whenever
     * X is unresolved). Wrap-distance ties are pinned toward the
     * increasing coordinate for every routing policy, keeping even-extent
     * torus/ring routes deterministic per (cur, dst).
     * @pre cur != dst.
     */
    std::vector<NodeId> productiveHops(NodeId cur, NodeId dst) const;

    /**
     * Allocation-free productiveHops for the router's per-hop path:
     * fills @p out (X candidate first) and returns the candidate count
     * (1 or 2; always 1 for point-to-point and ring).
     * @pre cur != dst.
     */
    unsigned productiveHopsInto(NodeId cur, NodeId dst,
                                NodeId (&out)[2]) const;

    /** Number of links the route from @p src to @p dst crosses. */
    unsigned hopCount(NodeId src, NodeId dst) const;

    /** Direct neighbors of @p node (each shared link appears once). */
    std::vector<NodeId> neighbors(NodeId node) const;

    /** Dimension (0 = X, 1 = Y) of the physical link @p from -> @p to.
     *  @pre the nodes are adjacent. */
    unsigned linkDim(NodeId from, NodeId to) const;

    /** True when @p from -> @p to is a wrap-around (dateline) link. */
    bool isWrapLink(NodeId from, NodeId to) const;

    /** True when wrap-around links exist (torus, ring). */
    bool wraps() const
    {
        return kind_ == TopologyKind::Torus2D || kind_ == TopologyKind::Ring;
    }

  private:
    /** Distance along one dimension of extent @p extent. */
    unsigned axisDistance(unsigned from, unsigned to, unsigned extent) const;
    /** Step (+1/-1, with wrap) along one dimension toward @p to. */
    unsigned axisStep(unsigned from, unsigned to, unsigned extent) const;

    TopologyKind kind_;
    NodeId n_;
    unsigned width_ = 1;
    unsigned height_ = 1;
};

} // namespace ltp

#endif // LTP_NET_TOPO_TOPOLOGY_HH
