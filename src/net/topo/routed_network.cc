#include "net/topo/routed_network.hh"

#include <algorithm>
#include <cassert>
#include <string>

#include "obs/trace.hh"
#include "sim/guard/checkers.hh"
#include "sim/guard/fault.hh"

namespace ltp
{

namespace
{

std::string
linkStatName(const char *what, NodeId from, NodeId to)
{
    return std::string("net.") + what + "." + std::to_string(from) + "-" +
           std::to_string(to);
}

} // namespace

RoutedNetwork::RoutedNetwork(SimContext &ctx, NodeId num_nodes,
                             NetworkParams params)
    : NiInterconnect(ctx, num_nodes, params),
      geom_(params.topology, num_nodes, params.meshWidth),
      linkIdx_(std::size_t(num_nodes) * num_nodes, -1),
      sendSeq_(std::size_t(num_nodes) * num_nodes, 0),
      pairs_(std::size_t(num_nodes) * num_nodes)
{
    assert(params_.topology != TopologyKind::PointToPoint &&
           "use Network for the point-to-point model");

    for (unsigned s = 0; s < ctx.numShards(); ++s) {
        StatGroup &stats = ctx.shardStats(s);
        hops_.push_back(&stats.counter("net.hops"));
        hopsPerMsg_.push_back(&stats.average("net.hopsPerMsg"));
        escapeReroutes_.push_back(&stats.counter("net.escapeReroutes"));
        reorderHeld_.push_back(&stats.counter("net.reorderHeld"));
    }

    escapeVcs_ = geom_.wraps() ? 2 : 1;
    unsigned auto_vcs =
        escapeVcs_ +
        (params_.routing == RoutingPolicy::DimensionOrder ? 0 : 1);
    numVcs_ = params_.vcCount ? params_.vcCount : auto_vcs;
    assert(numVcs_ >= auto_vcs && "validateNetworkParams missed");

    for (NodeId from = 0; from < num_nodes; ++from) {
        // A link's queue/credit/busy state is owned by its upstream
        // router's shard: its counters register there too.
        StatGroup &stats = ctx.shardStats(ctx.shardOf(from));
        for (NodeId to : geom_.neighbors(from)) {
            linkIdx_[std::size_t(from) * num_nodes + to] =
                int(links_.size());
            Link link;
            link.from = from;
            link.to = to;
            link.dim = std::uint8_t(geom_.linkDim(from, to));
            link.wrap = geom_.isWrapLink(from, to);
            if (bounded())
                link.credits.assign(numVcs_, params_.vcDepth);
            link.msgs = &stats.counter(linkStatName("linkMsgs", from, to));
            link.busyCycles =
                &stats.counter(linkStatName("linkBusy", from, to));
            links_.push_back(std::move(link));
        }
    }
}

RoutedNetwork::RoutedNetwork(std::unique_ptr<SimContext> owned,
                             NodeId num_nodes, NetworkParams params)
    : RoutedNetwork(*owned, num_nodes, params)
{
    adoptContext(std::move(owned));
}

RoutedNetwork::RoutedNetwork(EventQueue &eq, NodeId num_nodes,
                             NetworkParams params, StatGroup &stats)
    : RoutedNetwork(std::make_unique<SequentialContext>(eq, stats),
                    num_nodes, params)
{
}

int
RoutedNetwork::linkIndex(NodeId from, NodeId to) const
{
    return linkIdx_[std::size_t(from) * numNodes() + to];
}

unsigned
RoutedNetwork::obliviousPick(NodeId at, const Message &msg,
                             unsigned n) const
{
    // A pure draw per (injection, hop): the message's (src, dst, netSeq)
    // names the injection, and productive routing visits any router at
    // most once, so `at` names the hop. No router consumes anyone
    // else's stream, which is what lets oblivious routing shard.
    constexpr std::uint64_t seed = 0x0B11'0B11'0B11'0B11ull;
    return unsigned(counterHash(seed, msg.src, msg.dst, msg.netSeq, at) %
                    n);
}

std::uint8_t
RoutedNetwork::escapeVc(NodeId at, NodeId next, const Message &msg) const
{
    if (escapeVcs_ < 2)
        return 0;
    unsigned dim = geom_.linkDim(at, next);
    return (msg.netVcFlags & (1u << dim)) ? 1 : 0;
}

std::uint8_t
RoutedNetwork::adaptiveVc(const Link &link) const
{
    assert(numVcs_ > escapeVcs_);
    if (!bounded() || numVcs_ == escapeVcs_ + 1)
        return std::uint8_t(escapeVcs_);
    // Several adaptive VCs: pick the emptiest downstream buffer.
    unsigned best = escapeVcs_;
    for (unsigned vc = escapeVcs_ + 1; vc < numVcs_; ++vc)
        if (link.credits[vc] > link.credits[best])
            best = vc;
    return std::uint8_t(best);
}

std::size_t
RoutedNetwork::congestion(std::size_t l)
{
    const Link &link = links_[l];
    std::size_t score = link.q.size() + (linkIdle(link) ? 0 : 1);
    if (bounded()) {
        // Count the filled downstream slots too: a drained queue whose
        // buffers are full is still a poor choice.
        for (unsigned vc = 0; vc < numVcs_; ++vc)
            score += params_.vcDepth - link.credits[vc];
    }
    return score;
}

void
RoutedNetwork::send(Message msg)
{
    if (injectLocalOrCount(msg))
        return;

    msg.netSeq = sendSeq_[pairKey(msg.src, msg.dst)]++;
    msg.netVcFlags = 0;
    NodeId src = msg.src;
    Tick clear = egressDone(msg);
    MsgHandle h = pool().alloc(ctx().shardOf(src), msg);
    q(src).scheduleAt(clear, [this, src, h] { forward(src, h, -1, 0); });
}

void
RoutedNetwork::forward(NodeId at, MsgHandle h, std::int32_t in_link,
                       std::uint8_t in_vc)
{
    const Message &msg = pool().at(h);
    std::size_t l;
    std::uint8_t vc;
    if (params_.routing == RoutingPolicy::DimensionOrder) {
        NodeId next = geom_.nextHop(at, msg.dst);
        l = routeLink(at, next);
        vc = escapeVc(at, next, msg);
    } else {
        NodeId cands[2];
        unsigned n = geom_.productiveHopsInto(at, msg.dst, cands);
        unsigned pick = 0;
        if (n > 1) {
            if (params_.routing == RoutingPolicy::Oblivious) {
                pick = obliviousPick(at, msg, n);
            } else if (congestion(routeLink(at, cands[1])) <
                       congestion(routeLink(at, cands[0]))) {
                // Minimal-adaptive: the less congested productive port;
                // ties go to the dimension-order choice (element 0).
                pick = 1;
            }
        }
        l = routeLink(at, cands[pick]);
        vc = adaptiveVc(links_[l]);
    }
    enqueue(l, Entry{h, vc, in_link, in_vc});
}

void
RoutedNetwork::enqueue(std::size_t l, Entry e)
{
    Link &link = links_[l];
    link.q.push_back(std::move(e));
    pump(l);
}

void
RoutedNetwork::pump(std::size_t l)
{
    Link &link = links_[l];
    if (link.draining)
        return;
    if (!linkIdle(link)) {
        // Serializing: no arbitration until the wire clears. Arm the
        // link engine so exactly one drain event exists at freeAt —
        // this replaces the unconditional per-grant link-free event.
        armEngine(l);
        return;
    }
    drainLink(l);
}

void
RoutedNetwork::armEngine(std::size_t l)
{
    Link &link = links_[l];
    if (link.armed || link.q.empty())
        return;
    link.armed = true;
    q(link.from).scheduleAt(link.freeAt, [this, l] {
        links_[l].armed = false;
        // pump(), not drainLink(): a credit that landed earlier this
        // tick may already have granted and re-busied the link.
        pump(l);
    });
}

void
RoutedNetwork::drainLink(std::size_t l)
{
    Link &link = links_[l];
    if (link.draining)
        return;
    assert(linkIdle(link));
    link.draining = true;

    // Batched drain: one event retires every grant whose outcome is
    // already decided, walking a virtual clock `start` forward by one
    // serialization per grant. The first grant happens at real time
    // (start == now) with exactly the old single-grant arbitration.
    // Later grants happen at virtual times, where only one decision is
    // provably identical to what a real drain event at that tick would
    // make: granting a *credited head*. Credits seen here are a lower
    // bound (returns landing inside (now, start] are invisible to the
    // batch, and a return can never be *lost*), so a head credited
    // under the batch's view is credited for the real event too — and
    // being the head, it is the entry the scan would pick. Everything
    // else — a blocked head with a credited later entry (the real
    // event might instead grant the freshly-credited head), an
    // uncredited queue (the real event might grant or escape-reroute) —
    // ends the batch; armEngine re-decides at freeAt with fresh state.
    // Grant outcomes, ticks and VCs are therefore identical to the
    // one-event-per-grant engine; only the posting event differs.
    Tick now = q(link.from).now();
    Tick start = now;
    for (;;) {
        // Grant the first request whose VC has a free downstream slot.
        // Later entries of *other* VCs may overtake a blocked head (that
        // is what virtual channels are for); same-VC order is preserved
        // because the scan always reaches the earlier entry first.
        std::size_t i = 0;
        for (; i < link.q.size(); ++i) {
            if (hasCredit(link, link.q[i].vc))
                break;
        }
        if (i < link.q.size()) {
            if (start != now && i != 0)
                break; // virtual-time overtake: re-decide at freeAt
            Entry e = std::move(link.q[i]);
            link.q.erase(link.q.begin() +
                         std::deque<Entry>::difference_type(i));
            grantAt(l, std::move(e), start);
            start = link.freeAt;
            if (link.q.empty())
                break;
            continue;
        }

        if (start != now)
            break; // credit view exhausted: re-decide at freeAt

        // Nothing can move. Duato-style escape: hand the oldest blocked
        // adaptive request over to the deadlock-free dimension-order
        // path, then rescan (in-place downgrades may now be grantable).
        std::size_t blocked = link.q.size();
        for (std::size_t j = 0; j < link.q.size(); ++j) {
            if (isAdaptiveVc(link.q[j].vc)) {
                blocked = j;
                break;
            }
        }
        if (blocked == link.q.size())
            break; // only escape traffic left; credits will re-kick us

        Entry e = std::move(link.q[blocked]);
        link.q.erase(link.q.begin() +
                     std::deque<Entry>::difference_type(blocked));
        const Message &msg = pool().at(e.h);
        escapeReroutes_[ctx().shardOf(link.from)]->inc();
        obs::Tracer::instant(obs::Cat::Link, link.from, "escape reroute",
                             q(link.from).now(), msg.dst);
        NodeId dor = geom_.nextHop(link.from, msg.dst);
        e.vc = escapeVc(link.from, dor, msg);
        std::size_t el = routeLink(link.from, dor);
        if (el == l)
            link.q.insert(link.q.begin() +
                              std::deque<Entry>::difference_type(blocked),
                          std::move(e));
        else
            enqueue(el, std::move(e));
    }

    link.draining = false;
    // Re-arm only when this drain actually busied the wire: with the
    // link still idle (nothing granted — every VC credit-blocked), a
    // drain at freeAt <= now would re-run this same arbitration in the
    // same tick forever. The credit return (scheduleCreditReturn) or
    // the next enqueue() pumps the link instead, as before batching.
    if (!link.q.empty() && !linkIdle(link))
        armEngine(l);
}

void
RoutedNetwork::grantAt(std::size_t l, Entry e, Tick start)
{
    Link &link = links_[l];
    if (bounded()) {
        --link.credits[e.vc];
        // The upstream input-buffer slot frees as the message leaves it;
        // its credit flies back over the wire.
        if (e.inLink >= 0)
            scheduleCreditReturn(std::size_t(e.inLink), e.inVc, start);
    }

    Message &msg = pool().at(e.h);
    Tick ser = serializationTicks(msg);
    if (guard::Faults::on(guard::FaultKind::LinkStall)) {
        // Deterministic jitter: a pure hash of (seed, link, grant
        // index). The grant sequence on a link is itself deterministic
        // and shard-count invariant, so fault-injected runs stay
        // bit-reproducible at every simThreads value.
        ser += guard::Faults::instance().linkStallTicks(l,
                                                        link.faultGrants++);
    }
    link.msgs->inc();
    link.busyCycles->inc(ser);
    hops_[ctx().shardOf(link.from)]->inc();
    // The wire-busy span on the upstream router's track: one grant =
    // one serialization window on link from->to via the allocated VC.
    obs::Tracer::span(obs::Cat::Link, link.from, "grant", start,
                      start + ser, link.to, e.vc);

    // The in-flight message has exactly one logical owner (this grant),
    // so the dateline stamp mutates it in place.
    if (link.wrap)
        msg.netVcFlags |= std::uint8_t(1u << link.dim);

    // Serialize on the link, then fly one hop and clear the next router's
    // pipeline. Departures from a link are credit-gated but same-VC FIFO,
    // and the downstream delay is constant, so per-(src, dst) order is
    // preserved along any deterministic route.
    //
    // Serialization end is pure bookkeeping (`freeAt`), not an event:
    // the batched link engine (armEngine) only materializes a drain
    // event when traffic is actually waiting for the wire. The arrival
    // mutates the downstream router and crosses shards through post()
    // with serialization + wire + pipeline of lookahead.
    Tick done = start + ser;
    link.freeAt = done;

    Tick arrive = done + params_.hopLatency + params_.routerLatency;
    std::uint8_t vc = e.vc;
    MsgHandle h = e.h;
    ctx().post(link.to, arrive, chan::link(l),
               [this, l, vc, h] { arriveAtRouter(l, vc, h); });
}

void
RoutedNetwork::scheduleCreditReturn(std::size_t l, std::uint8_t vc,
                                    Tick from)
{
    // Both callers (a downstream grant, an ejection) execute on the
    // shard of links_[l].to — the router holding the freed buffer slot —
    // while the credit mutates links_[l], owned by links_[l].from's
    // shard one wire hop upstream. @p from is the freeing grant's
    // (possibly virtual) start tick, >= the posting event's now.
    Tick when = from + params_.hopLatency;
    ctx().post(links_[l].from, when, chan::credit(l), [this, l, vc] {
        Link &link = links_[l];
        ++link.credits[vc];
        assert(link.credits[vc] <= params_.vcDepth &&
               "credit conservation violated");
        if (guard::Checks::on(obs::Cat::Link) &&
            link.credits[vc] > params_.vcDepth) {
            // The assert's always-on twin: catches credit over-return
            // in Release builds the moment it happens.
            throw guard::CheckFailure(
                "credit over-return on link " + std::to_string(link.from) +
                "->" + std::to_string(link.to) + " vc " +
                std::to_string(vc) + ": " +
                std::to_string(link.credits[vc]) + " credits > vcDepth " +
                std::to_string(params_.vcDepth));
        }
        if (linkIdle(link))
            drainLink(l);
    });
}

void
RoutedNetwork::arriveAtRouter(std::size_t l, std::uint8_t vc, MsgHandle h)
{
    NodeId at = links_[l].to;
    if (at == pool().at(h).dst) {
        // Ejection is always available, so the input-buffer slot frees
        // immediately.
        if (bounded())
            scheduleCreditReturn(l, vc, q(at).now());
        reorderDeliver(h);
        return;
    }
    forward(at, h, std::int32_t(l), vc);
}

void
RoutedNetwork::reorderDeliver(MsgHandle h)
{
    const Message &msg = pool().at(h);
    PairState &ps = pairs_[pairKey(msg.src, msg.dst)];
    if (msg.netSeq != ps.nextSeq) {
        // An earlier injection of this pair is still in flight (adaptive
        // or oblivious routing took a different path); park this one.
        reorderHeld_[ctx().shardOf(msg.dst)]->inc();
        ps.pending.emplace(msg.netSeq, h);
        return;
    }
    arriveAtIngress(h);
    ++ps.nextSeq;
    for (auto it = ps.pending.find(ps.nextSeq); it != ps.pending.end();
         it = ps.pending.find(ps.nextSeq)) {
        arriveAtIngress(it->second);
        ps.pending.erase(it);
        ++ps.nextSeq;
    }
}

void
RoutedNetwork::deliver(MsgHandle h)
{
    const Message &msg = pool().at(h);
    hopsPerMsg_[ctx().shardOf(msg.dst)]->sample(
        double(geom_.hopCount(msg.src, msg.dst)));
    NiInterconnect::deliver(h);
}

void
RoutedNetwork::guardCheckQuiesce() const
{
    for (std::size_t l = 0; l < links_.size(); ++l) {
        const Link &link = links_[l];
        std::string where = "link " + std::to_string(link.from) + "->" +
                            std::to_string(link.to);
        if (!link.q.empty()) {
            const Message &first = pool().at(link.q.front().h);
            throw guard::CheckFailure(
                where + " still holds " + std::to_string(link.q.size()) +
                " waiting message(s) at quiesce (first: " +
                msgTypeName(first.type) + " " + std::to_string(first.src) +
                "->" + std::to_string(first.dst) + ")");
        }
        if (!bounded())
            continue;
        for (unsigned vc = 0; vc < numVcs_; ++vc) {
            if (link.credits[vc] != params_.vcDepth) {
                throw guard::CheckFailure(
                    "credit conservation violated at quiesce: " + where +
                    " vc " + std::to_string(vc) + " holds " +
                    std::to_string(link.credits[vc]) + "/" +
                    std::to_string(params_.vcDepth) + " credits");
            }
        }
    }
    for (std::size_t p = 0; p < pairs_.size(); ++p) {
        const PairState &ps = pairs_[p];
        if (!ps.pending.empty()) {
            NodeId src = NodeId(p / numNodes());
            NodeId dst = NodeId(p % numNodes());
            throw guard::CheckFailure(
                "reorder buffer for pair " + std::to_string(src) + "->" +
                std::to_string(dst) + " still parks " +
                std::to_string(ps.pending.size()) +
                " message(s) at quiesce (next expected netSeq " +
                std::to_string(ps.nextSeq) + ", first parked " +
                std::to_string(ps.pending.begin()->first) + ")");
        }
    }
}

} // namespace ltp
