#include "net/topo/routed_network.hh"

#include <cassert>
#include <string>

namespace ltp
{

namespace
{

std::string
linkStatName(const char *what, NodeId from, NodeId to)
{
    return std::string("net.") + what + "." + std::to_string(from) + "-" +
           std::to_string(to);
}

} // namespace

RoutedNetwork::RoutedNetwork(EventQueue &eq, NodeId num_nodes,
                             NetworkParams params, StatGroup &stats)
    : NiInterconnect(eq, num_nodes, params, stats),
      geom_(params.topology, num_nodes, params.meshWidth),
      linkIdx_(std::size_t(num_nodes) * num_nodes, -1),
      hops_(stats.counter("net.hops")),
      hopsPerMsg_(stats.average("net.hopsPerMsg"))
{
    assert(params_.topology != TopologyKind::PointToPoint &&
           "use Network for the point-to-point model");
    for (NodeId from = 0; from < num_nodes; ++from) {
        for (NodeId to : geom_.neighbors(from)) {
            linkIdx_[std::size_t(from) * num_nodes + to] =
                int(links_.size());
            Link link;
            link.from = from;
            link.to = to;
            link.msgs = &stats.counter(linkStatName("linkMsgs", from, to));
            link.busyCycles =
                &stats.counter(linkStatName("linkBusy", from, to));
            links_.push_back(std::move(link));
        }
    }
}

int
RoutedNetwork::linkIndex(NodeId from, NodeId to) const
{
    return linkIdx_[std::size_t(from) * numNodes() + to];
}

void
RoutedNetwork::send(Message msg)
{
    if (injectLocalOrCount(msg))
        return;

    eq_.scheduleAt(egressDone(msg), [this, msg] { forward(msg.src, msg); });
}

void
RoutedNetwork::forward(NodeId at, Message msg)
{
    NodeId next = geom_.nextHop(at, msg.dst);
    int l = linkIndex(at, next);
    assert(l >= 0 && "route must follow physical links");
    links_[std::size_t(l)].q.push_back(msg);
    if (!links_[std::size_t(l)].busy)
        drainLink(std::size_t(l));
}

void
RoutedNetwork::drainLink(std::size_t l)
{
    Link &link = links_[l];
    if (link.q.empty()) {
        link.busy = false;
        return;
    }
    link.busy = true;
    Message msg = link.q.front();
    link.q.pop_front();

    // Serialize on the link, then fly one hop and clear the next router's
    // pipeline. Departures from a FIFO link are in queue order, and the
    // downstream delay is constant, so per-link FIFO order is preserved
    // end to end along the (deterministic) route.
    Tick occ = linkOccupancy(msg);
    link.msgs->inc();
    link.busyCycles->inc(occ);
    hops_.inc();

    Tick done = eq_.now() + occ;
    eq_.scheduleAt(done, [this, l] { drainLink(l); });

    Tick arrive = done + params_.hopLatency + params_.routerLatency;
    NodeId to = link.to;
    eq_.scheduleAt(arrive, [this, to, msg] {
        if (to == msg.dst)
            arriveAtIngress(msg);
        else
            forward(to, msg);
    });
}

void
RoutedNetwork::deliver(const Message &msg)
{
    hopsPerMsg_.sample(double(geom_.hopCount(msg.src, msg.dst)));
    NiInterconnect::deliver(msg);
}

} // namespace ltp
