#include "net/topo/topology.hh"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <stdexcept>

namespace ltp
{

const char *
topologyKindName(TopologyKind k)
{
    switch (k) {
      case TopologyKind::PointToPoint: return "p2p";
      case TopologyKind::Mesh2D: return "mesh";
      case TopologyKind::Torus2D: return "torus";
      case TopologyKind::Ring: return "ring";
    }
    return "?";
}

std::optional<TopologyKind>
parseTopologyKind(const std::string &name)
{
    std::string s;
    for (char c : name)
        s += char(std::tolower(static_cast<unsigned char>(c)));
    if (s == "p2p" || s == "pointtopoint" || s == "point-to-point" ||
        s == "crossbar")
        return TopologyKind::PointToPoint;
    if (s == "mesh" || s == "mesh2d")
        return TopologyKind::Mesh2D;
    if (s == "torus" || s == "torus2d")
        return TopologyKind::Torus2D;
    if (s == "ring")
        return TopologyKind::Ring;
    return std::nullopt;
}

const std::vector<TopologyKind> &
allTopologyKinds()
{
    static const std::vector<TopologyKind> kinds = {
        TopologyKind::PointToPoint,
        TopologyKind::Mesh2D,
        TopologyKind::Torus2D,
        TopologyKind::Ring,
    };
    return kinds;
}

const char *
routingPolicyName(RoutingPolicy p)
{
    switch (p) {
      case RoutingPolicy::DimensionOrder: return "dor";
      case RoutingPolicy::MinimalAdaptive: return "adaptive";
      case RoutingPolicy::Oblivious: return "oblivious";
    }
    return "?";
}

std::optional<RoutingPolicy>
parseRoutingPolicy(const std::string &name)
{
    std::string s;
    for (char c : name)
        s += char(std::tolower(static_cast<unsigned char>(c)));
    if (s == "dor" || s == "xy" || s == "dimension-order" ||
        s == "deterministic")
        return RoutingPolicy::DimensionOrder;
    if (s == "adaptive" || s == "minimal-adaptive" || s == "min-adaptive")
        return RoutingPolicy::MinimalAdaptive;
    if (s == "oblivious" || s == "random" || s == "randomized-oblivious")
        return RoutingPolicy::Oblivious;
    return std::nullopt;
}

const std::vector<RoutingPolicy> &
allRoutingPolicies()
{
    static const std::vector<RoutingPolicy> policies = {
        RoutingPolicy::DimensionOrder,
        RoutingPolicy::MinimalAdaptive,
        RoutingPolicy::Oblivious,
    };
    return policies;
}

TopologyGeometry::TopologyGeometry(TopologyKind kind, NodeId num_nodes,
                                   unsigned mesh_width)
    : kind_(kind), n_(num_nodes)
{
    assert(n_ > 0);
    switch (kind_) {
      case TopologyKind::PointToPoint:
        width_ = n_;
        height_ = 1;
        break;
      case TopologyKind::Ring:
        width_ = n_;
        height_ = 1;
        break;
      case TopologyKind::Mesh2D:
      case TopologyKind::Torus2D:
        if (mesh_width == 0) {
            // Most-square factorization: largest divisor <= sqrt(n).
            unsigned w = 1;
            for (unsigned c = 1; c * c <= n_; ++c)
                if (n_ % c == 0)
                    w = c;
            width_ = w;
        } else if (mesh_width <= n_ && n_ % mesh_width == 0) {
            width_ = mesh_width;
        } else {
            throw std::invalid_argument(
                "meshWidth " + std::to_string(mesh_width) +
                " does not divide the node count " + std::to_string(n_) +
                " (use 0 for the most-square factorization)");
        }
        height_ = n_ / width_;
        break;
    }
}

Coord
TopologyGeometry::coordOf(NodeId node) const
{
    assert(node < n_);
    return Coord{unsigned(node) % width_, unsigned(node) / width_};
}

NodeId
TopologyGeometry::idOf(Coord c) const
{
    assert(c.x < width_ && c.y < height_);
    return NodeId(c.y * width_ + c.x);
}

unsigned
TopologyGeometry::axisDistance(unsigned from, unsigned to,
                               unsigned extent) const
{
    unsigned d = from > to ? from - to : to - from;
    if (wraps())
        d = std::min(d, extent - d);
    return d;
}

unsigned
TopologyGeometry::axisStep(unsigned from, unsigned to, unsigned extent) const
{
    assert(from != to);
    if (!wraps())
        return from < to ? from + 1 : from - 1;
    // Shorter wrap direction; tie broken toward increasing coordinate.
    unsigned fwd = (to + extent - from) % extent;
    unsigned bwd = extent - fwd;
    if (fwd <= bwd)
        return (from + 1) % extent;
    return (from + extent - 1) % extent;
}

NodeId
TopologyGeometry::nextHop(NodeId cur, NodeId dst) const
{
    assert(cur != dst && cur < n_ && dst < n_);
    if (kind_ == TopologyKind::PointToPoint)
        return dst;

    Coord c = coordOf(cur);
    Coord d = coordOf(dst);
    // Dimension-order: resolve X fully, then Y. A ring is the X-only case.
    if (c.x != d.x)
        return idOf(Coord{axisStep(c.x, d.x, width_), c.y});
    return idOf(Coord{c.x, axisStep(c.y, d.y, height_)});
}

std::vector<NodeId>
TopologyGeometry::productiveHops(NodeId cur, NodeId dst) const
{
    NodeId hops[2];
    unsigned n = productiveHopsInto(cur, dst, hops);
    return std::vector<NodeId>(hops, hops + n);
}

unsigned
TopologyGeometry::productiveHopsInto(NodeId cur, NodeId dst,
                                     NodeId (&out)[2]) const
{
    assert(cur != dst && cur < n_ && dst < n_);
    if (kind_ == TopologyKind::PointToPoint) {
        out[0] = dst;
        return 1;
    }

    // axisStep() already pins wrap-distance ties toward the increasing
    // coordinate, so each unresolved dimension contributes exactly one
    // candidate and routes stay deterministic per (cur, dst) pair.
    Coord c = coordOf(cur);
    Coord d = coordOf(dst);
    unsigned n = 0;
    if (c.x != d.x)
        out[n++] = idOf(Coord{axisStep(c.x, d.x, width_), c.y});
    if (c.y != d.y)
        out[n++] = idOf(Coord{c.x, axisStep(c.y, d.y, height_)});
    return n;
}

unsigned
TopologyGeometry::linkDim(NodeId from, NodeId to) const
{
    assert(from < n_ && to < n_ && from != to);
    Coord f = coordOf(from);
    Coord t = coordOf(to);
    assert((f.x != t.x) != (f.y != t.y) && "not a physical link");
    return f.x != t.x ? 0 : 1;
}

bool
TopologyGeometry::isWrapLink(NodeId from, NodeId to) const
{
    if (!wraps())
        return false;
    Coord f = coordOf(from);
    Coord t = coordOf(to);
    // Adjacent coordinates differ by 1 except across the wrap seam.
    unsigned df = f.x > t.x ? f.x - t.x : t.x - f.x;
    unsigned dh = f.y > t.y ? f.y - t.y : t.y - f.y;
    return df > 1 || dh > 1;
}

unsigned
TopologyGeometry::hopCount(NodeId src, NodeId dst) const
{
    assert(src < n_ && dst < n_);
    if (src == dst)
        return 0;
    if (kind_ == TopologyKind::PointToPoint)
        return 1;
    Coord s = coordOf(src);
    Coord d = coordOf(dst);
    return axisDistance(s.x, d.x, width_) + axisDistance(s.y, d.y, height_);
}

std::vector<NodeId>
TopologyGeometry::neighbors(NodeId node) const
{
    assert(node < n_);
    std::vector<NodeId> out;
    if (kind_ == TopologyKind::PointToPoint) {
        for (NodeId o = 0; o < n_; ++o)
            if (o != node)
                out.push_back(o);
        return out;
    }

    Coord c = coordOf(node);
    auto add = [&](Coord nc) {
        NodeId id = idOf(nc);
        if (id != node && std::find(out.begin(), out.end(), id) == out.end())
            out.push_back(id);
    };
    if (wraps()) {
        if (width_ > 1) {
            add(Coord{(c.x + 1) % width_, c.y});
            add(Coord{(c.x + width_ - 1) % width_, c.y});
        }
        if (height_ > 1) {
            add(Coord{c.x, (c.y + 1) % height_});
            add(Coord{c.x, (c.y + height_ - 1) % height_});
        }
    } else {
        if (c.x + 1 < width_)
            add(Coord{c.x + 1, c.y});
        if (c.x > 0)
            add(Coord{c.x - 1, c.y});
        if (c.y + 1 < height_)
            add(Coord{c.x, c.y + 1});
        if (c.y > 0)
            add(Coord{c.x, c.y - 1});
    }
    return out;
}

} // namespace ltp
