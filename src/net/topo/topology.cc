#include "net/topo/topology.hh"

#include <algorithm>
#include <cassert>
#include <cctype>

namespace ltp
{

const char *
topologyKindName(TopologyKind k)
{
    switch (k) {
      case TopologyKind::PointToPoint: return "p2p";
      case TopologyKind::Mesh2D: return "mesh";
      case TopologyKind::Torus2D: return "torus";
      case TopologyKind::Ring: return "ring";
    }
    return "?";
}

std::optional<TopologyKind>
parseTopologyKind(const std::string &name)
{
    std::string s;
    for (char c : name)
        s += char(std::tolower(static_cast<unsigned char>(c)));
    if (s == "p2p" || s == "pointtopoint" || s == "point-to-point" ||
        s == "crossbar")
        return TopologyKind::PointToPoint;
    if (s == "mesh" || s == "mesh2d")
        return TopologyKind::Mesh2D;
    if (s == "torus" || s == "torus2d")
        return TopologyKind::Torus2D;
    if (s == "ring")
        return TopologyKind::Ring;
    return std::nullopt;
}

const std::vector<TopologyKind> &
allTopologyKinds()
{
    static const std::vector<TopologyKind> kinds = {
        TopologyKind::PointToPoint,
        TopologyKind::Mesh2D,
        TopologyKind::Torus2D,
        TopologyKind::Ring,
    };
    return kinds;
}

TopologyGeometry::TopologyGeometry(TopologyKind kind, NodeId num_nodes,
                                   unsigned mesh_width)
    : kind_(kind), n_(num_nodes)
{
    assert(n_ > 0);
    switch (kind_) {
      case TopologyKind::PointToPoint:
        width_ = n_;
        height_ = 1;
        break;
      case TopologyKind::Ring:
        width_ = n_;
        height_ = 1;
        break;
      case TopologyKind::Mesh2D:
      case TopologyKind::Torus2D:
        if (mesh_width >= 1 && mesh_width <= n_ && n_ % mesh_width == 0) {
            width_ = mesh_width;
        } else {
            // Most-square factorization: largest divisor <= sqrt(n).
            unsigned w = 1;
            for (unsigned c = 1; c * c <= n_; ++c)
                if (n_ % c == 0)
                    w = c;
            width_ = w;
        }
        height_ = n_ / width_;
        break;
    }
}

Coord
TopologyGeometry::coordOf(NodeId node) const
{
    assert(node < n_);
    return Coord{unsigned(node) % width_, unsigned(node) / width_};
}

NodeId
TopologyGeometry::idOf(Coord c) const
{
    assert(c.x < width_ && c.y < height_);
    return NodeId(c.y * width_ + c.x);
}

unsigned
TopologyGeometry::axisDistance(unsigned from, unsigned to,
                               unsigned extent) const
{
    unsigned d = from > to ? from - to : to - from;
    if (wraps())
        d = std::min(d, extent - d);
    return d;
}

unsigned
TopologyGeometry::axisStep(unsigned from, unsigned to, unsigned extent) const
{
    assert(from != to);
    if (!wraps())
        return from < to ? from + 1 : from - 1;
    // Shorter wrap direction; tie broken toward increasing coordinate.
    unsigned fwd = (to + extent - from) % extent;
    unsigned bwd = extent - fwd;
    if (fwd <= bwd)
        return (from + 1) % extent;
    return (from + extent - 1) % extent;
}

NodeId
TopologyGeometry::nextHop(NodeId cur, NodeId dst) const
{
    assert(cur != dst && cur < n_ && dst < n_);
    if (kind_ == TopologyKind::PointToPoint)
        return dst;

    Coord c = coordOf(cur);
    Coord d = coordOf(dst);
    // Dimension-order: resolve X fully, then Y. A ring is the X-only case.
    if (c.x != d.x)
        return idOf(Coord{axisStep(c.x, d.x, width_), c.y});
    return idOf(Coord{c.x, axisStep(c.y, d.y, height_)});
}

unsigned
TopologyGeometry::hopCount(NodeId src, NodeId dst) const
{
    assert(src < n_ && dst < n_);
    if (src == dst)
        return 0;
    if (kind_ == TopologyKind::PointToPoint)
        return 1;
    Coord s = coordOf(src);
    Coord d = coordOf(dst);
    return axisDistance(s.x, d.x, width_) + axisDistance(s.y, d.y, height_);
}

std::vector<NodeId>
TopologyGeometry::neighbors(NodeId node) const
{
    assert(node < n_);
    std::vector<NodeId> out;
    if (kind_ == TopologyKind::PointToPoint) {
        for (NodeId o = 0; o < n_; ++o)
            if (o != node)
                out.push_back(o);
        return out;
    }

    Coord c = coordOf(node);
    auto add = [&](Coord nc) {
        NodeId id = idOf(nc);
        if (id != node && std::find(out.begin(), out.end(), id) == out.end())
            out.push_back(id);
    };
    if (wraps()) {
        if (width_ > 1) {
            add(Coord{(c.x + 1) % width_, c.y});
            add(Coord{(c.x + width_ - 1) % width_, c.y});
        }
        if (height_ > 1) {
            add(Coord{c.x, (c.y + 1) % height_});
            add(Coord{c.x, (c.y + height_ - 1) % height_});
        }
    } else {
        if (c.x + 1 < width_)
            add(Coord{c.x + 1, c.y});
        if (c.x > 0)
            add(Coord{c.x - 1, c.y});
        if (c.y + 1 < height_)
            add(Coord{c.x, c.y + 1});
        if (c.y > 0)
            add(Coord{c.x, c.y - 1});
    }
    return out;
}

} // namespace ltp
