#include "net/topo/interconnect.hh"

#include "net/network.hh"
#include "net/topo/routed_network.hh"

namespace ltp
{

std::unique_ptr<Interconnect>
makeInterconnect(EventQueue &eq, NodeId num_nodes, NetworkParams params,
                 StatGroup &stats)
{
    if (params.topology == TopologyKind::PointToPoint)
        return std::make_unique<Network>(eq, num_nodes, params, stats);
    return std::make_unique<RoutedNetwork>(eq, num_nodes, params, stats);
}

} // namespace ltp
