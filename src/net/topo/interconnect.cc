#include "net/topo/interconnect.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "net/network.hh"
#include "net/topo/routed_network.hh"
#include "sim/par/sim_context.hh"

namespace ltp
{

void
validateNetworkParams(const NetworkParams &params, NodeId num_nodes)
{
    if (num_nodes == 0)
        throw std::invalid_argument("interconnect needs at least one node");
    if (params.linkBandwidth == 0)
        throw std::invalid_argument("linkBandwidth must be > 0 bytes/cycle");
    if (params.headerBytes == 0)
        throw std::invalid_argument("headerBytes must be > 0");

    if (params.topology == TopologyKind::PointToPoint)
        return;

    if ((params.topology == TopologyKind::Mesh2D ||
         params.topology == TopologyKind::Torus2D) &&
        params.meshWidth != 0 &&
        (params.meshWidth > num_nodes ||
         num_nodes % params.meshWidth != 0)) {
        throw std::invalid_argument(
            "meshWidth " + std::to_string(params.meshWidth) +
            " does not divide the node count " + std::to_string(num_nodes) +
            " (use 0 for the most-square factorization)");
    }

    // Escape VCs carry deadlock-free dimension-order traffic: one on a
    // mesh, two on wrap topologies (the dateline scheme). Adaptive and
    // oblivious routing additionally need at least one adaptive VC.
    bool wraps = params.topology == TopologyKind::Torus2D ||
                 params.topology == TopologyKind::Ring;
    unsigned escape = wraps ? 2u : 1u;
    unsigned needed =
        escape +
        (params.routing == RoutingPolicy::DimensionOrder ? 0u : 1u);
    if (params.vcCount != 0 && params.vcCount < needed) {
        throw std::invalid_argument(
            "vcCount " + std::to_string(params.vcCount) + " < " +
            std::to_string(needed) + " required for " +
            topologyKindName(params.topology) + " with " +
            routingPolicyName(params.routing) +
            " routing (use 0 for the automatic layout)");
    }
}

NetLookahead
networkLookahead(const NetworkParams &params)
{
    NetLookahead la;
    if (params.topology == TopologyKind::PointToPoint) {
        // Delivery is scheduled egress-serialization + flight ahead of
        // the send event.
        la.ticks = params.flightLatency +
                   std::min(params.controlOccupancy, params.dataOccupancy);
    } else {
        if (params.linkBandwidth == 0) {
            // Invalid; reported properly by validateNetworkParams —
            // just avoid dividing by it here.
            la.serialReason = "linkBandwidth must be > 0 bytes/cycle";
            return la;
        }
        Tick ser_min = (params.headerBytes + params.linkBandwidth - 1) /
                       params.linkBandwidth;
        la.ticks =
            ser_min + params.hopLatency + params.routerLatency;
        // Credit returns travel one wire hop back upstream.
        if (params.vcDepth > 0)
            la.ticks = std::min(la.ticks, params.hopLatency);
    }
    if (la.ticks == 0) {
        la.serialReason =
            "interconnect timing leaves no cross-node lookahead";
    }
    return la;
}

std::unique_ptr<Interconnect>
makeInterconnect(SimContext &ctx, NodeId num_nodes, NetworkParams params)
{
    validateNetworkParams(params, num_nodes);
    if (ctx.numShards() > 1 && networkLookahead(params).ticks == 0) {
        throw std::logic_error(
            "multi-shard context with a serial-only interconnect "
            "configuration (resolveShardPlan should have caught this)");
    }
    if (params.topology == TopologyKind::PointToPoint)
        return std::make_unique<Network>(ctx, num_nodes, params);
    return std::make_unique<RoutedNetwork>(ctx, num_nodes, params);
}

std::unique_ptr<Interconnect>
makeInterconnect(EventQueue &eq, NodeId num_nodes, NetworkParams params,
                 StatGroup &stats)
{
    validateNetworkParams(params, num_nodes);
    if (params.topology == TopologyKind::PointToPoint)
        return std::make_unique<Network>(eq, num_nodes, params, stats);
    return std::make_unique<RoutedNetwork>(eq, num_nodes, params, stats);
}

} // namespace ltp
