/**
 * @file
 * The abstract interconnect every DSM component talks to, plus the
 * timing/topology knobs shared by all implementations.
 *
 * Implementations:
 *  - Network (net/network.hh): the paper's point-to-point model —
 *    constant flight latency, contention only at the network interfaces.
 *    This is the default; it keeps every figure benchmark bit-identical.
 *  - RoutedNetwork (net/topo/routed_network.hh): topology-aware
 *    mesh/torus/ring where every router/link is a FIFO server, so
 *    latency depends on hop count and congestion.
 *
 * Every implementation preserves the pairwise (src, dst) FIFO delivery
 * invariant the coherence protocol relies on.
 */

#ifndef LTP_NET_TOPO_INTERCONNECT_HH
#define LTP_NET_TOPO_INTERCONNECT_HH

#include <functional>
#include <memory>

#include "net/message.hh"
#include "net/topo/topology.hh"
#include "sim/types.hh"

namespace ltp
{

class EventQueue;
class SimContext;
class StatGroup;

/** Timing and topology knobs for the interconnect. */
struct NetworkParams
{
    Tick flightLatency = 80;   //!< node-to-node wire latency (p2p only)
    Tick controlOccupancy = 4; //!< NI serialization of a header-only msg
    Tick dataOccupancy = 12;   //!< NI serialization of a data-carrying msg

    // Topology-aware knobs (ignored by the point-to-point model).
    // Calibrated so one unloaded routed hop costs a control message
    //   headerBytes / linkBandwidth + hopLatency + routerLatency
    //     = 16/4 + 68 + 8 = 80 cycles,
    // exactly the paper's point-to-point flight latency: adjacent-node
    // control traffic times identically under p2p and routed models, and
    // topology runs differ only through hop count and congestion.
    TopologyKind topology = TopologyKind::PointToPoint;
    unsigned meshWidth = 0;  //!< X extent of mesh/torus; 0 = most-square
    Tick hopLatency = 68;    //!< per-hop wire flight (cycles)
    Tick routerLatency = 8;  //!< per-hop routing/pipeline delay (cycles)

    // Link bandwidth in bytes/cycle: a message serializes onto a link for
    // ceil(messageBytes / linkBandwidth) cycles, where messageBytes is
    // headerBytes plus blockBytes when the message carries a cache block.
    unsigned linkBandwidth = 4; //!< link bandwidth (bytes/cycle)
    unsigned headerBytes = 16;  //!< wire size of a header-only message
    unsigned blockBytes = 32;   //!< payload of a data-carrying message

    // Router microarchitecture. vcDepth 0 models unbounded input buffers
    // (no backpressure) and, with DimensionOrder routing, reproduces the
    // original per-link FIFO model tick for tick. A non-zero depth turns
    // on credit-based backpressure: a message only starts serializing
    // when the downstream (link, VC) input buffer has a free slot, so
    // congestion stalls senders instead of growing queues without bound.
    RoutingPolicy routing = RoutingPolicy::DimensionOrder;
    unsigned vcCount = 0; //!< virtual channels per link; 0 = auto
                          //!< (escape VCs + 1 adaptive VC when needed)
    unsigned vcDepth = 0; //!< input-buffer slots per (link, VC); 0 = inf
};

/**
 * Validate @p params for a system of @p num_nodes, throwing
 * std::invalid_argument with a descriptive message on bad combinations
 * (non-dividing meshWidth, zero link bandwidth, too few VCs for the
 * topology/routing). makeInterconnect() calls this; CLIs may call it
 * early to fail before a long run starts.
 */
void validateNetworkParams(const NetworkParams &params, NodeId num_nodes);

/**
 * The interconnect's guaranteed minimum cross-node latency — the
 * conservative lookahead the parallel engine's windows are built on.
 */
struct NetLookahead
{
    /** Minimum ticks between any cross-node cause and its effect; 0
     *  when the model cannot shard at all. */
    Tick ticks = 0;
    /** Why the model is serial-only (set iff ticks == 0). */
    const char *serialReason = nullptr;
};

/**
 * Export the lookahead of the model @p params selects.
 *
 * Point-to-point: egress serialization + wire flight. Routed: every
 * cross-router interaction is at least one link serialization plus the
 * wire and router pipeline; with finite vcDepth the wire-delayed credit
 * return (hopLatency) bounds it instead. Every routing policy shards:
 * oblivious routing's coin flips are counter-based pure hashes of
 * (src, dst, netSeq, router), not a shared stream.
 */
NetLookahead networkLookahead(const NetworkParams &params);

/**
 * Abstract message transport between DSM nodes.
 *
 * Contract (all implementations):
 *  - send() never delivers synchronously; the sink runs in a later event.
 *  - Local (src == dst) messages bypass the network and arrive after a
 *    nominal 1-cycle delay.
 *  - Messages of one (src, dst) pair are delivered in send order.
 */
class Interconnect
{
  public:
    using Sink = std::function<void(const Message &)>;

    virtual ~Interconnect() = default;

    /** Register the message consumer for @p node. */
    virtual void setSink(NodeId node, Sink sink) = 0;

    /** Inject @p msg; it will be delivered to msg.dst's sink later. */
    virtual void send(Message msg) = 0;

    virtual NodeId numNodes() const = 0;
    virtual TopologyKind topology() const = 0;
    virtual const NetworkParams &params() const = 0;
};

/** Build the interconnect selected by @p params.topology. */
std::unique_ptr<Interconnect> makeInterconnect(SimContext &ctx,
                                               NodeId num_nodes,
                                               NetworkParams params);

/** Sequential-engine convenience overload (standalone drivers/tests). */
std::unique_ptr<Interconnect> makeInterconnect(EventQueue &eq,
                                               NodeId num_nodes,
                                               NetworkParams params,
                                               StatGroup &stats);

} // namespace ltp

#endif // LTP_NET_TOPO_INTERCONNECT_HH
