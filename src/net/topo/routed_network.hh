/**
 * @file
 * Topology-aware interconnect: mesh / torus / ring with a virtual-channel
 * router pipeline, credit-based backpressure, and pluggable routing.
 *
 * A message's life:
 *
 *   egress NI (FIFO, controlOccupancy/dataOccupancy)
 *     -> [ VC allocation + link serialization (messageBytes /
 *          linkBandwidth cycles) -> wire (hopLatency) -> router
 *          (routerLatency) ] x hops
 *     -> ingress reorder buffer -> ingress NI -> sink
 *
 * Each directed link serializes one message at a time; waiting messages
 * sit in the upstream router's input buffers, modeled per (link, VC).
 * With a finite vcDepth a message only starts serializing when the
 * downstream (link, VC) buffer has a free slot (a credit), so congestion
 * propagates backpressure upstream instead of growing queues without
 * bound; the credit travels back over the wire (hopLatency) when the
 * slot frees.
 *
 * Virtual channels double as the deadlock-avoidance mechanism:
 *  - escape VCs (VC0, plus VC1 on wrap topologies under the dateline
 *    rule) carry dimension-order traffic, which is deadlock-free;
 *  - adaptive/oblivious traffic rides the remaining VCs and, when its
 *    chosen port is credit-blocked while the link sits idle, falls back
 *    onto the escape path (Duato-style), so forward progress never
 *    depends on a cyclic buffer dependency.
 *
 * Adaptive and oblivious routing can reorder a (src, dst) pair's
 * messages in flight; a per-pair sequence number stamped at injection
 * and an ingress reorder buffer restore the pairwise FIFO delivery
 * order the coherence protocol relies on. Dimension-order routing never
 * reorders, so the reorder buffer is a pure pass-through there — with
 * the default unbounded buffers that configuration is tick-for-tick
 * identical to the original per-link FIFO model.
 *
 * Per-link utilization is exported as `net.linkBusy.<from>-<to>` (busy
 * cycles) and `net.linkMsgs.<from>-<to>`; `net.escapeReroutes` counts
 * adaptive messages that fell back to the escape path and
 * `net.reorderHeld` messages parked in the ingress reorder buffer. The
 * NI model and latency statistics are shared with the point-to-point
 * network (see net/ni_interconnect.hh).
 */

#ifndef LTP_NET_TOPO_ROUTED_NETWORK_HH
#define LTP_NET_TOPO_ROUTED_NETWORK_HH

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "net/ni_interconnect.hh"
#include "net/topo/topology.hh"
#include "sim/rng.hh"

namespace ltp
{

/** Mesh/torus/ring interconnect with VC routers and credited links. */
class RoutedNetwork : public NiInterconnect
{
  public:
    RoutedNetwork(SimContext &ctx, NodeId num_nodes,
                  NetworkParams params);

    RoutedNetwork(EventQueue &eq, NodeId num_nodes, NetworkParams params,
                  StatGroup &stats);

    void send(Message msg) override;

    TopologyKind topology() const override { return params_.topology; }

    const TopologyGeometry &geometry() const { return geom_; }
    std::size_t numLinks() const { return links_.size(); }

    /** Total virtual channels per link (escape + adaptive). */
    unsigned numVcs() const { return numVcs_; }
    /** Leading VCs reserved for deadlock-free dimension-order traffic. */
    unsigned numEscapeVcs() const { return escapeVcs_; }
    /** True when vcDepth is finite, i.e. credits gate transmission. */
    bool bounded() const { return params_.vcDepth > 0; }

    /**
     * Free downstream input-buffer slots of (link @p l, VC @p vc); equals
     * vcDepth whenever the buffer is idle. @pre bounded().
     */
    unsigned creditsAvailable(std::size_t l, unsigned vc) const
    {
        return links_[l].credits[vc];
    }

    /** Wire size of @p m: headerBytes (+ blockBytes when data). */
    unsigned messageBytes(const Message &m) const
    {
        return params_.headerBytes +
               (carriesData(m.type) ? params_.blockBytes : 0);
    }

    /** Link serialization delay: ceil(messageBytes / linkBandwidth). */
    Tick serializationTicks(const Message &m) const
    {
        return (messageBytes(m) + params_.linkBandwidth - 1) /
               params_.linkBandwidth;
    }

    /**
     * LTP_CHECK=link quiesce invariant: with the run complete, every
     * link must be drained (no waiting messages, no parked reorder
     * entries) and every credit returned (credits == vcDepth on every
     * (link, VC) when bounded). Throws guard::CheckFailure naming the
     * offending link otherwise. Call only after runUntil() returned
     * with the simulation quiescent.
     */
    void guardCheckQuiesce() const;

  private:
    RoutedNetwork(std::unique_ptr<SimContext> owned, NodeId num_nodes,
                  NetworkParams params);

    /** A message waiting in an input buffer for one output link —
     *  16 bytes of handle + routing state, not a 56-byte Message copy. */
    struct Entry
    {
        MsgHandle h;
        std::uint8_t vc = 0;     //!< VC requested on this output link
        std::int32_t inLink = -1; //!< upstream link whose buffer holds the
                                  //!< message (-1: injection queue)
        std::uint8_t inVc = 0;
    };

    /**
     * One directed physical channel between adjacent routers.
     *
     * Serialization is modeled with a coalesced "link engine" instead
     * of a per-message link-free event: `freeAt` records when the
     * current serialization ends, and a single drain event is armed at
     * that tick only while traffic is actually waiting (`armed`). An
     * uncongested grant therefore schedules no bookkeeping event at
     * all — the arrival post is the only event per hop.
     */
    struct Link
    {
        NodeId from = invalidNode;
        NodeId to = invalidNode;
        std::uint8_t dim = 0; //!< 0 = X, 1 = Y
        bool wrap = false;    //!< crosses the torus/ring dateline
        std::deque<Entry> q;  //!< waiting messages, request order
        Tick freeAt = 0;      //!< serializing until this tick
        bool armed = false;   //!< drain event scheduled at freeAt
        bool draining = false; //!< re-entrancy guard for drainLink()
        /** Free slots in the downstream input buffer, per VC. */
        std::vector<unsigned> credits;
        Counter *msgs = nullptr;
        Counter *busyCycles = nullptr;
        /** Grants so far: the link-stall fault's per-site counter. */
        std::uint64_t faultGrants = 0;
    };

    /** Per-(src, dst) ingress reordering state. Parked messages stay in
     *  the pool; the sorted map keys netSeq -> handle (quiesce reporting
     *  reads the smallest parked sequence off begin()). */
    struct PairState
    {
        std::uint32_t nextSeq = 0;
        std::map<std::uint32_t, MsgHandle> pending;
    };

    int linkIndex(NodeId from, NodeId to) const;
    /** linkIndex() for a hop the route computed: must be physical. */
    std::size_t routeLink(NodeId from, NodeId to) const
    {
        int l = linkIndex(from, to);
        assert(l >= 0 && "route must follow physical links");
        return std::size_t(l);
    }
    std::size_t pairKey(NodeId src, NodeId dst) const
    {
        return std::size_t(src) * numNodes() + dst;
    }

    bool isAdaptiveVc(unsigned vc) const { return vc >= escapeVcs_; }
    bool hasCredit(const Link &link, unsigned vc) const
    {
        return !bounded() || link.credits[vc] > 0;
    }

    /** Escape VC of @p msg for the hop @p at -> @p next (dateline rule). */
    std::uint8_t escapeVc(NodeId at, NodeId next, const Message &msg) const;
    /** Adaptive VC with the most free downstream slots on link @p l. */
    std::uint8_t adaptiveVc(const Link &link) const;
    /** Congestion score of the output link @p l (queue + buffer fill). */
    std::size_t congestion(std::size_t l);

    /** True when link @p l is not serializing at the current tick. */
    bool
    linkIdle(const Link &link)
    {
        return q(link.from).now() >= link.freeAt;
    }

    /** Route @p h's message (now at router @p at) onto its next output
     *  link. */
    void forward(NodeId at, MsgHandle h, std::int32_t in_link,
                 std::uint8_t in_vc);
    void enqueue(std::size_t l, Entry e);
    /** Arbitrate now if the link is idle, else arm the link engine. */
    void pump(std::size_t l);
    /** Schedule the coalesced drain event at freeAt (once). */
    void armEngine(std::size_t l);
    /**
     * Batched arbitration: retire the link's entire provably-ordered
     * eligible queue in one event — repeated head grants at advancing
     * virtual start times — stopping at the first decision (a skipped
     * head, an exhausted credit view, an escape candidate) that a real
     * drain event at freeAt must re-make with fresh credit state.
     * @pre link is idle.
     */
    void drainLink(std::size_t l);
    /** Grant @p e the wire at tick @p start (>= now within a batch). */
    void grantAt(std::size_t l, Entry e, Tick start);
    /** The wire-delayed credit for one freed (link, VC) buffer slot,
     *  departing at tick @p from (the grant's virtual start). */
    void scheduleCreditReturn(std::size_t l, std::uint8_t vc, Tick from);
    void arriveAtRouter(std::size_t l, std::uint8_t vc, MsgHandle h);
    /** Pairwise-FIFO restoration in front of the ingress NI. */
    void reorderDeliver(MsgHandle h);

    /** Adds the route-length sample to the shared delivery stats. */
    void deliver(MsgHandle h) override;

    TopologyGeometry geom_;
    unsigned numVcs_ = 1;
    unsigned escapeVcs_ = 1;

    std::vector<Link> links_;
    /** Dense (from * n + to) -> link index map; -1 when not adjacent. */
    std::vector<int> linkIdx_;

    /** Per-(src, dst) next injection sequence number. */
    std::vector<std::uint32_t> sendSeq_;
    /** Per-(src, dst) ingress reorder buffers. */
    std::vector<PairState> pairs_;

    /** Oblivious-routing coin flip for @p msg leaving router @p at: a
     *  pure counterHash of (seed, src, dst, netSeq, at). Counter-based
     *  per-(src, dst) streams — no shared RNG state, no consumption
     *  order — so oblivious routing shards like any other policy and
     *  stays bit-identical for every simThreads value. */
    unsigned obliviousPick(NodeId at, const Message &msg,
                           unsigned n) const;

    // Shared stat names, one handle per shard (merged after the run).
    // Router-side stats index by the link owner's shard, delivery-side
    // stats by the destination's shard.
    std::vector<Counter *> hops_;
    std::vector<Average *> hopsPerMsg_;
    std::vector<Counter *> escapeReroutes_;
    std::vector<Counter *> reorderHeld_;
};

} // namespace ltp

#endif // LTP_NET_TOPO_ROUTED_NETWORK_HH
