/**
 * @file
 * Topology-aware interconnect: mesh / torus / ring with per-link
 * contention.
 *
 * A message's life:
 *
 *   egress NI (FIFO, controlOccupancy/dataOccupancy)
 *     -> [ link (FIFO, linkControlOccupancy/linkDataOccupancy)
 *          -> wire (hopLatency) -> router (routerLatency) ] x hops
 *     -> ingress NI (FIFO, controlOccupancy/dataOccupancy) -> sink
 *
 * Each directed link is a FIFO server: one message serializes at a time
 * and waiters queue, so latency grows with both hop count and congestion.
 * Routing is deterministic (dimension-order / shortest ring direction,
 * see TopologyGeometry), which — together with FIFO links — preserves
 * the pairwise (src, dst) delivery-order invariant.
 *
 * Per-link utilization is exported as `net.linkBusy.<from>-<to>` (busy
 * cycles) and `net.linkMsgs.<from>-<to>`; the NI model and latency
 * statistics are shared with the point-to-point network (see
 * net/ni_interconnect.hh).
 */

#ifndef LTP_NET_TOPO_ROUTED_NETWORK_HH
#define LTP_NET_TOPO_ROUTED_NETWORK_HH

#include <deque>
#include <vector>

#include "net/ni_interconnect.hh"
#include "net/topo/topology.hh"

namespace ltp
{

/** Mesh/torus/ring interconnect with FIFO routers and links. */
class RoutedNetwork : public NiInterconnect
{
  public:
    RoutedNetwork(EventQueue &eq, NodeId num_nodes, NetworkParams params,
                  StatGroup &stats);

    void send(Message msg) override;

    TopologyKind topology() const override { return params_.topology; }

    const TopologyGeometry &geometry() const { return geom_; }
    std::size_t numLinks() const { return links_.size(); }

  private:
    /** One directed physical channel between adjacent routers. */
    struct Link
    {
        NodeId from = invalidNode;
        NodeId to = invalidNode;
        std::deque<Message> q;
        bool busy = false;
        Counter *msgs = nullptr;
        Counter *busyCycles = nullptr;
    };

    Tick linkOccupancy(const Message &m) const
    {
        return carriesData(m.type) ? params_.linkDataOccupancy
                                   : params_.linkControlOccupancy;
    }

    int linkIndex(NodeId from, NodeId to) const;

    /** Route @p msg (now at router @p at) onto its next link. */
    void forward(NodeId at, Message msg);
    void drainLink(std::size_t l);

    /** Adds the route-length sample to the shared delivery stats. */
    void deliver(const Message &msg) override;

    TopologyGeometry geom_;

    std::vector<Link> links_;
    /** Dense (from * n + to) -> link index map; -1 when not adjacent. */
    std::vector<int> linkIdx_;

    Counter &hops_;
    Average &hopsPerMsg_;
};

} // namespace ltp

#endif // LTP_NET_TOPO_ROUTED_NETWORK_HH
