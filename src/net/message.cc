#include "net/message.hh"

#include <sstream>

namespace ltp
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetX: return "GetX";
      case MsgType::Inv: return "Inv";
      case MsgType::WbReq: return "WbReq";
      case MsgType::InvAck: return "InvAck";
      case MsgType::WbData: return "WbData";
      case MsgType::DataS: return "DataS";
      case MsgType::DataX: return "DataX";
      case MsgType::DataFwd: return "DataFwd";
      case MsgType::SelfInvS: return "SelfInvS";
      case MsgType::SelfInvX: return "SelfInvX";
      case MsgType::EvictS: return "EvictS";
      case MsgType::EvictX: return "EvictX";
    }
    return "?";
}

std::string
Message::describe() const
{
    std::ostringstream oss;
    oss << msgTypeName(type) << " " << src << "->" << dst << " blk=0x"
        << std::hex << addr << std::dec;
    if (requester != invalidNode)
        oss << " req=" << requester;
    return oss.str();
}

} // namespace ltp
