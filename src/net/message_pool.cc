#include "net/message_pool.hh"

namespace ltp
{

std::uint32_t
MessagePool::Shard::grow()
{
    // Out of recycled slots: materialize the next one, adding a slab
    // when the current one fills. Slabs are never released or moved —
    // the pool's footprint is the peak in-flight population, and every
    // handed-out Message reference stays valid.
    if ((numSlots >> slabShift) == slabs.size())
        slabs.push_back(
            std::make_unique<std::array<Slot, 1u << slabShift>>());
    return numSlots++;
}

std::uint64_t
MessagePool::liveMessages() const
{
    // Cold-path accounting (quiesce checks and tests): allocations are
    // owner-counted, frees split into the owner's plain counter and the
    // remote shards' atomic one. Only exact once the simulation has
    // quiesced — mid-run it is a momentary snapshot.
    std::uint64_t live = 0;
    for (const Shard &sh : shards_) {
        live += sh.allocs - sh.localFrees -
                sh.remoteFrees.load(std::memory_order_relaxed);
    }
    return live;
}

} // namespace ltp
