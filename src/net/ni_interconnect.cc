#include "net/ni_interconnect.hh"

#include <cassert>

namespace ltp
{

NiInterconnect::NiInterconnect(EventQueue &eq, NodeId num_nodes,
                               NetworkParams params, StatGroup &stats)
    : eq_(eq),
      params_(params),
      msgsSent_(stats.counter("net.msgs")),
      dataMsgs_(stats.counter("net.dataMsgs")),
      endToEndLatency_(stats.average("net.endToEndLatency")),
      latencyHist_(stats.histogram("net.endToEndLatency", 32.0, 256)),
      niEgressFree_(num_nodes, 0),
      ingressQueue_(num_nodes),
      ingressBusy_(num_nodes, false),
      sinks_(num_nodes)
{
}

void
NiInterconnect::setSink(NodeId node, Sink sink)
{
    assert(node < sinks_.size());
    sinks_[node] = std::move(sink);
}

bool
NiInterconnect::injectLocalOrCount(Message &msg)
{
    assert(msg.src < sinks_.size() && msg.dst < sinks_.size());
    msg.injectedAt = eq_.now();
    msgsSent_.inc();
    if (carriesData(msg.type))
        dataMsgs_.inc();

    if (msg.src != msg.dst)
        return false;
    // Local delivery: no NI serialization, a nominal 1-cycle hop.
    eq_.scheduleIn(1, [this, msg] { deliver(msg); });
    return true;
}

Tick
NiInterconnect::egressDone(const Message &msg)
{
    Tick occ = niOccupancy(msg);
    Tick start = std::max(eq_.now(), niEgressFree_[msg.src]);
    niEgressFree_[msg.src] = start + occ;
    return start + occ;
}

void
NiInterconnect::arriveAtIngress(Message msg)
{
    NodeId dst = msg.dst;
    ingressQueue_[dst].push_back(msg);
    if (!ingressBusy_[dst])
        drainIngress(dst);
}

void
NiInterconnect::drainIngress(NodeId node)
{
    if (ingressQueue_[node].empty()) {
        ingressBusy_[node] = false;
        return;
    }
    ingressBusy_[node] = true;
    Message msg = ingressQueue_[node].front();
    ingressQueue_[node].pop_front();

    // The busy flag serializes the NI: this event runs at (or, when the
    // NI went idle, after) the previous message's finish tick, so the
    // next service always starts now.
    eq_.scheduleIn(niOccupancy(msg), [this, node, msg] {
        deliver(msg);
        drainIngress(node);
    });
}

void
NiInterconnect::deliver(const Message &msg)
{
    Tick lat = eq_.now() - msg.injectedAt;
    endToEndLatency_.sample(double(lat));
    latencyHist_.sample(double(lat));
    sinks_[msg.dst](msg);
}

} // namespace ltp
