#include "net/ni_interconnect.hh"

#include <cassert>

#include "obs/trace.hh"
#include "sim/guard/checkers.hh"

namespace ltp
{

NiInterconnect::NiInterconnect(SimContext &ctx, NodeId num_nodes,
                               NetworkParams params)
    : params_(params),
      ctx_(&ctx),
      pool_(ctx.numShards()),
      niEgressFree_(num_nodes, 0),
      ingressQueue_(num_nodes),
      ingressBusy_(num_nodes, false),
      sinks_(num_nodes)
{
    unsigned shards = ctx_->numShards();
    msgsSent_.reserve(shards);
    dataMsgs_.reserve(shards);
    endToEndLatency_.reserve(shards);
    latencyHist_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
        StatGroup &stats = ctx_->shardStats(s);
        msgsSent_.push_back(&stats.counter("net.msgs"));
        dataMsgs_.push_back(&stats.counter("net.dataMsgs"));
        endToEndLatency_.push_back(&stats.average("net.endToEndLatency"));
        latencyHist_.push_back(
            &stats.histogram("net.endToEndLatency", 32.0, 256));
    }
}

NiInterconnect::NiInterconnect(std::unique_ptr<SimContext> owned,
                               NodeId num_nodes, NetworkParams params)
    : NiInterconnect(*owned, num_nodes, params)
{
    ownedCtx_ = std::move(owned);
}

NiInterconnect::NiInterconnect(EventQueue &eq, NodeId num_nodes,
                               NetworkParams params, StatGroup &stats)
    : NiInterconnect(std::make_unique<SequentialContext>(eq, stats),
                     num_nodes, params)
{
}

void
NiInterconnect::setSink(NodeId node, Sink sink)
{
    assert(node < sinks_.size());
    sinks_[node] = std::move(sink);
}

bool
NiInterconnect::injectLocalOrCount(Message &msg)
{
    assert(msg.src < sinks_.size() && msg.dst < sinks_.size());
    EventQueue &eq = q(msg.src);
    msg.injectedAt = eq.now();
    obs::Tracer::instant(obs::Cat::Message, msg.src, "inject", eq.now(),
                         msg.dst, std::uint64_t(msg.type));
    unsigned shard = ctx_->shardOf(msg.src);
    msgsSent_[shard]->inc();
    if (carriesData(msg.type))
        dataMsgs_[shard]->inc();
    if (guard::Checks::on(obs::Cat::Message))
        guard::Checks::instance().countInject();

    if (msg.src != msg.dst)
        return false;
    // Local delivery: no NI serialization, a nominal 1-cycle hop. The
    // pooled handle keeps even this event's capture at two words.
    MsgHandle h = pool_.alloc(shard, msg);
    eq.scheduleIn(1, [this, h] { deliver(h); });
    return true;
}

Tick
NiInterconnect::egressDone(const Message &msg)
{
    Tick occ = niOccupancy(msg);
    Tick start = std::max(q(msg.src).now(), niEgressFree_[msg.src]);
    niEgressFree_[msg.src] = start + occ;
    return start + occ;
}

void
NiInterconnect::arriveAtIngress(MsgHandle h)
{
    NodeId dst = pool_.at(h).dst;
    if (ingressBusy_[dst]) {
        ingressQueue_[dst].push_back(h);
        return;
    }
    // Idle NI: service starts immediately — skip the queue round-trip.
    ingressBusy_[dst] = true;
    serveIngress(dst, h);
}

void
NiInterconnect::serveIngress(NodeId node, MsgHandle h)
{
    // The busy flag serializes the NI: this event runs at (or, when the
    // NI went idle, after) the previous message's finish tick, so the
    // next service always starts now.
    q(node).scheduleIn(niOccupancy(pool_.at(h)), [this, node, h] {
        deliver(h);
        std::deque<MsgHandle> &queue = ingressQueue_[node];
        if (queue.empty()) {
            ingressBusy_[node] = false;
            return;
        }
        MsgHandle next = queue.front();
        queue.pop_front();
        serveIngress(node, next);
    });
}

void
NiInterconnect::deliver(MsgHandle h)
{
    // Slabs never move, so this reference survives anything the sink
    // does (including injecting new messages); free only after it ran.
    const Message &msg = pool_.at(h);
    Tick lat = q(msg.dst).now() - msg.injectedAt;
    // The end-to-end message-lifecycle span, named by type, on the
    // destination node's track: inject -> (NI, flight, hops) -> deliver.
    obs::Tracer::span(obs::Cat::Message, msg.dst, msgTypeName(msg.type),
                      msg.injectedAt, q(msg.dst).now(), msg.src, msg.dst);
    unsigned shard = ctx_->shardOf(msg.dst);
    endToEndLatency_[shard]->sample(double(lat));
    latencyHist_[shard]->sample(double(lat));
    if (guard::Checks::on(obs::Cat::Message))
        guard::Checks::instance().countDeliver(msg.src, msg.dst,
                                               msg.netSeq, q(msg.dst).now());
    sinks_[msg.dst](msg);
    pool_.free(h, shard);
}

} // namespace ltp
