/**
 * @file
 * Point-to-point interconnect with constant flight latency and contention
 * modeled at the network interfaces (exactly the model in Table 1 /
 * Section 5 of the paper). This is the default Interconnect
 * implementation; topology-aware models live in net/topo/.
 *
 * Each node owns an egress NI and an ingress NI. An NI is a FIFO server:
 * it occupies `controlOccupancy` or `dataOccupancy` cycles per message.
 * Flight time between any pair of nodes is the constant `flightLatency`.
 * Messages between a given (src, dst) pair are delivered in send order
 * (the protocol relies on pairwise FIFO channels).
 */

#ifndef LTP_NET_NETWORK_HH
#define LTP_NET_NETWORK_HH

#include "net/ni_interconnect.hh"

namespace ltp
{

/**
 * The paper's interconnect. Local (src == dst) messages bypass the
 * network entirely and are delivered after a single 1-cycle delay.
 */
class Network : public NiInterconnect
{
  public:
    Network(SimContext &ctx, NodeId num_nodes, NetworkParams params)
        : NiInterconnect(ctx, num_nodes, params)
    {
    }

    Network(EventQueue &eq, NodeId num_nodes, NetworkParams params,
            StatGroup &stats)
        : NiInterconnect(eq, num_nodes, params, stats)
    {
    }

    void send(Message msg) override;

    TopologyKind topology() const override
    {
        return TopologyKind::PointToPoint;
    }
};

} // namespace ltp

#endif // LTP_NET_NETWORK_HH
