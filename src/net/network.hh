/**
 * @file
 * Point-to-point interconnect with constant flight latency and contention
 * modeled at the network interfaces (exactly the model in Table 1 /
 * Section 5 of the paper).
 *
 * Each node owns an egress NI and an ingress NI. An NI is a FIFO server:
 * it occupies `controlOccupancy` or `dataOccupancy` cycles per message.
 * Flight time between any pair of nodes is the constant `flightLatency`.
 * Messages between a given (src, dst) pair are delivered in send order
 * (the protocol relies on pairwise FIFO channels).
 */

#ifndef LTP_NET_NETWORK_HH
#define LTP_NET_NETWORK_HH

#include <deque>
#include <functional>
#include <vector>

#include "net/message.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ltp
{

/** Timing knobs for the interconnect. */
struct NetworkParams
{
    Tick flightLatency = 80;   //!< node-to-node wire latency (cycles)
    Tick controlOccupancy = 4; //!< NI serialization of a header-only msg
    Tick dataOccupancy = 12;   //!< NI serialization of a data-carrying msg
};

/**
 * The interconnect. Local (src == dst) messages bypass the network
 * entirely and are delivered after a single control-occupancy delay.
 */
class Network
{
  public:
    using Sink = std::function<void(const Message &)>;

    Network(EventQueue &eq, NodeId num_nodes, NetworkParams params,
            StatGroup &stats);

    /** Register the message consumer for @p node. */
    void setSink(NodeId node, Sink sink);

    /** Inject @p msg; it will be delivered to msg.dst's sink later. */
    void send(Message msg);

    NodeId numNodes() const { return NodeId(niEgressFree_.size()); }
    const NetworkParams &params() const { return params_; }

  private:
    Tick occupancy(const Message &m) const
    {
        return carriesData(m.type) ? params_.dataOccupancy
                                   : params_.controlOccupancy;
    }

    /** A message sitting in (or headed for) an ingress NI. */
    void arriveAtIngress(Message msg);
    void drainIngress(NodeId node);

    EventQueue &eq_;
    NetworkParams params_;
    /** Earliest tick each egress NI is free. */
    std::vector<Tick> niEgressFree_;
    /** Per-ingress-NI FIFO of arrived-but-undelivered messages. */
    std::vector<std::deque<Message>> ingressQueue_;
    /** True while an ingress NI drain event is scheduled. */
    std::vector<bool> ingressBusy_;
    std::vector<Tick> niIngressFree_;
    std::vector<Sink> sinks_;

    Counter &msgsSent_;
    Counter &dataMsgs_;
    Average &endToEndLatency_;
};

} // namespace ltp

#endif // LTP_NET_NETWORK_HH
