/**
 * @file
 * Slab/arena storage for in-flight protocol messages, addressed by
 * 8-byte generation-tagged index handles.
 *
 * Every hop of a message through the interconnect used to copy the
 * full 56-byte Message POD: into link queues, router input buffers,
 * the ingress reorder buffer, the NI FIFOs, and — heaviest of all —
 * the capture lists of the per-hop events crossing the parallel
 * engine's SPSC mailbox lanes. With the pool, a message is written
 * once at injection into per-shard slab storage and travels as a
 * single word (MsgHandle) until delivery frees it, so event captures
 * and queue entries shrink to pointer size and ring traffic moves one
 * word per hop.
 *
 * Ownership discipline (what makes this race-free without locks):
 *  - a message is allocated on its *source* node's shard and only ever
 *    mutated by the event currently carrying it — exactly one logical
 *    owner at any tick, the same discipline the by-value code had;
 *  - each shard's free list is single-consumer: only events running on
 *    that shard allocate from it;
 *  - delivery usually happens on another shard, so remote frees push
 *    onto a per-shard Treiber stack (lock-free LIFO over the slot
 *    array's `nextFree` links, which live in stable slab memory); the
 *    owner drains the whole stack with one exchange when its local
 *    list runs dry.
 *
 * Handles are generation-tagged: each slot carries a generation
 *  counter bumped on every free, and a handle embeds the generation it
 * was allocated under. Debug builds assert the tags match on every
 * dereference, so a use-after-free or double-free trips immediately
 * instead of silently reading a recycled message. Handle *values*
 * depend on allocation history and are never compared, ordered, or
 * dumped — all observable ordering keys (tick, channel, netSeq) live
 * in the Message itself, which keeps runs bit-identical for every
 * shard count.
 *
 * Slabs are fixed-size arrays behind stable pointers: growth never
 * moves a live slot, so `Message &` references obtained from at() stay
 * valid across any amount of later allocation (delivery reads the
 * message while the sink it calls may inject new ones).
 */

#ifndef LTP_NET_MESSAGE_POOL_HH
#define LTP_NET_MESSAGE_POOL_HH

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.hh"

namespace ltp
{

/**
 * An 8-byte reference to a pooled Message: [gen:24 | shard:8 | slot:32].
 * The slot field stores index+1 so a value-initialized handle (bits 0)
 * is never valid. Trivially copyable — this is what event captures and
 * queue entries hold instead of the Message.
 */
struct MsgHandle
{
    std::uint64_t bits = 0;

    bool valid() const { return bits != 0; }
    std::uint32_t gen() const { return std::uint32_t(bits >> 40); }
    unsigned shard() const { return unsigned((bits >> 32) & 0xff); }
    std::uint32_t slot() const { return std::uint32_t(bits) - 1; }
};

/** Per-shard arena of Message slots addressed by MsgHandle. */
class MessagePool
{
  public:
    explicit MessagePool(unsigned num_shards) : shards_(num_shards)
    {
        assert(num_shards >= 1 && num_shards <= 256 &&
               "shard id must fit the handle's 8-bit field");
    }

    MessagePool(const MessagePool &) = delete;
    MessagePool &operator=(const MessagePool &) = delete;

    /**
     * Copy @p m into a fresh slot of @p shard's arena and return its
     * handle. @pre the calling event runs on @p shard (the shard of the
     * message's source node) — each arena's free list has exactly one
     * consumer.
     */
    MsgHandle
    alloc(unsigned shard, const Message &m)
    {
        Shard &sh = shards_[shard];
        std::uint32_t idx = sh.freeHead;
        if (idx == nilIndex) {
            // Local list dry: claim everything remote shards freed
            // back to us since the last drain (one exchange; the LIFO
            // chain is already linked through nextFree).
            sh.freeHead =
                sh.remoteFree.exchange(nilIndex, std::memory_order_acquire);
            idx = sh.freeHead;
        }
        Slot *s;
        if (idx != nilIndex) {
            s = &sh.slot(idx);
            sh.freeHead = s->nextFree;
        } else {
            idx = sh.grow();
            s = &sh.slot(idx);
        }
        s->msg = m;
        ++sh.allocs;
        std::uint32_t g = s->gen.load(std::memory_order_relaxed) & genMask;
        return MsgHandle{(std::uint64_t(g) << 40) |
                         (std::uint64_t(shard) << 32) |
                         std::uint64_t(idx + 1)};
    }

    /** The message behind @p h. The reference is stable until free(). */
    Message &
    at(MsgHandle h)
    {
        Slot &s = shards_[h.shard()].slot(h.slot());
        assert(h.valid() &&
               (s.gen.load(std::memory_order_relaxed) & genMask) ==
                   h.gen() &&
               "stale message handle (freed or recycled slot)");
        return s.msg;
    }

    const Message &
    at(MsgHandle h) const
    {
        const Slot &s = shards_[h.shard()].slot(h.slot());
        assert(h.valid() &&
               (s.gen.load(std::memory_order_relaxed) & genMask) ==
                   h.gen() &&
               "stale message handle (freed or recycled slot)");
        return s.msg;
    }

    /**
     * Return @p h's slot to its owning arena. @p caller_shard is the
     * shard the freeing event runs on (the destination node's shard):
     * a same-shard free is two plain writes, a cross-shard free one
     * lock-free push onto the owner's remote stack. The handle — and
     * any copy of it — is dead after this call.
     */
    void
    free(MsgHandle h, unsigned caller_shard)
    {
        unsigned owner = h.shard();
        Shard &sh = shards_[owner];
        std::uint32_t idx = h.slot();
        Slot &s = sh.slot(idx);
        assert(h.valid() &&
               (s.gen.load(std::memory_order_relaxed) & genMask) ==
                   h.gen() &&
               "double free (or stale handle)");
        // Bump the generation first: every outstanding copy of this
        // handle is stale from here on.
        s.gen.fetch_add(1, std::memory_order_relaxed);
        if (caller_shard == owner) {
            s.nextFree = sh.freeHead;
            sh.freeHead = idx;
            ++sh.localFrees;
            return;
        }
        // Treiber push; the release pairs with alloc()'s acquire
        // exchange, ordering our last reads of the message before the
        // owner's next reuse of the slot.
        std::uint32_t head = sh.remoteFree.load(std::memory_order_relaxed);
        do {
            s.nextFree = head;
        } while (!sh.remoteFree.compare_exchange_weak(
            head, idx, std::memory_order_release,
            std::memory_order_relaxed));
        sh.remoteFrees.fetch_add(1, std::memory_order_relaxed);
    }

    /** Messages currently allocated (harness/quiesce checks only). */
    std::uint64_t liveMessages() const;

    /** Slabs shard @p s has grown to (tests observe burst growth). */
    std::size_t numSlabs(unsigned s) const
    {
        return shards_[s].slabs.size();
    }
    /** Slots shard @p s has ever materialized (its high-water mark). */
    std::uint32_t highWater(unsigned s) const
    {
        return shards_[s].numSlots;
    }

    static constexpr std::uint32_t genMask = 0xffffffu;

  private:
    static constexpr std::uint32_t nilIndex = 0xffffffffu;
    static constexpr std::uint32_t slabShift = 10; //!< 1024 slots / slab
    static constexpr std::uint32_t slabMask = (1u << slabShift) - 1;

    /** One message plus its recycling metadata, padded to a cache line
     *  so neighboring slots on different shards never false-share. */
    struct alignas(64) Slot
    {
        Message msg;
        /** Allocation generation; bumped on free. Atomic so the Debug
         *  stale-handle check itself is race-free under TSan. */
        std::atomic<std::uint32_t> gen{1};
        /** Free-list link (local list or remote Treiber stack). */
        std::uint32_t nextFree = 0;
    };
    static_assert(sizeof(Slot) == 64, "one slot per cache line");

    struct Shard
    {
        std::vector<std::unique_ptr<std::array<Slot, 1u << slabShift>>>
            slabs;
        std::uint32_t freeHead = nilIndex; //!< owner-only LIFO
        std::uint32_t numSlots = 0;        //!< slots ever materialized
        std::uint64_t allocs = 0;
        std::uint64_t localFrees = 0;
        /** Slots freed by other shards, awaiting the owner's drain. */
        std::atomic<std::uint32_t> remoteFree{nilIndex};
        std::atomic<std::uint64_t> remoteFrees{0};

        Slot &slot(std::uint32_t i)
        {
            return (*slabs[i >> slabShift])[i & slabMask];
        }
        const Slot &slot(std::uint32_t i) const
        {
            return (*slabs[i >> slabShift])[i & slabMask];
        }
        std::uint32_t grow();
    };

    std::vector<Shard> shards_;
};

} // namespace ltp

#endif // LTP_NET_MESSAGE_POOL_HH
