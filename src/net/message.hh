/**
 * @file
 * Coherence-protocol message definition.
 *
 * The message vocabulary of the full-map write-invalidate protocol
 * (Section 2 of the paper) plus the self-invalidation messages Section 4
 * adds. The network treats messages opaquely except for their size class
 * (control vs. data-carrying).
 */

#ifndef LTP_NET_MESSAGE_HH
#define LTP_NET_MESSAGE_HH

#include <cstdint>
#include <string>
#include <type_traits>

#include "sim/types.hh"

namespace ltp
{

/** Every message type exchanged between cache and directory controllers. */
enum class MsgType : std::uint8_t
{
    // Requests: cache -> home directory.
    GetS,       //!< read request
    GetX,       //!< write (exclusive) request
    // Directory -> remote cache.
    Inv,        //!< invalidate a read-only copy
    WbReq,      //!< invalidate + write back an exclusive copy
    // Remote cache -> directory.
    InvAck,     //!< acknowledges Inv (or WbReq when no copy remained)
    WbData,     //!< dirty data written back in answer to WbReq
    // Directory -> requester.
    DataS,      //!< read-only data reply
    DataX,      //!< writable data reply
    // Self-invalidation (Section 4).
    SelfInvS,   //!< cache drops a Shared copy and notifies home
    SelfInvX,   //!< cache drops an Exclusive copy, carries the data home
    // Sharing-prediction extension: unsolicited forward of a
    // self-invalidated block to its predicted next consumer.
    DataFwd,
    // Capacity eviction (finite caches only; not a prediction).
    EvictS,
    EvictX,
};

/** True for message types that carry a full cache block of data. */
constexpr bool
carriesData(MsgType t)
{
    switch (t) {
      case MsgType::WbData:
      case MsgType::DataS:
      case MsgType::DataX:
      case MsgType::DataFwd:
      case MsgType::SelfInvX:
      case MsgType::EvictX:
        return true;
      default:
        return false;
    }
}

/** Human-readable message-type name (debugging and tests). */
const char *msgTypeName(MsgType t);

/** Self-invalidation verification outcome piggybacked on data replies. */
enum class Verification : std::uint8_t
{
    None,      //!< nothing to report
    Correct,   //!< a previous self-invalidation by the requester was correct
    Premature, //!< the requester self-invalidated too early
};

/** A single protocol message in flight. */
struct Message
{
    MsgType type = MsgType::GetS;
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    /** Block-aligned address the message concerns. */
    Addr addr = 0;
    /** Original requester (meaningful on Inv/WbReq fan-out). */
    NodeId requester = invalidNode;
    /** Per-(src, dst) injection sequence — a network-layer stamp written
     *  by the routed interconnect's ingress reorder buffer and opaque to
     *  the protocol (the p2p model leaves it zero). Sits in the padding
     *  after `requester` so messages stay 56 bytes. */
    std::uint32_t netSeq = 0;
    /** DSI write-version number (on data replies and requests). */
    std::uint64_t version = 0;
    /** DSI: reply marks the block as a self-invalidation candidate. */
    bool dsiCandidate = false;
    /** Verification feedback for the requester's predictor. */
    Verification verification = Verification::None;
    /** Dateline bits (network-layer stamp, like netSeq): bit d set once
     *  the message crossed dimension d's wrap link, switching its escape
     *  virtual channel. */
    std::uint8_t netVcFlags = 0;
    /** Tick at which the sender injected the message (for latency stats). */
    Tick injectedAt = 0;

    std::string describe() const;
};

// The size contract the netSeq/netVcFlags padding games maintain — and
// the unit the message pool's cache-line slot math is built on.
static_assert(sizeof(Message) == 56, "Message grew past 56 bytes");
static_assert(std::is_trivially_copyable_v<Message>,
              "Message must stay a POD: it is copied into slab storage");

} // namespace ltp

#endif // LTP_NET_MESSAGE_HH
