#include "net/network.hh"

namespace ltp
{

void
Network::send(Message msg)
{
    if (injectLocalOrCount(msg))
        return;

    // The receiver-side hand-off: egress serialization + flight is the
    // model's cross-node lookahead (networkLookahead), so the post
    // always clears the parallel engine's window. Only the pooled
    // handle crosses the shard boundary.
    Tick arrive = egressDone(msg) + params_.flightLatency;
    MsgHandle h = pool().alloc(ctx().shardOf(msg.src), msg);
    ctx().post(msg.dst, arrive, chan::pair(msg.src, msg.dst, numNodes()),
               [this, h] { arriveAtIngress(h); });
}

} // namespace ltp
