#include "net/network.hh"

namespace ltp
{

void
Network::send(Message msg)
{
    if (injectLocalOrCount(msg))
        return;

    Tick arrive = egressDone(msg) + params_.flightLatency;
    eq_.scheduleAt(arrive, [this, msg] { arriveAtIngress(msg); });
}

} // namespace ltp
