#include "net/network.hh"

#include <cassert>

namespace ltp
{

Network::Network(EventQueue &eq, NodeId num_nodes, NetworkParams params,
                 StatGroup &stats)
    : eq_(eq),
      params_(params),
      niEgressFree_(num_nodes, 0),
      ingressQueue_(num_nodes),
      ingressBusy_(num_nodes, false),
      niIngressFree_(num_nodes, 0),
      sinks_(num_nodes),
      msgsSent_(stats.counter("net.msgs")),
      dataMsgs_(stats.counter("net.dataMsgs")),
      endToEndLatency_(stats.average("net.endToEndLatency"))
{
}

void
Network::setSink(NodeId node, Sink sink)
{
    assert(node < sinks_.size());
    sinks_[node] = std::move(sink);
}

void
Network::send(Message msg)
{
    assert(msg.src < sinks_.size() && msg.dst < sinks_.size());
    msg.injectedAt = eq_.now();
    msgsSent_.inc();
    if (carriesData(msg.type))
        dataMsgs_.inc();

    if (msg.src == msg.dst) {
        // Local delivery: no NI serialization, a nominal 1-cycle hop.
        eq_.scheduleIn(1, [this, msg] {
            endToEndLatency_.sample(double(eq_.now() - msg.injectedAt));
            sinks_[msg.dst](msg);
        });
        return;
    }

    Tick occ = occupancy(msg);
    Tick start = std::max(eq_.now(), niEgressFree_[msg.src]);
    niEgressFree_[msg.src] = start + occ;
    Tick arrive = start + occ + params_.flightLatency;
    eq_.scheduleAt(arrive,
                   [this, msg] { arriveAtIngress(msg); });
}

void
Network::arriveAtIngress(Message msg)
{
    NodeId dst = msg.dst;
    ingressQueue_[dst].push_back(msg);
    if (!ingressBusy_[dst])
        drainIngress(dst);
}

void
Network::drainIngress(NodeId node)
{
    if (ingressQueue_[node].empty()) {
        ingressBusy_[node] = false;
        return;
    }
    ingressBusy_[node] = true;
    Message msg = ingressQueue_[node].front();
    ingressQueue_[node].pop_front();

    Tick occ = occupancy(msg);
    Tick start = std::max(eq_.now(), niIngressFree_[node]);
    niIngressFree_[node] = start + occ;
    eq_.scheduleAt(start + occ, [this, node, msg] {
        endToEndLatency_.sample(double(eq_.now() - msg.injectedAt));
        sinks_[node](msg);
        drainIngress(node);
    });
}

} // namespace ltp
