/**
 * @file
 * Per-node cache tag store for remotely-homed (shared) data.
 *
 * The paper assumes a network cache "large enough to eliminate all
 * capacity/conflict traffic", so the default configuration is an
 * unbounded tag store: every miss is a cold or coherence miss. A finite
 * set-associative mode (with LRU replacement) is provided for unit tests
 * and sensitivity studies.
 */

#ifndef LTP_MEM_CACHE_HH
#define LTP_MEM_CACHE_HH

#include <cstdint>
#include <list>
#include <optional>
#include <vector>

#include "mem/addr.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace ltp
{

/** Cache-side coherence state of a block. */
enum class CacheState : std::uint8_t
{
    Invalid,
    Shared,    //!< read-only copy
    Exclusive, //!< writable (and presumed dirty) copy
};

/** One cached block's bookkeeping. */
struct CacheLine
{
    CacheState state = CacheState::Invalid;
    /** DSI write-version carried with the data reply that filled us. */
    std::uint64_t version = 0;
    /** Set once the block has suffered a coherence (not cold) miss. */
    bool activelyShared = false;
};

/**
 * Tag store. Addresses handed in are block-aligned by the cache itself.
 */
class Cache
{
  public:
    /**
     * @param block_size block size in bytes (power of two).
     * @param num_sets   0 for an unbounded cache; otherwise sets count.
     * @param ways       associativity (ignored when unbounded).
     */
    Cache(unsigned block_size, unsigned num_sets = 0, unsigned ways = 0);

    unsigned blockSize() const { return math_.blockSize(); }
    bool unbounded() const { return numSets_ == 0; }

    /** Look up the line for @p addr; nullptr if not present. */
    CacheLine *find(Addr addr);
    const CacheLine *find(Addr addr) const;

    /**
     * Look up the bookkeeping entry for @p addr even when the block is
     * Invalid (unbounded caches retain invalidated entries so sticky
     * metadata like the DSI version number survives re-fetch).
     */
    CacheLine *findAny(Addr addr);

    /** State of @p addr (Invalid when absent). */
    CacheState state(Addr addr) const;

    /** An eviction forced by insert() in finite mode. */
    struct Victim
    {
        Addr addr;
        CacheState state;
    };

    /**
     * Insert (or upgrade) a block in @p state.
     *
     * @return the victim evicted to make room, if any (finite mode only).
     */
    std::optional<Victim> insert(Addr addr, CacheState state);

    /** Drop the block entirely (invalidation / self-invalidation). */
    void invalidate(Addr addr);

    /** Downgrade Exclusive -> Shared (not used by the migratory protocol
     *  the paper models, but exercised in tests). */
    void downgrade(Addr addr);

    /** Number of resident (non-Invalid) blocks. */
    std::size_t residentBlocks() const;

    /** Visit every resident block address (used by DSI's candidate walk). */
    template <typename Fn>
    void
    forEachResident(Fn &&fn) const
    {
        for (const auto &[blk, ent] : lines_) {
            if (ent.line.state != CacheState::Invalid)
                fn(blk, ent.line);
        }
    }

  private:
    struct Entry
    {
        CacheLine line;
        /** Position in the set's LRU list (finite mode only). */
        std::list<Addr>::iterator lruPos;
    };

    std::size_t setIndex(Addr block_addr) const;
    void touchLru(Addr block_addr, Entry &e);

    BlockMath math_;
    unsigned numSets_;
    unsigned ways_;
    /** Keyed by block-aligned address. */
    FlatMap<Addr, Entry> lines_;
    /** Per-set LRU order, most recent at front (finite mode only). */
    std::vector<std::list<Addr>> lru_;
};

} // namespace ltp

#endif // LTP_MEM_CACHE_HH
