/**
 * @file
 * Address arithmetic: cache-block and page alignment, and the mapping
 * from physical pages to home nodes.
 */

#ifndef LTP_MEM_ADDR_HH
#define LTP_MEM_ADDR_HH

#include <cassert>

#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace ltp
{

/** True iff @p x is a power of two. */
constexpr bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Block-size (or page-size) aware address helpers. */
class BlockMath
{
  public:
    explicit BlockMath(unsigned block_size) : blockSize_(block_size)
    {
        assert(isPowerOf2(block_size));
    }

    unsigned blockSize() const { return blockSize_; }

    /** Address of the first byte of the block containing @p a. */
    Addr align(Addr a) const { return a & ~Addr(blockSize_ - 1); }

    /** Block number (address / block size). */
    Addr blockNum(Addr a) const { return a >> ctz(blockSize_); }

    /** Byte offset of @p a within its block. */
    unsigned offset(Addr a) const { return unsigned(a & (blockSize_ - 1)); }

    /** True if @p a and @p b fall in the same block. */
    bool sameBlock(Addr a, Addr b) const { return align(a) == align(b); }

  private:
    static constexpr unsigned
    ctz(std::uint64_t x)
    {
        unsigned n = 0;
        while (!(x & 1)) {
            x >>= 1;
            ++n;
        }
        return n;
    }

    unsigned blockSize_;
};

/**
 * Mapping from memory pages to home nodes.
 *
 * Default policy is page-interleaving across all nodes; the workload
 * layout can pin individual pages to chosen homes (emulating careful
 * first-touch page placement, which all the paper's benchmarks rely on).
 */
class HomeMap
{
  public:
    HomeMap(unsigned page_size, NodeId num_nodes)
        : pageMath_(page_size), numNodes_(num_nodes)
    {
        assert(num_nodes > 0);
    }

    unsigned pageSize() const { return pageMath_.blockSize(); }
    NodeId numNodes() const { return numNodes_; }

    /** Home node of the block/byte at @p a. */
    NodeId
    home(Addr a) const
    {
        Addr page = pageMath_.blockNum(a);
        if (const NodeId *n = pinned_.find(page))
            return *n;
        return NodeId(page % numNodes_);
    }

    /** Pin the page containing @p a to @p node. */
    void
    pinPageOf(Addr a, NodeId node)
    {
        assert(node < numNodes_);
        pinned_[pageMath_.blockNum(a)] = node;
    }

    /** Pin every page in [base, base+bytes) to @p node. */
    void
    pinRange(Addr base, std::uint64_t bytes, NodeId node)
    {
        Addr first = pageMath_.blockNum(base);
        Addr last = pageMath_.blockNum(base + bytes - 1);
        for (Addr p = first; p <= last; ++p)
            pinned_[p] = node;
    }

  private:
    BlockMath pageMath_;
    NodeId numNodes_;
    FlatMap<Addr, NodeId> pinned_;
};

} // namespace ltp

#endif // LTP_MEM_ADDR_HH
