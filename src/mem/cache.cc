#include "mem/cache.hh"

#include <cassert>

namespace ltp
{

Cache::Cache(unsigned block_size, unsigned num_sets, unsigned ways)
    : math_(block_size), numSets_(num_sets), ways_(ways)
{
    if (numSets_ != 0) {
        assert(isPowerOf2(numSets_));
        assert(ways_ > 0);
        lru_.resize(numSets_);
    }
}

CacheLine *
Cache::find(Addr addr)
{
    Addr blk = math_.align(addr);
    Entry *e = lines_.find(blk);
    if (!e || e->line.state == CacheState::Invalid)
        return nullptr;
    // A lookup is a use: refresh recency so LRU reflects touches.
    touchLru(blk, *e);
    return &e->line;
}

const CacheLine *
Cache::find(Addr addr) const
{
    const Entry *e = lines_.find(math_.align(addr));
    if (!e || e->line.state == CacheState::Invalid)
        return nullptr;
    return &e->line;
}

CacheState
Cache::state(Addr addr) const
{
    const CacheLine *l = find(addr);
    return l ? l->state : CacheState::Invalid;
}

std::size_t
Cache::setIndex(Addr block_addr) const
{
    return std::size_t(math_.blockNum(block_addr)) & (numSets_ - 1);
}

void
Cache::touchLru(Addr block_addr, Entry &e)
{
    if (unbounded())
        return;
    auto &list = lru_[setIndex(block_addr)];
    list.erase(e.lruPos);
    list.push_front(block_addr);
    e.lruPos = list.begin();
}

CacheLine *
Cache::findAny(Addr addr)
{
    Entry *e = lines_.find(math_.align(addr));
    return e ? &e->line : nullptr;
}

std::optional<Cache::Victim>
Cache::insert(Addr addr, CacheState state)
{
    assert(state != CacheState::Invalid);
    Addr blk = math_.align(addr);

    Entry *existing = lines_.find(blk);
    if (existing && existing->line.state != CacheState::Invalid) {
        // Upgrade in place (e.g., Shared -> Exclusive).
        existing->line.state = state;
        touchLru(blk, *existing);
        return std::nullopt;
    }

    // Preserve sticky per-block flags across re-fetches. Copied out now:
    // the eviction below mutates lines_, which invalidates `existing`.
    CacheLine preserved;
    if (existing)
        preserved = existing->line;

    std::optional<Victim> victim;
    if (!unbounded()) {
        auto &list = lru_[setIndex(blk)];
        // Count resident ways in this set.
        unsigned resident = 0;
        for (Addr a : list) {
            const Entry *le = lines_.find(a);
            if (le && le->line.state != CacheState::Invalid)
                ++resident;
        }
        if (resident >= ways_) {
            // Evict the least recently used resident block.
            for (auto rit = list.rbegin(); rit != list.rend(); ++rit) {
                const Entry *le = lines_.find(*rit);
                if (le && le->line.state != CacheState::Invalid) {
                    victim = Victim{*rit, le->line.state};
                    break;
                }
            }
            assert(victim);
            invalidate(victim->addr);
        }
    }

    Entry e;
    e.line = preserved;
    e.line.state = state;
    if (!unbounded()) {
        auto &list = lru_[setIndex(blk)];
        list.push_front(blk);
        e.lruPos = list.begin();
    }
    lines_.insert(blk, e);
    return victim;
}

void
Cache::invalidate(Addr addr)
{
    Addr blk = math_.align(addr);
    Entry *e = lines_.find(blk);
    if (!e)
        return;
    if (!unbounded() && e->line.state != CacheState::Invalid)
        lru_[setIndex(blk)].erase(e->lruPos);
    // Keep the entry (state Invalid) so sticky flags like activelyShared
    // and the DSI version survive re-fetch; finite mode erases fully to
    // bound memory.
    if (unbounded()) {
        e->line.state = CacheState::Invalid;
    } else {
        lines_.erase(blk);
    }
}

void
Cache::downgrade(Addr addr)
{
    CacheLine *l = find(addr);
    if (l && l->state == CacheState::Exclusive)
        l->state = CacheState::Shared;
}

std::size_t
Cache::residentBlocks() const
{
    std::size_t n = 0;
    for (const auto &[blk, ent] : lines_) {
        (void)blk;
        if (ent.line.state != CacheState::Invalid)
            ++n;
    }
    return n;
}

} // namespace ltp
