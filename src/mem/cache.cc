#include "mem/cache.hh"

#include <cassert>

namespace ltp
{

Cache::Cache(unsigned block_size, unsigned num_sets, unsigned ways)
    : math_(block_size), numSets_(num_sets), ways_(ways)
{
    if (numSets_ != 0) {
        assert(isPowerOf2(numSets_));
        assert(ways_ > 0);
        lru_.resize(numSets_);
    }
}

CacheLine *
Cache::find(Addr addr)
{
    Addr blk = math_.align(addr);
    auto it = lines_.find(blk);
    if (it == lines_.end() || it->second.line.state == CacheState::Invalid)
        return nullptr;
    // A lookup is a use: refresh recency so LRU reflects touches.
    touchLru(blk, it->second);
    return &it->second.line;
}

const CacheLine *
Cache::find(Addr addr) const
{
    auto it = lines_.find(math_.align(addr));
    if (it == lines_.end() || it->second.line.state == CacheState::Invalid)
        return nullptr;
    return &it->second.line;
}

CacheState
Cache::state(Addr addr) const
{
    const CacheLine *l = find(addr);
    return l ? l->state : CacheState::Invalid;
}

std::size_t
Cache::setIndex(Addr block_addr) const
{
    return std::size_t(math_.blockNum(block_addr)) & (numSets_ - 1);
}

void
Cache::touchLru(Addr block_addr, Entry &e)
{
    if (unbounded())
        return;
    auto &list = lru_[setIndex(block_addr)];
    list.erase(e.lruPos);
    list.push_front(block_addr);
    e.lruPos = list.begin();
}

CacheLine *
Cache::findAny(Addr addr)
{
    auto it = lines_.find(math_.align(addr));
    return it == lines_.end() ? nullptr : &it->second.line;
}

std::optional<Cache::Victim>
Cache::insert(Addr addr, CacheState state)
{
    assert(state != CacheState::Invalid);
    Addr blk = math_.align(addr);

    auto it = lines_.find(blk);
    if (it != lines_.end() && it->second.line.state != CacheState::Invalid) {
        // Upgrade in place (e.g., Shared -> Exclusive).
        it->second.line.state = state;
        touchLru(blk, it->second);
        return std::nullopt;
    }

    std::optional<Victim> victim;
    if (!unbounded()) {
        auto &list = lru_[setIndex(blk)];
        // Count resident ways in this set.
        unsigned resident = 0;
        for (Addr a : list) {
            auto lit = lines_.find(a);
            if (lit != lines_.end() &&
                lit->second.line.state != CacheState::Invalid) {
                ++resident;
            }
        }
        if (resident >= ways_) {
            // Evict the least recently used resident block.
            for (auto rit = list.rbegin(); rit != list.rend(); ++rit) {
                auto lit = lines_.find(*rit);
                if (lit != lines_.end() &&
                    lit->second.line.state != CacheState::Invalid) {
                    victim = Victim{*rit, lit->second.line.state};
                    break;
                }
            }
            assert(victim);
            invalidate(victim->addr);
        }
    }

    Entry e;
    // Preserve sticky per-block flags across re-fetches.
    if (it != lines_.end())
        e.line = it->second.line;
    e.line.state = state;
    if (!unbounded()) {
        auto &list = lru_[setIndex(blk)];
        list.push_front(blk);
        e.lruPos = list.begin();
    }
    lines_[blk] = e;
    return victim;
}

void
Cache::invalidate(Addr addr)
{
    Addr blk = math_.align(addr);
    auto it = lines_.find(blk);
    if (it == lines_.end())
        return;
    if (!unbounded() && it->second.line.state != CacheState::Invalid)
        lru_[setIndex(blk)].erase(it->second.lruPos);
    // Keep the entry (state Invalid) so sticky flags like activelyShared
    // and the DSI version survive re-fetch; finite mode erases fully to
    // bound memory.
    if (unbounded()) {
        it->second.line.state = CacheState::Invalid;
    } else {
        lines_.erase(it);
    }
}

void
Cache::downgrade(Addr addr)
{
    CacheLine *l = find(addr);
    if (l && l->state == CacheState::Exclusive)
        l->state = CacheState::Shared;
}

std::size_t
Cache::residentBlocks() const
{
    std::size_t n = 0;
    for (const auto &[blk, ent] : lines_) {
        (void)blk;
        if (ent.line.state != CacheState::Invalid)
            ++n;
    }
    return n;
}

} // namespace ltp
