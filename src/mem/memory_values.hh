/**
 * @file
 * Simulated memory contents.
 *
 * The timing simulator mostly cares about *which* blocks are touched, but
 * synchronization (test-and-set spin locks, flags, work-queue indices)
 * needs real values. MemoryValues is a sparse 64-bit-word store shared by
 * all nodes; the coherence protocol guarantees that reads and writes are
 * serialized correctly, so a single value store suffices.
 *
 * Parallel runs: the protocol already serializes conflicting accesses to
 * any one word by at least the interconnect latency (ownership has to
 * move between nodes), which is >= the engine's conservative window — so
 * per-word accesses never race across shards. What does need protection
 * is the *container*: an insert into a hash map can rehash under a
 * concurrent reader of a different word. The store is therefore striped
 * by word address, and each stripe takes a tiny spin lock around its map
 * operations — but only when setConcurrent(true) was called, so the
 * sequential engine pays nothing.
 */

#ifndef LTP_MEM_MEMORY_VALUES_HH
#define LTP_MEM_MEMORY_VALUES_HH

#include <array>
#include <atomic>
#include <cstdint>

#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace ltp
{

/** Sparse word-granularity simulated memory. */
class MemoryValues
{
  public:
    /** Stripe the locks on (parallel engine); off by default. */
    void setConcurrent(bool on) { concurrent_ = on; }

    /** Read the 64-bit word at @p a (8-byte aligned); absent words are 0. */
    std::uint64_t
    load(Addr a) const
    {
        const Stripe &s = stripe(a);
        Guard g(s.lock, concurrent_);
        const std::uint64_t *v = s.words.find(wordAddr(a));
        return v ? *v : 0;
    }

    /** Write the 64-bit word at @p a. */
    void
    store(Addr a, std::uint64_t v)
    {
        Stripe &s = stripe(a);
        Guard g(s.lock, concurrent_);
        s.words[wordAddr(a)] = v;
    }

    /**
     * Atomic test-and-set: write @p set_to and return the previous value.
     * Atomicity is provided by the caller holding exclusive coherence
     * permission for the block.
     */
    std::uint64_t
    testAndSet(Addr a, std::uint64_t set_to)
    {
        Stripe &s = stripe(a);
        Guard g(s.lock, concurrent_);
        Addr w = wordAddr(a);
        std::uint64_t old = 0;
        if (const std::uint64_t *v = s.words.find(w))
            old = *v;
        s.words[w] = set_to;
        return old;
    }

    /** Atomic fetch-and-add; returns the previous value. */
    std::uint64_t
    fetchAdd(Addr a, std::uint64_t delta)
    {
        Stripe &s = stripe(a);
        Guard g(s.lock, concurrent_);
        Addr w = wordAddr(a);
        std::uint64_t old = s.words[w];
        s.words[w] = old + delta;
        return old;
    }

    std::size_t
    wordCount() const
    {
        std::size_t n = 0;
        for (const Stripe &s : stripes_)
            n += s.words.size();
        return n;
    }

  private:
    static constexpr std::size_t numStripes = 64;

    struct Stripe
    {
        FlatMap<Addr, std::uint64_t> words;
        mutable std::atomic_flag lock = ATOMIC_FLAG_INIT;
    };

    /** Scoped stripe lock; a no-op for the sequential engine. */
    class Guard
    {
      public:
        Guard(std::atomic_flag &lock, bool locked)
            : lock_(lock), locked_(locked)
        {
            if (locked_)
                while (lock_.test_and_set(std::memory_order_acquire)) {
                }
        }
        ~Guard()
        {
            if (locked_)
                lock_.clear(std::memory_order_release);
        }
        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;

      private:
        std::atomic_flag &lock_;
        bool locked_;
    };

    static Addr wordAddr(Addr a) { return a & ~Addr(7); }

    Stripe &stripe(Addr a) { return stripes_[(a >> 3) % numStripes]; }
    const Stripe &
    stripe(Addr a) const
    {
        return stripes_[(a >> 3) % numStripes];
    }

    std::array<Stripe, numStripes> stripes_;
    bool concurrent_ = false;
};

} // namespace ltp

#endif // LTP_MEM_MEMORY_VALUES_HH
