/**
 * @file
 * Simulated memory contents.
 *
 * The timing simulator mostly cares about *which* blocks are touched, but
 * synchronization (test-and-set spin locks, flags, work-queue indices)
 * needs real values. MemoryValues is a sparse 64-bit-word store shared by
 * all nodes; the coherence protocol guarantees that reads and writes are
 * serialized correctly, so a single value store suffices.
 */

#ifndef LTP_MEM_MEMORY_VALUES_HH
#define LTP_MEM_MEMORY_VALUES_HH

#include <cstdint>

#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace ltp
{

/** Sparse word-granularity simulated memory. */
class MemoryValues
{
  public:
    /** Read the 64-bit word at @p a (8-byte aligned); absent words are 0. */
    std::uint64_t
    load(Addr a) const
    {
        const std::uint64_t *v = words_.find(wordAddr(a));
        return v ? *v : 0;
    }

    /** Write the 64-bit word at @p a. */
    void store(Addr a, std::uint64_t v) { words_[wordAddr(a)] = v; }

    /**
     * Atomic test-and-set: write @p set_to and return the previous value.
     * Atomicity is provided by the caller holding exclusive coherence
     * permission for the block.
     */
    std::uint64_t
    testAndSet(Addr a, std::uint64_t set_to)
    {
        Addr w = wordAddr(a);
        std::uint64_t old = 0;
        if (const std::uint64_t *v = words_.find(w))
            old = *v;
        words_[w] = set_to;
        return old;
    }

    /** Atomic fetch-and-add; returns the previous value. */
    std::uint64_t
    fetchAdd(Addr a, std::uint64_t delta)
    {
        Addr w = wordAddr(a);
        std::uint64_t old = words_[w];
        words_[w] = old + delta;
        return old;
    }

    std::size_t wordCount() const { return words_.size(); }

  private:
    static Addr wordAddr(Addr a) { return a & ~Addr(7); }

    FlatMap<Addr, std::uint64_t> words_;
};

} // namespace ltp

#endif // LTP_MEM_MEMORY_VALUES_HH
