#include "proto/dir_controller.hh"

#include <cassert>

#include "obs/trace.hh"
#include "sim/log.hh"

namespace ltp
{

namespace
{

constexpr std::uint64_t
bitOf(NodeId n)
{
    return std::uint64_t(1) << n;
}

/** Version value meaning "requester has never cached this block". */
constexpr std::uint64_t noVersion = ~std::uint64_t(0);

} // namespace

const char *
dirStateName(DirState s)
{
    switch (s) {
      case DirState::Idle: return "Idle";
      case DirState::Shared: return "Shared";
      case DirState::Exclusive: return "Exclusive";
    }
    return "?";
}

DirController::DirController(NodeId node, EventQueue &eq, Interconnect &net,
                             DirParams params, StatGroup &stats)
    : node_(node),
      eq_(eq),
      net_(net),
      params_(params),
      queueing_(stats.average("dir.queueing")),
      service_(stats.average("dir.service")),
      requests_(stats.counter("dir.requests")),
      selfInvTimelyCorrect_(stats.counter("dir.selfInvTimelyCorrect")),
      selfInvLateCorrect_(stats.counter("dir.selfInvLateCorrect")),
      selfInvPremature_(stats.counter("dir.selfInvPremature")),
      staleDrops_(stats.counter("dir.staleDrops")),
      forwards_(stats.counter("dir.forwards"))
{
}

void
DirController::receive(const Message &msg)
{
    inq_.push_back(Queued{msg, eq_.now()});
    engineKick();
}

void
DirController::engineKick()
{
    if (engineBusy_ || inq_.empty())
        return;
    Queued q = inq_.front();
    inq_.pop_front();

    queueing_.sample(double(eq_.now() - q.arrival));
    Tick latency = process(q);
    service_.sample(double(latency));
    // One directory transaction: arrival through queueing and service,
    // named by the message that drove it, requester in a0.
    obs::Tracer::span(obs::Cat::Directory, node_, msgTypeName(q.msg.type),
                      q.arrival, eq_.now() + latency, q.msg.src,
                      q.msg.addr);

    Tick occupancy = params_.pipelined ? std::max<Tick>(latency / 2, 1)
                                       : std::max<Tick>(latency, 1);
    engineBusy_ = true;
    eq_.scheduleIn(occupancy, [this] {
        engineBusy_ = false;
        engineKick();
    });
}

Tick
DirController::process(const Queued &q)
{
    const Message &msg = q.msg;
    LTP_DPRINTF("directory", eq_.now(),
                "dir" << node_ << " " << msg.describe());
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX: {
        requests_.inc();
        DirEntry &e = dir_.entry(msg.addr);
        if (e.busy) {
            // Block-level serialization: park the request until the
            // in-flight transaction completes.
            deferred_[msg.addr].push_back(q);
            return params_.engineOverhead;
        }
        return handleRequest(msg);
      }
      case MsgType::InvAck:
      case MsgType::WbData:
        return handleAck(msg);
      case MsgType::SelfInvS:
      case MsgType::SelfInvX:
      case MsgType::EvictS:
      case MsgType::EvictX: {
        DirEntry &e = dir_.entry(msg.addr);
        if (e.busy && !txns_.contains(msg.addr)) {
            // A data reply for this block is still being assembled
            // (reply window): park the flush until it is on the wire.
            deferred_[msg.addr].push_back(q);
            return params_.engineOverhead;
        }
        return handleSelfInvOrEvict(msg);
      }
      default:
        assert(false && "unexpected message at directory");
        return params_.engineOverhead;
    }
}

Verification
DirController::processVerification(const Message &msg, DirEntry &e)
{
    NodeId r = msg.src;
    Addr blk = msg.addr;
    Verification verdict = Verification::None;

    if (e.inVerifMask(r)) {
        // The node that self-invalidated is back for the block: its
        // self-invalidation was premature.
        e.clearVerif(r);
        writeCopyMask_[blk] &= ~bitOf(r);
        selfInvPremature_.inc();
        verdict = Verification::Premature;
    }

    // A write request proves every outstanding self-invalidation correct;
    // a read request only proves self-invalidated *write* copies correct
    // (the read/write phase changed for those).
    std::uint64_t confirm = e.verifMask;
    if (msg.type == MsgType::GetS)
        confirm &= writeCopyMask_[blk];
    while (confirm) {
        NodeId n = NodeId(__builtin_ctzll(confirm));
        confirm &= confirm - 1;
        bool timely = e.clearVerif(n);
        writeCopyMask_[blk] &= ~bitOf(n);
        if (timely)
            selfInvTimelyCorrect_.inc();
        else
            selfInvLateCorrect_.inc();
        if (verifyHook_)
            verifyHook_(n, blk, /*premature=*/false, timely);
    }
    return verdict;
}

bool
DirController::dsiCandidate(const Message &req, const DirEntry &e,
                            bool migratory_exception) const
{
    if (migratory_exception)
        return false;
    if (req.version == noVersion)
        return false; // cold access: no recorded version, not a candidate
    return req.version != e.version;
}

Tick
DirController::handleRequest(const Message &msg)
{
    DirEntry &e = dir_.entry(msg.addr);
    sharing_.observeRequest(msg.addr, msg.src);
    if (msg.type == MsgType::GetS)
        return handleGetS(msg, e);
    return handleGetX(msg, e);
}

Tick
DirController::handleGetS(const Message &msg, DirEntry &e)
{
    Verification verdict = processVerification(msg, e);
    NodeId r = msg.src;
    Addr blk = msg.addr;

    switch (e.state) {
      case DirState::Idle:
      case DirState::Shared: {
        e.state = DirState::Shared;
        e.addSharer(r);
        Message reply;
        reply.type = MsgType::DataS;
        reply.src = node_;
        reply.dst = r;
        reply.addr = blk;
        reply.version = e.version;
        reply.dsiCandidate = dsiCandidate(msg, e, false);
        reply.verification = verdict;
        Tick latency = params_.engineOverhead + params_.memAccess;
        send(reply, latency);
        lockUntilSent(blk, latency);
        return latency;
      }
      case DirState::Exclusive: {
        assert(e.owner != r && "owner re-requesting its own block");
        e.busy = true;
        Txn txn;
        txn.req = msg;
        txn.awaitingWb = true;
        txns_[blk] = txn;
        txnVerdicts_[blk] = verdict;
        Message wb;
        wb.type = MsgType::WbReq;
        wb.src = node_;
        wb.dst = e.owner;
        wb.addr = blk;
        wb.requester = r;
        send(wb, params_.engineOverhead);
        return params_.engineOverhead;
      }
    }
    return params_.engineOverhead;
}

Tick
DirController::handleGetX(const Message &msg, DirEntry &e)
{
    Verification verdict = processVerification(msg, e);
    NodeId r = msg.src;
    Addr blk = msg.addr;

    switch (e.state) {
      case DirState::Idle: {
        bool cand = dsiCandidate(msg, e, false);
        // The reply carries the version of the data as fetched; the
        // grantee's own write bumps the directory version past it, so a
        // re-fetching writer compares unequal (actively shared).
        std::uint64_t fetched_version = e.version;
        e.state = DirState::Exclusive;
        e.owner = r;
        e.version++;
        Message reply;
        reply.type = MsgType::DataX;
        reply.src = node_;
        reply.dst = r;
        reply.addr = blk;
        reply.version = fetched_version;
        reply.dsiCandidate = cand;
        reply.verification = verdict;
        Tick latency = params_.engineOverhead + params_.memAccess;
        send(reply, latency);
        lockUntilSent(blk, latency);
        return latency;
      }
      case DirState::Shared: {
        bool sole = (e.sharers == bitOf(r));
        if (sole) {
            // Upgrade by the only sharer: the migratory pattern DSI
            // deliberately refuses to mark as a candidate (Section 5.1).
            e.removeSharer(r);
            std::uint64_t fetched_version = e.version;
            e.state = DirState::Exclusive;
            e.owner = r;
            e.version++;
            Message reply;
            reply.type = MsgType::DataX;
            reply.src = node_;
            reply.dst = r;
            reply.addr = blk;
            reply.version = fetched_version;
            reply.dsiCandidate = false;
            reply.verification = verdict;
            Tick latency = params_.engineOverhead;
            send(reply, latency);
            lockUntilSent(blk, latency);
            return latency;
        }
        e.busy = true;
        Txn txn;
        txn.req = msg;
        txn.requesterHadCopy = e.isSharer(r);
        if (txn.requesterHadCopy)
            e.removeSharer(r);
        txn.pendingAcks = e.numSharers();
        assert(txn.pendingAcks > 0);
        std::uint64_t sharers = e.sharers;
        while (sharers) {
            NodeId n = NodeId(__builtin_ctzll(sharers));
            sharers &= sharers - 1;
            Message inv;
            inv.type = MsgType::Inv;
            inv.src = node_;
            inv.dst = n;
            inv.addr = blk;
            inv.requester = r;
            send(inv, params_.engineOverhead);
        }
        txns_[blk] = txn;
        txnVerdicts_[blk] = verdict;
        return params_.engineOverhead;
      }
      case DirState::Exclusive: {
        assert(e.owner != r && "owner issuing GetX for its own block");
        e.busy = true;
        Txn txn;
        txn.req = msg;
        txn.awaitingWb = true;
        txns_[blk] = txn;
        txnVerdicts_[blk] = verdict;
        Message wb;
        wb.type = MsgType::WbReq;
        wb.src = node_;
        wb.dst = e.owner;
        wb.addr = blk;
        wb.requester = r;
        send(wb, params_.engineOverhead);
        return params_.engineOverhead;
      }
    }
    return params_.engineOverhead;
}

Tick
DirController::handleAck(const Message &msg)
{
    Addr blk = msg.addr;
    Txn *txnp = txns_.find(blk);
    if (!txnp) {
        staleDrops_.inc();
        return params_.engineOverhead;
    }
    Txn &txn = *txnp;
    DirEntry &e = dir_.entry(blk);

    if (msg.type == MsgType::WbData) {
        if (!txn.awaitingWb) {
            staleDrops_.inc();
            return params_.engineOverhead;
        }
        txn.awaitingWb = false;
        return completeWithWriteback(blk, e, txn);
    }

    // InvAck
    if (txn.awaitingWb) {
        // Ack from an owner that had already shipped its copy home; the
        // data message (FIFO-ordered ahead of this ack) finished the
        // transaction or will: this ack carries no information.
        staleDrops_.inc();
        return params_.engineOverhead;
    }
    NodeId n = msg.src;
    if (txn.ackedNodes & bitOf(n)) {
        staleDrops_.inc();
        return params_.engineOverhead;
    }
    txn.ackedNodes |= bitOf(n);
    e.removeSharer(n);
    assert(txn.pendingAcks > 0);
    if (--txn.pendingAcks == 0)
        return completeInvalidation(blk, e, txn);
    return params_.engineOverhead;
}

Tick
DirController::completeWithWriteback(Addr blk, DirEntry &e, Txn &txn)
{
    NodeId r = txn.req.src;
    bool cand = dsiCandidate(txn.req, e, false);
    e.owner = invalidNode;

    Message reply;
    reply.src = node_;
    reply.dst = r;
    reply.addr = blk;
    reply.dsiCandidate = cand;
    reply.verification = txnVerdicts_[blk];
    reply.version = e.version; // version of the data as fetched
    if (txn.req.type == MsgType::GetX) {
        e.state = DirState::Exclusive;
        e.owner = r;
        e.version++;
        reply.type = MsgType::DataX;
    } else {
        e.state = DirState::Shared;
        e.sharers = 0;
        e.addSharer(r);
        reply.type = MsgType::DataS;
    }
    Tick latency = params_.engineOverhead + params_.memAccess;
    send(reply, latency);
    txns_.erase(blk);
    txnVerdicts_.erase(blk);
    lockUntilSent(blk, latency);
    return latency;
}

Tick
DirController::completeInvalidation(Addr blk, DirEntry &e, Txn &txn)
{
    NodeId r = txn.req.src;
    bool cand = dsiCandidate(txn.req, e, false);
    std::uint64_t fetched_version = e.version;
    e.state = DirState::Exclusive;
    e.sharers = 0;
    e.owner = r;
    e.version++;

    Message reply;
    reply.type = MsgType::DataX;
    reply.src = node_;
    reply.dst = r;
    reply.addr = blk;
    reply.version = fetched_version;
    reply.dsiCandidate = cand;
    reply.verification = txnVerdicts_[blk];
    Tick latency = params_.engineOverhead + params_.memAccess;
    send(reply, latency);
    txns_.erase(blk);
    txnVerdicts_.erase(blk);
    lockUntilSent(blk, latency);
    return latency;
}

Tick
DirController::handleSelfInvOrEvict(const Message &msg)
{
    Addr blk = msg.addr;
    NodeId n = msg.src;
    bool is_self = msg.type == MsgType::SelfInvS ||
                   msg.type == MsgType::SelfInvX;
    bool is_x = msg.type == MsgType::SelfInvX ||
                msg.type == MsgType::EvictX;
    DirEntry &e = dir_.entry(blk);
    Txn *txnp = txns_.find(blk);

    if (e.busy && txnp) {
        Txn &txn = *txnp;
        if (txn.awaitingWb && is_x && e.owner == n) {
            // The copy we asked the owner to write back was already on
            // its way home: consume it as the writeback. A
            // self-invalidation landing here was correct but late.
            if (is_self) {
                selfInvLateCorrect_.inc();
                if (verifyHook_)
                    verifyHook_(n, blk, false, /*timely=*/false);
            }
            txn.awaitingWb = false;
            txn.ackedNodes |= bitOf(n);
            return completeWithWriteback(blk, e, txn);
        }
        if (!txn.awaitingWb && !is_x && e.isSharer(n)) {
            // Racing a pending invalidation fan-out: count as the ack.
            if (is_self) {
                selfInvLateCorrect_.inc();
                if (verifyHook_)
                    verifyHook_(n, blk, false, /*timely=*/false);
            }
            if (!(txn.ackedNodes & bitOf(n))) {
                txn.ackedNodes |= bitOf(n);
                e.removeSharer(n);
                assert(txn.pendingAcks > 0);
                if (--txn.pendingAcks == 0)
                    return completeInvalidation(blk, e, txn);
            }
            return params_.engineOverhead;
        }
        staleDrops_.inc();
        return params_.engineOverhead;
    }

    // No transaction in flight: the self-invalidation reached home ahead
    // of any subsequent request — it is (so far) timely.
    if (is_x) {
        if (e.state == DirState::Exclusive && e.owner == n) {
            e.state = DirState::Idle;
            e.owner = invalidNode;
            // Sharing-prediction extension: hand the fresh data
            // straight to the predicted next consumer.
            if (is_self && params_.enableForwarding) {
                if (auto next = sharing_.predictNext(blk, n);
                    next && *next != n) {
                    // The forward itself proves the self-invalidation
                    // correct and timely (the consumer never needs to
                    // ask).
                    selfInvTimelyCorrect_.inc();
                    if (verifyHook_)
                        verifyHook_(n, blk, /*premature=*/false, true);
                    e.state = DirState::Shared;
                    e.addSharer(*next);
                    forwards_.inc();
                    Message fwd;
                    fwd.type = MsgType::DataFwd;
                    fwd.src = node_;
                    fwd.dst = *next;
                    fwd.addr = blk;
                    fwd.version = e.version;
                    Tick latency =
                        params_.engineOverhead + params_.memAccess;
                    send(fwd, latency);
                    lockUntilSent(blk, latency);
                    return latency;
                }
            }
            if (is_self) {
                e.setVerif(n, /*timely=*/true);
                writeCopyMask_[blk] |= bitOf(n);
            }
            return params_.engineOverhead + params_.memAccess;
        }
        staleDrops_.inc();
        return params_.engineOverhead;
    }
    if (e.isSharer(n)) {
        e.removeSharer(n);
        if (e.state == DirState::Shared && e.numSharers() == 0)
            e.state = DirState::Idle;
        if (is_self)
            e.setVerif(n, /*timely=*/true);
        return params_.engineOverhead;
    }
    staleDrops_.inc();
    return params_.engineOverhead;
}

void
DirController::send(Message msg, Tick delay)
{
    eq_.scheduleIn(delay, [this, msg] { net_.send(msg); });
}

void
DirController::lockUntilSent(Addr blk, Tick delay)
{
    dir_.entry(blk).busy = true;
    eq_.scheduleIn(delay, [this, blk] { unlock(blk); });
}

void
DirController::unlock(Addr blk)
{
    dir_.entry(blk).busy = false;
    if (std::deque<Queued> *parked = deferred_.find(blk)) {
        // Re-inject parked requests ahead of newer arrivals, preserving
        // their original arrival order and timestamps.
        for (auto rit = parked->rbegin(); rit != parked->rend(); ++rit)
            inq_.push_front(*rit);
        deferred_.erase(blk);
        engineKick();
    }
}

} // namespace ltp
