/**
 * @file
 * Directory state for the full-map write-invalidate protocol.
 *
 * Pure bookkeeping: one DirEntry per memory block that has ever been
 * requested, holding the stable protocol state (Idle / Shared /
 * Exclusive), the full-map sharer set, the DSI write-version number, and
 * the self-invalidation verification mask of Section 4.
 */

#ifndef LTP_PROTO_DIRECTORY_HH
#define LTP_PROTO_DIRECTORY_HH

#include <cstdint>

#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace ltp
{

/** Stable directory states (Section 2). */
enum class DirState : std::uint8_t
{
    Idle,      //!< block only at home
    Shared,    //!< read-only copies at one or more remote caches
    Exclusive, //!< writable copy at exactly one cache
};

const char *dirStateName(DirState s);

/** Per-block directory record. */
struct DirEntry
{
    DirState state = DirState::Idle;
    /** Full-map sharer bit vector (supports up to 64 nodes). */
    std::uint64_t sharers = 0;
    NodeId owner = invalidNode;

    /** DSI: write-version, incremented on every exclusive grant. */
    std::uint64_t version = 0;

    /**
     * Verification mask (Section 4): bit set for each node whose
     * self-invalidation has not yet been proven correct or premature.
     */
    std::uint64_t verifMask = 0;
    /** Whether the self-invalidation arrived timely (per masked node). */
    std::uint64_t timelyMask = 0;

    /** True while a transaction for this block is in flight. */
    bool busy = false;

    bool isSharer(NodeId n) const { return (sharers >> n) & 1; }
    void addSharer(NodeId n) { sharers |= (std::uint64_t(1) << n); }
    void removeSharer(NodeId n) { sharers &= ~(std::uint64_t(1) << n); }
    unsigned numSharers() const { return __builtin_popcountll(sharers); }

    bool inVerifMask(NodeId n) const { return (verifMask >> n) & 1; }

    void
    setVerif(NodeId n, bool timely)
    {
        verifMask |= (std::uint64_t(1) << n);
        if (timely)
            timelyMask |= (std::uint64_t(1) << n);
        else
            timelyMask &= ~(std::uint64_t(1) << n);
    }

    /** Remove @p n from the mask; @return whether its entry was timely. */
    bool
    clearVerif(NodeId n)
    {
        bool timely = (timelyMask >> n) & 1;
        verifMask &= ~(std::uint64_t(1) << n);
        timelyMask &= ~(std::uint64_t(1) << n);
        return timely;
    }
};

/** The directory of one home node: block address -> entry. */
class Directory
{
  public:
    /** Get (creating on demand) the entry for block-aligned @p blk. */
    DirEntry &entry(Addr blk) { return entries_[blk]; }

    /** Lookup without creating. */
    const DirEntry *find(Addr blk) const { return entries_.find(blk); }

    std::size_t numEntries() const { return entries_.size(); }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[blk, e] : entries_)
            fn(blk, e);
    }

  private:
    FlatMap<Addr, DirEntry> entries_;
};

} // namespace ltp

#endif // LTP_PROTO_DIRECTORY_HH
