#include "proto/cache_controller.hh"

#include <cassert>

#include "obs/trace.hh"
#include "sim/log.hh"

namespace ltp
{

namespace
{
/** Version value meaning "never cached this block before". */
constexpr std::uint64_t noVersion = ~std::uint64_t(0);
} // namespace

CacheController::CacheController(NodeId node, EventQueue &eq,
                                 Interconnect &net, const HomeMap &homes,
                                 CacheParams params, StatGroup &stats)
    : node_(node),
      eq_(eq),
      net_(net),
      homes_(homes),
      params_(params),
      cache_(params.blockSize, params.numSets, params.ways),
      hits_(stats.counter("cache.hits")),
      misses_(stats.counter("cache.misses")),
      upgrades_(stats.counter("cache.upgrades")),
      invalidationsSeen_(stats.counter("pred.invalidations")),
      predPredicted_(stats.counter("pred.predicted")),
      predNotPredicted_(stats.counter("pred.notPredicted")),
      predMispredicted_(stats.counter("pred.mispredicted")),
      selfInvsIssued_(stats.counter("pred.selfInvsIssued")),
      forwardFills_(stats.counter("cache.forwardFills")),
      missLatency_(stats.average("cache.missLatency"))
{
}

void
CacheController::setPredictor(InvalidationPredictor *pred,
                              PredictorMode mode)
{
    pred_ = pred;
    mode_ = mode;
    if (pred_)
        pred_->setPort(this);
}

void
CacheController::access(Addr addr, Pc pc, bool is_write, AccessDone done)
{
    assert(!out_.valid && "processor is blocking: one access at a time");
    BlockMath math(params_.blockSize);
    Addr blk = math.align(addr);

    CacheLine *line = cache_.find(blk);
    bool hit = line && (!is_write || line->state == CacheState::Exclusive);
    if (hit) {
        hits_.inc();
        Tick lat = params_.hitLatency;
        eq_.scheduleIn(lat, [this, blk, pc, is_write,
                             done = std::move(done), lat] {
            afterTouch(blk, pc, is_write, /*fill=*/false);
            done(lat, /*was_miss=*/false);
        });
        return;
    }

    misses_.inc();
    out_.valid = true;
    out_.blk = blk;
    out_.pc = pc;
    out_.write = is_write;
    out_.hadSharedCopy = line && line->state == CacheState::Shared;
    out_.issued = eq_.now();
    out_.done = std::move(done);
    if (out_.hadSharedCopy)
        upgrades_.inc();

    Message req;
    req.type = is_write ? MsgType::GetX : MsgType::GetS;
    req.src = node_;
    req.dst = homes_.home(blk);
    req.addr = blk;
    req.requester = node_;
    // DSI versioning: report the version of our last-held copy, or
    // "no version" on a cold access.
    CacheLine *any = cache_.findAny(blk);
    req.version = (any && any->activelyShared) ? any->version : noVersion;
    Tick delay = params_.ctrlOverhead +
                 (req.dst != node_ ? params_.remoteLookup : 0);
    send(req, delay);
}

void
CacheController::receive(const Message &msg)
{
    LTP_DPRINTF("cache", eq_.now(),
                "node" << node_ << " " << msg.describe());
    switch (msg.type) {
      case MsgType::DataS:
      case MsgType::DataX:
        handleData(msg);
        break;
      case MsgType::DataFwd:
        handleForward(msg);
        break;
      case MsgType::Inv:
      case MsgType::WbReq:
        handleInvOrWbReq(msg);
        break;
      default:
        assert(false && "unexpected message at cache controller");
    }
}

void
CacheController::handleData(const Message &msg)
{
    assert(out_.valid && out_.blk == msg.addr &&
           "data reply without a matching outstanding request");

    Addr blk = msg.addr;
    if (msg.verification == Verification::Premature) {
        predMispredicted_.inc();
        obs::Tracer::instant(obs::Cat::Predictor, node_, "mispredict",
                             eq_.now(), blk);
        if (pred_)
            pred_->onVerification(blk, /*premature=*/true);
    }

    CacheState st = msg.type == MsgType::DataX ? CacheState::Exclusive
                                               : CacheState::Shared;
    auto victim = cache_.insert(blk, st);
    CacheLine *line = cache_.find(blk);
    line->version = msg.version;
    line->activelyShared = true;
    if (victim) {
        Message ev;
        ev.type = victim->state == CacheState::Exclusive ? MsgType::EvictX
                                                         : MsgType::EvictS;
        ev.src = node_;
        ev.dst = homes_.home(victim->addr);
        ev.addr = victim->addr;
        send(ev, params_.ctrlOverhead);
    }
    if (pred_)
        pred_->onFillInfo(blk, FillInfo{msg.dsiCandidate});

    bool fill = !out_.hadSharedCopy;
    Pc pc = out_.pc;
    bool write = out_.write;
    Tick lat = eq_.now() - out_.issued + params_.ctrlOverhead;
    AccessDone done = std::move(out_.done);
    out_ = Outstanding{};
    missLatency_.sample(double(lat));

    eq_.scheduleIn(params_.ctrlOverhead,
                   [this, blk, pc, write, fill, done = std::move(done),
                    lat] {
                       afterTouch(blk, pc, write, fill);
                       done(lat, /*was_miss=*/true);
                   });
}

void
CacheController::handleForward(const Message &msg)
{
    Addr blk = msg.addr;
    // A demand transaction for the block is already in flight: the
    // real reply will fill it; drop the speculative copy.
    if (out_.valid && out_.blk == blk)
        return;
    if (cache_.find(blk))
        return; // already resident
    cache_.insert(blk, CacheState::Shared);
    CacheLine *line = cache_.find(blk);
    line->version = msg.version;
    line->activelyShared = true;
    forwardFills_.inc();
}

void
CacheController::handleInvOrWbReq(const Message &msg)
{
    Addr blk = msg.addr;
    CacheLine *line = cache_.find(blk);

    Message reply;
    reply.src = node_;
    reply.dst = msg.src;
    reply.addr = blk;
    reply.type = MsgType::InvAck;

    if (line) {
        if (msg.type == MsgType::WbReq &&
            line->state == CacheState::Exclusive) {
            reply.type = MsgType::WbData;
        }
        externalInvalidation(blk);
    }
    // A missing line means our SelfInv/Evict is already on its way home
    // (FIFO channels deliver it first); the plain ack lets the directory
    // reconcile.
    send(reply, params_.ctrlOverhead);
}

void
CacheController::externalInvalidation(Addr blk)
{
    invalidationsSeen_.inc();
    if (mode_ == PredictorMode::Passive && pendingPred_.count(blk)) {
        // The predictor had called this trace's last touch: correct.
        predPredicted_.inc();
        obs::Tracer::instant(obs::Cat::Predictor, node_, "verify",
                             eq_.now(), blk);
        pendingPred_.erase(blk);
        if (pred_)
            pred_->onVerification(blk, /*premature=*/false);
    } else {
        predNotPredicted_.inc();
        if (pred_)
            pred_->onInvalidation(blk);
    }
    cache_.invalidate(blk);
}

void
CacheController::afterTouch(Addr blk, Pc pc, bool is_write, bool fill)
{
    if (!pred_ || mode_ == PredictorMode::Off)
        return;

    if (mode_ == PredictorMode::Passive && pendingPred_.count(blk)) {
        // We touched a block the predictor had declared dead: in an
        // active system this touch would have missed on a prematurely
        // self-invalidated block. Score the misprediction and restart
        // the trace as the re-fetch would have.
        predMispredicted_.inc();
        obs::Tracer::instant(obs::Cat::Predictor, node_, "mispredict",
                             eq_.now(), blk);
        pendingPred_.erase(blk);
        pred_->onVerification(blk, /*premature=*/true);
        fill = true;
    }

    bool last_touch = pred_->onTouch(blk, pc, is_write, fill);
    if (!last_touch)
        return;
    obs::Tracer::instant(obs::Cat::Predictor, node_, "predict", eq_.now(),
                         blk);
    if (mode_ == PredictorMode::Passive) {
        pendingPred_.insert(blk);
    } else {
        selfInvalidate(blk);
    }
}

void
CacheController::requestSelfInvalidate(Addr blk)
{
    CacheLine *line = cache_.find(blk);
    if (!line)
        return;
    if (out_.valid && out_.blk == blk)
        return; // a demand transaction for this block is in flight
    obs::Tracer::instant(obs::Cat::Predictor, node_, "predict", eq_.now(),
                         blk);
    if (mode_ == PredictorMode::Passive) {
        pendingPred_.insert(blk);
    } else if (mode_ == PredictorMode::Active) {
        selfInvalidate(blk);
    }
}

void
CacheController::selfInvalidate(Addr blk)
{
    CacheLine *line = cache_.find(blk);
    if (!line)
        return;
    Message msg;
    msg.type = line->state == CacheState::Exclusive ? MsgType::SelfInvX
                                                    : MsgType::SelfInvS;
    msg.src = node_;
    msg.dst = homes_.home(blk);
    msg.addr = blk;
    cache_.invalidate(blk);
    selfInvsIssued_.inc();
    obs::Tracer::instant(obs::Cat::Predictor, node_, "self-invalidate",
                         eq_.now(), blk);
    send(msg, params_.ctrlOverhead);
}

void
CacheController::syncBoundary()
{
    if (pred_ && mode_ != PredictorMode::Off)
        pred_->onSyncBoundary();
}

void
CacheController::onDirVerify(Addr blk, bool premature, bool timely)
{
    (void)timely;
    if (mode_ != PredictorMode::Active)
        return;
    if (!premature) {
        // A correct self-invalidation stands in for the invalidation the
        // directory no longer needs to send.
        predPredicted_.inc();
        obs::Tracer::instant(obs::Cat::Predictor, node_, "verify",
                             eq_.now(), blk);
        invalidationsSeen_.inc();
        if (pred_)
            pred_->onVerification(blk, /*premature=*/false);
    }
}

void
CacheController::send(Message msg, Tick delay)
{
    eq_.scheduleIn(delay, [this, msg] { net_.send(msg); });
}

} // namespace ltp
