/**
 * @file
 * The home-node directory controller.
 *
 * Implements the full-map write-invalidate protocol of Section 2 (the
 * migratory-favoring variant that invalidates a writer's copy on a read),
 * the self-invalidation handling and verification mask of Section 4, and
 * DSI's write-versioning.
 *
 * Timing follows the paper's methodology: an aggressive two-stage
 * pipelined protocol engine. Messages queue FIFO at the controller; the
 * engine starts a new message every (service latency / 2) cycles and a
 * message's protocol actions complete after its full service latency.
 * Queueing delay and service time per message are the observables of
 * Table 4.
 */

#ifndef LTP_PROTO_DIR_CONTROLLER_HH
#define LTP_PROTO_DIR_CONTROLLER_HH

#include <deque>
#include <functional>

#include "net/message.hh"
#include "net/topo/interconnect.hh"
#include "proto/directory.hh"
#include "proto/sharing_predictor.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ltp
{

/** Directory-engine timing knobs. */
struct DirParams
{
    /** Fixed protocol-processing latency per message (cycles). */
    Tick engineOverhead = 6;
    /** Local memory / network-cache access time (Table 1: 104 cycles). */
    Tick memAccess = 104;
    /** Two-stage pipelining: engine accepts a new message every
     *  latency/2 cycles. When false the engine is a simple server. */
    bool pipelined = true;
    /**
     * Extension (Section 2's "in the limit" remark): learn requester
     * succession per block and forward self-invalidated data to the
     * predicted next consumer instead of parking it at home.
     */
    bool enableForwarding = false;
};

/**
 * One directory controller, owned by its home node.
 *
 * Outgoing messages go through the Interconnect; verification outcomes for
 * self-invalidations are reported through a hook so that the requesting
 * node's predictor can be trained (hardware would piggyback these bits
 * on subsequent messages; see DESIGN.md).
 */
class DirController
{
  public:
    /** (node, blk, premature, timely) — verification outcome for node. */
    using VerifyHook = std::function<void(NodeId, Addr, bool, bool)>;

    DirController(NodeId node, EventQueue &eq, Interconnect &net,
                  DirParams params, StatGroup &stats);

    /** Deliver an inbound protocol message (network sink). */
    void receive(const Message &msg);

    /** Install the verification-outcome hook. */
    void setVerifyHook(VerifyHook hook) { verifyHook_ = std::move(hook); }

    /** Access to raw directory state (tests, storage accounting). */
    Directory &directory() { return dir_; }
    const Directory &directory() const { return dir_; }

    NodeId nodeId() const { return node_; }

  private:
    /** A message waiting for the protocol engine. */
    struct Queued
    {
        Message msg;
        Tick arrival;
    };

    /** An in-flight transaction for one block. */
    struct Txn
    {
        Message req;              //!< the original GetS/GetX
        bool awaitingWb = false;  //!< WbReq outstanding to the old owner
        unsigned pendingAcks = 0; //!< Inv acks still outstanding
        std::uint64_t ackedNodes = 0;
        bool requesterHadCopy = false;
    };

    void engineKick();
    /** Process one message; returns its service latency. */
    Tick process(const Queued &q);

    Tick handleRequest(const Message &msg);
    Tick handleGetS(const Message &msg, DirEntry &e);
    Tick handleGetX(const Message &msg, DirEntry &e);
    Tick handleAck(const Message &msg);
    Tick handleSelfInvOrEvict(const Message &msg);

    /** Complete a writeback-style transaction with data from @p from. */
    Tick completeWithWriteback(Addr blk, DirEntry &e, Txn &txn);
    /** Finish a GetX transaction once all invalidations are acked. */
    Tick completeInvalidation(Addr blk, DirEntry &e, Txn &txn);

    /**
     * Run the Section 4 verification-mask logic for an incoming request.
     * Returns the verification verdict to piggyback on the data reply.
     */
    Verification processVerification(const Message &msg, DirEntry &e);

    /** Compute the DSI candidate bit for a data reply. */
    bool dsiCandidate(const Message &req, const DirEntry &e,
                      bool migratory_exception) const;

    void send(Message msg, Tick delay);

    /**
     * Mark @p blk busy and release it after @p delay — used when a data
     * reply is still being assembled: any new request for the block is
     * deferred until the reply is on the wire, which (with FIFO
     * channels) guarantees the requester's fill arrives before any
     * invalidation we later send it.
     */
    void lockUntilSent(Addr blk, Tick delay);
    void unlock(Addr blk);

    NodeId node_;
    EventQueue &eq_;
    Interconnect &net_;
    DirParams params_;

    Directory dir_;
    std::deque<Queued> inq_;
    bool engineBusy_ = false;
    FlatMap<Addr, Txn> txns_;
    /** Verification verdict to piggyback on the pending reply. */
    FlatMap<Addr, Verification> txnVerdicts_;
    FlatMap<Addr, std::deque<Queued>> deferred_;
    /** Self-invalidated *write* copies awaiting verification (per block). */
    FlatMap<Addr, std::uint64_t> writeCopyMask_;

    VerifyHook verifyHook_;
    SharingPredictor sharing_;

    Average &queueing_;
    Average &service_;
    Counter &requests_;
    Counter &selfInvTimelyCorrect_;
    Counter &selfInvLateCorrect_;
    Counter &selfInvPremature_;
    Counter &staleDrops_;
    Counter &forwards_;
};

} // namespace ltp

#endif // LTP_PROTO_DIR_CONTROLLER_HH
