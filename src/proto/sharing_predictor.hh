/**
 * @file
 * Directory-side sharing predictor (extension).
 *
 * Section 2 of the paper: "self-invalidation can trigger sharing
 * prediction and speculation... In the limit, self-invalidation
 * together with accurate sharing prediction can help eliminate remote
 * access latency by always forwarding a memory block to a subsequent
 * sharer prior to an access." This module supplies the "subsequent
 * sharer" half (a miniature of Lai & Falsafi's ISCA'99 memory sharing
 * predictor, the paper's reference [8]): per block, it learns the
 * requester-succession pattern (A's copy is usually consumed by B) with
 * 2-bit confidence, and the directory forwards self-invalidated data to
 * the predicted consumer.
 */

#ifndef LTP_PROTO_SHARING_PREDICTOR_HH
#define LTP_PROTO_SHARING_PREDICTOR_HH

#include <optional>

#include "predictor/signature.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace ltp
{

/** Learns, per block, who requests next after each node's turn. */
class SharingPredictor
{
  public:
    explicit SharingPredictor(unsigned conf_threshold = 2)
        : threshold_(conf_threshold)
    {
    }

    /** A request for @p blk by @p requester reached the directory. */
    void
    observeRequest(Addr blk, NodeId requester)
    {
        BlockState &b = blocks_[blk];
        if (b.lastRequester != invalidNode &&
            b.lastRequester != requester) {
            Transition &t = b.next[b.lastRequester];
            if (t.target == requester) {
                t.conf.strengthen();
            } else if (t.conf.value() == 0 ||
                       t.target == invalidNode) {
                t.target = requester;
                t.conf = ConfidenceCounter(1, 3);
            } else {
                t.conf.weaken();
            }
        }
        b.lastRequester = requester;
    }

    /**
     * Predict which node consumes @p blk after @p current's copy dies.
     * Returns nullopt when the pattern is unknown or low-confidence.
     */
    std::optional<NodeId>
    predictNext(Addr blk, NodeId current) const
    {
        const BlockState *b = blocks_.find(blk);
        if (!b)
            return std::nullopt;
        const Transition *t = b->next.find(current);
        if (!t)
            return std::nullopt;
        if (t->target == invalidNode || t->target == current ||
            !t->conf.atLeast(threshold_)) {
            return std::nullopt;
        }
        return t->target;
    }

    std::size_t trackedBlocks() const { return blocks_.size(); }

  private:
    struct Transition
    {
        NodeId target = invalidNode;
        ConfidenceCounter conf{0, 3};
    };

    struct BlockState
    {
        NodeId lastRequester = invalidNode;
        FlatMap<NodeId, Transition> next;
    };

    unsigned threshold_;
    FlatMap<Addr, BlockState> blocks_;
};

} // namespace ltp

#endif // LTP_PROTO_SHARING_PREDICTOR_HH
