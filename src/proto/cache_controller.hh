/**
 * @file
 * The cache-side coherence controller of one DSM node.
 *
 * Services the processor's loads and stores against the node's cache,
 * issues GetS/GetX to home directories on misses, answers invalidations
 * and writeback requests, and hosts the self-invalidation predictor:
 * every completed touch is reported to the predictor, and a last-touch
 * prediction (or a DSI candidate flush) turns into a SelfInv message.
 *
 * Predictor modes:
 *  - Off:     base system, no predictor activity at all.
 *  - Active:  predictions really self-invalidate blocks; accuracy is
 *             scored through the directory's verification mask (Fig 9 /
 *             Table 4 methodology).
 *  - Passive: predictions are recorded but do not perturb the run; the
 *             controller scores them against what actually happens next
 *             (Fig 6-8 / Table 3 methodology).
 */

#ifndef LTP_PROTO_CACHE_CONTROLLER_HH
#define LTP_PROTO_CACHE_CONTROLLER_HH

#include <functional>

#include "mem/addr.hh"
#include "mem/cache.hh"
#include "net/message.hh"
#include "net/topo/interconnect.hh"
#include "predictor/invalidation_predictor.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ltp
{

/** Cache-side timing knobs. */
struct CacheParams
{
    Tick hitLatency = 1;      //!< processor-visible hit time
    Tick ctrlOverhead = 2;    //!< controller processing per action
    /** Extra latency on the outbound path of a *remote* miss (the local
     *  network-cache lookup that misses before the request goes out). */
    Tick remoteLookup = 104;
    unsigned blockSize = 32;
    unsigned numSets = 0;     //!< 0: unbounded (the paper's assumption)
    unsigned ways = 0;
};

/** How the attached predictor participates in the run. */
enum class PredictorMode
{
    Off,
    Active,
    Passive,
};

/**
 * Per-node cache controller. The processor is single-issue and blocking:
 * at most one demand access is outstanding at a time.
 */
class CacheController : public SelfInvalidationPort
{
  public:
    /** Completion callback: (latency, was_miss). */
    using AccessDone = std::function<void(Tick, bool)>;

    CacheController(NodeId node, EventQueue &eq, Interconnect &net,
                    const HomeMap &homes, CacheParams params,
                    StatGroup &stats);

    /** Attach a predictor (not owned). */
    void setPredictor(InvalidationPredictor *pred, PredictorMode mode);

    /**
     * Issue a demand access for the processor.
     * @pre no other demand access is outstanding.
     */
    void access(Addr addr, Pc pc, bool is_write, AccessDone done);

    /** Deliver an inbound protocol message (network sink). */
    void receive(const Message &msg);

    /** The processor crossed a synchronization boundary (DSI trigger). */
    void syncBoundary();

    /** SelfInvalidationPort: predictor-initiated flush of @p blk. */
    void requestSelfInvalidate(Addr blk) override;

    /**
     * Verification outcome delivered by a directory for an earlier,
     * CORRECT self-invalidation by this node (premature outcomes travel
     * on the data reply instead).
     */
    void onDirVerify(Addr blk, bool premature, bool timely);

    Cache &cache() { return cache_; }
    NodeId nodeId() const { return node_; }
    PredictorMode mode() const { return mode_; }

    /** True while a demand access is in flight (diagnostics). */
    bool hasOutstanding() const { return out_.valid; }
    /** Block of the in-flight demand access (diagnostics). */
    Addr outstandingBlock() const { return out_.blk; }

  private:
    struct Outstanding
    {
        Addr blk = 0;
        Pc pc = 0;
        bool write = false;
        bool hadSharedCopy = false; //!< upgrade: fill does not restart trace
        Tick issued = 0;
        AccessDone done;
        bool valid = false;
    };

    void handleData(const Message &msg);
    void handleForward(const Message &msg);
    void handleInvOrWbReq(const Message &msg);

    /** Report a completed touch to the predictor and act on the answer. */
    void afterTouch(Addr blk, Pc pc, bool is_write, bool fill);

    /** An external invalidation removed a resident block: score + learn. */
    void externalInvalidation(Addr blk);

    /** Really flush @p blk home (Active mode / evictions). */
    void selfInvalidate(Addr blk);

    void send(Message msg, Tick delay);

    NodeId node_;
    EventQueue &eq_;
    Interconnect &net_;
    const HomeMap &homes_;
    CacheParams params_;
    Cache cache_;

    InvalidationPredictor *pred_ = nullptr;
    PredictorMode mode_ = PredictorMode::Off;

    Outstanding out_;

    /** Passive mode: blocks with an unresolved last-touch prediction. */
    FlatSet<Addr> pendingPred_;

    Counter &hits_;
    Counter &misses_;
    Counter &upgrades_;
    Counter &invalidationsSeen_;
    Counter &predPredicted_;
    Counter &predNotPredicted_;
    Counter &predMispredicted_;
    Counter &selfInvsIssued_;
    Counter &forwardFills_;
    Average &missLatency_;
};

} // namespace ltp

#endif // LTP_PROTO_CACHE_CONTROLLER_HH
