/**
 * @file
 * Writing a custom workload against the public API: a producer/consumer
 * pipeline (the paper's Figure 1/2 scenario, literally).
 *
 * One producer node repeatedly writes a buffer of blocks; a consumer
 * node reads them. Without self-invalidation every consumer read is a
 * 3-hop transaction (invalidate + write back the producer's copy). With
 * LTP, the producer learns that its last store to each block precedes
 * the consumer's read, self-invalidates, and the consumer finds the
 * data at home: 2 hops.
 *
 *   $ ./examples/producer_consumer
 */

#include <cstdio>

#include "dsm/system.hh"

namespace
{

using namespace ltp;

/** A minimal two-thread kernel written against KernelBase. */
class ProducerConsumer : public KernelBase
{
  public:
    std::string name() const override { return "producer-consumer"; }

    void
    setup(AddressSpace &as, MemoryValues &mem,
          const KernelConfig &cfg) override
    {
        cfg_ = cfg;
        blocks_ = cfg.size;
        // The buffer lives on the producer's node (node 0).
        base_ = as.alloc("pc.buffer", std::uint64_t(blocks_) * 32, 0);
        for (unsigned b = 0; b < blocks_; ++b)
            mem.store(base_ + Addr(b) * 32, 0);
    }

    Task<void>
    run(ThreadCtx &ctx) override
    {
        // PCs: one static producer store site, one consumer load site.
        constexpr Pc pc_produce = 0x100;
        constexpr Pc pc_consume = 0x104;

        if (ctx.id() == 0) { // producer
            for (unsigned it = 0; it < cfg_.iters; ++it) {
                for (unsigned b = 0; b < blocks_; ++b)
                    co_await ctx.store(pc_produce, base_ + Addr(b) * 32,
                                       it + b);
                co_await barrier(ctx);
                co_await barrier(ctx); // consumer reads in between
            }
        } else if (ctx.id() == 1) { // consumer
            std::uint64_t sum = 0;
            for (unsigned it = 0; it < cfg_.iters; ++it) {
                co_await barrier(ctx);
                for (unsigned b = 0; b < blocks_; ++b)
                    sum += co_await ctx.load(pc_consume,
                                             base_ + Addr(b) * 32);
                co_await barrier(ctx);
            }
            (void)sum;
        } else { // bystanders just synchronize
            for (unsigned it = 0; it < cfg_.iters; ++it) {
                co_await barrier(ctx);
                co_await barrier(ctx);
            }
        }
    }

  private:
    Addr base_ = 0;
    unsigned blocks_ = 0;
};

RunResult
runWith(PredictorKind kind)
{
    SystemParams params = SystemParams::withPredictor(
        kind, PredictorMode::Active, 30);
    params.numNodes = 4;
    KernelConfig cfg;
    cfg.iters = 40;
    cfg.size = 16; // buffer blocks

    ProducerConsumer kernel;
    DsmSystem system(params);
    return system.run(kernel, cfg);
}

} // namespace

int
main()
{
    RunResult base = runWith(PredictorKind::Base);
    RunResult ltp = runWith(PredictorKind::LtpPerBlock);

    std::printf("producer/consumer, 16 blocks x 40 iterations\n");
    std::printf("  base : %8llu cycles (%llu invalidations)\n",
                (unsigned long long)base.cycles,
                (unsigned long long)base.invalidations);
    std::printf("  LTP  : %8llu cycles, %.1f%% of invalidations "
                "predicted, %.1f%% timely\n",
                (unsigned long long)ltp.cycles, 100 * ltp.accuracy(),
                100 * ltp.timeliness());
    std::printf("  speedup: %.2fx\n",
                double(base.cycles) / double(ltp.cycles));
    return 0;
}
