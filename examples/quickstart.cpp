/**
 * @file
 * Quickstart: build a 32-node DSM, attach the paper's per-block
 * Last-Touch Predictor, run the em3d benchmark, and print what the
 * predictor achieved.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "dsm/experiment.hh"

int
main()
{
    using namespace ltp;

    // 1. Configure a paper-standard system (Table 1 defaults) with an
    //    active per-block LTP: predictions really self-invalidate.
    SystemParams params = SystemParams::withPredictor(
        PredictorKind::LtpPerBlock, PredictorMode::Active,
        /*sig_bits=*/30);

    // 2. Pick a workload and its (scaled) Table 2 input.
    auto kernel = makeKernel("em3d");
    KernelConfig cfg = defaultConfig("em3d");

    // 3. Run.
    DsmSystem system(params);
    RunResult r = system.run(*kernel, cfg);

    // 4. Report.
    std::printf("em3d on %u nodes, %s predictor (active)\n",
                unsigned(params.numNodes),
                predictorKindName(params.predictor));
    std::printf("  completed            : %s\n",
                r.completed ? "yes" : "NO (timeout)");
    std::printf("  execution time       : %llu cycles\n",
                (unsigned long long)r.cycles);
    std::printf("  memory operations    : %llu\n",
                (unsigned long long)r.memOps);
    std::printf("  invalidations        : %llu\n",
                (unsigned long long)r.invalidations);
    std::printf("  predicted (correct)  : %.1f%%\n", 100 * r.accuracy());
    std::printf("  mispredicted         : %.1f%%\n",
                100 * r.mispredictionRate());
    std::printf("  self-invs issued     : %llu (%.1f%% timely)\n",
                (unsigned long long)r.selfInvsIssued,
                100 * r.timeliness());

    // 5. Compare against the base system (no self-invalidation).
    DsmSystem base(SystemParams::base());
    auto kernel2 = makeKernel("em3d");
    RunResult rb = base.run(*kernel2, cfg);
    std::printf("  base execution time  : %llu cycles\n",
                (unsigned long long)rb.cycles);
    std::printf("  speedup              : %.2fx\n",
                double(rb.cycles) / double(r.cycles));
    return 0;
}
