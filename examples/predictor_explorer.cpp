/**
 * @file
 * Predictor design-space explorer: sweep predictor organizations and
 * signature widths over one benchmark from the command line.
 *
 *   $ ./example_predictor_explorer [kernel] [topology] [routing] [threads]
 *
 * Defaults: tomcatv on the paper's point-to-point network. Topology is
 * one of p2p | mesh | torus | ring and routing one of
 * dor | adaptive | oblivious (see src/net/README.md), so the accuracy
 * study can be reproduced under hop- and congestion-dependent network
 * latency and any routing policy. `threads` selects the parallel
 * engine's shard count (results are bit-identical for every value;
 * these Passive-mode sweeps shard cleanly).
 *
 * Prints an accuracy/storage matrix — the kind of study Sections 5.2
 * and 5.3 of the paper run — for the chosen workload.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dsm/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace ltp;

    std::string kernel = argc > 1 ? argv[1] : "tomcatv";
    bool known = false;
    for (const auto &name : allKernelNames())
        known |= name == kernel;
    if (!known) {
        std::fprintf(stderr, "unknown kernel '%s'; choose one of:\n",
                     kernel.c_str());
        for (const auto &name : allKernelNames())
            std::fprintf(stderr, "  %s\n", name.c_str());
        return 1;
    }

    TopologyKind topology = TopologyKind::PointToPoint;
    if (argc > 2) {
        auto parsed = parseTopologyKind(argv[2]);
        if (!parsed) {
            std::fprintf(stderr,
                         "unknown topology '%s'; choose one of: p2p mesh "
                         "torus ring\n",
                         argv[2]);
            return 1;
        }
        topology = *parsed;
    }

    RoutingPolicy routing = RoutingPolicy::DimensionOrder;
    if (argc > 3) {
        auto parsed = parseRoutingPolicy(argv[3]);
        if (!parsed) {
            std::fprintf(stderr,
                         "unknown routing policy '%s'; choose one of: dor "
                         "adaptive oblivious\n",
                         argv[3]);
            return 1;
        }
        routing = *parsed;
    }

    unsigned sim_threads = 1;
    if (argc > 4) {
        sim_threads = unsigned(std::atoi(argv[4]));
        if (sim_threads == 0) {
            std::fprintf(stderr, "threads must be >= 1\n");
            return 1;
        }
    }

    std::printf("predictor design space on '%s' (%s), topology=%s, "
                "routing=%s, threads=%u\n",
                kernel.c_str(),
                describeConfig(kernel, defaultConfig(kernel)).c_str(),
                topologyKindName(topology), routingPolicyName(routing),
                sim_threads);
    std::printf("%-12s %6s %10s %10s %10s %10s\n", "organization",
                "bits", "pred%", "mispred%", "ent/blk", "bytes/blk");

    struct Row
    {
        const char *label;
        PredictorKind kind;
        unsigned bits;
    };
    const std::vector<Row> rows = {
        {"last-pc", PredictorKind::LastPc, 30},
        {"per-block", PredictorKind::LtpPerBlock, 30},
        {"per-block", PredictorKind::LtpPerBlock, 13},
        {"per-block", PredictorKind::LtpPerBlock, 11},
        {"per-block", PredictorKind::LtpPerBlock, 6},
        {"global", PredictorKind::LtpGlobal, 30},
        {"global", PredictorKind::LtpGlobal, 13},
        {"dsi", PredictorKind::Dsi, 0},
    };

    for (const Row &row : rows) {
        ExperimentSpec spec;
        spec.kernel = kernel;
        spec.predictor = row.kind;
        spec.mode = PredictorMode::Passive;
        spec.sigBits = row.bits ? row.bits : 30;
        spec.topology = topology;
        spec.routing = routing;
        spec.simThreads = sim_threads;
        RunResult r = runExperiment(spec);
        std::printf("%-12s %6u %10.1f %10.1f", row.label, row.bits,
                    100 * r.accuracy(), 100 * r.mispredictionRate());
        if (r.storage.activeBlocks) {
            std::printf(" %10.1f %10.1f\n", r.storage.entriesPerBlock(),
                        r.storage.bytesPerBlock());
        } else {
            std::printf(" %10s %10s\n", "-", "-");
        }
    }
    return 0;
}
