/**
 * @file
 * A migratory-sharing study on the public API: a shared counter updated
 * in turn by every node — the sharing pattern that makes DSI's
 * versioning heuristic refuse candidacy (the "exclusive request by the
 * only read-copy holder" exception) while trace prediction handles it.
 *
 * Demonstrates: custom kernels with locks, per-predictor comparison,
 * and reading directory statistics off a run.
 *
 *   $ ./examples/migratory_counter
 */

#include <cstdio>

#include "dsm/system.hh"

namespace
{

using namespace ltp;

class MigratoryCounter : public KernelBase
{
  public:
    std::string name() const override { return "migratory-counter"; }

    void
    setup(AddressSpace &as, MemoryValues &mem,
          const KernelConfig &cfg) override
    {
        cfg_ = cfg;
        counters_ = cfg.size;
        Addr base = as.allocStriped("mig.counters", counters_);
        addr_.clear();
        for (unsigned c = 0; c < counters_; ++c) {
            addr_.push_back(as.stripedBlock(base, c));
            mem.store(addr_[c], 0);
        }
    }

    Task<void>
    run(ThreadCtx &ctx) override
    {
        constexpr Pc pc_read = 0x200;
        constexpr Pc pc_write = 0x204;
        NodeId n = ctx.id();
        // Round-robin: each node updates each counter once per round,
        // staggered so counters migrate node to node.
        for (unsigned it = 0; it < cfg_.iters; ++it) {
            for (unsigned k = 0; k < counters_; ++k) {
                unsigned c = (k + n) % counters_;
                std::uint64_t v = co_await ctx.load(pc_read, addr_[c]);
                co_await ctx.store(pc_write, addr_[c], v + 1);
                co_await ctx.compute(60);
            }
            co_await barrier(ctx);
        }
    }

  private:
    std::vector<Addr> addr_;
    unsigned counters_ = 0;
};

void
report(const char *label, PredictorKind kind)
{
    SystemParams params = SystemParams::withPredictor(
        kind, PredictorMode::Passive, 30);
    params.numNodes = 16;
    KernelConfig cfg;
    cfg.iters = 24;
    cfg.size = 24;

    MigratoryCounter kernel;
    DsmSystem system(params);
    RunResult r = system.run(kernel, cfg);
    std::printf("  %-8s: predicted %5.1f%%  mispredicted %5.1f%%  "
                "(%llu invalidations)\n",
                label, 100 * r.accuracy(), 100 * r.mispredictionRate(),
                (unsigned long long)r.invalidations);
}

} // namespace

int
main()
{
    std::printf("migratory counters, 16 nodes\n");
    report("dsi", PredictorKind::Dsi);
    report("last-pc", PredictorKind::LastPc);
    report("ltp", PredictorKind::LtpPerBlock);
    std::printf("\nDSI's versioning skips migratory blocks by design; "
                "the trace predictors learn the {read, write} pattern.\n");
    return 0;
}
