#!/usr/bin/env python3
"""Determinism lint driver: the ltp-tidy checks over the tree.

The simulator's headline contract — stats dumps byte-identical for
every simThreads value — is enforced at compile time by five project
clang-tidy checks (tools/ltp-tidy/):

    ltp-no-wallclock            model code runs on virtual time only
    ltp-no-shared-rng           counter-based draws, no shared streams
    ltp-no-unordered-container  deterministic iteration only
    ltp-no-pointer-order        no address-ordered/hashed results
    ltp-stat-purity             guard/ and obs/ never mutate StatGroup

This driver owns the path policy (which checks apply where), runs one
of two engines, filters findings through the committed suppression
baseline (tools/tidy_baseline.json), and fails only on *new* findings:

  - plugin: the real clang-tidy with -load libltp-tidy-module.so plus a
    curated stock profile (bugprone-*, concurrency-*, selected
    performance-*). Needs the module built (cmake -DLTP_BUILD_TIDY=ON)
    and a clang-tidy executable on PATH.
  - lite: a pure-Python approximation of the five project checks
    (comment/string-stripped regex matching). No toolchain needed, so
    the determinism lint runs everywhere; AST-only patterns (e.g. raw
    pointer `<` comparisons) are plugin-mode only, and the stock
    profile is unavailable.

Engine selection is automatic (plugin when usable, else lite, loudly).

    $ python3 tools/run_ltp_tidy.py                    # sweep the tree
    $ python3 tools/run_ltp_tidy.py --self-test        # fixture corpus
    $ python3 tools/run_ltp_tidy.py src/net            # subtree only

--self-test runs every tests/tidy/fixtures/<check>_bad.cc (the check
must fire) and <check>_ok.cc (the sanctioned idiom must stay silent);
exit 77 (ctest SKIP) only when no engine can run at all.

Stock-profile findings are advisory by default (reported, uploaded,
not fatal) until a baseline is captured from a real clang-tidy run;
pass --stock-strict to gate on them too. Project-check findings are
always fatal unless baselined.

Like tools/perf_gate.py, the driver appends a findings table to the
GitHub Actions job summary when GITHUB_STEP_SUMMARY is set, and writes
a JSON report with --report for the CI artifact.
"""

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PROJECT_CHECKS = (
    "ltp-no-wallclock",
    "ltp-no-shared-rng",
    "ltp-no-unordered-container",
    "ltp-no-pointer-order",
    "ltp-stat-purity",
)

# Path policy — the single source of truth shared by both engines.
# Model code must satisfy the four determinism checks; the observer
# subsystems (src/obs, src/sim/guard) are exempt from those (they own
# host-side clocks and profiling state by design) but must satisfy
# ltp-stat-purity: arming them may never change a stats dump.
MODEL_DIRS = ("src/dsm", "src/net", "src/sim", "src/mem", "src/proto",
              "src/predictor", "src/kernel")
OBSERVER_DIRS = ("src/obs", "src/sim/guard")
DETERMINISM_CHECKS = ("ltp-no-wallclock", "ltp-no-shared-rng",
                      "ltp-no-unordered-container", "ltp-no-pointer-order")

# Curated stock profile (plugin mode only). The two disabled bugprone
# checks drown signal in style noise on this codebase.
STOCK_CHECKS = ("bugprone-*", "-bugprone-easily-swappable-parameters",
                "-bugprone-narrowing-conversions", "concurrency-*",
                "performance-for-range-copy",
                "performance-unnecessary-copy-initialization",
                "performance-unnecessary-value-param",
                "performance-move-const-arg",
                "performance-inefficient-vector-operation")

SOURCE_EXTS = (".cc", ".hh")


def rel(path):
    path = os.path.abspath(path)
    return os.path.relpath(path, REPO).replace(os.sep, "/")


def in_dirs(relpath, dirs):
    return any(relpath == d or relpath.startswith(d + "/") for d in dirs)


def checks_for_path(relpath):
    """Which project checks apply to a finding at this path."""
    if in_dirs(relpath, OBSERVER_DIRS):
        return ("ltp-stat-purity",)
    if in_dirs(relpath, MODEL_DIRS):
        return DETERMINISM_CHECKS
    return ()


class Finding:
    def __init__(self, check, file, line, message, engine, advisory=False):
        self.check = check
        self.file = file            # repo-relative
        self.line = line            # 1-based
        self.message = message
        self.engine = engine        # "plugin" | "lite"
        self.advisory = advisory    # stock-profile finding
        self.line_text = ""         # source text, for baseline matching
        self.suppressed_by = None   # baseline reason once matched

    def key(self):
        return (self.check, self.file, self.line)

    def __repr__(self):
        return f"{self.file}:{self.line}: {self.message} [{self.check}]"


# --------------------------------------------------------------------------
# lite engine: comment/string-stripped regex scan
# --------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else c)
        i += 1
    return "".join(out)


# check -> [(regex, message)]; matched against stripped lines.
LITE_PATTERNS = {
    "ltp-no-wallclock": [
        (re.compile(r"std\s*::\s*chrono\s*::\s*\w*clock\s*::\s*now"),
         "std::chrono clock read in model code; model decisions must "
         "use virtual time (EventQueue::now()) only"),
        (re.compile(r"(?<![\w.>])(?:gettimeofday|clock_gettime|"
                    r"timespec_get|ftime)\s*\("),
         "wall-clock read in model code; model decisions must use "
         "virtual time (EventQueue::now()) only"),
        (re.compile(r"(?<![\w.>])time\s*\(\s*(?:0|NULL|nullptr)?\s*\)"),
         "wall-clock read in model code; model decisions must use "
         "virtual time (EventQueue::now()) only"),
        (re.compile(r"(?<![\w.>])clock\s*\(\s*\)"),
         "wall-clock read in model code; model decisions must use "
         "virtual time (EventQueue::now()) only"),
    ],
    "ltp-no-shared-rng": [
        (re.compile(r"(?<![\w.>])(?:s?rand|s?random|rand_r|[dlm]rand48|"
                    r"srand48)\s*\("),
         "C-library RNG in model code; use ltp::counterHash() "
         "(sim/rng.hh)"),
        (re.compile(r"std\s*::\s*(?:random_device|mt19937(?:_64)?|"
                    r"minstd_rand0?|default_random_engine|knuth_b|"
                    r"ranlux\d+(?:_base)?|mersenne_twister_engine|"
                    r"linear_congruential_engine|"
                    r"subtract_with_carry_engine|discard_block_engine|"
                    r"independent_bits_engine|shuffle_order_engine)"),
         "std random engine in model code; use ltp::counterHash() "
         "(sim/rng.hh)"),
        # Member streams, by the house naming convention (trailing _).
        (re.compile(r"(?<![\w:])Rng\s+\w*_\s*(?:=[^;]*)?[;{]"),
         "ltp::Rng member: a shared stream whose consumption order is "
         "part of the result; use ltp::counterHash() or record the "
         "single-consumer justification in tools/tidy_baseline.json"),
    ],
    "ltp-no-unordered-container": [
        (re.compile(r"(?<!\w)std\s*::\s*unordered_(?:multi)?(?:map|set)"
                    r"\b"),
         "unordered container in model code: iteration order is not "
         "deterministic; use ltp::FlatMap/FlatSet or std::map/set"),
    ],
    "ltp-no-pointer-order": [
        (re.compile(r"std\s*::\s*(?:less|greater|less_equal|"
                    r"greater_equal|hash)\s*<[^<>]*\*\s*>"),
         "ordering/hashing functor on a pointer type: address-space "
         "layout leaks into results; key on stable model ids"),
        (re.compile(r"(?:reinterpret_cast|static_cast)\s*<\s*"
                    r"(?:std\s*::\s*)?u?intptr_t\s*>"),
         "pointer-to-integer cast in model code: the address is not a "
         "stable value; derive ids from model structure"),
        (re.compile(r"(?:(?<![\w:])FlatMap|(?<![\w:])FlatSet|"
                    r"std\s*::\s*(?:multi)?(?:map|set))\s*<\s*"
                    r"[\w:]+(?:\s+[\w:]+)*\s*\*\s*[,>]"),
         "container keyed on raw pointers: iteration order follows the "
         "address space; key on stable model ids"),
    ],
    "ltp-stat-purity": [
        (re.compile(r"(?:\.|->)\s*(?:counter|average|histogram)\s*\("),
         "observer code acquires a StatGroup handle: guard/ and obs/ "
         "must keep stats dumps byte-identical; own counters outside "
         "StatGroup (obs/engine_profile.hh idiom)"),
        (re.compile(r"(?<![\w.>])(?:mergeFrom|resetAll)\s*\("),
         "observer code mutates StatGroup state: guard/ and obs/ must "
         "keep stats dumps byte-identical"),
        (re.compile(r"(?:\.|->)\s*(?:inc|sample)\s*\("),
         "observer code mutates a stat object: guard/ and obs/ must "
         "keep stats dumps byte-identical; own counters outside "
         "StatGroup (obs/engine_profile.hh idiom)"),
    ],
}

NOLINT = re.compile(r"NOLINT(?:NEXTLINE)?(?:\(([^)]*)\))?")

# `using Clock = std::chrono::steady_clock;` — the alias hides the
# chrono name from the static patterns, so collect alias names per
# file and flag `<Alias>::now()` reads at their call sites (the same
# lines the plugin's AST matcher reports).
CLOCK_ALIAS = re.compile(r"(?:using\s+(\w+)\s*=|typedef)\s*std\s*::\s*"
                         r"chrono\s*::\s*\w*clock\s*(?:\s(\w+))?\s*;")


def clock_alias_patterns(stripped_lines):
    names = set()
    for text in stripped_lines:
        m = CLOCK_ALIAS.search(text)
        if m:
            names.add(m.group(1) or m.group(2))
    return [
        (re.compile(r"(?<![\w.>])" + re.escape(n) + r"\s*::\s*now\s*\("),
         "std::chrono clock read (through alias '%s') in model code; "
         "model decisions must use virtual time (EventQueue::now()) "
         "only" % n)
        for n in sorted(names) if n
    ]


def lite_scan_file(path, checks):
    """Run the lite engine's patterns for `checks` over one file."""
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        sys.exit(f"ltp-tidy: cannot read {path}: {e}")
    stripped = strip_comments_and_strings(raw).split("\n")
    raw_lines = raw.split("\n")
    findings = []
    for check in checks:
        patterns = list(LITE_PATTERNS[check])
        if check == "ltp-no-wallclock":
            patterns += clock_alias_patterns(stripped)
        for pattern, message in patterns:
            for lineno, text in enumerate(stripped, start=1):
                if not pattern.search(text):
                    continue
                # Honor clang-tidy NOLINT markers on the raw line and
                # the one above, same as the plugin engine would.
                raw_text = raw_lines[lineno - 1]
                prev = raw_lines[lineno - 2] if lineno >= 2 else ""
                if nolinted(check, raw_text, prev):
                    continue
                f = Finding(check, rel(path), lineno, message, "lite")
                f.line_text = raw_text.strip()
                findings.append(f)
    return findings


def nolinted(check, line, prev_line):
    for source, want in ((line, "NOLINT"), (prev_line, "NOLINTNEXTLINE")):
        for m in NOLINT.finditer(source):
            if not m.group(0).startswith(want):
                continue
            scope = m.group(1)
            if scope is None or check in [s.strip()
                                          for s in scope.split(",")]:
                return True
    return False


# --------------------------------------------------------------------------
# plugin engine: the real clang-tidy with -load
# --------------------------------------------------------------------------

def find_clang_tidy():
    for name in ("clang-tidy", "clang-tidy-20", "clang-tidy-19",
                 "clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
                 "clang-tidy-15", "clang-tidy-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def find_module(build_dir):
    if not build_dir:
        return None
    cand = os.path.join(build_dir, "tools", "ltp-tidy",
                        "libltp-tidy-module.so")
    return cand if os.path.exists(cand) else None


DIAG = re.compile(r"^(?P<file>[^:\s][^:]*):(?P<line>\d+):\d+:\s+"
                  r"(?:warning|error):\s+(?P<msg>.*?)\s+"
                  r"\[(?P<checks>[\w\-.,*]+)\]$")


def parse_clang_tidy_output(text):
    findings = []
    for line in text.splitlines():
        m = DIAG.match(line)
        if not m:
            continue
        path = m.group("file")
        if not os.path.isabs(path):
            path = os.path.join(REPO, path)
        relpath = rel(path)
        if relpath.startswith(".."):
            continue  # system/toolchain header
        for check in m.group("checks").split(","):
            check = check.strip()
            advisory = not check.startswith("ltp-")
            findings.append(Finding(check, relpath, int(m.group("line")),
                                    m.group("msg"), "plugin", advisory))
    return findings


def plugin_run(tidy, module, files, checks, build_dir, extra_args=(),
               jobs=None):
    """Run clang-tidy (+ the ltp module) over `files`, returning raw
    findings (not yet scope-filtered)."""
    check_arg = "-checks=-*," + ",".join(checks)
    base = [tidy, "-load", module, check_arg, "-quiet",
            "-header-filter=.*/src/.*"]

    def one(path):
        cmd = list(base) + [path]
        if extra_args:
            cmd += ["--"] + list(extra_args)
        elif build_dir:
            cmd += ["-p", build_dir]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        # clang-tidy exits nonzero on hard errors (missing headers,
        # bad -load); surface those instead of reporting a clean run.
        if proc.returncode != 0 and "error:" in proc.stderr and \
                not DIAG.search(proc.stdout or ""):
            raise RuntimeError(
                f"clang-tidy failed on {path}:\n{proc.stderr.strip()}")
        return parse_clang_tidy_output(proc.stdout)

    findings = []
    workers = jobs or max(1, (os.cpu_count() or 2) - 1)
    with concurrent.futures.ThreadPoolExecutor(workers) as pool:
        for batch in pool.map(one, files):
            findings.extend(batch)
    return findings


def attach_line_text(findings):
    cache = {}
    for f in findings:
        path = os.path.join(REPO, f.file)
        if f.file not in cache:
            try:
                with open(path, encoding="utf-8",
                          errors="replace") as fh:
                    cache[f.file] = fh.read().split("\n")
            except OSError:
                cache[f.file] = []
        lines = cache[f.file]
        if 1 <= f.line <= len(lines):
            f.line_text = lines[f.line - 1].strip()


# --------------------------------------------------------------------------
# baseline
# --------------------------------------------------------------------------

def load_baseline(path):
    if not os.path.exists(path):
        return []
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "ltp_tidy_baseline/v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    entries = doc.get("suppressions")
    if not isinstance(entries, list):
        sys.exit(f"{path}: no \"suppressions\" array")
    for i, e in enumerate(entries):
        for k in ("check", "file", "contains", "reason"):
            if not isinstance(e.get(k), str) or not e[k]:
                sys.exit(f"{path}: suppressions[{i}] missing or empty "
                         f"\"{k}\" (need check/file/contains/reason)")
    return entries


def apply_baseline(findings, baseline):
    """Mark findings matched by a suppression; return unused entries.

    An entry matches on exact check, file suffix, and a substring of
    the finding's source line — line numbers are deliberately not part
    of the match so unrelated edits don't invalidate the baseline.
    """
    used = [False] * len(baseline)
    for f in findings:
        for i, e in enumerate(baseline):
            if e["check"] != f.check:
                continue
            if not (f.file == e["file"] or
                    f.file.endswith("/" + e["file"])):
                continue
            if e["contains"] not in f.line_text:
                continue
            f.suppressed_by = e["reason"]
            used[i] = True
            break
    return [e for i, e in enumerate(baseline) if not used[i]]


# --------------------------------------------------------------------------
# sweep + self-test
# --------------------------------------------------------------------------

def tree_files(paths):
    files = []
    roots = [os.path.join(REPO, p) for p in paths] if paths else \
        [os.path.join(REPO, "src")]
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def sweep(args, engine, tidy, module):
    files = tree_files(args.paths)
    scoped = [(f, checks_for_path(rel(f))) for f in files]
    scoped = [(f, c) for f, c in scoped if c]

    findings = []
    if engine == "plugin":
        # One clang-tidy run with every check enabled; the scope filter
        # below keeps path policy in one place. Headers are reached
        # through their includers (-header-filter), so only .cc files
        # are driven.
        cc = [f for f, _ in scoped if f.endswith(".cc")]
        checks = list(PROJECT_CHECKS)
        if not args.no_stock:
            checks += list(STOCK_CHECKS)
        findings = plugin_run(tidy, module, cc, checks, args.build_dir,
                              jobs=args.jobs)
        attach_line_text(findings)
        # Scope filter + dedupe (a header finding repeats per includer).
        seen = set()
        kept = []
        for f in findings:
            if f.check.startswith("ltp-") and \
                    f.check not in checks_for_path(f.file):
                continue
            if not f.check.startswith("ltp-") and \
                    not in_dirs(f.file, MODEL_DIRS + OBSERVER_DIRS):
                continue
            if f.key() in seen:
                continue
            seen.add(f.key())
            kept.append(f)
        findings = kept
    else:
        for path, checks in scoped:
            findings.extend(lite_scan_file(path, checks))

    findings.sort(key=lambda f: (f.file, f.line, f.check))
    baseline = load_baseline(args.baseline)
    unused = apply_baseline(findings, baseline)

    active = [f for f in findings if not f.suppressed_by]
    suppressed = [f for f in findings if f.suppressed_by]
    fatal = [f for f in active
             if not f.advisory or args.stock_strict]

    print(f"ltp-tidy sweep: engine={engine}, {len(files)} file(s), "
          f"{len(findings)} finding(s) "
          f"({len(suppressed)} baselined, {len(active)} active)")
    for f in active:
        tag = " (advisory)" if f.advisory and not args.stock_strict \
            else ""
        print(f"  {f.file}:{f.line}: {f.message} [{f.check}]{tag}")
    for f in suppressed:
        print(f"  baselined: {f.file}:{f.line} [{f.check}] — "
              f"{f.suppressed_by}")
    for e in unused:
        print(f"  note: unused baseline entry {e['check']} @ "
              f"{e['file']} (\"{e['contains']}\") — drop it?")

    write_report(args.report, engine, findings, unused)
    write_github_summary(engine, findings, fatal)

    if fatal:
        print(f"\nFAIL: {len(fatal)} unsuppressed finding(s); fix them "
              "or record a justified entry in tools/tidy_baseline.json")
        return 1
    print("\nOK: no unsuppressed findings")
    return 0


FIXTURE_SCOPE = re.compile(r"ltp-tidy-scope:\s*(model|observer)")


def self_test(args, engine, tidy, module):
    fixtures = os.path.join(REPO, "tests", "tidy", "fixtures")
    if not os.path.isdir(fixtures):
        print(f"ltp-tidy self-test: fixture dir {fixtures} missing")
        return 77
    slug = {c: c.replace("ltp-", "").replace("-", "_")
            for c in PROJECT_CHECKS}

    failures = []
    ran = 0
    for check in PROJECT_CHECKS:
        for kind in ("bad", "ok"):
            name = f"{slug[check]}_{kind}.cc"
            path = os.path.join(fixtures, name)
            if not os.path.exists(path):
                failures.append(f"{name}: fixture missing")
                continue
            with open(path) as f:
                text = f.read()
            m = FIXTURE_SCOPE.search(text)
            scope = m.group(1) if m else "model"
            del scope  # scope is implied by the single-check run below

            if engine == "plugin":
                found = plugin_run(tidy, module, [path], [check], None,
                                   extra_args=("-std=c++17",
                                               "-I" + os.path.join(
                                                   REPO, "src")))
                found = [f for f in found if f.check == check]
            else:
                found = lite_scan_file(path, [check])
            ran += 1
            hits = len(found)
            if kind == "bad" and hits == 0:
                failures.append(
                    f"{name}: {check} did not fire on its negative "
                    f"fixture (engine={engine})")
            elif kind == "ok" and hits > 0:
                failures.append(
                    f"{name}: {check} fired {hits}x on the sanctioned "
                    f"idiom: {found[0]} (engine={engine})")

    print(f"ltp-tidy self-test: engine={engine}, {ran} fixture(s)")
    if failures:
        for f in failures:
            print(f"  FAIL: {f}")
        return 1
    print("  all checks fire on their negatives and stay silent on "
          "the sanctioned idioms")
    return 0


# --------------------------------------------------------------------------
# reporting
# --------------------------------------------------------------------------

def write_report(path, engine, findings, unused_baseline):
    if not path:
        return
    doc = {
        "schema": "ltp_tidy_report/v1",
        "engine": engine,
        "findings": [
            {
                "check": f.check,
                "file": f.file,
                "line": f.line,
                "message": f.message,
                "advisory": f.advisory,
                "suppressedBy": f.suppressed_by,
            }
            for f in findings
        ],
        "unusedBaselineEntries": unused_baseline,
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def write_github_summary(engine, findings, fatal):
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    active = [f for f in findings if not f.suppressed_by]
    with open(path, "a") as f:
        f.write(f"### Determinism lint (engine: {engine})\n\n")
        if not active:
            n = len(findings)
            f.write(f"No unsuppressed findings ({n} baselined).\n")
        else:
            f.write("| check | file:line | finding | |\n")
            f.write("|---|---|---|---|\n")
            for x in active:
                note = "advisory" if x.advisory and x not in fatal \
                    else ":x:"
                f.write(f"| `{x.check}` | `{x.file}:{x.line}` | "
                        f"{x.message} | {note} |\n")
        verdict = "FAIL" if fatal else "PASS"
        f.write(f"\n**{len(fatal)} gating finding(s) — {verdict}**\n")


# --------------------------------------------------------------------------

def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*",
                    help="files or directories to sweep (default: src)")
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build"),
                    help="CMake build dir: compile_commands.json + the "
                         "plugin module (default: build)")
    ap.add_argument("--engine", choices=("auto", "plugin", "lite"),
                    default="auto")
    ap.add_argument("--baseline",
                    default=os.path.join(REPO, "tools",
                                         "tidy_baseline.json"))
    ap.add_argument("--report", help="write a JSON findings report here")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture corpus instead of the tree")
    ap.add_argument("--no-stock", action="store_true",
                    help="project checks only (skip the stock profile)")
    ap.add_argument("--stock-strict", action="store_true",
                    help="gate on stock-profile findings too")
    ap.add_argument("--jobs", type=int,
                    help="parallel clang-tidy processes")
    args = ap.parse_args()

    tidy = find_clang_tidy()
    module = find_module(args.build_dir)
    engine = args.engine
    if engine == "auto":
        engine = "plugin" if tidy and module else "lite"
        if engine == "lite":
            why = []
            if not tidy:
                why.append("no clang-tidy on PATH")
            if not module:
                why.append("plugin module not built "
                           "(cmake -DLTP_BUILD_TIDY=ON)")
            print("=" * 70)
            print("ltp-tidy NOTICE: falling back to the LITE engine "
                  f"({'; '.join(why)}).")
            print("The five project checks run as regex approximations; "
                  "AST-only patterns and the stock clang-tidy profile "
                  "are skipped.")
            print("=" * 70)
    elif engine == "plugin" and (not tidy or not module):
        sys.exit("ltp-tidy: --engine=plugin but clang-tidy or the "
                 "module is unavailable")

    if args.self_test:
        return self_test(args, engine, tidy, module)
    return sweep(args, engine, tidy, module)


if __name__ == "__main__":
    sys.exit(main())
