#!/usr/bin/env python3
"""Perf-regression gate for the tracked simulation-core benchmark.

Compares a fresh Release-mode bench_perf trajectory (BENCH_core.json)
against the committed one and fails when events/sec regresses by more
than the threshold (default 15%). The primary gate is the *geometric
mean* over all (kernel, config) cells — single-cell wall-clock numbers
swing by 10%+ between otherwise identical runs, while the geomean is
stable — plus a per-cell floor at twice the threshold to catch one
kernel cratering while the rest mask it.

    $ python3 tools/perf_gate.py BENCH_core.json build/BENCH_core.json

Every cell must appear in both files: a cell missing from the fresh run
(kernel removed) or present only in the fresh run (kernel added without
refreshing the committed baseline) fails the gate.

Multi-thread cells of the `parallel` section (configs matching
"...-tN" with N > 1) are reported but exempt from the ratio gates:
their throughput depends on the runner's core count, which the
committed trajectory cannot pin. bench_perf additionally stamps such
rows with "oversubscribed": true when they ran with more worker
threads than the machine has cores — flagged in the table, since those
wall clocks measure scheduler thrash, not engine speed. The "-t1"
cells ARE gated — they are the sequential baseline the parallel engine
must not regress.

Besides the pass/fail verdict, the gate prints a per-cell delta table
(events/sec old -> new, %) and, when running under GitHub Actions
(GITHUB_STEP_SUMMARY set), appends the same table as markdown to the
job summary so a PR's perf movement is visible without opening logs.
Both outputs also carry one geomean row per gated *config* ("base",
"ltp-active", "mesh64-t1"): a change that only moves the routed-mesh
cells (or only the p2p cells) is visible as such instead of being
averaged into the overall number.
"""

import argparse
import difflib
import json
import math
import os
import re
import sys

# "mesh64-t4" -> exempt; "mesh64-t1" and plain configs -> gated.
MULTI_THREAD_CONFIG = re.compile(r"-t(\d+)$")

# Every run row must carry these to be comparable. Extra keys (the
# engine self-profile bench_perf stamps, "oversubscribed", ...) are
# fine and ignored.
REQUIRED_KEYS = ("kernel", "config", "completed", "eventsPerSec")


def gated(config):
    m = MULTI_THREAD_CONFIG.search(config)
    return m is None or int(m.group(1)) <= 1


def load_runs(path):
    """Parse one BENCH_core.json into {(kernel, config): row}.

    Exits with a per-row diagnostic — which row, which keys are missing,
    which keys it does have — rather than letting a malformed or
    hand-edited file surface as a bare KeyError later.
    """
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "bench_core/v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list):
        sys.exit(f"{path}: no \"runs\" array")

    problems = []
    cells = {}
    for i, r in enumerate(runs):
        if not isinstance(r, dict):
            problems.append(f"runs[{i}]: not an object")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in r]
        if missing:
            label = "/".join(str(r.get(k, "?")) for k in ("kernel",
                                                          "config"))
            problems.append(
                f"runs[{i}] ({label}): missing key(s) "
                f"{', '.join(missing)} — has {', '.join(sorted(r))}")
            continue
        key = (r["kernel"], r["config"])
        if key in cells:
            problems.append(
                f"runs[{i}]: duplicate cell {key[0]}/{key[1]}")
            continue
        cells[key] = r
    if problems:
        print(f"{path}: {len(problems)} malformed run row(s):",
              file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        sys.exit(1)
    return cells


def nearest_cell(key, candidates):
    """Best fuzzy match for a missing cell — catches renames."""
    if not candidates:
        return None
    names = {f"{k}/{c}": (k, c) for k, c in candidates}
    close = difflib.get_close_matches(f"{key[0]}/{key[1]}", names,
                                      n=1, cutoff=0.6)
    return names[close[0]] if close else None


def geomean_of(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def write_github_summary(rows, geomean, config_means, limit, failures):
    """Append the delta table to the GitHub Actions job summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as f:
        f.write("### Perf gate: events/sec vs committed trajectory\n\n")
        f.write("| kernel | config | base ev/s | fresh ev/s | delta | |\n")
        f.write("|---|---|---:|---:|---:|---|\n")
        for kernel, config, base, fresh, note in rows:
            delta = 100.0 * (fresh / base - 1.0) if base > 0 else 0.0
            f.write(f"| {kernel} | {config} | {base:,.0f} | {fresh:,.0f} "
                    f"| {delta:+.1f}% | {note} |\n")
        for config, mean, n in config_means:
            f.write(f"| *geomean* | *{config}* |  |  | "
                    f"*{100.0 * (mean - 1.0):+.1f}%* | {n} cells |\n")
        if geomean is not None:
            verdict = "PASS" if not failures else "FAIL"
            f.write(f"\n**geomean ratio (gated cells): {geomean:.3f}** "
                    f"(limit {limit:.3f}) — **{verdict}**\n")
        for failure in failures:
            f.write(f"- :x: {failure}\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_core.json")
    ap.add_argument("fresh", help="freshly produced BENCH_core.json")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional geomean events/sec "
                         "regression; per-cell floor is 2x this "
                         "(default 0.15)")
    args = ap.parse_args()

    base = load_runs(args.baseline)
    fresh = load_runs(args.fresh)
    cell_floor = 1.0 - 2.0 * args.threshold

    failures = []
    for key in sorted(set(fresh) - set(base)):
        msg = (f"{key[0]}/{key[1]}: present only in the fresh run — "
               "refresh the committed baseline")
        near = nearest_cell(key, set(base) - set(fresh))
        if near:
            msg += (f" (did the committed cell {near[0]}/{near[1]} "
                    "get renamed?)")
        failures.append(msg)

    ratios = []
    ratios_by_config = {}  # gated config -> [ratio...]
    rows = []  # (kernel, config, base ev/s, fresh ev/s, note)
    print(f"{'kernel':<14}{'config':<12}{'base ev/s':>14}"
          f"{'fresh ev/s':>14}{'ratio':>8}{'delta':>9}")
    for key in sorted(base):
        kernel, config = key
        b = base[key]
        f = fresh.get(key)
        if f is None:
            msg = f"{kernel}/{config}: missing from fresh run"
            near = nearest_cell(key, set(fresh) - set(base))
            if near:
                msg += f" (closest fresh cell: {near[0]}/{near[1]})"
            failures.append(msg)
            continue
        if not f.get("completed", False):
            failures.append(f"{kernel}/{config}: did not complete")
            continue
        if b["eventsPerSec"] <= 0:
            continue
        ratio = f["eventsPerSec"] / b["eventsPerSec"]
        delta = f"{100.0 * (ratio - 1.0):+8.1f}%"
        if not gated(config):
            note = "not gated"
            if f.get("oversubscribed"):
                note += ", oversubscribed"
            print(f"{kernel:<14}{config:<12}{b['eventsPerSec']:>14.0f}"
                  f"{f['eventsPerSec']:>14.0f}{ratio:>8.3f}{delta}"
                  f"  ({note})")
            rows.append((kernel, config, b["eventsPerSec"],
                         f["eventsPerSec"], note))
            continue
        ratios.append(ratio)
        ratios_by_config.setdefault(config, []).append(ratio)
        flag = "" if ratio >= cell_floor else "  << REGRESSION"
        print(f"{kernel:<14}{config:<12}{b['eventsPerSec']:>14.0f}"
              f"{f['eventsPerSec']:>14.0f}{ratio:>8.3f}{delta}{flag}")
        rows.append((kernel, config, b["eventsPerSec"], f["eventsPerSec"],
                     "REGRESSION" if ratio < cell_floor else ""))
        if ratio < cell_floor:
            failures.append(
                f"{kernel}/{config}: events/sec fell to {ratio:.3f}x "
                f"(per-cell floor {cell_floor:.3f}x)")

    # Per-config geomeans first (informational): the overall gate number
    # averages p2p and routed-mesh cells together, so a movement
    # confined to one engine path is only visible per config.
    config_means = []
    for config in sorted(ratios_by_config):
        rs = ratios_by_config[config]
        config_means.append((config, geomean_of(rs), len(rs)))
    if config_means:
        print()
        for config, mean, n in config_means:
            print(f"geomean [{config:<12}] {mean:>8.3f}  "
                  f"({n} cells, {100.0 * (mean - 1.0):+.1f}%)")

    geomean = None
    if ratios:
        geomean = geomean_of(ratios)
        print(f"\ngeomean events/sec ratio: {geomean:.3f} "
              f"(limit {1.0 - args.threshold:.3f})")
        if geomean < 1.0 - args.threshold:
            failures.append(
                f"geomean events/sec fell to {geomean:.3f}x "
                f"(limit {1.0 - args.threshold:.3f}x)")

    write_github_summary(rows, geomean, config_means, 1.0 - args.threshold,
                         failures)

    if failures:
        print(f"\nFAIL: {len(failures)} perf gate violation(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nOK: events/sec within the regression threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
