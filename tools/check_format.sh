#!/usr/bin/env bash
# Format gate, diff mode: only files changed relative to a base ref are
# checked, so historical formatting is never relitigated by an
# unrelated PR.
#
#   tools/check_format.sh [base-ref]
#
# base-ref defaults to the merge base with origin/main (falling back to
# main, then HEAD for a fresh clone with no upstream).
#
# Two layers:
#   1. clang-format --dry-run against .clang-format over the changed
#      C++ files. Needs a clang-format executable; when none is on
#      PATH the layer is skipped with a loud notice (CI installs one;
#      the dev container may not have it).
#   2. A toolchain-free whitespace gate (trailing whitespace, missing
#      final newline, CR line endings, tab indentation) that always
#      runs, so the gate is never a silent no-op.
#
# Exit 0 = clean (possibly with layer-1 skipped), 1 = violations.

set -u -o pipefail

cd "$(dirname "$0")/.."

base="${1:-}"
if [ -z "$base" ]; then
    for ref in origin/main main; do
        if git rev-parse --verify -q "$ref" >/dev/null; then
            base="$(git merge-base HEAD "$ref")" && break
        fi
    done
fi
base="${base:-HEAD}"

# Changed C++ files (added/copied/modified/renamed), plus any staged or
# unstaged edits in the working tree.
mapfile -t files < <(
    { git diff --name-only --diff-filter=ACMR "$base" -- \
          '*.cc' '*.hh' '*.cpp';
      git diff --name-only --diff-filter=ACMR -- '*.cc' '*.hh' '*.cpp';
    } | sort -u)

if [ "${#files[@]}" -eq 0 ]; then
    echo "check_format: no C++ files changed since ${base}"
    exit 0
fi
echo "check_format: ${#files[@]} changed file(s) since ${base}"

status=0

# ---- layer 1: clang-format ------------------------------------------------

clang_format=""
for name in clang-format clang-format-20 clang-format-19 \
            clang-format-18 clang-format-17 clang-format-16 \
            clang-format-15 clang-format-14; do
    if command -v "$name" >/dev/null 2>&1; then
        clang_format="$name"
        break
    fi
done

if [ -n "$clang_format" ]; then
    echo "check_format: using $clang_format ($($clang_format --version))"
    if ! "$clang_format" --dry-run -Werror --style=file "${files[@]}"
    then
        echo "check_format: clang-format violations above;" \
             "run: $clang_format -i --style=file <file>"
        status=1
    fi
else
    echo "======================================================================"
    echo "check_format NOTICE: no clang-format on PATH — style layer SKIPPED."
    echo "Only the whitespace gate below ran. Install clang-format to check"
    echo "the full .clang-format style locally; CI always runs it."
    echo "======================================================================"
fi

# ---- layer 2: whitespace gate (always runs) -------------------------------

for f in "${files[@]}"; do
    [ -f "$f" ] || continue
    if grep -n -I ' $\|	$' "$f" /dev/null | head -5 | sed 's/$/ <-- trailing whitespace/'
    then
        status=1
    fi
    if grep -n -I $'\r' "$f" /dev/null | head -3 | sed 's/$/ <-- CR line ending/'
    then
        status=1
    fi
    if [ -s "$f" ] && [ -n "$(tail -c1 "$f")" ]; then
        echo "$f: missing final newline"
        status=1
    fi
    if grep -n -I $'^\t' "$f" /dev/null | head -3 | sed 's/$/ <-- tab indentation/'
    then
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "check_format: OK"
else
    echo "check_format: FAIL"
fi
exit "$status"
