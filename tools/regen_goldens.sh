#!/usr/bin/env bash
# Regenerate the committed golden outputs of the figure/table benches.
#
#   $ tools/regen_goldens.sh [build-dir] [output-dir]
#
# Defaults: build/ and bench/golden/. The benches are bit-deterministic
# (no wall-clock content), so these files only change when a PR changes
# simulation behavior — which is exactly what the nightly workflow
# diffs for. Rerun this script (Release build!) and commit the result
# whenever such a change is intentional.
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-bench/golden}"

benches=(
    bench_fig6_accuracy
    bench_fig7_signature
    bench_fig8_global
    bench_fig9_speedup
    bench_table3_storage
    bench_table4_timeliness
)

mkdir -p "$out_dir"
for b in "${benches[@]}"; do
    if [[ ! -x "$build_dir/$b" ]]; then
        echo "error: $build_dir/$b not built (cmake --build $build_dir)" >&2
        exit 1
    fi
    echo "running $b ..."
    "$build_dir/$b" > "$out_dir/$b.txt"
done
echo "golden outputs written to $out_dir/"
