#!/usr/bin/env python3
"""Summarize an LTP_TRACE Chrome-trace JSON file on the terminal.

The full trace is meant for ui.perfetto.dev; this renders the headline
numbers without leaving the shell:

  - per-category event counts (spans vs instants, total span ticks),
  - per-link utilization (the routed network's "grant" spans: busy
    ticks on each directed link over the traced interval),
  - engine barrier-wait per shard ("barrier park" instants stamp the
    park's wall-clock wait in a0),
  - optionally, a compact overview of an LTP_METRICS JSONL stream.

    $ python3 tools/trace_summarize.py trace.json [--metrics m.jsonl]
              [--top N]

Stdlib only. Expects the schema src/obs/trace.cc writes: "X" spans and
"i" instants with pid=node (engine events: pid=1000000+shard), tid=
shard, args {a0, a1}; link grants carry the destination node in a0.
"""

import argparse
import collections
import json
import sys

ENGINE_PID_BASE = 1_000_000


def fmt_table(headers, rows):
    """Render rows as a right-aligned (first column left) text table."""
    widths = [len(h) for h in headers]
    srows = [[str(c) for c in row] for row in rows]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    def fmt(row):
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, len(row))]
        return "  ".join(cells).rstrip()
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in srows)
    return "\n".join(lines)


def load_trace(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read trace file: {e.strerror or e}")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: invalid trace JSON at line {e.lineno}, "
                 f"column {e.colno}: {e.msg} (truncated file? a run that "
                 f"crashed mid-flush leaves a partial trace)")
    if not isinstance(doc, dict):
        sys.exit(f"{path}: top level is {type(doc).__name__}, expected a "
                 f"JSON object — not a trace file?")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        sys.exit(f"{path}: no \"traceEvents\" array — not a trace file?")
    return doc, [e for e in events if e.get("ph") in ("X", "i")]


def category_table(events):
    spans = collections.Counter()
    instants = collections.Counter()
    span_ticks = collections.Counter()
    for e in events:
        cat = e.get("cat", "?")
        if e["ph"] == "X":
            spans[cat] += 1
            span_ticks[cat] += e.get("dur", 0)
        else:
            instants[cat] += 1
    rows = []
    for cat in sorted(set(spans) | set(instants)):
        rows.append([cat, spans[cat], instants[cat],
                     spans[cat] + instants[cat], span_ticks[cat]])
    rows.append(["total", sum(spans.values()), sum(instants.values()),
                 len(events), sum(span_ticks.values())])
    return fmt_table(["category", "spans", "instants", "events",
                      "span ticks"], rows)


def link_table(events, top):
    """Busy ticks per directed link from the link category's grants."""
    grants = [e for e in events
              if e.get("cat") == "link" and e.get("name") == "grant"]
    if not grants:
        return None
    t0 = min(e["ts"] for e in grants)
    t1 = max(e["ts"] + e.get("dur", 0) for e in grants)
    window = max(1, t1 - t0)
    links = collections.defaultdict(lambda: [0, 0])  # grants, busy
    for e in grants:
        entry = links[(e["pid"], e["args"]["a0"])]
        entry[0] += 1
        entry[1] += e.get("dur", 0)
    ranked = sorted(links.items(), key=lambda kv: -kv[1][1])
    rows = [[f"{src}->{dst}", n, busy, f"{100.0 * busy / window:.1f}%"]
            for (src, dst), (n, busy) in ranked[:top]]
    if len(ranked) > top:
        rows.append([f"... {len(ranked) - top} more links", "", "", ""])
    title = (f"link utilization over ticks [{t0}, {t1}] "
             f"(top {min(top, len(ranked))} of {len(ranked)})")
    return title + "\n" + fmt_table(["link", "grants", "busy ticks",
                                     "util"], rows)


def barrier_table(events):
    """Wall-clock barrier wait per engine shard (a0 = ns per park)."""
    parks = [e for e in events
             if e.get("cat") == "engine" and e.get("name") == "barrier park"]
    if not parks:
        return None
    shards = collections.defaultdict(lambda: [0, 0])  # parks, wait ns
    for e in parks:
        entry = shards[e.get("pid", 0) - ENGINE_PID_BASE]
        entry[0] += 1
        entry[1] += e["args"]["a0"]
    rows = []
    for shard in sorted(shards):
        n, ns = shards[shard]
        rows.append([f"shard {shard}", n, f"{ns / 1e6:.2f}",
                     f"{ns / n / 1e3:.1f}"])
    total_n = sum(v[0] for v in shards.values())
    total_ns = sum(v[1] for v in shards.values())
    rows.append(["total", total_n, f"{total_ns / 1e6:.2f}",
                 f"{total_ns / max(1, total_n) / 1e3:.1f}"])
    return fmt_table(["", "parks", "wait ms", "us/park"], rows)


def metrics_summary(path, top):
    samples = []
    try:
        f = open(path)
    except OSError as e:
        sys.exit(f"{path}: cannot read metrics file: {e.strerror or e}")
    with f:
        for i, line in enumerate(f):
            line = line.strip()
            if not line:
                continue
            try:
                sample = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{i + 1}: bad JSONL line: {e} "
                         f"(truncated stream?)")
            if not isinstance(sample, dict) or "tick" not in sample:
                sys.exit(f"{path}:{i + 1}: not a metrics sample "
                         f"(no \"tick\" field)")
            samples.append(sample)
    if not samples:
        return f"{path}: no samples"
    out = [f"{len(samples)} samples over ticks "
           f"[{samples[0]['sinceTick']}, {samples[-1]['tick']}], "
           f"{sum(s.get('events', 0) for s in samples)} events executed"]
    totals = collections.Counter()
    for s in samples:
        totals.update(s.get("counters", {}))
    rows = [[name, total] for name, total
            in totals.most_common(top)]
    if len(totals) > top:
        rows.append([f"... {len(totals) - top} more counters", ""])
    out.append(fmt_table(["counter (summed deltas)", "total"], rows))
    return "\n".join(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="LTP_TRACE output (Chrome trace JSON)")
    ap.add_argument("--metrics", help="LTP_METRICS output (JSONL)")
    ap.add_argument("--top", type=int, default=12,
                    help="rows in the ranked tables (default 12)")
    args = ap.parse_args()

    doc, events = load_trace(args.trace)
    dropped = doc.get("otherData", {}).get("dropped", 0)
    print(f"{args.trace}: {len(events)} events, {dropped} dropped")
    print()
    print(category_table(events))
    links = link_table(events, args.top)
    if links:
        print()
        print(links)
    barriers = barrier_table(events)
    if barriers:
        print()
        print("engine barrier waits (wall clock, observer-only)")
        print(barriers)
    if args.metrics:
        print()
        print(metrics_summary(args.metrics, args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
