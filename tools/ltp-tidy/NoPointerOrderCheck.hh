/**
 * @file
 * ltp-no-pointer-order: address-space layout must not reach results.
 *
 * Bans, in model code:
 *  - ordering comparisons (<, >, <=, >=) between raw pointers,
 *  - std::less/std::greater (and _equal) instantiated on pointer types,
 *  - std::map/std::set keyed on pointers with the default comparator,
 *  - ltp::FlatMap/FlatSet keyed on pointers (the probe sequence hashes
 *    the address),
 *  - std::hash<T*> and pointer-to-integer casts (the hashing idiom).
 *
 * Heap addresses differ run to run (ASLR, allocation history) and
 * shard to shard, so any container order, tie-break, or hash derived
 * from one silently breaks the byte-identical-dump contract.
 *
 * Sanctioned idiom: key and order on stable model identifiers (NodeId,
 * block address, sequence number) — every model object already has
 * one. Pointer *equality* is fine and not flagged.
 */

#ifndef LTP_TOOLS_LTP_TIDY_NO_POINTER_ORDER_CHECK_HH
#define LTP_TOOLS_LTP_TIDY_NO_POINTER_ORDER_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace ltp_tidy
{

class NoPointerOrderCheck : public clang::tidy::ClangTidyCheck
{
  public:
    NoPointerOrderCheck(llvm::StringRef name,
                        clang::tidy::ClangTidyContext *context)
        : ClangTidyCheck(name, context)
    {
    }

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void
    check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
};

} // namespace ltp_tidy

#endif // LTP_TOOLS_LTP_TIDY_NO_POINTER_ORDER_CHECK_HH
