#include "NoPointerOrderCheck.hh"

#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace ltp_tidy
{

namespace
{

// Ordering functors and hashers instantiated on a pointer type.
const auto pointerFunctor = classTemplateSpecializationDecl(
    hasAnyName("::std::less", "::std::greater", "::std::less_equal",
               "::std::greater_equal", "::std::hash"),
    hasTemplateArgument(0, refersToType(pointerType())));

// Ordered / hashed containers keyed on a pointer.
const auto pointerKeyedContainer = classTemplateSpecializationDecl(
    hasAnyName("::std::map", "::std::set", "::std::multimap",
               "::std::multiset", "::ltp::FlatMap", "::ltp::FlatSet"),
    hasTemplateArgument(0, refersToType(pointerType())));

} // namespace

void
NoPointerOrderCheck::registerMatchers(MatchFinder *finder)
{
    finder->addMatcher(
        binaryOperator(hasAnyOperatorName("<", ">", "<=", ">="),
                       hasLHS(expr(hasType(pointerType()))),
                       hasRHS(expr(hasType(pointerType()))))
            .bind("cmp"),
        this);

    finder->addMatcher(
        valueDecl(hasType(hasUnqualifiedDesugaredType(
                      recordType(hasDeclaration(pointerFunctor)))))
            .bind("functor"),
        this);

    finder->addMatcher(
        valueDecl(hasType(hasUnqualifiedDesugaredType(
                      recordType(hasDeclaration(pointerKeyedContainer)))))
            .bind("container"),
        this);

    // Pointer-to-integer casts: the "hash the address" idiom.
    finder->addMatcher(
        explicitCastExpr(hasSourceExpression(hasType(pointerType())),
                         hasDestinationType(isInteger()))
            .bind("cast"),
        this);
}

void
NoPointerOrderCheck::check(const MatchFinder::MatchResult &result)
{
    if (const auto *cmp =
            result.Nodes.getNodeAs<clang::BinaryOperator>("cmp")) {
        diag(cmp->getOperatorLoc(),
             "ordering comparison of raw pointers: address-space layout "
             "leaks into results; order on stable model ids instead");
        return;
    }
    if (const auto *decl =
            result.Nodes.getNodeAs<clang::ValueDecl>("functor")) {
        diag(decl->getLocation(),
             "ordering/hashing functor on a pointer type: address-space "
             "layout leaks into results; key on stable model ids");
        return;
    }
    if (const auto *decl =
            result.Nodes.getNodeAs<clang::ValueDecl>("container")) {
        diag(decl->getLocation(),
             "container keyed on raw pointers: iteration order follows "
             "the address space; key on stable model ids instead");
        return;
    }
    if (const auto *cast =
            result.Nodes.getNodeAs<clang::ExplicitCastExpr>("cast")) {
        diag(cast->getBeginLoc(),
             "pointer-to-integer cast in model code: the address is not "
             "a stable value; derive ids from model structure instead");
    }
}

} // namespace ltp_tidy
