/**
 * @file
 * ltp-no-unordered-container: deterministic iteration only.
 *
 * Bans declaring std::unordered_{map,set,multimap,multiset} in model
 * code. Their iteration order depends on hash seeding, bucket counts,
 * and allocation history — any stats dump, message emission, or
 * scheduling decision derived from iterating one differs run to run
 * and shard to shard.
 *
 * Sanctioned idiom: ltp::FlatMap / ltp::FlatSet (sim/flat_map.hh) —
 * open addressing with deterministic iteration — or std::map/std::set
 * where ordering is part of the semantics (e.g. the ingress reorder
 * buffer).
 */

#ifndef LTP_TOOLS_LTP_TIDY_NO_UNORDERED_CONTAINER_CHECK_HH
#define LTP_TOOLS_LTP_TIDY_NO_UNORDERED_CONTAINER_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace ltp_tidy
{

class NoUnorderedContainerCheck : public clang::tidy::ClangTidyCheck
{
  public:
    NoUnorderedContainerCheck(llvm::StringRef name,
                              clang::tidy::ClangTidyContext *context)
        : ClangTidyCheck(name, context)
    {
    }

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void
    check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
};

} // namespace ltp_tidy

#endif // LTP_TOOLS_LTP_TIDY_NO_UNORDERED_CONTAINER_CHECK_HH
