/**
 * @file
 * ltp-no-wallclock: model code runs on virtual time only.
 *
 * Bans reading the host clock — std::chrono::*_clock::now(), time(),
 * clock(), gettimeofday(), clock_gettime(), timespec_get() — anywhere
 * in model code (src/dsm, src/net, src/sim, src/mem, src/proto,
 * src/predictor, src/kernel). A wall-clock value that reaches a model
 * decision makes results depend on host speed and scheduling, breaking
 * the byte-identical-dump contract the determinism matrix enforces.
 *
 * Sanctioned idiom: EventQueue::now() / SimContext ticks for model
 * time. Host-side timing belongs in src/sim/guard/ and src/obs/, which
 * this check does not cover (the driver scopes it).
 */

#ifndef LTP_TOOLS_LTP_TIDY_NO_WALLCLOCK_CHECK_HH
#define LTP_TOOLS_LTP_TIDY_NO_WALLCLOCK_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace ltp_tidy
{

class NoWallclockCheck : public clang::tidy::ClangTidyCheck
{
  public:
    NoWallclockCheck(llvm::StringRef name,
                     clang::tidy::ClangTidyContext *context)
        : ClangTidyCheck(name, context)
    {
    }

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void
    check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
};

} // namespace ltp_tidy

#endif // LTP_TOOLS_LTP_TIDY_NO_WALLCLOCK_CHECK_HH
