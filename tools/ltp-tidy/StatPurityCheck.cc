#include "StatPurityCheck.hh"

#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace ltp_tidy
{

void
StatPurityCheck::registerMatchers(MatchFinder *finder)
{
    // StatGroup's creating lookups and bulk mutators. The find*() /
    // counterValue() / snapshot() accessors are const and stay legal.
    finder->addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(
                hasAnyName("counter", "average", "histogram", "mergeFrom",
                           "resetAll"),
                ofClass(hasName("::ltp::StatGroup")))))
            .bind("group"),
        this);

    // Mutators of the stat objects themselves.
    finder->addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(
                hasAnyName("inc", "set", "sample", "merge", "reset"),
                ofClass(hasAnyName("::ltp::Counter", "::ltp::Average",
                                   "::ltp::Histogram")))))
            .bind("stat"),
        this);
}

void
StatPurityCheck::check(const MatchFinder::MatchResult &result)
{
    const auto *call = result.Nodes.getNodeAs<clang::CXXMemberCallExpr>(
        "group");
    if (!call)
        call = result.Nodes.getNodeAs<clang::CXXMemberCallExpr>("stat");
    if (!call)
        return;
    diag(call->getBeginLoc(),
         "observer code mutates StatGroup state: guard/ and obs/ must "
         "keep stats dumps byte-identical whether or not they are "
         "armed; own counters outside StatGroup (obs/engine_profile.hh "
         "idiom) or use the const accessors");
}

} // namespace ltp_tidy
