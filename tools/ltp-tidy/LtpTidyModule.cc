/**
 * @file
 * LtpTidyModule: the project's clang-tidy plugin.
 *
 * Registers the five determinism checks that make the byte-identical-
 * dump contract a compile-time property (see tools/ltp-tidy/README.md):
 *
 *   ltp-no-wallclock           model code runs on virtual time only
 *   ltp-no-shared-rng          counter-based draws, no shared streams
 *   ltp-no-unordered-container deterministic iteration only
 *   ltp-no-pointer-order       no address-ordered/hashed results
 *   ltp-stat-purity            guard/ and obs/ never mutate StatGroup
 *
 * Built as a shared module (cmake -DLTP_BUILD_TIDY=ON) and loaded with
 *
 *   clang-tidy -load tools/ltp-tidy/libltp-tidy-module.so \
 *              -checks='ltp-*' ...
 *
 * The checks are scope-agnostic: tools/run_ltp_tidy.py owns the
 * model-directory globs and decides which checks apply to which files,
 * so path policy lives in exactly one place (shared with the driver's
 * pure-Python fallback engine).
 */

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "NoPointerOrderCheck.hh"
#include "NoSharedRngCheck.hh"
#include "NoUnorderedContainerCheck.hh"
#include "NoWallclockCheck.hh"
#include "StatPurityCheck.hh"

namespace ltp_tidy
{

class LtpTidyModule : public clang::tidy::ClangTidyModule
{
  public:
    void
    addCheckFactories(
        clang::tidy::ClangTidyCheckFactories &factories) override
    {
        factories.registerCheck<NoWallclockCheck>("ltp-no-wallclock");
        factories.registerCheck<NoSharedRngCheck>("ltp-no-shared-rng");
        factories.registerCheck<NoUnorderedContainerCheck>(
            "ltp-no-unordered-container");
        factories.registerCheck<NoPointerOrderCheck>(
            "ltp-no-pointer-order");
        factories.registerCheck<StatPurityCheck>("ltp-stat-purity");
    }
};

} // namespace ltp_tidy

namespace clang
{
namespace tidy
{

// Register the module with clang-tidy's factory registry; the -load'ed
// shared object contributes its checks through this static instance.
static ClangTidyModuleRegistry::Add<ltp_tidy::LtpTidyModule>
    ltpTidyModuleInit("ltp-tidy-module",
                      "LTP determinism-contract checks.");

// Anchor so the static registration is not dead-stripped.
volatile int ltpTidyModuleAnchorSource = 0;

} // namespace tidy
} // namespace clang
