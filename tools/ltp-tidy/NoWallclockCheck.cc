#include "NoWallclockCheck.hh"

#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace ltp_tidy
{

void
NoWallclockCheck::registerMatchers(MatchFinder *finder)
{
    // C-library wall-clock reads.
    finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::time", "::clock", "::gettimeofday",
                     "::clock_gettime", "::timespec_get", "::ftime"))))
            .bind("libc"),
        this);

    // std::chrono::{system,steady,high_resolution}_clock::now() and any
    // other chrono clock (they all expose a static now()).
    finder->addMatcher(
        callExpr(callee(cxxMethodDecl(
                     hasName("now"),
                     ofClass(matchesName("::std::chrono::.*clock")))))
            .bind("chrono"),
        this);
}

void
NoWallclockCheck::check(const MatchFinder::MatchResult &result)
{
    if (const auto *call = result.Nodes.getNodeAs<clang::CallExpr>("libc")) {
        diag(call->getBeginLoc(),
             "wall-clock read in model code; model decisions must use "
             "virtual time (EventQueue::now()) only");
        return;
    }
    if (const auto *call =
            result.Nodes.getNodeAs<clang::CallExpr>("chrono")) {
        diag(call->getBeginLoc(),
             "std::chrono clock read in model code; model decisions must "
             "use virtual time (EventQueue::now()) only");
    }
}

} // namespace ltp_tidy
