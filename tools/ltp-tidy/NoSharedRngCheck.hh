/**
 * @file
 * ltp-no-shared-rng: no shared mutable RNG streams in model code.
 *
 * Bans rand()/srand()/drand48()-family calls, std::random_device, and
 * declaring std:: random engines (mt19937 and friends) anywhere in
 * model code, plus mutable ltp::Rng *members* — a member stream's
 * consumption order is part of the result, which is exactly the
 * coupling that forced oblivious routing onto the sequential engine
 * before PR 8.
 *
 * Sanctioned idioms:
 *  - ltp::counterHash(seed, coords..., counter) (sim/rng.hh): a pure
 *    draw per stable model coordinate tuple — shard-order free.
 *  - a *local* ltp::Rng owned by one sequential consumer (kernel setup
 *    loops, bench drivers); per-node streams owned by a ThreadCtx are
 *    recorded in tools/tidy_baseline.json with their justification.
 */

#ifndef LTP_TOOLS_LTP_TIDY_NO_SHARED_RNG_CHECK_HH
#define LTP_TOOLS_LTP_TIDY_NO_SHARED_RNG_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace ltp_tidy
{

class NoSharedRngCheck : public clang::tidy::ClangTidyCheck
{
  public:
    NoSharedRngCheck(llvm::StringRef name,
                     clang::tidy::ClangTidyContext *context)
        : ClangTidyCheck(name, context)
    {
    }

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void
    check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
};

} // namespace ltp_tidy

#endif // LTP_TOOLS_LTP_TIDY_NO_SHARED_RNG_CHECK_HH
