#include "NoUnorderedContainerCheck.hh"

#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace ltp_tidy
{

namespace
{

const auto unorderedDecl = namedDecl(hasAnyName(
    "::std::unordered_map", "::std::unordered_set",
    "::std::unordered_multimap", "::std::unordered_multiset"));

} // namespace

void
NoUnorderedContainerCheck::registerMatchers(MatchFinder *finder)
{
    // Any declaration (variable, field, parameter, alias target) whose
    // type involves an unordered container. Declarations are the choke
    // point: model code cannot iterate a container it never declared.
    finder->addMatcher(
        valueDecl(hasType(hasUnqualifiedDesugaredType(
                      recordType(hasDeclaration(unorderedDecl)))))
            .bind("decl"),
        this);
    finder->addMatcher(
        typedefNameDecl(hasType(hasUnqualifiedDesugaredType(
                            recordType(hasDeclaration(unorderedDecl)))))
            .bind("alias"),
        this);
}

void
NoUnorderedContainerCheck::check(const MatchFinder::MatchResult &result)
{
    const clang::NamedDecl *decl =
        result.Nodes.getNodeAs<clang::NamedDecl>("decl");
    if (!decl)
        decl = result.Nodes.getNodeAs<clang::NamedDecl>("alias");
    if (!decl)
        return;
    diag(decl->getLocation(),
         "unordered container in model code: iteration order is not "
         "deterministic; use ltp::FlatMap/FlatSet (sim/flat_map.hh) or "
         "std::map/std::set");
}

} // namespace ltp_tidy
