#include "NoSharedRngCheck.hh"

#include "clang/ASTMatchers/ASTMatchers.h"

using namespace clang::ast_matchers;

namespace ltp_tidy
{

namespace
{

// The std engine templates behind mt19937, minstd_rand, ranlux24, ...
const auto stdEngineDecl = cxxRecordDecl(hasAnyName(
    "::std::random_device", "::std::mersenne_twister_engine",
    "::std::linear_congruential_engine",
    "::std::subtract_with_carry_engine", "::std::discard_block_engine",
    "::std::independent_bits_engine", "::std::shuffle_order_engine"));

} // namespace

void
NoSharedRngCheck::registerMatchers(MatchFinder *finder)
{
    finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::rand", "::srand", "::random", "::srandom",
                     "::rand_r", "::drand48", "::lrand48", "::mrand48"))))
            .bind("crand"),
        this);

    // Any declaration whose type is a std engine / random_device.
    finder->addMatcher(
        valueDecl(hasType(hasUnqualifiedDesugaredType(
                      recordType(hasDeclaration(stdEngineDecl)))))
            .bind("engine"),
        this);

    // Mutable ltp::Rng members: a stream whose draws interleave across
    // its owner's users. (Locals are fine — one sequential consumer.)
    finder->addMatcher(
        fieldDecl(hasType(hasUnqualifiedDesugaredType(recordType(
                      hasDeclaration(cxxRecordDecl(hasName("::ltp::Rng")))))))
            .bind("member"),
        this);
}

void
NoSharedRngCheck::check(const MatchFinder::MatchResult &result)
{
    if (const auto *call =
            result.Nodes.getNodeAs<clang::CallExpr>("crand")) {
        diag(call->getBeginLoc(),
             "C-library RNG in model code; use ltp::counterHash() "
             "(sim/rng.hh) — a pure draw per model coordinate tuple");
        return;
    }
    if (const auto *decl =
            result.Nodes.getNodeAs<clang::ValueDecl>("engine")) {
        diag(decl->getLocation(),
             "std random engine in model code; engines are platform-"
             "dependent mutable streams — use ltp::counterHash() "
             "(sim/rng.hh)");
        return;
    }
    if (const auto *field =
            result.Nodes.getNodeAs<clang::FieldDecl>("member")) {
        diag(field->getLocation(),
             "ltp::Rng member: a shared stream whose consumption order "
             "is part of the result; use ltp::counterHash() keyed on "
             "stable model coordinates, or record the single-consumer "
             "justification in tools/tidy_baseline.json");
    }
}

} // namespace ltp_tidy
