/**
 * @file
 * ltp-stat-purity: guard/ and obs/ are observers, not participants.
 *
 * The observability (src/obs/) and hardening (src/sim/guard/)
 * subsystems guarantee that arming them never changes a run's stats
 * dump: tracing, metrics sampling, checkers and watchdogs may *read*
 * StatGroup but must never mutate it. This check makes that guarantee
 * structural: within those directories it bans calls to StatGroup's
 * creating/mutating lookups (counter/average/histogram, mergeFrom,
 * resetAll) and to the Counter/Average/Histogram mutators (inc, set,
 * sample, merge, reset).
 *
 * Sanctioned idiom: own counters outside StatGroup (see
 * obs/engine_profile.hh) or the const snapshot()/find*() accessors.
 */

#ifndef LTP_TOOLS_LTP_TIDY_STAT_PURITY_CHECK_HH
#define LTP_TOOLS_LTP_TIDY_STAT_PURITY_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace ltp_tidy
{

class StatPurityCheck : public clang::tidy::ClangTidyCheck
{
  public:
    StatPurityCheck(llvm::StringRef name,
                    clang::tidy::ClangTidyContext *context)
        : ClangTidyCheck(name, context)
    {
    }

    void registerMatchers(clang::ast_matchers::MatchFinder *finder) override;
    void
    check(const clang::ast_matchers::MatchFinder::MatchResult &result)
        override;
};

} // namespace ltp_tidy

#endif // LTP_TOOLS_LTP_TIDY_STAT_PURITY_CHECK_HH
